// SweepService + the socket protocol, end to end in-process: submit /
// stream round-trips match a direct run byte for byte, a warm resubmit is
// 100% cache hits, cancellation stops at a cell boundary, and malformed
// requests answer errors without killing the daemon.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"

namespace ucr::svc {
namespace {

namespace fs = std::filesystem;

/// A small but non-trivial sweep as canonical spec text.
std::string small_spec_text() {
  exp::SpecFile file;
  file.spec.runs = 2;
  file.spec.seed = 321;
  file.spec.with_ks({10, 30});
  file.spec.with_arrival(exp::ArrivalSpec::batch());
  file.spec.with_arrival(exp::ArrivalSpec::poisson(0.3));
  for (const auto& p : paper_protocols()) file.spec.with_protocol(p.name);
  return exp::to_text(file);
}

/// The JSONL a direct `--format=jsonl` run of the same spec emits.
std::string direct_jsonl(const std::string& spec_text) {
  const exp::SpecFile file = exp::parse_spec(spec_text);
  const exp::ExperimentPlan plan =
      exp::compile(file.spec, default_catalogue());
  std::ostringstream out;
  exp::JsonlSink sink(out);
  exp::run(plan, {&sink}, {2});
  return out.str();
}

TEST(SweepService, SubmitWaitRowsMatchesDirectRun) {
  const std::string text = small_spec_text();
  SweepService service({"", 2});
  const std::string id = service.submit(text);
  EXPECT_EQ(id, "job-1");

  std::vector<std::string> rows;
  std::size_t cursor = 0;
  JobStatus status;
  do {
    std::vector<std::string> fresh;
    status = service.wait_rows(id, cursor, fresh);
    cursor += fresh.size();
    for (auto& row : fresh) rows.push_back(std::move(row));
  } while (!job_state_terminal(status.state) ||
           cursor < status.completed_cells);

  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.completed_cells, status.total_cells);
  EXPECT_EQ(status.cache_hits, 0u);
  EXPECT_TRUE(status.error.empty());

  std::string streamed;
  for (const auto& row : rows) streamed += row + "\n";
  EXPECT_EQ(streamed, direct_jsonl(text));
  service.stop();
}

TEST(SweepService, WarmResubmitIsAllCacheHits) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "ucr_service_cache_test";
  fs::remove_all(root);
  {
    SweepService service({root.string(), 2});
    const std::string text = small_spec_text();
    const JobStatus first = service.wait(service.submit(text));
    EXPECT_EQ(first.state, JobState::kDone);
    EXPECT_EQ(first.cache_hits, 0u);
    const JobStatus second = service.wait(service.submit(text));
    EXPECT_EQ(second.state, JobState::kDone);
    EXPECT_EQ(second.cache_hits, second.total_cells);
    // Both jobs stream identical rows.
    std::vector<std::string> rows_a, rows_b;
    service.wait_rows(first.id, 0, rows_a);
    service.wait_rows(second.id, 0, rows_b);
    EXPECT_EQ(rows_a, rows_b);
    service.stop();
  }
  // The cache outlives the service: a fresh daemon replays it too.
  {
    SweepService service({root.string(), 2});
    const JobStatus replay = service.wait(service.submit(small_spec_text()));
    EXPECT_EQ(replay.cache_hits, replay.total_cells);
    service.stop();
  }
  fs::remove_all(root);
}

TEST(SweepService, MalformedSpecIsRejectedAtSubmitTime) {
  SweepService service({"", 1});
  EXPECT_THROW(service.submit("not a spec"), ContractViolation);
  EXPECT_THROW(service.submit("spec_version = 1\nprotocols = Nope\n"),
               ContractViolation);
  EXPECT_THROW(service.status("job-9"), ContractViolation);
  service.stop();
}

TEST(SweepService, CancelStopsAQueuedJob) {
  SweepService service({"", 1});
  // Two jobs: the first occupies the executor, the second is cancelled
  // while still queued and never runs.
  const std::string first = service.submit(small_spec_text());
  const std::string second = service.submit(small_spec_text());
  service.cancel(second);
  const JobStatus final_second = service.wait(second);
  if (final_second.state == JobState::kCancelled) {
    // The normal interleaving: the cancel landed while job-2 was still
    // queued behind job-1, so it never ran a cell.
    EXPECT_EQ(final_second.completed_cells, 0u);
  } else {
    // The executor finished job-1 and popped job-2 between our submit and
    // cancel — then the job legitimately ran to completion.
    EXPECT_EQ(final_second.state, JobState::kDone);
  }
  EXPECT_EQ(service.wait(first).state, JobState::kDone);
  EXPECT_EQ(service.snapshot().size(), 2u);
  service.stop();
}

TEST(ServerRoundTrip, SocketProtocolMatchesDirectRun) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "ucr_server_test";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string socket_path = (root / "d.sock").string();

  SweepService service({(root / "cache").string(), 2});
  const int listen_fd = listen_unix(socket_path);
  std::thread server(
      [&] { run_server(listen_fd, socket_path, service); });

  const std::string text = small_spec_text();
  const json::Value pong = request(socket_path, simple_request("ping"));
  EXPECT_TRUE(pong.at("pong").as_bool());

  // Submit + stream, twice: identical bytes, second run fully cached.
  std::string first_rows, second_rows;
  const json::Value submitted =
      request(socket_path, submit_request(text));
  const StreamResult first =
      stream_job(socket_path, submitted.at("job").as_string(),
                 [&](const std::string& row) { first_rows += row + "\n"; });
  EXPECT_EQ(first.state, "done");
  EXPECT_EQ(first.cache_hits, 0u);

  const json::Value resubmitted =
      request(socket_path, submit_request(text));
  const StreamResult second = stream_job(
      socket_path, resubmitted.at("job").as_string(),
      [&](const std::string& row) { second_rows += row + "\n"; });
  EXPECT_EQ(second.state, "done");
  EXPECT_EQ(second.completed, second.total);
  EXPECT_EQ(second.cache_hits, second.total);

  const std::string direct = direct_jsonl(text);
  EXPECT_EQ(first_rows, direct);
  EXPECT_EQ(second_rows, direct);

  // Protocol errors answer without dropping the daemon.
  EXPECT_THROW(request(socket_path, "this is not json"),
               ContractViolation);
  EXPECT_THROW(request(socket_path, simple_request("frobnicate")),
               ContractViolation);
  EXPECT_THROW(request(socket_path, job_request("status", "job-99")),
               ContractViolation);
  const json::Value status =
      request(socket_path, job_request("status", "job-1"));
  EXPECT_EQ(status.at("state").as_string(), "done");

  // The raw status line is the --json tool contract: exact field names,
  // in the daemon's own encoding (request_raw passes the bytes through).
  const std::string raw =
      request_raw(socket_path, job_request("status", "job-1"));
  EXPECT_EQ(raw,
            "{\"ok\":true,\"job\":\"job-1\",\"state\":\"done\","
            "\"spec_hash\":\"" + first.spec_hash + "\"," +
            "\"total\":" + std::to_string(first.total) +
            ",\"completed\":" + std::to_string(first.completed) +
            ",\"cache_hits\":" + std::to_string(first.cache_hits) + "}");

  request(socket_path, simple_request("shutdown"));
  server.join();
  // The daemon unlinked its socket on the way out.
  EXPECT_FALSE(fs::exists(socket_path));
  service.stop();
  fs::remove_all(root);
}

}  // namespace
}  // namespace ucr::svc

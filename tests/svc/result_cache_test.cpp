// ResultCache — the provenance-keyed store: exact round-trips, atomic
// publication, and loud rejection of anything stale, corrupt or
// misaddressed (schema drift must fail the consumer, never silently
// recompute).
#include "svc/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/cell_task.hpp"
#include "exp/plan.hpp"
#include "exp/spec_io.hpp"

namespace ucr::svc {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "ucr_result_cache_test";
    fs::remove_all(root_);
    exp::ExperimentSpec spec;
    spec.runs = 2;
    spec.seed = 11;
    spec.with_ks({10, 30});
    spec.with_factory(paper_protocols().front());
    plan_ = exp::compile(spec);
    tasks_ = exp::enumerate_cell_tasks(plan_);
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  exp::ExperimentPlan plan_;
  std::vector<exp::CellTask> tasks_;
};

TEST_F(ResultCacheTest, StoreThenLoadRoundTripsEveryField) {
  ResultCache cache(root_.string());
  const AggregateResult computed = tasks_[0].execute().aggregate;
  cache.store(tasks_[0], computed);

  const auto loaded = cache.load(plan_.spec_hash, tasks_[0].cell.index);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->protocol, computed.protocol);
  EXPECT_EQ(loaded->k, computed.k);
  EXPECT_EQ(loaded->runs, computed.runs);
  EXPECT_EQ(loaded->incomplete_runs, computed.incomplete_runs);
  // Bitwise double equality — shortest-round-trip formatting is exact,
  // which is what makes cache replays byte-identical downstream.
  EXPECT_EQ(loaded->makespan.count, computed.makespan.count);
  EXPECT_EQ(loaded->makespan.mean, computed.makespan.mean);
  EXPECT_EQ(loaded->makespan.stddev, computed.makespan.stddev);
  EXPECT_EQ(loaded->makespan.min, computed.makespan.min);
  EXPECT_EQ(loaded->makespan.p25, computed.makespan.p25);
  EXPECT_EQ(loaded->makespan.median, computed.makespan.median);
  EXPECT_EQ(loaded->makespan.p75, computed.makespan.p75);
  EXPECT_EQ(loaded->makespan.p95, computed.makespan.p95);
  EXPECT_EQ(loaded->makespan.max, computed.makespan.max);
  EXPECT_EQ(loaded->makespan.ci95_halfwidth, computed.makespan.ci95_halfwidth);
  EXPECT_EQ(loaded->ratio.mean, computed.ratio.mean);
  EXPECT_EQ(loaded->ratio.ci95_halfwidth, computed.ratio.ci95_halfwidth);
  EXPECT_EQ(loaded->latency_p50, computed.latency_p50);
  EXPECT_EQ(loaded->latency_p95, computed.latency_p95);
  EXPECT_EQ(loaded->latency_p99, computed.latency_p99);
  EXPECT_EQ(loaded->energy_mean, computed.energy_mean);
  EXPECT_EQ(loaded->energy_max, computed.energy_max);
  // Per-run details are intentionally not persisted.
  EXPECT_TRUE(loaded->details.empty());
}

TEST_F(ResultCacheTest, MissingRecordIsANullopt) {
  ResultCache cache(root_.string());
  EXPECT_FALSE(cache.load(plan_.spec_hash, 0).has_value());
  EXPECT_FALSE(cache.load("0000000000000000", 3).has_value());
  EXPECT_EQ(cache.cell_count(plan_.spec_hash), 0u);
}

TEST_F(ResultCacheTest, CellCountSeesOnlyPublishedRecords) {
  ResultCache cache(root_.string());
  cache.store(tasks_[0], tasks_[0].execute().aggregate);
  cache.store(tasks_[1], tasks_[1].execute().aggregate);
  EXPECT_EQ(cache.cell_count(plan_.spec_hash), 2u);
  // No temp droppings: publication is rename-only.
  for (const auto& entry :
       fs::recursive_directory_iterator(root_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << entry.path();
  }
}

TEST_F(ResultCacheTest, StaleSchemaVersionIsRejectedLoudly) {
  ResultCache cache(root_.string());
  const AggregateResult computed = tasks_[0].execute().aggregate;
  std::string record = ResultCache::encode_record(tasks_[0], computed);
  const std::string current =
      "\"cache_version\":" + std::to_string(kCacheSchemaVersion);
  const std::size_t at = record.find(current);
  ASSERT_NE(at, std::string::npos);
  record.replace(at, current.size(), "\"cache_version\":999");
  fs::create_directories(root_ / plan_.spec_hash);
  {
    std::ofstream out(
        cache.record_path(plan_.spec_hash, tasks_[0].cell.index));
    out << record;
  }
  try {
    cache.load(plan_.spec_hash, tasks_[0].cell.index);
    FAIL() << "stale record must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("stale cache record"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ResultCacheTest, CorruptRecordIsRejectedLoudly) {
  ResultCache cache(root_.string());
  fs::create_directories(root_ / plan_.spec_hash);
  {
    std::ofstream out(cache.record_path(plan_.spec_hash, 0));
    out << "{\"cache_version\":1,\"spec_ha";  // torn write
  }
  try {
    cache.load(plan_.spec_hash, 0);
    FAIL() << "corrupt record must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt cache record"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ResultCacheTest, MisplacedRecordIsRejectedLoudly) {
  // A record stored under a different address (wrong cell, wrong hash) is
  // archive corruption, not a hit.
  ResultCache cache(root_.string());
  const AggregateResult computed = tasks_[0].execute().aggregate;
  const std::string record =
      ResultCache::encode_record(tasks_[0], computed);
  fs::create_directories(root_ / plan_.spec_hash);
  {
    std::ofstream out(
        cache.record_path(plan_.spec_hash, tasks_[1].cell.index));
    out << record;  // cell 0's record at cell 1's address
  }
  EXPECT_THROW(cache.load(plan_.spec_hash, tasks_[1].cell.index),
               ContractViolation);
}

TEST_F(ResultCacheTest, EncodeDecodeAreExactInverses) {
  const AggregateResult computed = tasks_[1].execute().aggregate;
  const std::string record =
      ResultCache::encode_record(tasks_[1], computed);
  const AggregateResult decoded = ResultCache::decode_record(
      record, plan_.spec_hash, tasks_[1].cell.index, "test");
  EXPECT_EQ(ResultCache::encode_record(tasks_[1], decoded), record);
}

}  // namespace
}  // namespace ucr::svc

// The cache determinism contract, pinned: a run with a cold cache, a run
// replaying a warm cache, and a killed-then-resumed run all produce
// byte-identical streaming output to a plain uncached run — on the
// shipped fig1 and adversarial sweeps (shrunk to test size via the same
// flag-wins overrides CI uses).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"
#include "sim/observer.hpp"
#include "svc/result_cache.hpp"

namespace ucr::svc {
namespace {

namespace fs = std::filesystem;

exp::SpecFile load_shrunk(const std::string& name) {
  exp::SpecFile file =
      exp::load_spec_file(std::string(UCR_REPO_ROOT) + "/specs/" + name);
  // Shrink to test scale the way CI shrinks shipped specs: override the
  // k grid and runs (flag-wins), keeping every other axis as shipped.
  file.spec.ks = {15, 40};
  file.spec.k_max = 0;
  file.spec.runs = 2;
  return file;
}

/// Streaming output (CSV + JSONL concatenated) of one run.
std::string streamed_output(const exp::ExperimentPlan& plan,
                            const exp::RunOptions& options) {
  std::ostringstream csv_text;
  std::ostringstream jsonl_text;
  exp::CsvStreamSink csv(csv_text);
  exp::JsonlSink jsonl(jsonl_text);
  exp::run(plan, {&csv, &jsonl}, options);
  return csv_text.str() + jsonl_text.str();
}

/// Throws once `limit` cells have been emitted — the in-process stand-in
/// for kill -9 halfway through a sweep.
class KillSwitch final : public exp::ResultSink {
 public:
  explicit KillSwitch(std::size_t limit) : limit_(limit) {}
  void emit(const exp::CellInfo&, const AggregateResult&) override {
    UCR_REQUIRE(emitted_ < limit_, "kill switch");
    ++emitted_;
  }

 private:
  std::size_t limit_;
  std::size_t emitted_ = 0;
};

class CachedRunTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "ucr_cached_run_test";
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

TEST_P(CachedRunTest, ColdWarmAndResumedRunsAreByteIdentical) {
  const exp::SpecFile file = load_shrunk(GetParam());
  const exp::ExperimentPlan plan =
      exp::compile(file.spec, default_catalogue());
  ASSERT_GE(plan.cells.size(), 6u);

  const std::string plain = streamed_output(plan, {2, nullptr});

  // Cold: empty cache attached, every cell computed and banked.
  ResultCache cache((root_ / "cache").string());
  const std::string cold = streamed_output(plan, {2, &cache});
  EXPECT_EQ(cold, plain);
  EXPECT_EQ(cache.cell_count(plan.spec_hash), plan.cells.size());

  // Warm: every cell replays; not a single work item executes.
  const std::string warm = streamed_output(plan, {2, &cache});
  EXPECT_EQ(warm, plain);

  // Kill/resume: a fresh cache, a run killed after 3 cells, then a rerun.
  ResultCache resumed_cache((root_ / "resume").string());
  {
    std::ostringstream discard;
    exp::CsvStreamSink csv(discard);
    KillSwitch kill(3);
    EXPECT_THROW(
        exp::run(plan, {&kill, &csv}, {2, &resumed_cache}),
        ContractViolation);
  }
  // The killed run banked at least the cells it emitted.
  EXPECT_GE(resumed_cache.cell_count(plan.spec_hash), 3u);
  EXPECT_LT(resumed_cache.cell_count(plan.spec_hash), plan.cells.size());
  const std::string resumed = streamed_output(plan, {2, &resumed_cache});
  EXPECT_EQ(resumed, plain);
}

INSTANTIATE_TEST_SUITE_P(ShippedSpecs, CachedRunTest,
                         ::testing::Values("fig1.spec", "adversarial.spec"));

TEST(CachedRun, ThreadCountDoesNotChangeCacheContentOrOutput) {
  const exp::SpecFile file = load_shrunk("fig1.spec");
  const exp::ExperimentPlan plan =
      exp::compile(file.spec, default_catalogue());
  const fs::path root =
      fs::path(::testing::TempDir()) / "ucr_cached_threads_test";
  fs::remove_all(root);
  ResultCache cache_a((root / "a").string());
  ResultCache cache_b((root / "b").string());
  const std::string one = streamed_output(plan, {1, &cache_a});
  const std::string four = streamed_output(plan, {4, &cache_b});
  EXPECT_EQ(one, four);
  // The records themselves are byte-identical too — the cache can be
  // rsynced between machines with different core counts.
  for (const auto& cell : plan.cells) {
    std::ifstream a(cache_a.record_path(plan.spec_hash, cell.index));
    std::ifstream b(cache_b.record_path(plan.spec_hash, cell.index));
    std::stringstream text_a, text_b;
    text_a << a.rdbuf();
    text_b << b.rdbuf();
    EXPECT_EQ(text_a.str(), text_b.str()) << "cell " << cell.index;
  }
  fs::remove_all(root);
}

TEST(CachedRun, ObserverPlansRejectTheCache) {
  exp::ExperimentSpec spec;
  spec.runs = 1;
  spec.with_ks({10});
  spec.with_factory(paper_protocols().front());
  DownsampledSeries observer(1);
  spec.engine_options.observer = &observer;
  const exp::ExperimentPlan plan = exp::compile(spec);
  const fs::path root =
      fs::path(::testing::TempDir()) / "ucr_cached_observer_test";
  fs::remove_all(root);
  ResultCache cache(root.string());
  exp::MemorySink memory;
  EXPECT_THROW(exp::run(plan, {&memory}, {1, &cache}), ContractViolation);
  fs::remove_all(root);
}

}  // namespace
}  // namespace ucr::svc

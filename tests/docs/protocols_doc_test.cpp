// Docs drift gate: docs/PROTOCOLS.md promises one section per registered
// protocol, so its headings are checked against the live catalogue —
// add a protocol to the registry and this test fails until the catalog
// documents it. README must link both documentation pages.
//
// UCR_REPO_ROOT is injected by tests/CMakeLists.txt so the test is
// independent of the ctest working directory.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"

namespace ucr {
namespace {

std::string read_repo_file(const std::string& relative) {
  const std::string path = std::string(UCR_REPO_ROOT) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The registered catalogue: what ucr_cli --list prints and find_protocol
/// resolves (registry + the Dynamic One-Fail variant).
std::vector<ProtocolFactory> registered_protocols() {
  auto protocols = all_protocols();
  protocols.push_back(make_dynamic_one_fail_factory());
  return protocols;
}

TEST(ProtocolsDoc, EveryRegisteredProtocolHasASection) {
  const std::string doc = read_repo_file("docs/PROTOCOLS.md");
  ASSERT_FALSE(doc.empty());
  for (const auto& protocol : registered_protocols()) {
    const std::string heading = "## " + protocol.name + "\n";
    EXPECT_NE(doc.find(heading), std::string::npos)
        << "docs/PROTOCOLS.md is missing a '## " << protocol.name
        << "' section for registered protocol '" << protocol.name << "'";
  }
}

TEST(ProtocolsDoc, CatalogMentionsBothHintInterfaces) {
  // The catalog documents hint strength per protocol; the two interfaces
  // it refers to must stay named after the real ones.
  const std::string doc = read_repo_file("docs/PROTOCOLS.md");
  EXPECT_NE(doc.find("constant_probability_slots"), std::string::npos);
  EXPECT_NE(doc.find("stationary_slots"), std::string::npos);
}

TEST(ProtocolsDoc, ReadmeLinksTheDocs) {
  const std::string readme = read_repo_file("README.md");
  ASSERT_FALSE(readme.empty());
  EXPECT_NE(readme.find("docs/ARCHITECTURE.md"), std::string::npos)
      << "README.md must link docs/ARCHITECTURE.md";
  EXPECT_NE(readme.find("docs/PROTOCOLS.md"), std::string::npos)
      << "README.md must link docs/PROTOCOLS.md";
}

}  // namespace
}  // namespace ucr

// Docs drift gate for docs/SCENARIOS.md: the page promises one section
// per live arrival keyword (ArrivalSpec::kind_names()) and one per live
// channel keyword (ChannelModel::kind_names()) — add a kind to either
// registry and this test fails until the reference documents it. README
// and docs/ARCHITECTURE.md must link the page.
//
// UCR_REPO_ROOT is injected by tests/CMakeLists.txt so the test is
// independent of the ctest working directory.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "channel/model.hpp"
#include "exp/spec.hpp"

namespace ucr {
namespace {

std::string read_repo_file(const std::string& relative) {
  const std::string path = std::string(UCR_REPO_ROOT) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ScenariosDoc, EveryArrivalKindHasASection) {
  const std::string doc = read_repo_file("docs/SCENARIOS.md");
  ASSERT_FALSE(doc.empty());
  for (const std::string& kind : exp::ArrivalSpec::kind_names()) {
    const std::string heading = "## " + kind + "\n";
    EXPECT_NE(doc.find(heading), std::string::npos)
        << "docs/SCENARIOS.md is missing a '## " << kind
        << "' section for live arrival kind '" << kind << "'";
  }
}

TEST(ScenariosDoc, EveryChannelKindHasASection) {
  const std::string doc = read_repo_file("docs/SCENARIOS.md");
  ASSERT_FALSE(doc.empty());
  for (const std::string& kind : ChannelModel::kind_names()) {
    const std::string heading = "## " + kind + "\n";
    EXPECT_NE(doc.find(heading), std::string::npos)
        << "docs/SCENARIOS.md is missing a '## " << kind
        << "' section for live channel kind '" << kind << "'";
  }
}

TEST(ScenariosDoc, DocumentsTheRoutingAndEnergyContracts) {
  // The engine matrix and the energy columns are the page's two
  // behavioural promises; they must keep naming the real entities.
  const std::string doc = read_repo_file("docs/SCENARIOS.md");
  EXPECT_NE(doc.find("Engine support matrix"), std::string::npos);
  EXPECT_NE(doc.find("energy_mean"), std::string::npos);
  EXPECT_NE(doc.find("energy_max"), std::string::npos);
  EXPECT_NE(doc.find("max_station_transmissions"), std::string::npos);
}

TEST(ScenariosDoc, ReadmeAndArchitectureLinkThePage) {
  EXPECT_NE(read_repo_file("README.md").find("docs/SCENARIOS.md"),
            std::string::npos)
      << "README.md must link docs/SCENARIOS.md";
  EXPECT_NE(read_repo_file("docs/ARCHITECTURE.md").find("SCENARIOS.md"),
            std::string::npos)
      << "docs/ARCHITECTURE.md must link SCENARIOS.md";
}

}  // namespace
}  // namespace ucr

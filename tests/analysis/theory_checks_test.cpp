// Numerical validation of the mathematical building blocks of the paper's
// proofs (Facts 3-4 and the Lemma-level quantities of Appendix A).
#include "analysis/theory_checks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/samplers.hpp"

namespace ucr {
namespace {

// ------------------------------------------------------------------ Fact 3

class Fact3Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Fact3Sweep, SandwichHolds) {
  const double x = GetParam();
  EXPECT_LE(fact3_lower(x), 1.0 + x);
  EXPECT_LE(1.0 + x, fact3_upper(x));
}

INSTANTIATE_TEST_SUITE_P(PositiveAndNegative, Fact3Sweep,
                         ::testing::Values(-0.99, -0.5, -0.1, -0.001, 0.001,
                                           0.1, 0.5, 0.9, 0.99));

TEST(Fact3, RejectsOutOfDomain) {
  EXPECT_THROW(fact3_lower(0.0), ContractViolation);
  EXPECT_THROW(fact3_upper(1.0), ContractViolation);
  EXPECT_THROW(fact3_lower(-1.5), ContractViolation);
}

// ------------------------------------------------------------------ Fact 4

TEST(Fact4, NonDecreasingBelowA) {
  // f(x) = (a/x)(1-1/x)^{a-1} non-decreasing for 1 < x < a.
  for (const double a : {3.0, 10.0, 100.0, 1000.0}) {
    double prev = 0.0;
    for (double x = 1.25; x < a; x *= 1.5) {
      const double f = fact4_f(a, x);
      ASSERT_GE(f + 1e-12, prev) << "a=" << a << " x=" << x;
      prev = f;
    }
  }
}

TEST(Fact4, MaximizedAtA) {
  for (const double a : {5.0, 50.0, 500.0}) {
    const double at_a = fact4_f(a, a);
    EXPECT_GT(at_a, fact4_f(a, a * 0.5));
    EXPECT_GT(at_a, fact4_f(a, a * 2.0));
    EXPECT_GT(at_a, fact4_f(a, a * 0.9));
    EXPECT_GT(at_a, fact4_f(a, a * 1.1));
  }
}

TEST(Fact4, ValueAtAApproachesOneOverE) {
  EXPECT_NEAR(fact4_f(10000.0, 10000.0), 1.0 / std::exp(1.0), 1e-3);
}

// ------------------------------------------- slot success probability form

TEST(AtSuccessProbability, MatchesDirectComputation) {
  // kappa = 3, kappa~ = 4: (3/4)(3/4)^2 = 27/64.
  EXPECT_NEAR(at_success_probability(3, 4.0), 27.0 / 64.0, 1e-12);
  EXPECT_NEAR(at_success_probability(1, 2.0), 0.5, 1e-12);
}

TEST(AtSuccessProbability, Lemma2Direction) {
  // Lemma 2: while kappa~ < kappa, incrementing kappa~ by 1 does not
  // decrease the success probability.
  for (const std::uint64_t kappa : {10ULL, 100ULL, 1000ULL}) {
    for (double kt = 2.0; kt + 1.0 < static_cast<double>(kappa); kt += 7.0) {
      ASSERT_LE(at_success_probability(kappa, kt),
                at_success_probability(kappa, kt + 1.0) + 1e-15)
          << "kappa=" << kappa << " kappa~=" << kt;
    }
  }
}

TEST(AtSuccessProbability, MaximizedWhenEstimatorEqualsDensity) {
  // Fact 4 instantiated: for fixed kappa the probability peaks at
  // kappa~ = kappa.
  for (const std::uint64_t kappa : {5ULL, 50ULL, 500ULL}) {
    const double kd = static_cast<double>(kappa);
    const double peak = at_success_probability(kappa, kd);
    EXPECT_GT(peak, at_success_probability(kappa, kd / 2.0));
    EXPECT_GT(peak, at_success_probability(kappa, kd * 2.0));
  }
}

TEST(AtSuccessProbability, Lemma3Direction) {
  // Lemma 3's core comparison (2) >= (3): after a delivery (kappa down 1)
  // and the corresponding estimator reduction by delta - 1, the success
  // probability does not increase, provided the estimator tracked from
  // below. Checked numerically over a grid.
  const double delta = 2.72;
  for (const std::uint64_t kappa : {100ULL, 1000ULL}) {
    const double kd = static_cast<double>(kappa);
    for (double kt = 10.0; kt <= kd; kt += kd / 8.0) {
      const double before = at_success_probability(kappa, kt);
      const double after =
          at_success_probability(kappa - 1, kt - delta + 1.0);
      ASSERT_GE(before + 1e-12, after)
          << "kappa=" << kappa << " kappa~=" << kt;
    }
  }
}

// ------------------------------------------------------------------ Lemma 1

TEST(Lemma1FailureBound, ClampedToOneForSmallM) {
  EXPECT_DOUBLE_EQ(lemma1_failure_bound(10, 0.366), 1.0);
}

TEST(Lemma1FailureBound, VanishesForLargeM) {
  const double b = lemma1_failure_bound(1000000, 0.3);
  EXPECT_LT(b, 1e-6);
  EXPECT_GT(lemma1_failure_bound(1000, 0.3), b);
}

TEST(Lemma1FailureBound, DominatesEmpiricalFailureRate) {
  // Throw m balls into m bins repeatedly; the empirical frequency of
  // (#singletons < delta*m) must not exceed the lemma's bound (which is
  // far from tight; equality would be suspicious).
  const std::uint64_t m = 2000;
  const double delta = 0.3;
  const double bound = lemma1_failure_bound(m, delta);
  Xoshiro256 rng(5150);
  const int trials = 400;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    std::uint64_t pending = m;
    std::uint64_t singles = 0;
    for (std::uint64_t j = 0; j < m && pending > 0; ++j) {
      const std::uint64_t drawn =
          sample_binomial(rng, pending, 1.0 / static_cast<double>(m - j));
      if (drawn == 1) ++singles;
      pending -= drawn;
    }
    if (static_cast<double>(singles) < delta * static_cast<double>(m)) {
      ++failures;
    }
  }
  EXPECT_LE(static_cast<double>(failures) / trials, bound);
}

TEST(Lemma1FailureBound, RejectsBadDelta) {
  EXPECT_THROW(lemma1_failure_bound(100, 0.4), ContractViolation);
  EXPECT_THROW(lemma1_failure_bound(100, 0.0), ContractViolation);
}

// ------------------------------------------------------------------ Lemma 4

TEST(Lemma4Threshold, LinearInKappa) {
  const double delta = 2.72;
  const double beta = 2.72;
  const double t1 = lemma4_sigma_threshold(1000.0, 10.0, 1.0, delta, beta);
  const double t2 = lemma4_sigma_threshold(2000.0, 10.0, 1.0, delta, beta);
  // Doubling kappa_{r,1} roughly doubles the admissible sigma.
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST(Lemma4Threshold, LaterStepsAdmitMoreDeliveries) {
  const double delta = 2.72;
  const double beta = 2.72;
  const double early = lemma4_sigma_threshold(1000.0, 10.0, 1.0, delta, beta);
  const double late = lemma4_sigma_threshold(1000.0, 10.0, 100.0, delta, beta);
  EXPECT_GT(late, early);
}

TEST(Lemma4Threshold, RequiresDeltaPlusOneLnBetaAboveOne) {
  EXPECT_THROW(lemma4_sigma_threshold(10.0, 1.0, 1.0, 0.1, 1.5),
               ContractViolation);
  EXPECT_NO_THROW(lemma4_sigma_threshold(10.0, 1.0, 1.0, 2.72, 2.72));
}

TEST(Lemma4Threshold, GuaranteesSuccessProbability) {
  // End-to-end: pick a round state satisfying Lemma 4's hypotheses and
  // verify the promised Pr >= 1/beta, using the exact probability form.
  const double delta = 2.72;
  const double beta = 2.72;
  const double kappa_r1 = 10000.0;
  const double alpha = 100.0;  // kappa_{r,1} - alpha <= kappa~_{r,1}
  const double t = 1.0;
  const double sigma_max =
      lemma4_sigma_threshold(kappa_r1, alpha, t, delta, beta);
  // Take sigma at the threshold; reconstruct kappa and kappa~ per Lemma 4:
  // kappa = kappa_{r,1} - sigma, kappa~ = kappa~_{r,1} - (delta+1)sigma + t.
  const double sigma = std::floor(sigma_max);
  const double kappa = kappa_r1 - sigma;
  const double kappa_tilde = (kappa_r1 - alpha) - (delta + 1.0) * sigma + t;
  ASSERT_GT(kappa_tilde, 1.0);
  const double p = at_success_probability(
      static_cast<std::uint64_t>(kappa), kappa_tilde);
  EXPECT_GE(p, 1.0 / beta - 1e-9);
}

}  // namespace
}  // namespace ucr

#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(Bounds, FairOptimalRatioIsE) {
  EXPECT_NEAR(fair_optimal_ratio(), 2.718281828, 1e-8);
}

TEST(Bounds, OneFailRatioMatchesTableOne) {
  // Table 1 "Analysis" entry for One-Fail Adaptive: 2(2.72+1) = 7.44 ~ 7.4.
  EXPECT_NEAR(one_fail_ratio(2.72), 7.44, 1e-12);
  EXPECT_THROW(one_fail_ratio(-1.0), ContractViolation);
}

TEST(Bounds, OneFailBoundDominatedByLinearTerm) {
  const double b = one_fail_bound(2.72, 1000000, 1.0);
  EXPECT_GT(b, 7.44e6);
  EXPECT_LT(b, 7.45e6);
  EXPECT_THROW(one_fail_bound(2.72, 0, 1.0), ContractViolation);
  EXPECT_THROW(one_fail_bound(2.72, 10, -1.0), ContractViolation);
}

TEST(Bounds, OneFailErrorIsTwoOverKPlusOne) {
  EXPECT_DOUBLE_EQ(one_fail_error(1), 1.0);
  EXPECT_DOUBLE_EQ(one_fail_error(999), 0.002);
}

TEST(Bounds, ExpBackonRatioMatchesTableOne) {
  // Table 1 "Analysis" entry for Exp Back-on/Back-off: 4(1+1/0.366) = 14.93.
  EXPECT_NEAR(exp_backon_ratio(0.366), 14.93, 0.01);
  EXPECT_THROW(exp_backon_ratio(0.4), ContractViolation);  // >= 1/e
  EXPECT_THROW(exp_backon_ratio(0.0), ContractViolation);
}

TEST(Bounds, ExpBackonBoundIsLinear) {
  EXPECT_NEAR(exp_backon_bound(0.366, 1000), 14928.96, 0.5);
}

TEST(Bounds, Lemma1ThresholdGrowsWithBetaAndK) {
  const double m1 = lemma1_min_m(0.3, 1.0, 1000);
  const double m2 = lemma1_min_m(0.3, 2.0, 1000);
  const double m3 = lemma1_min_m(0.3, 1.0, 1000000);
  EXPECT_GT(m2, m1);
  EXPECT_GT(m3, m1);
  EXPECT_THROW(lemma1_min_m(0.5, 1.0, 1000), ContractViolation);
  EXPECT_THROW(lemma1_min_m(0.3, 0.0, 1000), ContractViolation);
}

TEST(Bounds, Lemma1ClosedForm) {
  // delta = 0.2, beta = 1, k = 100: (2e/(1-0.2e)^2)(1 + 1.5 ln 100).
  const double e = std::exp(1.0);
  const double expected = (2.0 * e / std::pow(1.0 - 0.2 * e, 2)) *
                          (1.0 + 1.5 * std::log(100.0));
  EXPECT_NEAR(lemma1_min_m(0.2, 1.0, 100), expected, 1e-9);
}

TEST(Bounds, TauIsLogarithmic) {
  EXPECT_NEAR(ofa_tau(2.72, 99), 300.0 * 2.72 * std::log(100.0), 1e-9);
  EXPECT_GT(ofa_tau(2.72, 10000), ofa_tau(2.72, 100));
}

TEST(Bounds, GammaFormula) {
  // delta = 2.72: (1.72)(0.28)/(0.72) = 0.668888...
  EXPECT_NEAR(ofa_gamma(2.72), 1.72 * 0.28 / 0.72, 1e-12);
  EXPECT_THROW(ofa_gamma(2.0), ContractViolation);
}

TEST(Bounds, BigSIsGeometricSumOfTau) {
  const double tau = ofa_tau(2.72, 1000);
  double sum = 0.0;
  double term = 1.0;
  for (int j = 0; j <= 4; ++j) {
    sum += term;
    term *= 5.0 / 6.0;
  }
  EXPECT_NEAR(ofa_big_s(2.72, 1000), 2.0 * sum * tau, 1e-9);
}

TEST(Bounds, BigMIsFiniteAndLogarithmic) {
  // ln(2.72) - 1 ~ 6.3e-4: M is huge but finite and grows with log k.
  const double m1 = ofa_big_m(2.72, 1000);
  const double m2 = ofa_big_m(2.72, 1000000);
  EXPECT_GT(m1, 0.0);
  EXPECT_GT(m2, m1);
  EXPECT_LT(m2 / m1, 3.0);  // logarithmic growth
  EXPECT_THROW(ofa_big_m(2.0, 1000), ContractViolation);
}

TEST(Bounds, LogFailsAnalysisRatiosMatchTableOne) {
  EXPECT_NEAR(log_fails_analysis_ratio(0.5), 7.8, 0.05);
  EXPECT_NEAR(log_fails_analysis_ratio(0.1), 4.4, 0.05);
  EXPECT_THROW(log_fails_analysis_ratio(0.0), ContractViolation);
}

TEST(Bounds, LogLogShapeGrowsSlowly) {
  const double s1 = loglog_ratio_shape(1000);
  const double s2 = loglog_ratio_shape(10000000);
  EXPECT_GT(s2, s1);
  EXPECT_LT(s2, 2.0 * s1);  // sub-logarithmic growth
  EXPECT_THROW(loglog_ratio_shape(8), ContractViolation);
}

TEST(Bounds, AnalysisCellsMatchPaper) {
  EXPECT_EQ(analysis_cell("Log-Fails Adaptive (2)"), "7.8");
  EXPECT_EQ(analysis_cell("Log-Fails Adaptive (10)"), "4.4");
  EXPECT_EQ(analysis_cell("One-Fail Adaptive"), "7.4");
  EXPECT_EQ(analysis_cell("Exp Back-on/Back-off"), "14.9");
  EXPECT_EQ(analysis_cell("LogLog-Iterated Back-off"),
            "Th(lglg k/lglglg k)");
  EXPECT_EQ(analysis_cell("unknown protocol"), "-");
}

}  // namespace
}  // namespace ucr

#include "channel/trace.hpp"

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(SlotTrace, StartsEmpty) {
  SlotTrace trace(4);
  EXPECT_TRUE(trace.entries().empty());
  EXPECT_FALSE(trace.truncated());
  EXPECT_EQ(trace.capacity(), 4u);
}

TEST(SlotTrace, RecordsUpToCapacity) {
  SlotTrace trace(2);
  trace.record(0, SlotOutcome::kSilence, 0);
  trace.record(1, SlotOutcome::kSuccess, 1);
  EXPECT_EQ(trace.entries().size(), 2u);
  EXPECT_FALSE(trace.truncated());
}

TEST(SlotTrace, TruncatesSilentlyBeyondCapacity) {
  SlotTrace trace(2);
  trace.record(0, SlotOutcome::kSilence, 0);
  trace.record(1, SlotOutcome::kSuccess, 1);
  trace.record(2, SlotOutcome::kCollision, 3);
  EXPECT_EQ(trace.entries().size(), 2u);
  EXPECT_TRUE(trace.truncated());
  // The retained entries are the earliest ones.
  EXPECT_EQ(trace.entries()[1].slot, 1u);
}

TEST(SlotTrace, ZeroCapacityRecordsNothing) {
  SlotTrace trace(0);
  trace.record(0, SlotOutcome::kSuccess, 1);
  EXPECT_TRUE(trace.entries().empty());
  EXPECT_TRUE(trace.truncated());
}

}  // namespace
}  // namespace ucr

#include "channel/slot.hpp"

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(ResolveOutcome, TruthTable) {
  EXPECT_EQ(resolve_outcome(0), SlotOutcome::kSilence);
  EXPECT_EQ(resolve_outcome(1), SlotOutcome::kSuccess);
  EXPECT_EQ(resolve_outcome(2), SlotOutcome::kCollision);
  EXPECT_EQ(resolve_outcome(1000000), SlotOutcome::kCollision);
}

TEST(ToString, Names) {
  EXPECT_EQ(to_string(SlotOutcome::kSilence), "silence");
  EXPECT_EQ(to_string(SlotOutcome::kSuccess), "success");
  EXPECT_EQ(to_string(SlotOutcome::kCollision), "collision");
}

TEST(MakeFeedback, SuccessForTransmitter) {
  const Feedback fb = make_feedback(SlotOutcome::kSuccess, true);
  EXPECT_TRUE(fb.delivered_mine);
  EXPECT_FALSE(fb.heard_delivery);
  EXPECT_TRUE(fb.transmitted);
}

TEST(MakeFeedback, SuccessForListener) {
  const Feedback fb = make_feedback(SlotOutcome::kSuccess, false);
  EXPECT_FALSE(fb.delivered_mine);
  EXPECT_TRUE(fb.heard_delivery);
  EXPECT_FALSE(fb.transmitted);
}

TEST(MakeFeedback, SilenceAndCollisionIndistinguishable) {
  // The model has no collision detection: a station that did not succeed
  // observes exactly the same thing after a silent slot and a collision.
  for (const bool transmitted : {false, true}) {
    const Feedback silent = make_feedback(SlotOutcome::kSilence, transmitted);
    const Feedback collided =
        make_feedback(SlotOutcome::kCollision, transmitted);
    EXPECT_EQ(silent.heard_delivery, collided.heard_delivery);
    EXPECT_EQ(silent.delivered_mine, collided.delivered_mine);
    EXPECT_FALSE(silent.heard_delivery);
    EXPECT_FALSE(silent.delivered_mine);
  }
}

TEST(MakeFeedback, CollisionParticipantLearnsNothingButOwnAction) {
  const Feedback fb = make_feedback(SlotOutcome::kCollision, true);
  EXPECT_TRUE(fb.transmitted);
  EXPECT_FALSE(fb.delivered_mine);
  EXPECT_FALSE(fb.heard_delivery);
  EXPECT_FALSE(fb.heard_collision);  // the paper's model: no CD
}

TEST(MakeFeedback, CollisionDetectionModeFlagsCollisions) {
  const Feedback fb =
      make_feedback(SlotOutcome::kCollision, false,
                    /*collision_detection=*/true);
  EXPECT_TRUE(fb.heard_collision);
  EXPECT_FALSE(fb.heard_delivery);
  const Feedback participant =
      make_feedback(SlotOutcome::kCollision, true, true);
  EXPECT_TRUE(participant.heard_collision);
  EXPECT_TRUE(participant.transmitted);
}

TEST(MakeFeedback, CollisionDetectionDoesNotChangeSilenceOrSuccess) {
  const Feedback silent = make_feedback(SlotOutcome::kSilence, false, true);
  EXPECT_FALSE(silent.heard_collision);
  EXPECT_FALSE(silent.heard_delivery);
  const Feedback success = make_feedback(SlotOutcome::kSuccess, false, true);
  EXPECT_FALSE(success.heard_collision);
  EXPECT_TRUE(success.heard_delivery);
}

}  // namespace
}  // namespace ucr

#include "channel/channel.hpp"

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(Channel, CountsOutcomes) {
  Channel ch;
  EXPECT_EQ(ch.resolve(0), SlotOutcome::kSilence);
  EXPECT_EQ(ch.resolve(1), SlotOutcome::kSuccess);
  EXPECT_EQ(ch.resolve(5), SlotOutcome::kCollision);
  EXPECT_EQ(ch.resolve(1), SlotOutcome::kSuccess);

  const ChannelCounters& c = ch.counters();
  EXPECT_EQ(c.slots, 4u);
  EXPECT_EQ(c.silence, 1u);
  EXPECT_EQ(c.success, 2u);
  EXPECT_EQ(c.collision, 1u);
  EXPECT_EQ(c.transmissions, 7u);
}

TEST(Channel, NowAdvancesPerSlot) {
  Channel ch;
  EXPECT_EQ(ch.now(), 0u);
  ch.resolve(0);
  EXPECT_EQ(ch.now(), 1u);
  ch.resolve(3);
  EXPECT_EQ(ch.now(), 2u);
}

TEST(Channel, TraceRecordsEntries) {
  Channel ch;
  SlotTrace trace(10);
  ch.attach_trace(&trace);
  ch.resolve(0);
  ch.resolve(2);
  ch.resolve(1);

  ASSERT_EQ(trace.entries().size(), 3u);
  EXPECT_EQ(trace.entries()[0].slot, 0u);
  EXPECT_EQ(trace.entries()[0].outcome, SlotOutcome::kSilence);
  EXPECT_EQ(trace.entries()[1].transmitters, 2u);
  EXPECT_EQ(trace.entries()[1].outcome, SlotOutcome::kCollision);
  EXPECT_EQ(trace.entries()[2].slot, 2u);
  EXPECT_EQ(trace.entries()[2].outcome, SlotOutcome::kSuccess);
}

TEST(Channel, DetachTrace) {
  Channel ch;
  SlotTrace trace(10);
  ch.attach_trace(&trace);
  ch.resolve(1);
  ch.attach_trace(nullptr);
  ch.resolve(1);
  EXPECT_EQ(trace.entries().size(), 1u);
}

}  // namespace
}  // namespace ucr

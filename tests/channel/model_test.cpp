#include "channel/model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ucr {
namespace {

TEST(ChannelModel, LabelParseRoundTripsEveryKind) {
  const ChannelModel models[] = {
      ChannelModel::clean(),
      ChannelModel::capture(0.25),
      ChannelModel::jamming(0.75),
      ChannelModel::jam_burst(32, 7),
  };
  for (const ChannelModel& model : models) {
    EXPECT_EQ(ChannelModel::parse(model.label()), model) << model.label();
  }
  EXPECT_EQ(ChannelModel::parse("  capture( 0.25 ) "),
            ChannelModel::capture(0.25));
}

TEST(ChannelModel, ParseRejectsUnknownAndMalformed) {
  EXPECT_THROW(ChannelModel::parse("captur(0.5)"), ContractViolation);
  EXPECT_THROW(ChannelModel::parse("capture"), ContractViolation);
  EXPECT_THROW(ChannelModel::parse("capture(0.5,1)"), ContractViolation);
  EXPECT_THROW(ChannelModel::parse("jam_burst(16)"), ContractViolation);
  EXPECT_THROW(ChannelModel::parse("jamming(nope)"), ContractViolation);
}

TEST(ChannelModel, ValidateRejectsOutOfRangeParameters) {
  EXPECT_THROW(ChannelModel::capture(1.5).validate(), ContractViolation);
  EXPECT_THROW(ChannelModel::capture(-0.1).validate(), ContractViolation);
  EXPECT_THROW(ChannelModel::jamming(2.0).validate(), ContractViolation);
  EXPECT_THROW(ChannelModel::jam_burst(0, 0).validate(), ContractViolation);
  EXPECT_THROW(ChannelModel::jam_burst(4, 5).validate(), ContractViolation);
  EXPECT_NO_THROW(ChannelModel::jam_burst(4, 4).validate());
  EXPECT_NO_THROW(ChannelModel::capture(0.0).validate());
  EXPECT_NO_THROW(ChannelModel::capture(1.0).validate());
}

TEST(ChannelModel, CleanResolveMatchesSlotClassifierAndDrawsNoRandomness) {
  Xoshiro256 rng(7);
  Xoshiro256 untouched(7);
  const ChannelModel clean = ChannelModel::clean();
  EXPECT_EQ(clean.resolve(0, 0, rng), SlotOutcome::kSilence);
  EXPECT_EQ(clean.resolve(1, 1, rng), SlotOutcome::kSuccess);
  EXPECT_EQ(clean.resolve(2, 5, rng), SlotOutcome::kCollision);
  // The clean model must not consume RNG state: bit-identity of every
  // pre-channel-layer run depends on it.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(ChannelModel, CaptureEdgeProbabilities) {
  Xoshiro256 rng(11);
  const ChannelModel always = ChannelModel::capture(1.0);
  const ChannelModel never = ChannelModel::capture(0.0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(always.resolve(i, 3, rng), SlotOutcome::kSuccess);
    EXPECT_EQ(never.resolve(i, 3, rng), SlotOutcome::kCollision);
    // Capture never touches silence or singleton slots.
    EXPECT_EQ(always.resolve(i, 0, rng), SlotOutcome::kSilence);
    EXPECT_EQ(always.resolve(i, 1, rng), SlotOutcome::kSuccess);
  }
}

TEST(ChannelModel, JammedSlotsReadCollisionForEveryTransmitterCount) {
  Xoshiro256 rng(13);
  const ChannelModel jam = ChannelModel::jamming(1.0);
  for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 9ULL}) {
    EXPECT_EQ(jam.resolve(0, n, rng), SlotOutcome::kCollision);
  }
  const ChannelModel quiet = ChannelModel::jamming(0.0);
  EXPECT_EQ(quiet.resolve(0, 0, rng), SlotOutcome::kSilence);
  EXPECT_EQ(quiet.resolve(0, 1, rng), SlotOutcome::kSuccess);
}

TEST(ChannelModel, JamBurstIsDeterministicAndPeriodic) {
  Xoshiro256 rng(17);
  Xoshiro256 untouched(17);
  const ChannelModel burst = ChannelModel::jam_burst(8, 3);
  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_EQ(burst.slot_jammed(t, rng), t % 8 < 3) << "slot " << t;
    const SlotOutcome expected =
        t % 8 < 3 ? SlotOutcome::kCollision : SlotOutcome::kSuccess;
    EXPECT_EQ(burst.resolve(t, 1, rng), expected) << "slot " << t;
  }
  // Deterministic jamming draws no randomness either.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

}  // namespace
}  // namespace ucr

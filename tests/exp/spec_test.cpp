#include "exp/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "protocols/known_k.hpp"
#include "sim/observer.hpp"

namespace ucr::exp {
namespace {

TEST(ArrivalSpec, LabelsNameTheWorkload) {
  EXPECT_EQ(ArrivalSpec::batch().label(), "batch");
  EXPECT_EQ(ArrivalSpec::poisson(0.1).label(), "poisson(0.100000)");
  EXPECT_EQ(ArrivalSpec::burst(4, 64).label(), "burst(4,64)");
}

TEST(ArrivalSpec, BatchMaterializesAllAtSlotZero) {
  const ArrivalPattern pattern = ArrivalSpec::batch().materialize(5, 1, 0);
  ASSERT_EQ(pattern.size(), 5u);
  for (const auto slot : pattern) EXPECT_EQ(slot, 0u);
}

TEST(ArrivalSpec, BurstMaterializesExactlyKMessages) {
  // 10 messages over 4 bursts: sizes 3,3,2,2 — the remainder spreads over
  // the leading bursts so every k is representable.
  const ArrivalPattern pattern = ArrivalSpec::burst(4, 7).materialize(10, 1, 0);
  ASSERT_EQ(pattern.size(), 10u);
  EXPECT_TRUE(std::is_sorted(pattern.begin(), pattern.end()));
  EXPECT_EQ(pattern.front(), 0u);
  EXPECT_EQ(pattern.back(), 21u);  // 4th burst at slot 3 * gap
  EXPECT_EQ(std::count(pattern.begin(), pattern.end(), 0u), 3);
  EXPECT_EQ(std::count(pattern.begin(), pattern.end(), 21u), 2);
}

TEST(ArrivalSpec, PoissonIsDeterministicPerStream) {
  const ArrivalSpec spec = ArrivalSpec::poisson(0.2);
  const ArrivalPattern a = spec.materialize(50, 7, 123);
  const ArrivalPattern b = spec.materialize(50, 7, 123);
  const ArrivalPattern c = spec.materialize(50, 7, 124);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different stream => different draw
  ASSERT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(ArrivalSpec, ParsesTheLabelSyntax) {
  EXPECT_EQ(ArrivalSpec::parse("batch"), ArrivalSpec::batch());
  EXPECT_EQ(ArrivalSpec::parse("poisson(0.25)"), ArrivalSpec::poisson(0.25));
  EXPECT_EQ(ArrivalSpec::parse("burst(4,64)"), ArrivalSpec::burst(4, 64));
  EXPECT_EQ(ArrivalSpec::parse(" poisson( 0.5 ) "),
            ArrivalSpec::poisson(0.5));
  EXPECT_EQ(ArrivalSpec::parse("burst( 2 , 8 )"), ArrivalSpec::burst(2, 8));
}

TEST(ArrivalSpec, ParseRejectsMalformedText) {
  EXPECT_THROW(ArrivalSpec::parse(""), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("poisson"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("poisson()"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("poisson(0)"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("poisson(x)"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("burst(4)"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("burst(0,8)"), ContractViolation);
  EXPECT_THROW(ArrivalSpec::parse("burst(4,64"), ContractViolation);
  try {
    ArrivalSpec::parse("possion(0.1)");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'poisson'"),
              std::string::npos)
        << e.what();
  }
}

TEST(ExperimentSpec, EqualityComparesValuesAndFactoriesByName) {
  ExperimentSpec a;
  a.with_protocol("One-Fail Adaptive").with_ks({10, 20});
  a.with_arrival(ArrivalSpec::poisson(0.1));
  ExperimentSpec b = a;
  EXPECT_EQ(a, b);

  b.seed = a.seed + 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.arrivals[0].lambda = 0.2;
  EXPECT_FALSE(a == b);
  b = a;
  b.engine_options.record_latencies = true;
  EXPECT_FALSE(a == b);

  // Factories compare by name: same name, different callable => equal.
  ExperimentSpec f1;
  ExperimentSpec f2;
  f1.with_factory(paper_protocols()[2]).with_ks({10});
  f2.with_factory(paper_protocols()[2]).with_ks({10});
  EXPECT_EQ(f1, f2);
  f2.protocols[0].name = "renamed";
  EXPECT_FALSE(f1 == f2);
  // A name in protocol_names is not a factory of the same name.
  ExperimentSpec by_name;
  by_name.with_protocol(paper_protocols()[2].name).with_ks({10});
  EXPECT_FALSE(f1 == by_name);
}

TEST(ArrivalSpec, RejectsBadParameters) {
  EXPECT_THROW(ArrivalSpec::poisson(0.0).validate(), ContractViolation);
  EXPECT_THROW(ArrivalSpec::poisson(-1.0).validate(), ContractViolation);
  EXPECT_THROW(ArrivalSpec::burst(0, 8).validate(), ContractViolation);
}

TEST(ShardSpec, ParsesIndexSlashCount) {
  const ShardSpec shard = ShardSpec::parse("2/5");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 5u);
  EXPECT_EQ(shard.label(), "2/5");
  EXPECT_FALSE(shard.is_whole());
  EXPECT_TRUE(ShardSpec::parse("0/1").is_whole());
}

TEST(ShardSpec, RejectsMalformedText) {
  EXPECT_THROW(ShardSpec::parse(""), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("3"), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("a/b"), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("1/"), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("/4"), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("-1/4"), ContractViolation);
  EXPECT_THROW(ShardSpec::parse("4/4"), ContractViolation);  // index range
  EXPECT_THROW(ShardSpec::parse("0/0"), ContractViolation);  // empty count
}

TEST(Compile, FlattensProtocolMajorGrid) {
  ExperimentSpec spec;
  spec.runs = 2;
  spec.with_ks({10, 20});
  spec.with_arrival(ArrivalSpec::batch());
  spec.with_arrival(ArrivalSpec::burst(2, 8));
  for (const auto& p : paper_protocols()) spec.with_factory(p);

  const ExperimentPlan plan = compile(spec);
  ASSERT_EQ(plan.total_cells, 5u * 2u * 2u);
  ASSERT_EQ(plan.points.size(), plan.total_cells);
  ASSERT_EQ(plan.cells.size(), plan.total_cells);
  // Grid order: protocol-major, then k, then arrival.
  EXPECT_EQ(plan.cells[0].protocol, "Log-Fails Adaptive (2)");
  EXPECT_EQ(plan.cells[0].k, 10u);
  EXPECT_EQ(plan.cells[0].arrival.label(), "batch");
  EXPECT_FALSE(plan.cells[0].node_engine());
  EXPECT_EQ(plan.cells[0].engine, EngineMode::kFair);
  EXPECT_EQ(plan.cells[1].arrival.label(), "burst(2,8)");
  EXPECT_TRUE(plan.cells[1].node_engine());  // non-batch => per-node engine
  EXPECT_EQ(plan.cells[2].k, 20u);
  EXPECT_EQ(plan.cells[4].protocol, "Log-Fails Adaptive (10)");
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_EQ(plan.cells[i].index, i);
  }
}

TEST(Compile, ResolvesNamesThroughCatalogue) {
  ExperimentSpec spec;
  spec.with_protocol("one-fail adaptive");  // case-insensitive fallback
  spec.with_ks({10});
  const ExperimentPlan plan = compile(spec, all_protocols());
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].protocol, "One-Fail Adaptive");
}

TEST(Compile, UnknownProtocolGetsDidYouMean) {
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptve");
  spec.with_ks({10});
  try {
    compile(spec, all_protocols());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("One-Fail Adaptive"),
              std::string::npos)
        << e.what();
  }
}

TEST(Compile, PaperKSweepFromKMax) {
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_paper_ks(1000);
  const ExperimentPlan plan = compile(spec, all_protocols());
  ASSERT_EQ(plan.cells.size(), 3u);
  EXPECT_EQ(plan.cells[0].k, 10u);
  EXPECT_EQ(plan.cells[1].k, 100u);
  EXPECT_EQ(plan.cells[2].k, 1000u);
}

TEST(Compile, RejectsMalformedSpecs) {
  const auto catalogue = all_protocols();
  {
    ExperimentSpec spec;  // no protocols
    spec.with_ks({10});
    EXPECT_THROW(compile(spec, catalogue), ContractViolation);
  }
  {
    ExperimentSpec spec;  // no k grid and no usable k_max
    spec.with_protocol("One-Fail Adaptive");
    EXPECT_THROW(compile(spec, catalogue), ContractViolation);
  }
  {
    ExperimentSpec spec;  // k == 0 cell
    spec.with_protocol("One-Fail Adaptive").with_ks({10, 0});
    EXPECT_THROW(compile(spec, catalogue), ContractViolation);
  }
  {
    ExperimentSpec spec;  // runs == 0
    spec.with_protocol("One-Fail Adaptive").with_ks({10});
    spec.runs = 0;
    EXPECT_THROW(compile(spec, catalogue), ContractViolation);
  }
  {
    ExperimentSpec spec;  // invalid shard
    spec.with_protocol("One-Fail Adaptive").with_ks({10});
    spec.shard.index = 3;
    spec.shard.count = 3;
    EXPECT_THROW(compile(spec, catalogue), ContractViolation);
  }
}

TEST(Compile, RejectsObserverOnParallelGrids) {
  DownsampledSeries series(1);
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10, 20});
  spec.runs = 1;
  spec.engine_options.observer = &series;
  EXPECT_THROW(compile(spec, all_protocols()), ContractViolation);

  spec.with_ks({10});
  spec.runs = 2;
  EXPECT_THROW(compile(spec, all_protocols()), ContractViolation);

  spec.runs = 1;  // single cell, single run: allowed
  EXPECT_NO_THROW(compile(spec, all_protocols()));
}

TEST(Compile, ShardBlocksPartitionTheGrid) {
  // 7 cells over 3 shards: contiguous blocks [0,2) [2,4) [4,7).
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive");
  spec.with_ks({10, 20, 30, 40, 50, 60, 70});

  std::vector<std::size_t> seen;
  for (std::uint64_t shard = 0; shard < 3; ++shard) {
    spec.shard.index = shard;
    spec.shard.count = 3;
    const ExperimentPlan plan = compile(spec, all_protocols());
    EXPECT_EQ(plan.total_cells, 7u);
    for (const CellInfo& cell : plan.cells) seen.push_back(cell.index);
  }
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);  // concatenated shards == the whole grid, in order
  }
}

TEST(Compile, BatchedModeIsRecordedOnCells) {
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10});
  spec.engine = EngineMode::kBatched;
  const ExperimentPlan plan = compile(spec, all_protocols());
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].engine, EngineMode::kBatched);
  EXPECT_FALSE(plan.cells[0].node_engine());
  EXPECT_TRUE(plan.cells[0].batched_engine());
  EXPECT_TRUE(plan.points[0].options.batched);
}

TEST(Compile, BatchedModeAcceleratesNonBatchCellsViaNodeBatched) {
  // One spec-level switch accelerates the whole grid: under kBatched,
  // batch cells take the batched fair engine and non-batch cells the
  // batched node engine (they used to be rejected outright).
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10});
  spec.engine = EngineMode::kBatched;
  spec.with_arrival(ArrivalSpec::batch());
  spec.with_arrival(ArrivalSpec::poisson(0.1));
  const ExperimentPlan plan = compile(spec, all_protocols());
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].engine, EngineMode::kBatched);
  EXPECT_EQ(plan.cells[1].engine, EngineMode::kNodeBatched);
  EXPECT_TRUE(plan.cells[1].node_engine());
  EXPECT_TRUE(plan.cells[1].batched_engine());
  EXPECT_TRUE(plan.points[0].options.batched);
  EXPECT_TRUE(plan.points[1].options.batched);
  EXPECT_STREQ(engine_mode_name(plan.cells[1].engine), "node_batched");
}

TEST(Compile, NodeBatchedModeForcesEveryCellPerStation) {
  // kNodeBatched sends even batch-arrival cells through the batched node
  // engine (the ground-truth engine's fast path on the paper's workload).
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10});
  spec.engine = EngineMode::kNodeBatched;
  spec.with_arrival(ArrivalSpec::batch());
  const ExperimentPlan plan = compile(spec, all_protocols());
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].engine, EngineMode::kNodeBatched);
  EXPECT_TRUE(plan.cells[0].node_engine());
  EXPECT_TRUE(plan.points[0].options.batched);
  ASSERT_FALSE(plan.points[0].arrivals.empty());  // a per-node work item

  // Observers stay incompatible with every batched mode.
  DownsampledSeries series(1);
  spec.runs = 1;
  spec.engine_options.observer = &series;
  EXPECT_THROW(compile(spec, all_protocols()), ContractViolation);
}

TEST(Compile, PoissonWorkloadsArePairedAcrossProtocols) {
  // Protocols of one sweep must be compared on identical workload draws:
  // the arrival substream is keyed by the (k, arrival) pair and the run,
  // never by the protocol axis.
  ExperimentSpec spec;
  spec.runs = 3;
  spec.with_ks({20, 40});
  spec.with_arrival(ArrivalSpec::poisson(0.3));
  spec.with_factory(paper_protocols()[2]);
  spec.with_factory(paper_protocols()[3]);
  const ExperimentPlan plan = compile(spec);
  ASSERT_EQ(plan.points.size(), 4u);  // 2 protocols x 2 ks
  for (std::uint64_t run = 0; run < spec.runs; ++run) {
    // Same k, different protocol: identical pattern.
    EXPECT_EQ(plan.points[0].arrivals_per_run(run),
              plan.points[2].arrivals_per_run(run));
    EXPECT_EQ(plan.points[1].arrivals_per_run(run),
              plan.points[3].arrivals_per_run(run));
  }
  // Different k: different substream block.
  EXPECT_NE(plan.points[0].arrivals_per_run(0),
            plan.points[1].arrivals_per_run(0));
}

TEST(Compile, MissingEngineViewFailsUpFront) {
  // A factory with only a fair view cannot serve node cells.
  ProtocolFactory fair_only = make_known_k_factory();
  fair_only.node = nullptr;
  ExperimentSpec spec;
  spec.with_factory(fair_only).with_ks({10});
  spec.engine = EngineMode::kNode;
  EXPECT_THROW(compile(spec), ContractViolation);

  spec.engine = EngineMode::kFair;
  EXPECT_NO_THROW(compile(spec));
}

}  // namespace
}  // namespace ucr::exp

// Shard determinism — the contract cross-machine sweeps stand on:
// concatenating the sink output of shards 0..N-1 reproduces the unsharded
// sweep byte for byte, for any thread count and for heterogeneous grids
// (Poisson cells re-sample per run from spec-derived substreams, so a
// shard draws exactly the workloads the unsharded run would).
#include <gtest/gtest.h>

#include <sstream>

#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"

namespace ucr::exp {
namespace {

/// A grid with fair, burst and per-run-Poisson cells plus a skewed k axis,
/// so shard blocks cut through every cell flavour.
ExperimentSpec mixed_spec() {
  ExperimentSpec spec;
  spec.runs = 2;
  spec.seed = 4242;
  // Bounded cap: One-Fail Adaptive can livelock under sustained arrivals;
  // capped (incomplete) runs keep the test fast and stay deterministic.
  spec.engine_options.max_slots = 20000;
  spec.with_ks({10, 30, 120});
  spec.with_arrival(ArrivalSpec::batch());
  spec.with_arrival(ArrivalSpec::poisson(0.25));
  spec.with_arrival(ArrivalSpec::burst(3, 16));
  const auto protocols = paper_protocols();
  spec.with_factory(protocols[2]);  // One-Fail Adaptive
  spec.with_factory(protocols[3]);  // Exp Back-on/Back-off
  return spec;
}

std::string run_csv(const ExperimentSpec& spec, unsigned threads) {
  std::ostringstream out;
  CsvStreamSink sink(out);
  run(compile(spec), {&sink}, {threads});
  return out.str();
}

std::string run_jsonl(const ExperimentSpec& spec, unsigned threads) {
  std::ostringstream out;
  JsonlSink sink(out);
  run(compile(spec), {&sink}, {threads});
  return out.str();
}

TEST(ShardDeterminism, ConcatenatedCsvShardsMatchUnshardedRun) {
  ExperimentSpec spec = mixed_spec();
  const std::string whole = run_csv(spec, 1);
  ASSERT_FALSE(whole.empty());

  for (const unsigned threads : {1u, 2u, 5u}) {
    std::string concatenated;
    for (std::uint64_t shard = 0; shard < 3; ++shard) {
      spec.shard.index = shard;
      spec.shard.count = 3;
      concatenated += run_csv(spec, threads);
    }
    EXPECT_EQ(concatenated, whole) << "threads=" << threads;
  }
}

TEST(ShardDeterminism, ConcatenatedJsonlShardsMatchUnshardedRun) {
  ExperimentSpec spec = mixed_spec();
  const std::string whole = run_jsonl(spec, 2);

  for (const unsigned threads : {1u, 3u}) {
    std::string concatenated;
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      spec.shard.index = shard;
      spec.shard.count = 4;
      concatenated += run_jsonl(spec, threads);
    }
    EXPECT_EQ(concatenated, whole) << "threads=" << threads;
  }
}

TEST(ShardDeterminism, ThreadCountNeverChangesUnshardedBytes) {
  const ExperimentSpec spec = mixed_spec();
  const std::string base = run_csv(spec, 1);
  EXPECT_EQ(run_csv(spec, 2), base);
  EXPECT_EQ(run_csv(spec, 5), base);
}

TEST(ShardDeterminism, MoreShardsThanCellsStillConcatenatesExactly) {
  ExperimentSpec spec;
  spec.runs = 2;
  spec.with_ks({10, 20});
  spec.with_factory(paper_protocols()[2]);
  const std::string whole = run_csv(spec, 1);

  std::string concatenated;
  for (std::uint64_t shard = 0; shard < 5; ++shard) {
    spec.shard.index = shard;
    spec.shard.count = 5;  // 2 cells over 5 shards: most shards are empty
    concatenated += run_csv(spec, 1);
  }
  EXPECT_EQ(concatenated, whole);
}

}  // namespace
}  // namespace ucr::exp

// The textual spec contract: exact round trip (parse_spec(to_text(s)) ==
// s) for hand-built, randomized and every shipped specs/*.spec
// description; loud, line-numbered, did-you-mean errors on malformed
// input; and the shard/threads/format-invariant spec_hash the sinks stamp
// on archived rows.
#include "exp/spec_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"

namespace ucr::exp {
namespace {

std::string what_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

TEST(SpecIo, DefaultSpecRoundTripsThroughCanonicalText) {
  const SpecFile file;
  const SpecFile back = parse_spec(to_text(file));
  EXPECT_EQ(back, file);
  // The canonical text is a fixed point of parse -> to_text.
  EXPECT_EQ(to_text(back), to_text(file));
}

TEST(SpecIo, FullyPopulatedSpecRoundTripsExactly) {
  SpecFile file;
  file.spec.with_protocol("One-Fail Adaptive")
      .with_protocol("Exp Back-on/Back-off")
      .with_ks({10, 500, 123456})
      .with_arrival(ArrivalSpec::batch())
      .with_arrival(ArrivalSpec::poisson(0.1))
      .with_arrival(ArrivalSpec::burst(7, 129))
      .with_arrival(ArrivalSpec::schedule({0, 0, 4, 4, 90}))
      .with_arrival(ArrivalSpec::mmpp(0.75, 0.01, 64))
      .with_arrival(ArrivalSpec::pareto(1.25, 2.5))
      .with_channel(ChannelModel::clean())
      .with_channel(ChannelModel::capture(0.35))
      .with_channel(ChannelModel::jamming(0.05))
      .with_channel(ChannelModel::jam_burst(24, 6));
  file.spec.runs = 42;
  file.spec.seed = 99;
  file.spec.engine = EngineMode::kNodeBatched;
  file.spec.engine_options.max_slots = 12345;
  file.spec.engine_options.record_deliveries = true;
  file.spec.engine_options.record_latencies = true;
  file.spec.engine_options.collision_detection = true;
  file.spec.shard = ShardSpec::parse("3/7");
  file.threads = 12;
  file.format = OutputFormat::kJsonl;

  const SpecFile back = parse_spec(to_text(file));
  EXPECT_EQ(back, file);
}

TEST(SpecIo, AwkwardPoissonRatesRoundTripBitForBit) {
  // Rates the 6-decimal display label would destroy: the serialization
  // uses shortest-round-trip notation instead.
  for (const double lambda : {1e-7, 0.1, 1.0 / 3.0, 0.2500000000000001}) {
    SpecFile file;
    file.spec.with_protocol("x").with_ks({10}).with_arrival(
        ArrivalSpec::poisson(lambda));
    const SpecFile back = parse_spec(to_text(file));
    ASSERT_EQ(back.spec.arrivals.size(), 1u);
    EXPECT_EQ(back.spec.arrivals[0].lambda, lambda);
    EXPECT_EQ(back, file);
  }
}

/// One random point in the whole expressible spec space — shared by the
/// plain round-trip fuzz and the overlay fuzz.
SpecFile random_spec_file(Xoshiro256& rng) {
  const auto u64 = [&rng](std::uint64_t bound) {
    return rng.next_u64() % bound;
  };
  {
    SpecFile file;
    for (std::uint64_t i = 0, n = u64(4); i < n; ++i) {
      file.spec.with_protocol("protocol " + std::to_string(u64(100)));
    }
    if (u64(2) == 0) {
      for (std::uint64_t i = 0, n = 1 + u64(5); i < n; ++i) {
        file.spec.ks.push_back(1 + u64(1000000));
      }
    } else {
      file.spec.k_max = 10 + u64(10000000);
    }
    for (std::uint64_t i = 0, n = u64(4); i < n; ++i) {
      switch (u64(6)) {
        case 0:
          file.spec.with_arrival(ArrivalSpec::batch());
          break;
        case 1:
          file.spec.with_arrival(ArrivalSpec::poisson(rng.next_double()));
          break;
        case 2:
          file.spec.with_arrival(
              ArrivalSpec::burst(1 + u64(16), u64(1000)));
          break;
        case 3: {
          std::vector<std::uint64_t> slots;
          std::uint64_t slot = 0;
          for (std::uint64_t s = 0, m = 1 + u64(6); s < m; ++s) {
            slot += u64(20);  // non-decreasing by construction
            slots.push_back(slot);
          }
          file.spec.with_arrival(ArrivalSpec::schedule(std::move(slots)));
          break;
        }
        case 4:
          file.spec.with_arrival(ArrivalSpec::mmpp(
              rng.next_double() + 1e-9, rng.next_double(), 1 + u64(500)));
          break;
        default:
          file.spec.with_arrival(ArrivalSpec::pareto(
              rng.next_double() + 1e-9, rng.next_double() + 1e-9));
      }
    }
    for (std::uint64_t i = 0, n = u64(3); i < n; ++i) {
      switch (u64(4)) {
        case 0:
          file.spec.with_channel(ChannelModel::clean());
          break;
        case 1:
          file.spec.with_channel(ChannelModel::capture(rng.next_double()));
          break;
        case 2:
          file.spec.with_channel(ChannelModel::jamming(rng.next_double()));
          break;
        default: {
          const std::uint64_t period = 1 + u64(64);
          file.spec.with_channel(
              ChannelModel::jam_burst(period, u64(period + 1)));
        }
      }
    }
    file.spec.runs = 1 + u64(100);
    file.spec.seed = rng.next_u64();
    file.spec.engine = static_cast<EngineMode>(u64(4));
    file.spec.engine_options.max_slots = u64(2) ? u64(1000000) : 0;
    file.spec.engine_options.record_deliveries = u64(2) != 0;
    file.spec.engine_options.record_latencies = u64(2) != 0;
    file.spec.engine_options.collision_detection = u64(2) != 0;
    file.spec.shard.count = 1 + u64(8);
    file.spec.shard.index = u64(file.spec.shard.count);
    file.threads = static_cast<unsigned>(u64(17));
    file.format = static_cast<OutputFormat>(u64(3));
    return file;
  }
}

TEST(SpecIo, RandomizedSpecsRoundTripExactly) {
  // Deterministic fuzz over the whole expressible space.
  Xoshiro256 rng(20260728);
  for (int trial = 0; trial < 200; ++trial) {
    const SpecFile file = random_spec_file(rng);
    const std::string text = to_text(file);
    const SpecFile back = parse_spec(text);
    ASSERT_EQ(back, file) << "trial " << trial << "\n" << text;
    EXPECT_EQ(to_text(back), text) << "trial " << trial;
  }
}

TEST(SpecIo, AcceptsCommentsBlankLinesAndLooseWhitespace) {
  const SpecFile file = parse_spec(
      "# a whole-line comment\n"
      "\n"
      "  spec_version=1   # trailing comment\n"
      "protocols   =  One-Fail Adaptive ,   Exp Back-on/Back-off\n"
      "\tks = 10 ,20\n"
      "arrival =  poisson( 0.25 )\n"
      "runs=3");
  ASSERT_EQ(file.spec.protocol_names.size(), 2u);
  EXPECT_EQ(file.spec.protocol_names[0], "One-Fail Adaptive");
  EXPECT_EQ(file.spec.protocol_names[1], "Exp Back-on/Back-off");
  EXPECT_EQ(file.spec.ks, (std::vector<std::uint64_t>{10, 20}));
  ASSERT_EQ(file.spec.arrivals.size(), 1u);
  EXPECT_EQ(file.spec.arrivals[0].lambda, 0.25);
  EXPECT_EQ(file.spec.runs, 3u);
}

TEST(SpecIo, UnknownKeyGetsDidYouMeanWithLineNumber) {
  const std::string what = what_of(
      [] { (void)parse_spec("spec_version = 1\nkmaks = 100\n"); });
  EXPECT_NE(what.find("spec line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("did you mean 'kmax'"), std::string::npos) << what;
}

TEST(SpecIo, MisspelledEnumValuesGetDidYouMean) {
  const std::string engine = what_of(
      [] { (void)parse_spec("spec_version = 1\nengine = node_bathced\n"); });
  EXPECT_NE(engine.find("did you mean 'node_batched'"), std::string::npos)
      << engine;
  const std::string format = what_of(
      [] { (void)parse_spec("spec_version = 1\nformat = jsnol\n"); });
  EXPECT_NE(format.find("did you mean 'jsonl'"), std::string::npos) << format;
  const std::string arrival = what_of(
      [] { (void)parse_spec("spec_version = 1\narrival = possion(0.1)\n"); });
  EXPECT_NE(arrival.find("did you mean 'poisson'"), std::string::npos)
      << arrival;
  EXPECT_NE(arrival.find("spec line 2"), std::string::npos) << arrival;
}

TEST(SpecIo, RejectsMalformedInput) {
  // Missing / unsupported version.
  EXPECT_THROW((void)parse_spec(""), ContractViolation);
  EXPECT_THROW((void)parse_spec("runs = 3\n"), ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 2\n"), ContractViolation);
  // Duplicate scalar key (arrival stays repeatable).
  EXPECT_THROW((void)parse_spec("spec_version = 1\nruns = 1\nruns = 2\n"),
               ContractViolation);
  EXPECT_NO_THROW((void)parse_spec(
      "spec_version = 1\narrival = batch\narrival = burst(2,4)\n"));
  // ks and kmax are mutually exclusive.
  EXPECT_THROW((void)parse_spec("spec_version = 1\nks = 10\nkmax = 100\n"),
               ContractViolation);
  // Structurally broken lines.
  EXPECT_THROW((void)parse_spec("spec_version = 1\nno equals sign\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\n= 3\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\nruns =\n"),
               ContractViolation);
  // Malformed values, with the line named.
  const std::string what = what_of(
      [] { (void)parse_spec("spec_version = 1\n\nruns = ten\n"); });
  EXPECT_NE(what.find("spec line 3"), std::string::npos) << what;
  EXPECT_THROW((void)parse_spec("spec_version = 1\nks = 10,,20\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\nshard = 4/4\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\narrival = poisson(0)\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\narrival = burst(0,5)\n"),
               ContractViolation);
  EXPECT_THROW(
      (void)parse_spec("spec_version = 1\nrecord_latencies = maybe\n"),
      ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\nthreads = -2\n"),
               ContractViolation);
  // New-kind parameter validation fires at parse time too.
  EXPECT_THROW((void)parse_spec("spec_version = 1\narrival = schedule()\n"),
               ContractViolation);
  EXPECT_THROW(
      (void)parse_spec("spec_version = 1\narrival = mmpp(0,0.1,10)\n"),
      ContractViolation);
  EXPECT_THROW(
      (void)parse_spec("spec_version = 1\narrival = mmpp(0.5,0.1)\n"),
      ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\narrival = pareto(1.5,0)\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_spec("spec_version = 1\nchannel = capture(1.5)\n"),
               ContractViolation);
  EXPECT_THROW(
      (void)parse_spec("spec_version = 1\nchannel = jam_burst(4,5)\n"),
      ContractViolation);
  // channel repeats like arrival.
  EXPECT_NO_THROW((void)parse_spec(
      "spec_version = 1\nchannel = clean\nchannel = capture(0.5)\n"));
}

TEST(SpecIo, MalformedAdversarialSchedulesFailLoudlyWithLineNumbers) {
  // An unsorted schedule is the classic hand-editing mistake; the error
  // names the offending slot, its position, and the spec line.
  const std::string what = what_of([] {
    (void)parse_spec(
        "spec_version = 1\n"
        "runs = 2\n"
        "arrival = schedule(0,5,3,9)\n");
  });
  EXPECT_NE(what.find("spec line 3"), std::string::npos) << what;
  EXPECT_NE(what.find("non-decreasing"), std::string::npos) << what;
  EXPECT_NE(what.find("slot 3"), std::string::npos) << what;
  EXPECT_NE(what.find("position 2"), std::string::npos) << what;

  const std::string junk = what_of([] {
    (void)parse_spec("spec_version = 1\narrival = schedule(0,x,2)\n");
  });
  EXPECT_NE(junk.find("spec line 2"), std::string::npos) << junk;

  const std::string chan = what_of([] {
    (void)parse_spec("spec_version = 1\nchannel = capturr(0.5)\n");
  });
  EXPECT_NE(chan.find("spec line 2"), std::string::npos) << chan;
  EXPECT_NE(chan.find("capture"), std::string::npos) << chan;
}

TEST(SpecIo, ThreadsZeroMeansAllHardwareThreads) {
  EXPECT_EQ(parse_spec("spec_version = 1\nthreads = 0\n").threads, 0u);
  EXPECT_EQ(parse_spec("spec_version = 1\nthreads = 5\n").threads, 5u);
}

/// A SpecLoader over an in-memory name -> text map.
SpecLoader map_loader(std::map<std::string, std::string> files) {
  return [files = std::move(files)](const std::string& name) {
    const auto it = files.find(name);
    UCR_REQUIRE(it != files.end(), "no such spec '" + name + "'");
    return it->second;
  };
}

const char* const kOverlayBase =
    "spec_version = 1\n"
    "protocols = One-Fail Adaptive, Exp Back-on/Back-off\n"
    "kmax = 100000\n"
    "arrival = batch\n"
    "arrival = poisson(0.1)\n"
    "channel = clean\n"
    "channel = capture(0.35)\n"
    "runs = 10\n"
    "seed = 2011\n"
    "engine = batched\n"
    "format = csv\n";

TEST(SpecOverlay, CompilesToSameCanonicalTextAndHashAsFlattened) {
  const SpecLoader loader = map_loader({{"base.spec", kOverlayBase}});
  const SpecFile overlay = parse_spec(
      "spec_version = 1\n"
      "include = base.spec\n"
      "kmax = 1000\n"
      "runs = 2\n"
      "format = jsonl\n",
      loader);
  const SpecFile flat = parse_spec(
      "spec_version = 1\n"
      "protocols = One-Fail Adaptive, Exp Back-on/Back-off\n"
      "kmax = 1000\n"
      "arrival = batch\n"
      "arrival = poisson(0.1)\n"
      "channel = clean\n"
      "channel = capture(0.35)\n"
      "runs = 2\n"
      "seed = 2011\n"
      "engine = batched\n"
      "format = jsonl\n");
  EXPECT_EQ(overlay, flat);
  EXPECT_EQ(to_text(overlay), to_text(flat));
  EXPECT_EQ(spec_hash(overlay.spec), spec_hash(flat.spec));
}

TEST(SpecOverlay, ExecutionOnlyDeltasKeepTheSpecHash) {
  // shard/threads/format are normalized out of spec_hash, so an overlay
  // touching only them names the same sweep as its base — the exact
  // property the coordinator's shard work units rely on.
  const SpecLoader loader = map_loader({{"base.spec", kOverlayBase}});
  const SpecFile base = parse_spec(kOverlayBase);
  const SpecFile overlay = parse_spec(
      "spec_version = 1\n"
      "include = base.spec\n"
      "shard = 2/5\n"
      "threads = 3\n"
      "format = jsonl\n",
      loader);
  EXPECT_EQ(spec_hash(overlay.spec), spec_hash(base.spec));
  EXPECT_EQ(overlay.spec.shard.label(), "2/5");
  EXPECT_EQ(overlay.threads, 3u);
  EXPECT_EQ(overlay.format, OutputFormat::kJsonl);
}

TEST(SpecOverlay, FirstArrivalOrChannelLineReplacesTheInheritedList) {
  const SpecLoader loader = map_loader({{"base.spec", kOverlayBase}});
  const SpecFile overlay = parse_spec(
      "spec_version = 1\n"
      "include = base.spec\n"
      "arrival = burst(3,7)\n"
      "arrival = batch\n"
      "channel = jamming(0.05)\n",
      loader);
  // Replacement, not append: the base's two arrivals and two channels are
  // gone; the overlay's own lines still accumulate among themselves.
  ASSERT_EQ(overlay.spec.arrivals.size(), 2u);
  EXPECT_EQ(overlay.spec.arrivals[0].label(), "burst(3,7)");
  EXPECT_EQ(overlay.spec.arrivals[1].label(), "batch");
  ASSERT_EQ(overlay.spec.channels.size(), 1u);
  EXPECT_EQ(overlay.spec.channels[0].label(), "jamming(0.050000)");
}

TEST(SpecOverlay, KsAndKmaxDisplaceEachOtherAcrossTheIncludeBoundary) {
  // An overlay may switch a sweep from the kmax spelling to explicit ks
  // (or back); the two stay mutually exclusive within one file.
  const SpecLoader loader = map_loader(
      {{"kmax.spec", "spec_version = 1\nkmax = 100000\n"},
       {"ks.spec", "spec_version = 1\nks = 10,20\n"}});
  const SpecFile to_ks = parse_spec(
      "spec_version = 1\ninclude = kmax.spec\nks = 5,6\n", loader);
  EXPECT_EQ(to_ks.spec.ks, (std::vector<std::uint64_t>{5, 6}));
  EXPECT_EQ(to_ks.spec.k_max, 0u);
  const SpecFile to_kmax = parse_spec(
      "spec_version = 1\ninclude = ks.spec\nkmax = 1000\n", loader);
  EXPECT_TRUE(to_kmax.spec.ks.empty());
  EXPECT_EQ(to_kmax.spec.k_max, 1000u);
  // Both keys in the overlay itself is still the classic error.
  EXPECT_THROW(
      (void)parse_spec(
          "spec_version = 1\ninclude = kmax.spec\nks = 5\nkmax = 9\n",
          loader),
      ContractViolation);
}

TEST(SpecOverlay, NestedIncludeIsRejectedWithBothLineNumbers) {
  const SpecLoader loader = map_loader(
      {{"middle.spec", "spec_version = 1\ninclude = deep.spec\nruns = 2\n"},
       {"deep.spec", "spec_version = 1\nruns = 3\n"}});
  const std::string what = what_of([&] {
    (void)parse_spec(
        "spec_version = 1\n\ninclude = middle.spec\n", loader);
  });
  // The overlay names its own line, the wrapped error names the base's.
  EXPECT_NE(what.find("spec line 3: include 'middle.spec'"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("spec line 2: nested include 'deep.spec'"),
            std::string::npos)
      << what;
}

TEST(SpecOverlay, IncludeMustPrecedeEveryDeltaKey) {
  const SpecLoader loader =
      map_loader({{"base.spec", "spec_version = 1\nkmax = 100\n"}});
  const std::string what = what_of([&] {
    (void)parse_spec(
        "spec_version = 1\nruns = 2\ninclude = base.spec\n", loader);
  });
  EXPECT_NE(what.find("spec line 3"), std::string::npos) << what;
  EXPECT_NE(what.find("include must precede"), std::string::npos) << what;
  EXPECT_NE(what.find("'runs'"), std::string::npos) << what;
  // And it is single-shot like every scalar key.
  EXPECT_THROW(
      (void)parse_spec("spec_version = 1\ninclude = base.spec\n"
                       "include = base.spec\n",
                       loader),
      ContractViolation);
}

TEST(SpecOverlay, IncludeWithoutALoaderIsRejected) {
  const std::string what = what_of([] {
    (void)parse_spec("spec_version = 1\ninclude = base.spec\n");
  });
  EXPECT_NE(what.find("file context"), std::string::npos) << what;
  // A missing base surfaces the loader's own error, wrapped.
  const std::string missing = what_of([] {
    (void)parse_spec("spec_version = 1\ninclude = gone.spec\n",
                     map_loader({}));
  });
  EXPECT_NE(missing.find("include 'gone.spec'"), std::string::npos)
      << missing;
}

TEST(SpecOverlay, RandomizedOverlaysMatchTheirFlattenedEquivalent) {
  // Overlay fuzz: a random base, a random subset of deltas; parsing the
  // overlay must equal applying the deltas to the base by hand, and the
  // canonical texts (hence spec_hashes) must agree.
  Xoshiro256 rng(20260808);
  const auto u64 = [&rng](std::uint64_t bound) {
    return rng.next_u64() % bound;
  };
  for (int trial = 0; trial < 100; ++trial) {
    const SpecFile base = random_spec_file(rng);
    SpecFile expected = base;
    std::string overlay_text = "spec_version = 1\ninclude = base.spec\n";
    bool sweep_changed = false;
    if (u64(2) != 0) {
      expected.spec.runs = 1 + u64(50);
      overlay_text += "runs = " + std::to_string(expected.spec.runs) + "\n";
      sweep_changed = true;
    }
    if (u64(2) != 0) {
      expected.spec.seed = u64(1 << 30);
      overlay_text += "seed = " + std::to_string(expected.spec.seed) + "\n";
      sweep_changed = true;
    }
    if (u64(2) != 0) {
      expected.spec.arrivals.clear();
      expected.spec.with_arrival(ArrivalSpec::burst(2, 9));
      overlay_text += "arrival = burst(2,9)\n";
      sweep_changed = true;
    }
    if (u64(2) != 0) {
      expected.spec.shard.count = 1 + u64(6);
      expected.spec.shard.index = u64(expected.spec.shard.count);
      overlay_text +=
          "shard = " + expected.spec.shard.label() + "\n";
    }
    if (u64(2) != 0) {
      expected.threads = 1 + static_cast<unsigned>(u64(8));
      overlay_text += "threads = " + std::to_string(expected.threads) + "\n";
    }
    if (u64(2) != 0) {
      expected.format = static_cast<OutputFormat>(u64(3));
      overlay_text += std::string("format = ") +
                      output_format_name(expected.format) + "\n";
    }

    const SpecLoader loader = map_loader({{"base.spec", to_text(base)}});
    const SpecFile parsed = parse_spec(overlay_text, loader);
    ASSERT_EQ(parsed, expected) << "trial " << trial << "\n" << overlay_text;
    EXPECT_EQ(to_text(parsed), to_text(expected)) << "trial " << trial;
    if (!sweep_changed) {
      EXPECT_EQ(spec_hash(parsed.spec), spec_hash(base.spec))
          << "trial " << trial;
    }
  }
}

TEST(SpecOverlay, ShippedOverlayPairLoadsIdentically) {
  // The shipped example pair (docs/ORCHESTRATOR.md): the overlay resolves
  // its include relative to its own directory and loads to exactly the
  // flattened twin — same SpecFile, canonical text and spec_hash.
  const std::filesystem::path dir =
      std::filesystem::path(UCR_REPO_ROOT) / "specs" / "overlays";
  const SpecFile overlay =
      load_spec_file((dir / "fig1-quick.spec").string());
  const SpecFile flat =
      load_spec_file((dir / "fig1-quick-flat.spec").string());
  EXPECT_EQ(overlay, flat);
  EXPECT_EQ(to_text(overlay), to_text(flat));
  EXPECT_EQ(spec_hash(overlay.spec), spec_hash(flat.spec));
  EXPECT_EQ(overlay.format, OutputFormat::kJsonl);
  EXPECT_EQ(overlay.spec.k_max, 1000u);
}

TEST(SpecHash, IsStableSixteenHexDigits) {
  const ExperimentSpec spec;
  const std::string hash = spec_hash(spec);
  ASSERT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(spec_hash(spec), hash);  // pure function of the spec
}

TEST(SpecHash, NormalizesShardAndIgnoresExecutionKnobs) {
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10, 20, 30});
  const std::string whole = spec_hash(spec);
  for (std::uint64_t shard = 0; shard < 3; ++shard) {
    spec.shard.index = shard;
    spec.shard.count = 3;
    EXPECT_EQ(spec_hash(spec), whole) << "shard " << shard;
  }
}

TEST(SpecHash, ChangesWhenTheExperimentChanges) {
  ExperimentSpec spec;
  spec.with_protocol("One-Fail Adaptive").with_ks({10});
  const std::string base = spec_hash(spec);
  ExperimentSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(spec_hash(other), base);
  other = spec;
  other.with_arrival(ArrivalSpec::poisson(0.5));
  EXPECT_NE(spec_hash(other), base);
  other = spec;
  other.engine = EngineMode::kBatched;
  EXPECT_NE(spec_hash(other), base);
}

TEST(SpecHash, FactoriesHashLikeTheirCatalogueNames) {
  // A bench spec (explicit factories) and the spec file naming the same
  // protocols describe the same sweep — their archives must match.
  ExperimentSpec by_factory;
  for (const auto& p : paper_protocols()) by_factory.with_factory(p);
  by_factory.with_ks({10});

  ExperimentSpec by_name;
  for (const auto& p : paper_protocols()) by_name.with_protocol(p.name);
  by_name.with_ks({10});

  EXPECT_EQ(spec_hash(by_factory), spec_hash(by_name));
}

TEST(ShippedSpecs, EveryCatalogueFileParsesCompilesAndRoundTrips) {
  const std::filesystem::path dir =
      std::filesystem::path(UCR_REPO_ROOT) / "specs";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  const auto catalogue = default_catalogue();
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".spec") continue;
    ++seen;
    SCOPED_TRACE(entry.path().filename().string());

    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open());
    std::ostringstream text;
    text << in.rdbuf();

    // Parses...
    const SpecFile file = parse_spec(text.str());
    // ...compiles against the live catalogue (all names resolve, engine
    // views exist, the grid is non-empty)...
    const ExperimentPlan plan = compile(file.spec, catalogue);
    EXPECT_GT(plan.total_cells, 0u);
    EXPECT_EQ(plan.spec_hash, spec_hash(file.spec));
    // ...and round-trips exactly through the canonical text.
    const SpecFile back = parse_spec(to_text(file));
    EXPECT_EQ(back, file);
    EXPECT_EQ(to_text(back), to_text(file));
  }
  // The documented catalogue ships (at least) these six sweeps.
  EXPECT_GE(seen, 6u);
}

}  // namespace
}  // namespace ucr::exp

// ResultSink semantics: round-trip through read_aggregate_csv, header-once
// (and only on shard 0), and grid-order emission regardless of dispatch
// order — the contract that makes streaming output deterministic.
#include "exp/sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/registry.hpp"
#include "exp/run.hpp"
#include "exp/spec_io.hpp"

namespace ucr::exp {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.runs = 3;
  spec.seed = 99;
  spec.with_ks({10, 40, 80});
  for (const auto& p : paper_protocols()) spec.with_factory(p);
  return spec;
}

TEST(CsvSink, RoundTripsThroughReadAggregateCsv) {
  const ExperimentPlan plan = compile(small_spec());
  std::ostringstream csv;
  CsvStreamSink sink(csv);
  MemorySink memory;
  run(plan, {&sink, &memory}, {2});

  std::istringstream in(csv.str());
  const std::vector<AggregateRow> rows = read_aggregate_csv(in);
  ASSERT_EQ(rows.size(), memory.results().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].protocol, memory.results()[i].protocol);
    EXPECT_EQ(rows[i].k, memory.results()[i].k);
    EXPECT_EQ(rows[i].runs, memory.results()[i].runs);
    // The resultio format carries 6 decimal places.
    EXPECT_NEAR(rows[i].mean_ratio, memory.results()[i].ratio.mean, 1e-6);
    EXPECT_NEAR(rows[i].mean_makespan, memory.results()[i].makespan.mean,
                1e-6);
  }
}

TEST(CsvSink, HeaderAppearsExactlyOnceAndOnlyOnShardZero) {
  ExperimentSpec spec = small_spec();
  const auto count_headers = [](const std::string& text) {
    std::size_t count = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("protocol,", 0) == 0) ++count;
    }
    return count;
  };

  std::ostringstream whole;
  {
    CsvStreamSink sink(whole);
    run(compile(spec), {&sink}, {1});
  }
  EXPECT_EQ(count_headers(whole.str()), 1u);

  spec.shard.count = 2;
  spec.shard.index = 0;
  std::ostringstream shard0;
  {
    CsvStreamSink sink(shard0);
    run(compile(spec), {&sink}, {1});
  }
  spec.shard.index = 1;
  std::ostringstream shard1;
  {
    CsvStreamSink sink(shard1);
    run(compile(spec), {&sink}, {1});
  }
  EXPECT_EQ(count_headers(shard0.str()), 1u);
  EXPECT_EQ(count_headers(shard1.str()), 0u);  // header on shard 0 only
}

TEST(Sinks, EmitInGridOrderUnderConcurrentCompletion) {
  // Size-skewed grid on several workers: small cells of later grid rows
  // finish while earlier big cells are still running, so completion order
  // differs from grid order — emission must still be grid order.
  ExperimentSpec spec;
  spec.runs = 2;
  spec.with_ks({2000, 10, 50, 400});
  for (const auto& p : paper_protocols()) spec.with_factory(p);

  MemorySink memory;
  RunOptions options;
  options.threads = 4;
  run(compile(spec), {&memory}, options);

  ASSERT_EQ(memory.cells().size(), 5u * 4u);
  for (std::size_t i = 0; i < memory.cells().size(); ++i) {
    EXPECT_EQ(memory.cells()[i].index, i);
  }
}

TEST(JsonlSink, OneObjectPerCellWithIdentity) {
  ExperimentSpec spec;
  spec.runs = 2;
  spec.with_ks({10});
  spec.with_arrival(ArrivalSpec::batch());
  spec.with_arrival(ArrivalSpec::burst(2, 16));
  spec.with_factory(paper_protocols()[2]);  // One-Fail Adaptive

  std::ostringstream out;
  JsonlSink sink(out);
  run(compile(spec), {&sink}, {2});

  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"cell\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"arrival\":\"batch\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"engine\":\"fair\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cell\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"arrival\":\"burst(2,16)\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"engine\":\"node\""), std::string::npos);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"protocol\":\"One-Fail Adaptive\""),
              std::string::npos);
    // The full percentile spread and the latency columns ride along in
    // every row, as does the spec provenance hash.
    for (const char* key :
         {"\"p25_makespan\":", "\"median_makespan\":", "\"p75_makespan\":",
          "\"p95_makespan\":", "\"latency_p50\":", "\"latency_p95\":",
          "\"latency_p99\":"}) {
      EXPECT_NE(l.find(key), std::string::npos) << key;
    }
    EXPECT_NE(l.find("\"spec_hash\":\"" + spec_hash(spec) + "\""),
              std::string::npos);
  }
}

TEST(Sinks, RowsCarryTheShardInvariantSpecHash) {
  // CSV rows stamp the plan's spec_hash; sharded and unsharded runs of
  // one sweep stamp the same value (the hash normalizes the shard out),
  // which is what keeps concatenated shard archives both self-describing
  // and byte-identical to the unsharded file (shard_test pins the bytes).
  ExperimentSpec spec = small_spec();
  const std::string expected = spec_hash(spec);

  const auto rows_of = [](const ExperimentSpec& s) {
    std::ostringstream out;
    CsvStreamSink sink(out);
    run(compile(s), {&sink}, {1});
    return out.str();
  };

  std::istringstream whole(rows_of(spec));
  for (const AggregateRow& row : read_aggregate_csv(whole)) {
    EXPECT_EQ(row.spec_hash, expected);
  }

  spec.shard.count = 2;
  spec.shard.index = 1;  // no header on shard 1: prepend one to re-read
  std::ostringstream shard1;
  {
    CsvStreamSink sink(shard1);
    run(compile(spec), {&sink}, {1});
  }
  std::ostringstream with_header;
  write_aggregate_header(with_header);
  std::istringstream sharded(with_header.str() + shard1.str());
  const auto rows = read_aggregate_csv(sharded);
  ASSERT_FALSE(rows.empty());
  for (const AggregateRow& row : rows) {
    EXPECT_EQ(row.spec_hash, expected);
  }
}

TEST(JsonlSink, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace ucr::exp

// CellTask — the resumable unit under run(): enumeration mirrors the
// plan, keys are the provenance pair, and a task executed on its own
// reproduces exactly what the full sweep computes for that cell.
#include "exp/cell_task.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/spec_io.hpp"

namespace ucr::exp {
namespace {

ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.runs = 3;
  spec.seed = 77;
  spec.with_ks({10, 40});
  spec.with_arrival(ArrivalSpec::batch());
  spec.with_arrival(ArrivalSpec::poisson(0.3));
  for (const auto& p : paper_protocols()) spec.with_factory(p);
  return spec;
}

TEST(CellTask, EnumerationMirrorsThePlan) {
  const ExperimentPlan plan = compile(small_spec());
  const std::vector<CellTask> tasks = enumerate_cell_tasks(plan);
  ASSERT_EQ(tasks.size(), plan.cells.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].spec_hash, plan.spec_hash);
    EXPECT_EQ(tasks[i].cell.index, plan.cells[i].index);
    EXPECT_EQ(tasks[i].cell.protocol, plan.cells[i].protocol);
    EXPECT_EQ(tasks[i].point.factory.name, plan.points[i].factory.name);
    EXPECT_EQ(tasks[i].key(), plan.spec_hash + "/cell-" +
                                  std::to_string(plan.cells[i].index));
  }
}

TEST(CellTask, StandaloneExecutionMatchesTheSweep) {
  const ExperimentPlan plan = compile(small_spec());
  const std::vector<AggregateResult> swept = run_collect(plan, {2});
  const std::vector<CellTask> tasks = enumerate_cell_tasks(plan);
  ASSERT_EQ(tasks.size(), swept.size());
  // Execute each task in isolation (serially, out of any pool) — the
  // portability claim behind both the cache and the daemon is that a cell
  // is a pure function of the spec.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const CellResult result = tasks[i].execute();
    EXPECT_EQ(result.cell.index, plan.cells[i].index);
    EXPECT_EQ(result.aggregate.protocol, swept[i].protocol);
    EXPECT_EQ(result.aggregate.k, swept[i].k);
    EXPECT_EQ(result.aggregate.runs, swept[i].runs);
    EXPECT_EQ(result.aggregate.incomplete_runs, swept[i].incomplete_runs);
    EXPECT_EQ(result.aggregate.makespan.mean, swept[i].makespan.mean);
    EXPECT_EQ(result.aggregate.makespan.stddev, swept[i].makespan.stddev);
    EXPECT_EQ(result.aggregate.makespan.min, swept[i].makespan.min);
    EXPECT_EQ(result.aggregate.makespan.max, swept[i].makespan.max);
    EXPECT_EQ(result.aggregate.ratio.mean, swept[i].ratio.mean);
    EXPECT_EQ(result.aggregate.energy_mean, swept[i].energy_mean);
    ASSERT_EQ(result.aggregate.details.size(), swept[i].details.size());
    for (std::size_t r = 0; r < result.aggregate.details.size(); ++r) {
      EXPECT_EQ(result.aggregate.details[r].slots,
                swept[i].details[r].slots);
    }
  }
}

TEST(CellTask, RunDriverEqualsDirectTaskExecution) {
  // run() is a thin driver over the tasks: its emitted aggregates are the
  // tasks' own outputs, in grid order.
  const ExperimentPlan plan = compile(small_spec());
  const std::vector<CellTask> tasks = enumerate_cell_tasks(plan);
  const std::vector<AggregateResult> swept = run_collect(plan, {3});
  ASSERT_EQ(swept.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].execute().aggregate.makespan.mean,
              swept[i].makespan.mean);
  }
}

}  // namespace
}  // namespace ucr::exp

// ucr::json — the reader under the result cache and the daemon protocol.
// The load-bearing properties: exact number round-trips (raw tokens, not
// doubles), loud rejection of malformed documents, and escape() being the
// inverse of string parsing.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ucr::json {
namespace {

TEST(JsonParse, ObjectMembersKeepDocumentOrderAndTypes) {
  const Value value = parse(
      "{\"a\":1,\"b\":\"two\",\"c\":[true,false,null],\"d\":{\"e\":2.5}}");
  ASSERT_TRUE(value.is_object());
  ASSERT_EQ(value.members().size(), 4u);
  EXPECT_EQ(value.members()[0].first, "a");
  EXPECT_EQ(value.members()[3].first, "d");
  EXPECT_EQ(value.at("a").as_u64(), 1u);
  EXPECT_EQ(value.at("b").as_string(), "two");
  ASSERT_EQ(value.at("c").items().size(), 3u);
  EXPECT_TRUE(value.at("c").items()[0].as_bool());
  EXPECT_FALSE(value.at("c").items()[1].as_bool());
  EXPECT_EQ(value.at("c").items()[2].type(), Value::Type::kNull);
  EXPECT_DOUBLE_EQ(value.at("d").at("e").as_double(), 2.5);
  EXPECT_EQ(value.find("missing"), nullptr);
  EXPECT_THROW(value.at("missing"), ContractViolation);
}

TEST(JsonParse, NumbersKeepTheirExactTokens) {
  const Value value =
      parse("{\"u\":18446744073709551615,\"d\":1.5e-300,\"n\":-7}");
  // The u64 max round-trips exactly — a double would lose the low bits.
  EXPECT_EQ(value.at("u").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(value.at("u").number_token(), "18446744073709551615");
  EXPECT_DOUBLE_EQ(value.at("d").as_double(), 1.5e-300);
  // Signed / fractional tokens refuse as_u64 rather than truncate.
  EXPECT_THROW(value.at("n").as_u64(), ContractViolation);
  EXPECT_THROW(value.at("d").as_u64(), ContractViolation);
  EXPECT_DOUBLE_EQ(value.at("n").as_double(), -7.0);
}

TEST(JsonParse, StringEscapesDecode) {
  const Value value =
      parse("{\"s\":\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"}");
  EXPECT_EQ(value.at("s").as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, MalformedDocumentsThrow) {
  EXPECT_THROW(parse(""), ContractViolation);
  EXPECT_THROW(parse("{"), ContractViolation);
  EXPECT_THROW(parse("{\"a\":1,}"), ContractViolation);
  EXPECT_THROW(parse("{\"a\":1}extra"), ContractViolation);
  EXPECT_THROW(parse("{'a':1}"), ContractViolation);
  EXPECT_THROW(parse("{\"a\":01}"), ContractViolation);
  EXPECT_THROW(parse("{\"a\":+1}"), ContractViolation);
  EXPECT_THROW(parse("[1 2]"), ContractViolation);
  EXPECT_THROW(parse("nul"), ContractViolation);
  // Duplicate keys are a document bug, not a last-wins update.
  EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), ContractViolation);
}

TEST(JsonParse, TypeMismatchesThrow) {
  const Value value = parse("{\"a\":1}");
  EXPECT_THROW(value.at("a").as_string(), ContractViolation);
  EXPECT_THROW(value.at("a").as_bool(), ContractViolation);
  EXPECT_THROW(value.at("a").items(), ContractViolation);
  EXPECT_THROW(value.as_u64(), ContractViolation);
}

TEST(JsonEscape, RoundTripsThroughParse) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  const Value value = parse("{\"s\":\"" + escape(nasty) + "\"}");
  EXPECT_EQ(value.at("s").as_string(), nasty);
}

}  // namespace
}  // namespace ucr::json

#include "common/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ucr {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(UCR_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsOnFalse) {
  EXPECT_THROW(UCR_REQUIRE(false, "boom"), ContractViolation);
}

TEST(Check, CheckThrowsOnFalse) {
  EXPECT_THROW(UCR_CHECK(false, "boom"), ContractViolation);
}

TEST(Check, MessageContainsContext) {
  try {
    UCR_REQUIRE(false, "custom-message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom-message"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Check, InvariantKindIsLabeled) {
  try {
    UCR_CHECK(false, "");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Check, ContractViolationIsLogicError) {
  EXPECT_THROW(UCR_CHECK(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace ucr

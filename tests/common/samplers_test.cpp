#include "common/samplers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/mathx.hpp"
#include "common/stats.hpp"

namespace ucr {
namespace {

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return std::exp(std::lgamma(nd + 1) - std::lgamma(kd + 1) -
                  std::lgamma(nd - kd + 1) + kd * std::log(p) +
                  (nd - kd) * std::log1p(-p));
}

// --------------------------------------------------------- slot categories

TEST(SlotCategory, ZeroStationsIsSilence) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_slot_category(rng, 0, 0.5), SlotCategory::kSilence);
  }
}

TEST(SlotCategory, ZeroProbabilityIsSilence) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_slot_category(rng, 1000, 0.0), SlotCategory::kSilence);
  }
}

TEST(SlotCategory, OneStationFullProbabilityIsSuccess) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_slot_category(rng, 1, 1.0), SlotCategory::kSuccess);
  }
}

TEST(SlotCategory, ManyStationsFullProbabilityIsCollision) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_slot_category(rng, 2, 1.0), SlotCategory::kCollision);
  }
}

TEST(SlotCategory, RejectsInvalidProbability) {
  Xoshiro256 rng(5);
  EXPECT_THROW(sample_slot_category(rng, 10, -0.1), ContractViolation);
  EXPECT_THROW(sample_slot_category(rng, 10, 1.1), ContractViolation);
}

TEST(SlotCategory, FrequenciesMatchClosedForm) {
  // m = 50, p = 1/50: P0 = (1-p)^m, P1 = m p (1-p)^{m-1}.
  Xoshiro256 rng(6);
  const std::uint64_t m = 50;
  const double p = 1.0 / 50.0;
  const int n = 300000;
  int c0 = 0, c1 = 0, c2 = 0;
  for (int i = 0; i < n; ++i) {
    switch (sample_slot_category(rng, m, p)) {
      case SlotCategory::kSilence: ++c0; break;
      case SlotCategory::kSuccess: ++c1; break;
      case SlotCategory::kCollision: ++c2; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(c0) / n, prob_silence(m, p), 0.005);
  EXPECT_NEAR(static_cast<double>(c1) / n, prob_success(m, p), 0.005);
  EXPECT_NEAR(static_cast<double>(c2) / n,
              1.0 - prob_silence(m, p) - prob_success(m, p), 0.005);
}

TEST(SlotCategory, SuccessProbabilityPeaksNearOneOverM) {
  // Sanity on the physics: p = 1/m maximizes the success frequency.
  Xoshiro256 rng(7);
  const std::uint64_t m = 100;
  auto success_rate = [&](double p) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      if (sample_slot_category(rng, m, p) == SlotCategory::kSuccess) ++hits;
    }
    return static_cast<double>(hits) / n;
  };
  const double at_opt = success_rate(1.0 / 100.0);
  EXPECT_GT(at_opt, success_rate(1.0 / 10.0));
  EXPECT_GT(at_opt, success_rate(1.0 / 1000.0));
  EXPECT_NEAR(at_opt, 1.0 / std::exp(1.0), 0.01);
}

// --------------------------------------------------------------- binomial

TEST(Binomial, EdgeCases) {
  Xoshiro256 rng(10);
  EXPECT_EQ(sample_binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 1.0), 100u);
  EXPECT_THROW(sample_binomial(rng, 10, -0.1), ContractViolation);
  EXPECT_THROW(sample_binomial(rng, 10, 2.0), ContractViolation);
}

TEST(Binomial, AlwaysWithinRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LE(sample_binomial(rng, 20, 0.3), 20u);
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LE(sample_binomial(rng, 1000000, 0.4), 1000000u);
  }
}

struct MomentCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<MomentCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Xoshiro256 rng(1000 + n);
  RunningStats stats;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    stats.add(static_cast<double>(sample_binomial(rng, n, p)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  // 5-sigma tolerance on the sample mean; generous band on the variance.
  const double mean_tol = 5.0 * std::sqrt(var / trials) + 1e-9;
  EXPECT_NEAR(stats.mean(), mean, mean_tol);
  EXPECT_NEAR(stats.variance(), var, 0.08 * var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    SweepNAndP, BinomialMoments,
    ::testing::Values(MomentCase{1, 0.5}, MomentCase{2, 0.1},
                      MomentCase{10, 0.05}, MomentCase{100, 0.02},
                      MomentCase{100, 0.5}, MomentCase{1000, 0.001},
                      MomentCase{1000, 0.3}, MomentCase{100000, 0.0001},
                      MomentCase{100000, 0.25}, MomentCase{1000000, 0.5},
                      MomentCase{1000000, 0.9},  // mirrored path (p > 1/2)
                      MomentCase{10000000, 0.3}));

TEST(Binomial, ChiSquareAgainstExactPmfSmallN) {
  // n = 8, p = 0.35: compare the full distribution against the exact pmf.
  Xoshiro256 rng(12);
  const std::uint64_t n = 8;
  const double p = 0.35;
  const int trials = 200000;
  std::vector<double> observed(n + 1, 0.0);
  for (int i = 0; i < trials; ++i) {
    ++observed[sample_binomial(rng, n, p)];
  }
  std::vector<double> expected(n + 1, 0.0);
  for (std::uint64_t k = 0; k <= n; ++k) {
    expected[k] = binomial_pmf(n, p, k) * trials;
  }
  // 8 degrees of freedom; chi2_{0.999} ~ 26.1. Fixed seed, so no flake.
  EXPECT_LT(chi_square_statistic(observed, expected), 26.1);
}

TEST(Binomial, BtrsMatchesInversionDistribution) {
  // Same (n, p) sampled through both internal paths must agree in
  // distribution: compare means and a few quantile-ish counts.
  const std::uint64_t n = 400;
  const double p = 0.05;  // np = 20: BTRS-eligible but inversion-safe
  Xoshiro256 rng_a(13);
  Xoshiro256 rng_b(14);
  RunningStats a, b;
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) {
    a.add(static_cast<double>(detail::binomial_inversion(rng_a, n, p)));
    b.add(static_cast<double>(detail::binomial_btrs(rng_b, n, p)));
  }
  EXPECT_NEAR(a.mean(), b.mean(), 0.12);
  EXPECT_NEAR(a.variance(), b.variance(), 0.08 * a.variance() + 0.3);
}

TEST(Binomial, BtrsPreconditions) {
  Xoshiro256 rng(15);
  EXPECT_THROW(detail::binomial_btrs(rng, 10, 0.6), ContractViolation);
  EXPECT_THROW(detail::binomial_btrs(rng, 10, 0.1), ContractViolation);
}

// --------------------------------------------------------------- geometric

TEST(Geometric, EdgeCases) {
  Xoshiro256 rng(30);
  EXPECT_EQ(sample_geometric_failures(rng, 1.0, 100), 0u);
  EXPECT_EQ(sample_geometric_failures(rng, 0.0, 100), 100u);
  EXPECT_EQ(sample_geometric_failures(rng, 0.5, 0), 0u);
  EXPECT_THROW(sample_geometric_failures(rng, -0.1, 10), ContractViolation);
  EXPECT_THROW(sample_geometric_failures(rng, 1.1, 10), ContractViolation);
}

TEST(Geometric, NeverExceedsLimit) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(sample_geometric_failures(rng, 1e-6, 37), 37u);
  }
}

class GeometricMoments : public ::testing::TestWithParam<double> {};

TEST_P(GeometricMoments, UntruncatedMeanMatches) {
  // With the limit far beyond any realistic draw, the mean must match the
  // geometric failure count (1-p)/p.
  const double p = GetParam();
  Xoshiro256 rng(32);
  RunningStats stats;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    stats.add(static_cast<double>(
        sample_geometric_failures(rng, p, ~std::uint64_t{0})));
  }
  const double mean = (1.0 - p) / p;
  const double sd = std::sqrt(1.0 - p) / p;
  EXPECT_NEAR(stats.mean(), mean, 5.0 * sd / std::sqrt(double(trials)));
}

INSTANTIATE_TEST_SUITE_P(SweepP, GeometricMoments,
                         ::testing::Values(0.9, 0.5, 0.1, 0.01, 1e-4));

TEST(Geometric, TruncatedTailMassMatches) {
  // P[draw == limit] = P[Geometric(p) >= limit] = (1-p)^limit.
  const double p = 0.05;
  const std::uint64_t limit = 20;
  Xoshiro256 rng(33);
  const int trials = 200000;
  int at_limit = 0;
  for (int i = 0; i < trials; ++i) {
    if (sample_geometric_failures(rng, p, limit) == limit) ++at_limit;
  }
  const double expected = std::pow(1.0 - p, double(limit));
  EXPECT_NEAR(double(at_limit) / trials, expected,
              5.0 * std::sqrt(expected / trials));
}

// ---------------------------------------------------------------- poisson

TEST(Poisson, ZeroRate) {
  Xoshiro256 rng(20);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
  EXPECT_THROW(sample_poisson(rng, -1.0), ContractViolation);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  Xoshiro256 rng(21);
  RunningStats stats;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    stats.add(static_cast<double>(sample_poisson(rng, lambda)));
  }
  const double tol = 5.0 * std::sqrt(lambda / trials) + 1e-9;
  EXPECT_NEAR(stats.mean(), lambda, tol);
  EXPECT_NEAR(stats.variance(), lambda, 0.08 * lambda + 0.02);
}

INSTANTIATE_TEST_SUITE_P(SweepLambda, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 31.0, 100.0,
                                           1000.0));

// --------------------------------------------------- bulk bounded uniforms

using BulkRngTypes = ::testing::Types<Xoshiro256, CounterRng>;

template <typename Rng>
class FillUniformBelow : public ::testing::Test {};
TYPED_TEST_SUITE(FillUniformBelow, BulkRngTypes);

TYPED_TEST(FillUniformBelow, MatchesSequentialNextBelow) {
  // The contract the batched fair engine's byte-pinned outputs rest on:
  // fill_uniform_below consumes the generator's u64 stream exactly as n
  // sequential next_below calls would — same outputs, same state advance.
  // bound = 2^63 + 1 forces Lemire rejections on ~half the draws, so the
  // retry path (buffered values, then the drained-buffer fallback) is
  // exercised hard; the small bounds cover the common rejection-free case
  // and sizes around the internal chunk boundary.
  for (std::uint64_t bound : {2ULL, 3ULL, 1000ULL, (1ULL << 63) + 1ULL}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{2048},
                          std::size_t{2049}, std::size_t{5000}}) {
      TypeParam bulk(424242);
      TypeParam sequential(424242);
      std::vector<std::uint64_t> out(n);
      fill_uniform_below(bulk, bound, out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], sequential.next_below(bound))
            << "bound=" << bound << " n=" << n << " i=" << i;
      }
      // Same state advance: the next unbounded draws still agree.
      ASSERT_EQ(bulk.next_u64(), sequential.next_u64())
          << "bound=" << bound << " n=" << n;
    }
  }
}

TYPED_TEST(FillUniformBelow, RejectsZeroBound) {
  TypeParam rng(1);
  std::uint64_t out[1];
  EXPECT_THROW(fill_uniform_below(rng, 0, out, 1), ContractViolation);
}

}  // namespace
}  // namespace ucr

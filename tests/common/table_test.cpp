#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"k", "steps"});
  t.add_row({"10", "74"});
  t.add_row({"1000", "7432"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_NE(out.find("k"), std::string::npos);
  EXPECT_NE(out.find("steps"), std::string::npos);
  EXPECT_NE(out.find("7432"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  // Right alignment: "10" must be padded to the width of "1000".
  EXPECT_NE(out.find("  10"), std::string::npos);
}

TEST(Table, HeaderWiderThanCells) {
  Table t({"protocol-name", "x"});
  t.add_row({"a", "b"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("protocol-name"), std::string::npos);
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
  EXPECT_EQ(format_double(0.0, 3), "0.000");
}

TEST(FormatCount, IntegersAndScientific) {
  EXPECT_EQ(format_count(42.0), "42");
  EXPECT_EQ(format_count(1000000.0), "1000000");
  // Non-integer values fall back to scientific notation.
  EXPECT_NE(format_count(3.5).find("e"), std::string::npos);
  // Huge values fall back to scientific notation.
  EXPECT_NE(format_count(1e18).find("e"), std::string::npos);
}

}  // namespace
}  // namespace ucr

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ucr {
namespace {

TEST(ThreadPool, ResolveThreadsDefaultsToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsTaskResultsThroughFutures) {
  ThreadPool pool(2);
  auto square = pool.submit([] { return 7 * 7; });
  auto text = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(square.get(), 49);
  EXPECT_EQ(text.get(), "done");
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto fine = pool.submit([] { return 1; });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // A failed task must not poison the pool.
  EXPECT_EQ(fine.get(), 1);
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destruction must wait for all 50, not drop the queued remainder.
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolIsSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SubmitFromWithinTask) {
  // Blocking on an inner future from a worker requires a spare idle worker
  // (see submit() docs); one outer task on a 2-thread pool guarantees it.
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 21; }).get() * 2;
  });
  EXPECT_EQ(outer.get(), 42);
}

}  // namespace
}  // namespace ucr

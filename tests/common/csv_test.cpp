#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ucr {
namespace {

TEST(CsvEscape, PlainPassThrough) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
  EXPECT_EQ(CsvWriter::escape("3.14"), "3.14");
}

TEST(CsvEscape, QuotesFieldsWithSeparators) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEscape, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"protocol", "k", "steps"});
  w.write_row({"One-Fail Adaptive", "10", "40"});
  EXPECT_EQ(os.str(), "protocol,k,steps\nOne-Fail Adaptive,10,40\n");
}

TEST(CsvWriter, EmptyRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

TEST(CsvWriter, QuotedCellRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

}  // namespace
}  // namespace ucr

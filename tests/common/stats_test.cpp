#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.max(), ContractViolation);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(QuantileSorted, Interpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 25.0);
  EXPECT_NEAR(quantile_sorted(v, 1.0 / 3.0), 20.0, 1e-12);
  EXPECT_THROW(quantile_sorted({}, 0.5), ContractViolation);
  EXPECT_THROW(quantile_sorted(v, 1.5), ContractViolation);
}

TEST(QuantileSorted, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.99), 7.0);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95_halfwidth, 0.0);
}

TEST(Summarize, SingleValueHasZeroSpread) {
  const Summary s = summarize({9.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 9.0);
}

TEST(ChiSquare, ZeroWhenObservedEqualsExpected) {
  EXPECT_DOUBLE_EQ(
      chi_square_statistic({10.0, 20.0, 30.0}, {10.0, 20.0, 30.0}), 0.0);
}

TEST(ChiSquare, KnownValue) {
  // ((12-10)^2)/10 + ((8-10)^2)/10 = 0.8
  EXPECT_NEAR(chi_square_statistic({12.0, 8.0}, {10.0, 10.0}), 0.8, 1e-12);
}

TEST(ChiSquare, RejectsMassInZeroBin) {
  EXPECT_THROW(chi_square_statistic({1.0}, {0.0}), ContractViolation);
  EXPECT_NO_THROW(chi_square_statistic({0.0}, {0.0}));
}

TEST(ChiSquare, RejectsSizeMismatch) {
  EXPECT_THROW(chi_square_statistic({1.0, 2.0}, {1.0}), ContractViolation);
}

TEST(JainIndex, OneForUniformSample) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({3.0}), 1.0);
}

TEST(JainIndex, OneOverNForSingleWinner) {
  // All mass on one element: index = 1/n.
  EXPECT_NEAR(jain_fairness_index({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainIndex, KnownMixedValue) {
  // x = {1, 3}: (4)^2 / (2 * 10) = 0.8.
  EXPECT_NEAR(jain_fairness_index({1.0, 3.0}), 0.8, 1e-12);
}

TEST(JainIndex, Contracts) {
  EXPECT_THROW(jain_fairness_index({}), ContractViolation);
  EXPECT_THROW(jain_fairness_index({1.0, -0.5}), ContractViolation);
  EXPECT_THROW(jain_fairness_index({0.0, 0.0}), ContractViolation);
}

}  // namespace
}  // namespace ucr

// Shared statistical-equivalence checks between an exact engine and its
// batched fast path. Both batched-equivalence suites (fair-engine and
// per-node) compare independently seeded run ensembles of the same
// workload, so the check is Welch-style: means must agree within 4
// combined standard errors plus a small systematic allowance — wide
// enough for Monte-Carlo noise, tight enough that a modeling error in a
// stretch sampler (a missed collision class, a biased run length) fails
// deterministically at the shipped run counts.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace ucr::testutil {

inline double standard_error(const Summary& summary) {
  return summary.stddev / std::sqrt(static_cast<double>(summary.count));
}

/// Mean and median makespan of the two ensembles agree within
/// 4 * combined SE + systematic_frac * exact mean (the median gets twice
/// the tolerance: its standard error is within a small factor of the
/// mean's for these unimodal makespan distributions). `systematic_frac`
/// is 0.02 by default; sparse-window regimes with fewer runs use 0.03.
inline void expect_makespan_agreement(const AggregateResult& exact,
                                      const AggregateResult& batched,
                                      const std::string& label,
                                      double systematic_frac = 0.02) {
  ASSERT_EQ(exact.incomplete_runs, 0u) << label;
  ASSERT_EQ(batched.incomplete_runs, 0u) << label;
  const double tol =
      4.0 * std::hypot(standard_error(exact.makespan),
                       standard_error(batched.makespan)) +
      systematic_frac * exact.makespan.mean;
  EXPECT_NEAR(exact.makespan.mean, batched.makespan.mean, tol)
      << label << ": exact=" << exact.makespan.mean
      << " batched=" << batched.makespan.mean;
  EXPECT_NEAR(exact.makespan.median, batched.makespan.median, 2.0 * tol)
      << label << ": exact median=" << exact.makespan.median
      << " batched median=" << batched.makespan.median;
}

inline Summary collision_summary(const AggregateResult& result) {
  std::vector<double> values;
  values.reserve(result.details.size());
  for (const auto& run : result.details) {
    values.push_back(static_cast<double>(run.collision_slots));
  }
  return summarize(values);
}

/// Mean collision-slot counts agree within 4 * combined SE + 5% + 2
/// slots. Collisions are the protocol-dynamics-sensitive outcome that a
/// makespan dominated by the arrival span would not catch; the additive
/// 2 covers near-zero collision counts where a relative allowance
/// vanishes.
inline void expect_collision_agreement(const AggregateResult& exact,
                                       const AggregateResult& batched,
                                       const std::string& label) {
  const Summary exact_coll = collision_summary(exact);
  const Summary batched_coll = collision_summary(batched);
  const double tol = 4.0 * std::hypot(standard_error(exact_coll),
                                      standard_error(batched_coll)) +
                     0.05 * exact_coll.mean + 2.0;
  EXPECT_NEAR(exact_coll.mean, batched_coll.mean, tol)
      << label << ": exact collisions=" << exact_coll.mean
      << " batched collisions=" << batched_coll.mean;
}

/// The full check used by the per-node suite: makespan plus collisions.
inline void expect_statistical_agreement(const AggregateResult& exact,
                                         const AggregateResult& batched,
                                         const std::string& label,
                                         double systematic_frac = 0.02) {
  expect_makespan_agreement(exact, batched, label, systematic_frac);
  expect_collision_agreement(exact, batched, label);
}

}  // namespace ucr::testutil

// Shared statistical-equivalence checks between an exact engine and its
// batched fast path. Both batched-equivalence suites (fair-engine and
// per-node) compare independently seeded run ensembles of the same
// workload, so the check is Welch-style: means must agree within 4
// combined standard errors plus a small systematic allowance — wide
// enough for Monte-Carlo noise, tight enough that a modeling error in a
// stretch sampler (a missed collision class, a biased run length) fails
// deterministically at the shipped run counts.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace ucr::testutil {

inline double standard_error(const Summary& summary) {
  return summary.stddev / std::sqrt(static_cast<double>(summary.count));
}

/// Mean and median makespan of the two ensembles agree within
/// 4 * combined SE + systematic_frac * exact mean (the median gets twice
/// the tolerance: its standard error is within a small factor of the
/// mean's for these unimodal makespan distributions). `systematic_frac`
/// is 0.02 by default; sparse-window regimes with fewer runs use 0.03.
inline void expect_makespan_agreement(const AggregateResult& exact,
                                      const AggregateResult& batched,
                                      const std::string& label,
                                      double systematic_frac = 0.02) {
  ASSERT_EQ(exact.incomplete_runs, 0u) << label;
  ASSERT_EQ(batched.incomplete_runs, 0u) << label;
  const double tol =
      4.0 * std::hypot(standard_error(exact.makespan),
                       standard_error(batched.makespan)) +
      systematic_frac * exact.makespan.mean;
  EXPECT_NEAR(exact.makespan.mean, batched.makespan.mean, tol)
      << label << ": exact=" << exact.makespan.mean
      << " batched=" << batched.makespan.mean;
  EXPECT_NEAR(exact.makespan.median, batched.makespan.median, 2.0 * tol)
      << label << ": exact median=" << exact.makespan.median
      << " batched median=" << batched.makespan.median;
}

inline Summary collision_summary(const AggregateResult& result) {
  std::vector<double> values;
  values.reserve(result.details.size());
  for (const auto& run : result.details) {
    values.push_back(static_cast<double>(run.collision_slots));
  }
  return summarize(values);
}

/// Mean collision-slot counts agree within 4 * combined SE + 5% + 2
/// slots. Collisions are the protocol-dynamics-sensitive outcome that a
/// makespan dominated by the arrival span would not catch; the additive
/// 2 covers near-zero collision counts where a relative allowance
/// vanishes.
inline void expect_collision_agreement(const AggregateResult& exact,
                                       const AggregateResult& batched,
                                       const std::string& label) {
  const Summary exact_coll = collision_summary(exact);
  const Summary batched_coll = collision_summary(batched);
  const double tol = 4.0 * std::hypot(standard_error(exact_coll),
                                      standard_error(batched_coll)) +
                     0.05 * exact_coll.mean + 2.0;
  EXPECT_NEAR(exact_coll.mean, batched_coll.mean, tol)
      << label << ": exact collisions=" << exact_coll.mean
      << " batched collisions=" << batched_coll.mean;
}

/// Per-run quantile of the per-message latency distribution, summarized
/// across runs. Requires the ensemble to have been run with
/// EngineOptions::record_latencies (RunMetrics::latencies is empty
/// otherwise and the returned summary has count 0).
inline Summary latency_quantile_summary(const AggregateResult& result,
                                        double q) {
  std::vector<double> values;
  values.reserve(result.details.size());
  for (const auto& run : result.details) {
    if (run.latencies.empty()) continue;
    std::vector<double> sorted(run.latencies.begin(), run.latencies.end());
    std::sort(sorted.begin(), sorted.end());
    values.push_back(quantile_sorted(sorted, q));
  }
  return summarize(values);
}

/// Per-message timing agreement: the per-run latency p50 and p95 means of
/// the two ensembles agree within 4 * combined SE + 3% + 2 slots.
/// Makespan catches only the last delivery and collisions only the
/// contention envelope — a stretch sampler that displaced deliveries
/// *within* runs (per-message timing skew from slot skipping) could pass
/// both while shifting every latency; the percentile check closes that
/// hole. The additive 2 covers near-instant-delivery cells where a
/// relative allowance vanishes.
inline void expect_latency_agreement(const AggregateResult& exact,
                                     const AggregateResult& batched,
                                     const std::string& label) {
  for (const double q : {0.5, 0.95}) {
    const Summary exact_lat = latency_quantile_summary(exact, q);
    const Summary batched_lat = latency_quantile_summary(batched, q);
    ASSERT_GT(exact_lat.count, 0u)
        << label << ": exact ensemble recorded no latencies (missing "
        << "EngineOptions::record_latencies?)";
    ASSERT_GT(batched_lat.count, 0u)
        << label << ": batched ensemble recorded no latencies (missing "
        << "EngineOptions::record_latencies?)";
    const double tol = 4.0 * std::hypot(standard_error(exact_lat),
                                        standard_error(batched_lat)) +
                       0.03 * exact_lat.mean + 2.0;
    EXPECT_NEAR(exact_lat.mean, batched_lat.mean, tol)
        << label << ": latency p" << static_cast<int>(q * 100)
        << " exact=" << exact_lat.mean << " batched=" << batched_lat.mean;
  }
}

/// The full check used by the per-node suite: makespan plus collisions,
/// plus latency percentiles when both ensembles recorded latencies.
inline void expect_statistical_agreement(const AggregateResult& exact,
                                         const AggregateResult& batched,
                                         const std::string& label,
                                         double systematic_frac = 0.02) {
  expect_makespan_agreement(exact, batched, label, systematic_frac);
  expect_collision_agreement(exact, batched, label);
  if (latency_quantile_summary(exact, 0.5).count > 0 &&
      latency_quantile_summary(batched, 0.5).count > 0) {
    expect_latency_agreement(exact, batched, label);
  }
}

}  // namespace ucr::testutil

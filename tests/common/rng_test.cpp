#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs of splitmix64 for seed 1234567 (from the public
  // reference implementation by Vigna).
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_EQ(first, 6457827717110365317ULL);
  EXPECT_EQ(second, 3203168211198807973ULL);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t before = state;
  (void)splitmix64_next(state);
  EXPECT_NE(state, before);
}

TEST(Mix64, DependsOnBothArguments) {
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_NE(mix64(1, 2), mix64(2, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));  // not symmetric
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, StreamsAreDistinct) {
  Xoshiro256 s0 = Xoshiro256::stream(7, 0);
  Xoshiro256 s1 = Xoshiro256::stream(7, 1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
}

TEST(Xoshiro256, StreamIsDeterministic) {
  Xoshiro256 a = Xoshiro256::stream(7, 123);
  Xoshiro256 b = Xoshiro256::stream(7, 123);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsOneHalf) {
  Xoshiro256 rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(8);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Xoshiro256, NextBelowZeroThrows) {
  Xoshiro256 rng(10);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 500)
        << "value " << v;
  }
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-0.5));
    EXPECT_TRUE(rng.next_bernoulli(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(13);
  const double p = 0.37;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(20);
  Xoshiro256 b(20);
  b.jump();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256, JumpedStreamsDoNotOverlapShortly) {
  // After a jump of 2^128 the next outputs must not collide with the
  // original stream's first few thousand outputs.
  Xoshiro256 a(21);
  Xoshiro256 b(21);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 4096; ++i) first.insert(a.next_u64());
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(first.count(b.next_u64()), 0u);
  }
}

TEST(Xoshiro256, StateNotAllZero) {
  Xoshiro256 rng(0);  // seed 0 must still produce a usable state
  const auto& s = rng.state();
  EXPECT_TRUE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(30);
  (void)rng();  // operator() compiles and runs
}

}  // namespace
}  // namespace ucr

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <set>
#include <vector>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs of splitmix64 for seed 1234567 (from the public
  // reference implementation by Vigna).
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_EQ(first, 6457827717110365317ULL);
  EXPECT_EQ(second, 3203168211198807973ULL);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t before = state;
  (void)splitmix64_next(state);
  EXPECT_NE(state, before);
}

TEST(Mix64, DependsOnBothArguments) {
  EXPECT_NE(mix64(1, 2), mix64(1, 3));
  EXPECT_NE(mix64(1, 2), mix64(2, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));  // not symmetric
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, StreamsAreDistinct) {
  Xoshiro256 s0 = Xoshiro256::stream(7, 0);
  Xoshiro256 s1 = Xoshiro256::stream(7, 1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
}

TEST(Xoshiro256, StreamIsDeterministic) {
  Xoshiro256 a = Xoshiro256::stream(7, 123);
  Xoshiro256 b = Xoshiro256::stream(7, 123);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsOneHalf) {
  Xoshiro256 rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(8);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Xoshiro256, NextBelowZeroThrows) {
  Xoshiro256 rng(10);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 500)
        << "value " << v;
  }
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-0.5));
    EXPECT_TRUE(rng.next_bernoulli(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(13);
  const double p = 0.37;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(20);
  Xoshiro256 b(20);
  b.jump();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Xoshiro256, JumpedStreamsDoNotOverlapShortly) {
  // After a jump of 2^128 the next outputs must not collide with the
  // original stream's first few thousand outputs.
  Xoshiro256 a(21);
  Xoshiro256 b(21);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 4096; ++i) first.insert(a.next_u64());
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(first.count(b.next_u64()), 0u);
  }
}

TEST(Xoshiro256, StateNotAllZero) {
  Xoshiro256 rng(0);  // seed 0 must still produce a usable state
  const auto& s = rng.state();
  EXPECT_TRUE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0);
  EXPECT_NE(rng.next_u64(), rng.next_u64());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(30);
  (void)rng();  // operator() compiles and runs
}

TEST(Xoshiro256, StreamMatchesPinnedVectors) {
  // Cross-platform pins of the stream derivation itself: a change to
  // mix64 or to the seeding path would silently re-seed every experiment
  // in EXPERIMENTS.md while all statistical tests keep passing. Values
  // captured from this implementation, fixed forever.
  const struct {
    std::uint64_t stream_id;
    std::array<std::uint64_t, 4> expected;
  } cases[] = {
      {0,
       {10872925106478996037ULL, 8777981107785872473ULL,
        12956751899718191122ULL, 17576982765231823678ULL}},
      {1,
       {15073766783615369458ULL, 14291099747461414449ULL,
        9804774747733981080ULL, 10133801462704819882ULL}},
      {255,
       {11425573534248864595ULL, 17513634127956280658ULL,
        12885842917870372824ULL, 10765900160632728107ULL}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.stream_id);
    Xoshiro256 rng = Xoshiro256::stream(42, c.stream_id);
    for (std::uint64_t expected : c.expected) {
      EXPECT_EQ(rng.next_u64(), expected);
    }
  }
}

TEST(Xoshiro256, FillMatchesSingleDraws) {
  // fill_u64 / fill_double are defined as "identical to n sequential
  // calls": same outputs, same state advance — that contract is what
  // lets the SoA engine paths switch between the two freely.
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  std::uint64_t bulk_u[257];
  a.fill_u64(bulk_u, 257);
  for (std::size_t i = 0; i < 257; ++i) {
    ASSERT_EQ(bulk_u[i], b.next_u64()) << i;
  }
  double bulk_d[63];
  a.fill_double(bulk_d, 63);
  for (std::size_t i = 0; i < 63; ++i) {
    ASSERT_EQ(bulk_d[i], b.next_double()) << i;
  }
  // States converged identically: the next draws still agree.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CounterRng, ReproducesSplitMix64Sequence) {
  // CounterRng's defining identity: keyed with `seed`, it emits exactly
  // the splitmix64 output sequence for initial state `seed` — so the
  // published splitmix64 reference vectors (SplitMix64 test above) pin
  // this generator too.
  CounterRng rng(1234567);
  EXPECT_EQ(rng.next_u64(), 6457827717110365317ULL);
  EXPECT_EQ(rng.next_u64(), 3203168211198807973ULL);
  std::uint64_t state = 999;
  CounterRng counter(999);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(counter.next_u64(), splitmix64_next(state)) << i;
  }
}

TEST(CounterRng, StreamMatchesPinnedVectors) {
  // First 8 draws for several (seed, stream_id, starting counter)
  // triples, captured from this implementation and fixed forever: any
  // change to mix64, the gamma constant, the finalizer, or the counter
  // offset convention fails here on every platform.
  const struct {
    std::uint64_t seed;
    std::uint64_t stream_id;
    std::uint64_t counter;
    std::array<std::uint64_t, 8> expected;
  } cases[] = {
      {7,
       0,
       0,
       {14150234744310184610ULL, 4399631490626396944ULL,
        1821373530933722494ULL, 1806839010380358036ULL,
        1708645369321319597ULL, 6405368607459048448ULL,
        6954459940991489955ULL, 12890932547294936512ULL}},
      {7,
       1,
       0,
       {1376270687564841559ULL, 9737858296790733197ULL,
        12548368882010901805ULL, 15235823990453416131ULL,
        13894123261858977079ULL, 6213894392293687258ULL,
        2697837061571284812ULL, 10477084774332121275ULL}},
      {2026,
       11,
       0,
       {13081152083438899770ULL, 1061150216887368481ULL,
        13749878048090734028ULL, 5556877093028882173ULL,
        16748065350009795956ULL, 12531944530662924763ULL,
        8903616906581811409ULL, 3465358068083351222ULL}},
      {2026,
       11,
       1000000,
       {12346122064245207752ULL, 2357773293417304102ULL,
        2184011088723039658ULL, 2099727269662715382ULL,
        7028909387138836949ULL, 13743014566608941938ULL,
        10449763629948298878ULL, 9550155252327987897ULL}},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(::testing::Message() << "seed=" << c.seed << " stream="
                                      << c.stream_id << " counter="
                                      << c.counter);
    CounterRng rng = CounterRng::stream(c.seed, c.stream_id);
    rng.seek(c.counter);
    for (std::uint64_t expected : c.expected) {
      EXPECT_EQ(rng.next_u64(), expected);
    }
  }
}

TEST(CounterRng, StreamDerivationMatchesMix64) {
  // One substream-exclusion contract for both generators: stream() keys
  // with mix64(seed, stream_id), same rule as Xoshiro256::stream's seed.
  const CounterRng rng = CounterRng::stream(31337, 17);
  EXPECT_EQ(rng.key(), mix64(31337, 17));
  EXPECT_EQ(rng.counter(), 0u);
}

TEST(CounterRng, StreamsAreDistinct) {
  CounterRng s0 = CounterRng::stream(7, 0);
  CounterRng s1 = CounterRng::stream(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, FillMatchesSingleDraws) {
  CounterRng a = CounterRng::stream(55, 3);
  CounterRng b = CounterRng::stream(55, 3);
  std::uint64_t bulk_u[257];
  a.fill_u64(bulk_u, 257);
  for (std::size_t i = 0; i < 257; ++i) {
    ASSERT_EQ(bulk_u[i], b.next_u64()) << i;
  }
  double bulk_d[63];
  a.fill_double(bulk_d, 63);
  for (std::size_t i = 0; i < 63; ++i) {
    ASSERT_EQ(bulk_d[i], b.next_double()) << i;
  }
  EXPECT_EQ(a.counter(), b.counter());
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CounterRng, AtAndSeekAreConsistentWithSequentialDraws) {
  CounterRng rng(808);
  // at(j) peeks j draws ahead without advancing.
  const std::uint64_t peek0 = rng.at(0);
  const std::uint64_t peek5 = rng.at(5);
  EXPECT_EQ(rng.counter(), 0u);
  std::uint64_t draws[6];
  for (auto& d : draws) d = rng.next_u64();
  EXPECT_EQ(peek0, draws[0]);
  EXPECT_EQ(peek5, draws[5]);
  // seek() replays: repositioning to counter 2 re-emits draw #2.
  rng.seek(2);
  EXPECT_EQ(rng.next_u64(), draws[2]);
  // draw() is the pure-function form of the same outputs.
  EXPECT_EQ(CounterRng::draw(808, 0), draws[0]);
  EXPECT_EQ(CounterRng::draw(808, 5), draws[5]);
}

TEST(CounterRng, NextDoubleInUnitIntervalWithMeanOneHalf) {
  CounterRng rng = CounterRng::stream(6, 0);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(CounterRng, NextBelowRespectsBoundAndRejectsZero) {
  CounterRng rng(8);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(CounterRng, BernoulliEdgeCasesAreDrawFree) {
  // Exact-0/1 probabilities must not consume a draw (window protocols
  // emit them for most slots); verified through the counter.
  CounterRng rng(12);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
  EXPECT_FALSE(rng.next_bernoulli(-0.5));
  EXPECT_TRUE(rng.next_bernoulli(1.5));
  EXPECT_EQ(rng.counter(), 0u);
  (void)rng.next_bernoulli(0.5);
  EXPECT_EQ(rng.counter(), 1u);
}

TEST(CounterRng, SatisfiesUniformRandomBitGenerator) {
  static_assert(CounterRng::min() == 0);
  static_assert(CounterRng::max() == ~std::uint64_t{0});
  CounterRng rng(30);
  (void)rng();  // operator() compiles and runs
}

}  // namespace
}  // namespace ucr

#include "common/mathx.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(Log2x, KnownValues) {
  EXPECT_DOUBLE_EQ(log2x(1.0), 0.0);
  EXPECT_DOUBLE_EQ(log2x(2.0), 1.0);
  EXPECT_DOUBLE_EQ(log2x(1024.0), 10.0);
  EXPECT_THROW(log2x(0.0), ContractViolation);
  EXPECT_THROW(log2x(-3.0), ContractViolation);
}

TEST(Lnx, KnownValues) {
  EXPECT_DOUBLE_EQ(lnx(1.0), 0.0);
  EXPECT_NEAR(lnx(std::exp(1.0)), 1.0, 1e-12);
  EXPECT_THROW(lnx(0.0), ContractViolation);
}

TEST(FloorLog2, PowersAndBetween) {
  EXPECT_EQ(floor_log2_u64(1), 0);
  EXPECT_EQ(floor_log2_u64(2), 1);
  EXPECT_EQ(floor_log2_u64(3), 1);
  EXPECT_EQ(floor_log2_u64(4), 2);
  EXPECT_EQ(floor_log2_u64(1023), 9);
  EXPECT_EQ(floor_log2_u64(1024), 10);
  EXPECT_EQ(floor_log2_u64(~std::uint64_t{0}), 63);
  EXPECT_THROW(floor_log2_u64(0), ContractViolation);
}

TEST(CeilLog2, PowersAndBetween) {
  EXPECT_EQ(ceil_log2_u64(1), 0);
  EXPECT_EQ(ceil_log2_u64(2), 1);
  EXPECT_EQ(ceil_log2_u64(3), 2);
  EXPECT_EQ(ceil_log2_u64(4), 2);
  EXPECT_EQ(ceil_log2_u64(5), 3);
  EXPECT_EQ(ceil_log2_u64(1025), 11);
}

TEST(PowOneMinus, MatchesPow) {
  EXPECT_DOUBLE_EQ(pow_one_minus(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(1.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(pow_one_minus(0.3, 0.0), 1.0);
  EXPECT_NEAR(pow_one_minus(0.5, 10.0), std::pow(0.5, 10.0), 1e-12);
  // Stable where naive pow would lose precision: tiny p, huge m.
  const double v = pow_one_minus(1e-8, 1e7);
  EXPECT_NEAR(v, std::exp(-0.1), 1e-9);
  EXPECT_THROW(pow_one_minus(-0.1, 1.0), ContractViolation);
  EXPECT_THROW(pow_one_minus(1.1, 1.0), ContractViolation);
}

TEST(ProbSilenceSuccess, ClosedForms) {
  EXPECT_DOUBLE_EQ(prob_silence(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(prob_success(0, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(prob_success(1, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(prob_success(2, 1.0), 0.0);
  // m=3, p=0.5: P0 = 1/8, P1 = 3 * 0.5 * 0.25 = 3/8.
  EXPECT_NEAR(prob_silence(3, 0.5), 0.125, 1e-12);
  EXPECT_NEAR(prob_success(3, 0.5), 0.375, 1e-12);
}

TEST(ProbSuccess, MaximizedAtOneOverM) {
  const std::uint64_t m = 1000;
  const double at_opt = prob_success(m, 1.0 / 1000.0);
  EXPECT_GT(at_opt, prob_success(m, 1.0 / 500.0));
  EXPECT_GT(at_opt, prob_success(m, 1.0 / 2000.0));
  EXPECT_NEAR(at_opt, 1.0 / std::exp(1.0), 1e-3);
}

TEST(LogLog2Clamped, ClampsBelowAndComputesAbove) {
  EXPECT_DOUBLE_EQ(loglog2_clamped(2.0, 1.0), 1.0);   // lglg2 = 0 -> clamp
  EXPECT_DOUBLE_EQ(loglog2_clamped(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loglog2_clamped(4.0, 1.0), 1.0);   // lglg4 = 1
  EXPECT_NEAR(loglog2_clamped(65536.0, 1.0), 4.0, 1e-12);  // lglg 2^16
  EXPECT_NEAR(loglog2_clamped(256.0, 1.0), 3.0, 1e-12);
  EXPECT_THROW(loglog2_clamped(8.0, 0.0), ContractViolation);
}

TEST(ToU64Saturating, Boundaries) {
  EXPECT_EQ(to_u64_saturating(-5.0), 0u);
  EXPECT_EQ(to_u64_saturating(0.0), 0u);
  EXPECT_EQ(to_u64_saturating(3.9), 3u);
  EXPECT_EQ(to_u64_saturating(1e30),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(to_u64_saturating(std::nan("")), 0u);
}

TEST(KahanSum, PaperScaleAccumulationStaysExact) {
  // The fair engines accumulate ~10^7 per-slot expectations at paper
  // scale. 0.1 is not representable in binary, so naive summation drifts
  // by ~n * eps * |sum|; the compensated sum must stay at O(eps).
  const int n = 10'000'000;
  KahanSum compensated;
  double naive = 0.0;
  for (int i = 0; i < n; ++i) {
    compensated.add(0.1);
    naive += 0.1;
  }
  const double exact = 1e6;
  EXPECT_NEAR(compensated.value(), exact, 1e-6);
  // The compensated sum must beat naive accumulation (which is off by
  // ~1e-3 here) by orders of magnitude.
  EXPECT_LT(std::abs(compensated.value() - exact),
            std::abs(naive - exact) / 100.0);
}

TEST(KahanSum, NeumaierHandlesSwampedAddends) {
  // The classic Kahan update loses the small addend when the new term is
  // larger than the running sum; Neumaier's branch keeps it.
  KahanSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_DOUBLE_EQ(sum.value(), 2.0);
}

TEST(KahanSum, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(KahanSum{}.value(), 0.0);
}

TEST(IsPowerOfTen, Classification) {
  EXPECT_FALSE(is_power_of_ten(0));
  EXPECT_TRUE(is_power_of_ten(1));
  EXPECT_TRUE(is_power_of_ten(10));
  EXPECT_TRUE(is_power_of_ten(10000000));
  EXPECT_FALSE(is_power_of_ten(2));
  EXPECT_FALSE(is_power_of_ten(20));
  EXPECT_FALSE(is_power_of_ten(101));
}

}  // namespace
}  // namespace ucr

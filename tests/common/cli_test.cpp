#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/check.hpp"

namespace ucr {
namespace {

CliArgs parse(std::initializer_list<const char*> argv,
              const std::vector<std::string>& allowed) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data(), allowed);
}

TEST(CliArgs, ParsesKeyValue) {
  const auto args = parse({"--k=100", "--seed=7"}, {"k", "seed"});
  EXPECT_EQ(args.get_u64("k", 0), 100u);
  EXPECT_EQ(args.get_u64("seed", 0), 7u);
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = parse({}, {"k"});
  EXPECT_EQ(args.get_u64("k", 42), 42u);
  EXPECT_DOUBLE_EQ(args.get_double("k", 2.5), 2.5);
  EXPECT_TRUE(args.get_bool("k", true));
  EXPECT_FALSE(args.get("k").has_value());
}

TEST(CliArgs, BooleanFlagWithoutValue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, BoolSpellings) {
  EXPECT_TRUE(parse({"--x=true"}, {"x"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=yes"}, {"x"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}, {"x"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}, {"x"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=0"}, {"x"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}, {"x"}).get_bool("x", true));
}

TEST(CliArgs, DoubleParsing) {
  const auto args = parse({"--delta=0.366"}, {"delta"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 0.366);
}

TEST(CliArgs, RejectsUnknownKey) {
  EXPECT_THROW(parse({"--oops=1"}, {"k"}), ContractViolation);
}

TEST(CliArgs, PositionalArgumentsCollected) {
  const auto args = parse({"file1", "--k=3", "file2"}, {"k"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(CliArgs, LastValueWins) {
  const auto args = parse({"--k=1", "--k=2"}, {"k"});
  EXPECT_EQ(args.get_u64("k", 0), 2u);
}

TEST(EnvHelpers, ReadAndDefault) {
  ::setenv("UCR_TEST_ENV_U64", "123", 1);
  EXPECT_EQ(env_u64("UCR_TEST_ENV_U64", 5), 123u);
  ::unsetenv("UCR_TEST_ENV_U64");
  EXPECT_EQ(env_u64("UCR_TEST_ENV_U64", 5), 5u);

  ::setenv("UCR_TEST_ENV_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("UCR_TEST_ENV_DBL", 1.0), 0.25);
  ::unsetenv("UCR_TEST_ENV_DBL");
  EXPECT_DOUBLE_EQ(env_double("UCR_TEST_ENV_DBL", 1.0), 1.0);
}

TEST(EnvHelpers, EmptyStringIsDefault) {
  ::setenv("UCR_TEST_ENV_EMPTY", "", 1);
  EXPECT_EQ(env_u64("UCR_TEST_ENV_EMPTY", 9), 9u);
  ::unsetenv("UCR_TEST_ENV_EMPTY");
}

TEST(ParseThreadCount, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_thread_count("1", "--threads"), 1u);
  EXPECT_EQ(parse_thread_count("8", "--threads"), 8u);
  EXPECT_EQ(parse_thread_count("0064", "--threads"), 64u);
}

TEST(ParseThreadCount, RejectsJunkAndZeroLoudly) {
  // strtoull-style parsing silently mapped all of these to 0 = "all
  // cores", hiding typos in experiment scripts.
  EXPECT_THROW(parse_thread_count("abc", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("4x", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("-1", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("1.5", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count(" 8", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("0", "--threads"), ContractViolation);
  EXPECT_THROW(parse_thread_count("10000000", "--threads"),
               ContractViolation);
}

TEST(ThreadCountOption, FlagTakesPrecedenceOverEnvironment) {
  ::setenv("UCR_TEST_THREADS", "4", 1);
  const auto args = parse({"--threads=2"}, {"threads"});
  EXPECT_EQ(thread_count_option(args, "UCR_TEST_THREADS"), 2u);
  ::unsetenv("UCR_TEST_THREADS");
}

TEST(ThreadCountOption, FallsBackToEnvironmentThenAuto) {
  const auto args = parse({}, {"threads"});
  ::setenv("UCR_TEST_THREADS", "6", 1);
  EXPECT_EQ(thread_count_option(args, "UCR_TEST_THREADS"), 6u);
  ::unsetenv("UCR_TEST_THREADS");
  EXPECT_EQ(thread_count_option(args, "UCR_TEST_THREADS"), 0u);
  EXPECT_EQ(thread_count_option(args, nullptr), 0u);
}

TEST(ThreadCountOption, RejectsBadValuesFromEitherSource) {
  EXPECT_THROW(
      thread_count_option(parse({"--threads=junk"}, {"threads"}), nullptr),
      ContractViolation);
  EXPECT_THROW(
      thread_count_option(parse({"--threads=0"}, {"threads"}), nullptr),
      ContractViolation);
  ::setenv("UCR_TEST_THREADS", "all", 1);
  EXPECT_THROW(
      thread_count_option(parse({}, {"threads"}), "UCR_TEST_THREADS"),
      ContractViolation);
  ::unsetenv("UCR_TEST_THREADS");
}

}  // namespace
}  // namespace ucr

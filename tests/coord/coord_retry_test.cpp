// The coordinator contract (coord/coordinator.hpp), unit and end to end:
// shard overlays, per-shard output validation, the machine-readable
// status encoding, and the acceptance property itself — a real worker
// fleet with a rigged mid-shard death (UCR_ABORT_MODE=kill through the
// generic exec launcher) still assembles an archive byte-identical to
// the in-process pipeline, with the death absorbed by a retry.
#include "coord/coordinator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "coord/control.hpp"
#include "coord/workers.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"
#include "sim/resultio.hpp"

namespace ucr::coord {
namespace {

namespace fs = std::filesystem;

/// The small two-protocol grid every end-to-end test here sweeps: six
/// cells, so three shards hold two cells each — enough for the rigged
/// worker (which dies when its second cell is emitted) to always die
/// mid-shard.
exp::SpecFile test_spec() {
  exp::SpecFile file;
  file.spec.with_protocol("One-Fail Adaptive")
      .with_protocol("Exp Back-on/Back-off")
      .with_ks({10, 20, 30});
  file.spec.runs = 2;
  file.spec.seed = 4242;
  file.threads = 1;
  file.format = exp::OutputFormat::kJsonl;
  return file;
}

/// Writes the spec under `root` and returns its path.
std::string write_spec(const fs::path& root, const exp::SpecFile& file) {
  const fs::path path = root / "base.spec";
  std::ofstream out(path);
  out << exp::to_text(file);
  return path.string();
}

/// Reference bytes: the identical sweep through the in-process pipeline.
std::string reference_jsonl(const exp::SpecFile& file) {
  const exp::ExperimentPlan plan =
      exp::compile(file.spec, default_catalogue());
  std::ostringstream out;
  exp::JsonlSink sink(out);
  std::vector<exp::ResultSink*> sinks{&sink};
  exp::RunOptions options;
  options.threads = 1;
  exp::run(plan, sinks, options);
  return out.str();
}

fs::path fresh_root(const std::string& name) {
  const fs::path root = fs::path(::testing::TempDir()) / name;
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

TEST(ShardOverlay, TextIsTheMinimalDelta) {
  EXPECT_EQ(shard_overlay_text("/tmp/base.spec", 2, 5, std::nullopt, 0),
            "spec_version = 1\n"
            "include = /tmp/base.spec\n"
            "shard = 2/5\n");
  EXPECT_EQ(
      shard_overlay_text("b.spec", 0, 3, exp::OutputFormat::kJsonl, 4),
      "spec_version = 1\n"
      "include = b.spec\n"
      "shard = 0/3\n"
      "format = jsonl\n"
      "threads = 4\n");
}

TEST(ValidateShardOutput, EnforcesTheShardZeroHeaderContract) {
  std::ostringstream header;
  write_aggregate_header(header);
  const std::string hash = "00c0ffee00c0ffee";
  const std::string row = "1,proto,10," + hash + ",9.5\n";

  // Shard 0 must open with the aggregate CSV header; later shards must
  // not repeat it.
  EXPECT_NO_THROW(validate_shard_output(header.str() + row,
                                        exp::OutputFormat::kCsv, 0, 1, hash));
  EXPECT_THROW(
      validate_shard_output(row, exp::OutputFormat::kCsv, 0, 1, hash),
      ContractViolation);
  EXPECT_NO_THROW(
      validate_shard_output(row, exp::OutputFormat::kCsv, 3, 1, hash));
  EXPECT_THROW(validate_shard_output(header.str() + row,
                                     exp::OutputFormat::kCsv, 3, 1, hash),
               ContractViolation);
}

TEST(ValidateShardOutput, CountsRowsAndChecksProvenance) {
  const std::string hash = "00c0ffee00c0ffee";
  const std::string row =
      "{\"cell\":0,\"spec_hash\":\"" + hash + "\",\"k\":10}\n";
  EXPECT_NO_THROW(validate_shard_output(row + row, exp::OutputFormat::kJsonl,
                                        1, 2, hash));
  // Too few / too many rows.
  EXPECT_THROW(
      validate_shard_output(row, exp::OutputFormat::kJsonl, 1, 2, hash),
      ContractViolation);
  EXPECT_THROW(validate_shard_output(row + row + row,
                                     exp::OutputFormat::kJsonl, 1, 2, hash),
               ContractViolation);
  // A row stamped with someone else's spec_hash is corruption, loudly.
  EXPECT_THROW(validate_shard_output(row, exp::OutputFormat::kJsonl, 1, 1,
                                     "1111111111111111"),
               ContractViolation);
  // A torn final line (worker killed mid-write) is a failure even when
  // the row count would otherwise look right.
  EXPECT_THROW(
      validate_shard_output(row + "{\"cell\":1,\"spec",
                            exp::OutputFormat::kJsonl, 1, 2, hash),
      ContractViolation);
  // Empty shard, empty output: valid.
  EXPECT_NO_THROW(
      validate_shard_output("", exp::OutputFormat::kJsonl, 1, 0, hash));
}

TEST(CoordStatusJson, FieldNamesAreAToolContract) {
  // Exact encoding: scripts parse these names (and ucr_coordctl --json
  // prints the line verbatim), so a rename must fail a test.
  CoordStatus status;
  status.state = "running";
  status.spec_hash = "00c0ffee00c0ffee";
  status.shards = 3;
  status.completed = 1;
  status.running = 1;
  status.pending = 1;
  status.attempts = 4;
  WorkerStatus worker;
  worker.name = "good-1";
  worker.capacity = 2;
  worker.busy = 1;
  worker.failures = 3;
  status.worker_states = {worker};
  EXPECT_EQ(coord_status_json(status),
            "{\"ok\":true,\"state\":\"running\","
            "\"spec_hash\":\"00c0ffee00c0ffee\",\"shards\":3,"
            "\"completed\":1,\"running\":1,\"pending\":1,\"attempts\":4,"
            "\"workers\":[{\"name\":\"good-1\",\"capacity\":2,\"busy\":1,"
            "\"failures\":3}]}");
}

TEST(Coordinator, RejectsShardedAndTableBaseSpecs) {
  const fs::path root = fresh_root("ucr_coord_reject_test");
  exp::SpecFile sharded = test_spec();
  sharded.spec.shard = exp::ShardSpec::parse("1/3");
  CoordinatorOptions options;
  options.spec_path = write_spec(root, sharded);
  options.workers = parse_workers("local\n");
  options.work_dir = (root / "work").string();
  EXPECT_THROW(Coordinator{options}, ContractViolation);

  exp::SpecFile table = test_spec();
  table.format = exp::OutputFormat::kTable;
  options.spec_path = write_spec(root, table);
  EXPECT_THROW(Coordinator{options}, ContractViolation);
  // ...unless the coordinator overrides the format, flag-wins style.
  options.format = exp::OutputFormat::kJsonl;
  EXPECT_NO_THROW(Coordinator{options});
  fs::remove_all(root);
}

TEST(Coordinator, ClampsShardCountToTheGrid) {
  const fs::path root = fresh_root("ucr_coord_clamp_test");
  CoordinatorOptions options;
  options.spec_path = write_spec(root, test_spec());
  options.workers = parse_workers("local capacity=16\n");
  options.work_dir = (root / "work").string();
  // Fleet capacity 16, but the grid has only 6 cells.
  EXPECT_EQ(Coordinator(options).shards(), 6u);
  options.shards = 4;
  EXPECT_EQ(Coordinator(options).shards(), 4u);
  fs::remove_all(root);
}

TEST(CoordinatorE2E, KilledWorkerIsRetriedAndTheArchiveIsByteIdentical) {
  const fs::path root = fresh_root("ucr_coord_retry_test");
  const exp::SpecFile file = test_spec();

  CoordinatorOptions options;
  options.spec_path = write_spec(root, file);
  options.work_dir = (root / "work").string();
  options.cli = UCR_CLI_PATH;
  options.shards = 3;
  // The killer is first, so round-robin hands it shard 0 immediately; it
  // dies (hard, exit 137) when its second cell is emitted. The two local
  // workers absorb the retry.
  WorkerSpec killer;
  killer.kind = WorkerSpec::Kind::kExec;
  killer.name = "killer";
  killer.exec_prefix = {"env", "UCR_ABORT_AFTER_CELLS=1",
                        "UCR_ABORT_MODE=kill"};
  options.workers = {killer, parse_workers("local name=good-1\n")[0],
                     parse_workers("local name=good-2\n")[0]};

  Coordinator coordinator(options);
  ASSERT_EQ(coordinator.shards(), 3u);
  std::ostringstream assembled;
  const CoordReport report = coordinator.run(assembled);

  EXPECT_EQ(assembled.str(), reference_jsonl(file));
  EXPECT_EQ(report.rows, 6u);
  EXPECT_EQ(report.shards, 3u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.attempts, 3 + report.retries);
  EXPECT_FALSE(report.incomplete_runs);

  const CoordStatus status = coordinator.status();
  EXPECT_EQ(status.state, "done");
  EXPECT_EQ(status.completed, 3u);
  EXPECT_EQ(status.pending, 0u);
  fs::remove_all(root);
}

TEST(CoordinatorE2E, ExhaustedAttemptsFailLoudlyNamingTheShard) {
  const fs::path root = fresh_root("ucr_coord_terminal_test");
  CoordinatorOptions options;
  options.spec_path = write_spec(root, test_spec());
  options.work_dir = (root / "work").string();
  options.cli = UCR_CLI_PATH;
  options.shards = 1;
  options.max_attempts = 2;
  // The only worker always dies: two attempts, then a terminal failure.
  WorkerSpec killer;
  killer.kind = WorkerSpec::Kind::kExec;
  killer.name = "killer";
  killer.exec_prefix = {"env", "UCR_ABORT_AFTER_CELLS=0",
                        "UCR_ABORT_MODE=kill"};
  options.workers = {killer};

  Coordinator coordinator(options);
  std::ostringstream out;
  try {
    coordinator.run(out);
    FAIL() << "terminal failure did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0 failed 2/2 attempts"), std::string::npos)
        << what;
  }
  EXPECT_EQ(coordinator.status().state, "failed");
  fs::remove_all(root);
}

TEST(CoordinatorE2E, HeartbeatKillsWorkersThatStopProducingOutput) {
  const fs::path root = fresh_root("ucr_coord_heartbeat_test");
  CoordinatorOptions options;
  options.spec_path = write_spec(root, test_spec());
  options.work_dir = (root / "work").string();
  options.cli = UCR_CLI_PATH;
  options.shards = 1;
  options.max_attempts = 1;
  options.heartbeat_seconds = 0.25;
  // `sh -c 'sleep 30'` swallows the appended ucr_cli argv (it lands in
  // $0/$@) and never writes a byte of output — exactly a hung machine.
  WorkerSpec hung;
  hung.kind = WorkerSpec::Kind::kExec;
  hung.name = "hung";
  hung.exec_prefix = {"sh", "-c", "sleep 30"};
  options.workers = {hung};

  Coordinator coordinator(options);
  std::ostringstream out;
  try {
    coordinator.run(out);
    FAIL() << "hung worker did not trip the heartbeat";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("heartbeat"), std::string::npos) << what;
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace ucr::coord

// The workers-file contract (coord/workers.hpp): one worker per
// non-comment line, `local` or `exec: <argv prefix>`, with capacity/name
// options — and loud, line-numbered errors on everything malformed, since
// a silently misread fleet description would strand a sweep.
#include "coord/workers.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "common/check.hpp"

namespace ucr::coord {
namespace {

std::string what_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

TEST(Workers, ParsesLocalAndExecWithDefaults) {
  const auto workers = parse_workers(
      "# the fleet\n"
      "local\n"
      "local capacity=4 name=big\n"
      "exec name=node7: ssh node7 ucr-wrapper.sh\n"
      "\n"
      "exec: env UCR_THREADS=2\n");
  ASSERT_EQ(workers.size(), 4u);

  EXPECT_EQ(workers[0].kind, WorkerSpec::Kind::kLocal);
  EXPECT_EQ(workers[0].capacity, 1u);
  EXPECT_EQ(workers[0].name, "local-1");
  EXPECT_TRUE(workers[0].exec_prefix.empty());

  EXPECT_EQ(workers[1].capacity, 4u);
  EXPECT_EQ(workers[1].name, "big");

  EXPECT_EQ(workers[2].kind, WorkerSpec::Kind::kExec);
  EXPECT_EQ(workers[2].name, "node7");
  EXPECT_EQ(workers[2].exec_prefix,
            (std::vector<std::string>{"ssh", "node7", "ucr-wrapper.sh"}));

  EXPECT_EQ(workers[3].name, "exec-4");
  EXPECT_EQ(workers[3].exec_prefix,
            (std::vector<std::string>{"env", "UCR_THREADS=2"}));
}

TEST(Workers, ErrorsNameTheLine) {
  const std::string unknown = what_of([] {
    (void)parse_workers("local\n\nslurm: srun\n");
  });
  EXPECT_NE(unknown.find("workers line 3"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("unknown worker kind"), std::string::npos)
      << unknown;

  const std::string option = what_of([] {
    (void)parse_workers("local weight=2\n");
  });
  EXPECT_NE(option.find("workers line 1"), std::string::npos) << option;
  EXPECT_NE(option.find("unknown worker option 'weight'"), std::string::npos)
      << option;
}

TEST(Workers, RejectsMalformedFleets) {
  // Capacity must be a positive integer.
  EXPECT_THROW((void)parse_workers("local capacity=0\n"), ContractViolation);
  EXPECT_THROW((void)parse_workers("local capacity=two\n"),
               ContractViolation);
  // Duplicate option on one worker; duplicate names across the fleet.
  EXPECT_THROW((void)parse_workers("local capacity=2 capacity=3\n"),
               ContractViolation);
  EXPECT_THROW((void)parse_workers("local name=w\nexec name=w: ssh n\n"),
               ContractViolation);
  // exec needs its argv prefix after ':'.
  EXPECT_THROW((void)parse_workers("exec name=n\n"), ContractViolation);
  EXPECT_THROW((void)parse_workers("exec name=n:\n"), ContractViolation);
  // Options are key=value.
  EXPECT_THROW((void)parse_workers("local fast\n"), ContractViolation);
  // An empty fleet (only comments/blank lines) is an error, not a no-op.
  EXPECT_THROW((void)parse_workers("# nothing\n\n"), ContractViolation);
  EXPECT_THROW((void)parse_workers(""), ContractViolation);
}

TEST(Workers, DefaultNamesCountFleetPositions) {
  const auto workers = parse_workers("exec: a\nlocal\nexec: b\n");
  ASSERT_EQ(workers.size(), 3u);
  EXPECT_EQ(workers[0].name, "exec-1");
  EXPECT_EQ(workers[1].name, "local-2");
  EXPECT_EQ(workers[2].name, "exec-3");
}

}  // namespace
}  // namespace ucr::coord

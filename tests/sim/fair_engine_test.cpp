#include "sim/fair_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace ucr {
namespace {

// Fixed shared probability (the simplest fair protocol).
class FixedFair final : public FairSlotProtocol {
 public:
  explicit FixedFair(double p) : p_(p) {}
  double transmit_probability() const override { return p_; }
  void on_slot_end(bool) override {}

 private:
  double p_;
};

class BadFair final : public FairSlotProtocol {
 public:
  double transmit_probability() const override { return -0.1; }
  void on_slot_end(bool) override {}
};

// Fixed window size forever.
class FixedWindow final : public WindowSchedule {
 public:
  explicit FixedWindow(std::uint64_t w) : w_(w) {}
  std::uint64_t next_window_slots() override { return w_; }

 private:
  std::uint64_t w_;
};

TEST(FairSlotEngine, SingleStationFullProbability) {
  FixedFair protocol(1.0);
  Xoshiro256 rng(1);
  const RunMetrics m = run_fair_slot_engine(protocol, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_DOUBLE_EQ(m.expected_transmissions, 1.0);
}

TEST(FairSlotEngine, TwoStationsFullProbabilityDeadlocks) {
  FixedFair protocol(1.0);
  Xoshiro256 rng(2);
  EngineOptions opts;
  opts.max_slots = 100;
  const RunMetrics m = run_fair_slot_engine(protocol, 2, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 100u);
}

TEST(FairSlotEngine, SolvesWithReasonableProbability) {
  FixedFair protocol(0.05);
  Xoshiro256 rng(3);
  const RunMetrics m = run_fair_slot_engine(protocol, 20, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 20u);
}

TEST(FairSlotEngine, RejectsZeroK) {
  FixedFair protocol(0.5);
  Xoshiro256 rng(4);
  EXPECT_THROW(run_fair_slot_engine(protocol, 0, rng, {}),
               ContractViolation);
}

TEST(FairSlotEngine, RejectsBadProbability) {
  BadFair protocol;
  Xoshiro256 rng(5);
  EXPECT_THROW(run_fair_slot_engine(protocol, 2, rng, {}),
               ContractViolation);
}

TEST(FairSlotEngine, RecordsDeliverySlots) {
  FixedFair protocol(0.1);
  Xoshiro256 rng(6);
  EngineOptions opts;
  opts.record_deliveries = true;
  const RunMetrics m = run_fair_slot_engine(protocol, 10, rng, opts);
  ASSERT_TRUE(m.completed);
  ASSERT_EQ(m.delivery_slots.size(), 10u);
  EXPECT_EQ(m.slots, m.delivery_slots.back() + 1);
}

TEST(FairWindowEngine, WindowOfOneWithOneStation) {
  FixedWindow schedule(1);
  Xoshiro256 rng(7);
  const RunMetrics m = run_fair_window_engine(schedule, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.transmissions, 1u);
}

TEST(FairWindowEngine, WindowOfOneWithManyDeadlocks) {
  // Every station picks the single slot of every window: all collide.
  FixedWindow schedule(1);
  Xoshiro256 rng(8);
  EngineOptions opts;
  opts.max_slots = 50;
  const RunMetrics m = run_fair_window_engine(schedule, 3, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 50u);
  EXPECT_EQ(m.transmissions, 150u);  // 3 per slot
}

TEST(FairWindowEngine, LargeWindowSolvesQuickly) {
  FixedWindow schedule(64);
  Xoshiro256 rng(9);
  const RunMetrics m = run_fair_window_engine(schedule, 8, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 8u);
}

TEST(FairWindowEngine, EveryStationTransmitsOncePerFullWindow) {
  // With w slots and m stations, exactly m transmissions happen per full
  // window (delivered stations leave the pool for later windows).
  FixedWindow schedule(16);
  Xoshiro256 rng(10);
  EngineOptions opts;
  opts.max_slots = 16;  // exactly one window
  const RunMetrics m = run_fair_window_engine(schedule, 5, rng, opts);
  EXPECT_EQ(m.transmissions, 5u);
}

TEST(FairWindowEngine, MeanDeliveriesMatchSingletonExpectation) {
  // m balls into w = m bins: expected singletons = m (1 - 1/m)^{m-1}.
  const std::uint64_t m0 = 64;
  RunningStats singles;
  for (int trial = 0; trial < 400; ++trial) {
    FixedWindow schedule(m0);
    Xoshiro256 rng = Xoshiro256::stream(11, trial);
    EngineOptions opts;
    opts.max_slots = m0;  // exactly one window
    const RunMetrics m = run_fair_window_engine(schedule, m0, rng, opts);
    singles.add(static_cast<double>(m.deliveries));
  }
  const double expected =
      static_cast<double>(m0) *
      std::pow(1.0 - 1.0 / static_cast<double>(m0), m0 - 1);
  EXPECT_NEAR(singles.mean(), expected, 0.05 * expected);
}

TEST(FairWindowEngine, CapInsideWindowRespected) {
  FixedWindow schedule(1000);
  Xoshiro256 rng(12);
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m = run_fair_window_engine(schedule, 500, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 10u);
}

TEST(FairWindowEngine, RejectsZeroK) {
  FixedWindow schedule(4);
  Xoshiro256 rng(13);
  EXPECT_THROW(run_fair_window_engine(schedule, 0, rng, {}),
               ContractViolation);
}

}  // namespace
}  // namespace ucr

#include "sim/fair_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "sim/observer.hpp"

namespace ucr {
namespace {

// Fixed shared probability (the simplest fair protocol). Keeps the
// default batching hint of 1: the batched engine must fall back to the
// exact per-slot path for it.
class FixedFair : public FairSlotProtocol {
 public:
  explicit FixedFair(double p) : p_(p) {}
  double transmit_probability() const override { return p_; }
  void on_slot_end(bool) override {}

 private:
  double p_;
};

// Same protocol, advertising its constant probability to the batched
// engine.
class ConstantFair final : public FixedFair {
 public:
  using FixedFair::FixedFair;
  std::uint64_t constant_probability_slots() const override {
    return ~std::uint64_t{0};
  }
  void on_non_delivery_slots(std::uint64_t) override {}
};

// Counts every observer callback, split by outcome.
class CountingObserver final : public SlotObserver {
 public:
  void on_slot(const SlotView& view) override {
    ++total;
    if (view.outcome == SlotOutcome::kSilence) ++silences;
    last_slot = view.slot;
  }
  std::uint64_t total = 0;
  std::uint64_t silences = 0;
  std::uint64_t last_slot = 0;
};

class BadFair final : public FairSlotProtocol {
 public:
  double transmit_probability() const override { return -0.1; }
  void on_slot_end(bool) override {}
};

// Fixed window size forever.
class FixedWindow final : public WindowSchedule {
 public:
  explicit FixedWindow(std::uint64_t w) : w_(w) {}
  std::uint64_t next_window_slots() override { return w_; }

 private:
  std::uint64_t w_;
};

TEST(FairSlotEngine, SingleStationFullProbability) {
  FixedFair protocol(1.0);
  Xoshiro256 rng(1);
  const RunMetrics m = run_fair_slot_engine(protocol, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_DOUBLE_EQ(m.expected_transmissions, 1.0);
}

TEST(FairSlotEngine, TwoStationsFullProbabilityDeadlocks) {
  FixedFair protocol(1.0);
  Xoshiro256 rng(2);
  EngineOptions opts;
  opts.max_slots = 100;
  const RunMetrics m = run_fair_slot_engine(protocol, 2, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 100u);
}

TEST(FairSlotEngine, SolvesWithReasonableProbability) {
  FixedFair protocol(0.05);
  Xoshiro256 rng(3);
  const RunMetrics m = run_fair_slot_engine(protocol, 20, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 20u);
}

TEST(FairSlotEngine, RejectsZeroK) {
  FixedFair protocol(0.5);
  Xoshiro256 rng(4);
  EXPECT_THROW(run_fair_slot_engine(protocol, 0, rng, {}),
               ContractViolation);
}

TEST(FairSlotEngine, RejectsBadProbability) {
  BadFair protocol;
  Xoshiro256 rng(5);
  EXPECT_THROW(run_fair_slot_engine(protocol, 2, rng, {}),
               ContractViolation);
}

TEST(FairSlotEngine, RecordsDeliverySlots) {
  FixedFair protocol(0.1);
  Xoshiro256 rng(6);
  EngineOptions opts;
  opts.record_deliveries = true;
  const RunMetrics m = run_fair_slot_engine(protocol, 10, rng, opts);
  ASSERT_TRUE(m.completed);
  ASSERT_EQ(m.delivery_slots.size(), 10u);
  EXPECT_EQ(m.slots, m.delivery_slots.back() + 1);
}

TEST(FairWindowEngine, WindowOfOneWithOneStation) {
  FixedWindow schedule(1);
  Xoshiro256 rng(7);
  const RunMetrics m = run_fair_window_engine(schedule, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.transmissions, 1u);
}

TEST(FairWindowEngine, WindowOfOneWithManyDeadlocks) {
  // Every station picks the single slot of every window: all collide.
  FixedWindow schedule(1);
  Xoshiro256 rng(8);
  EngineOptions opts;
  opts.max_slots = 50;
  const RunMetrics m = run_fair_window_engine(schedule, 3, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 50u);
  EXPECT_EQ(m.transmissions, 150u);  // 3 per slot
}

TEST(FairWindowEngine, LargeWindowSolvesQuickly) {
  FixedWindow schedule(64);
  Xoshiro256 rng(9);
  const RunMetrics m = run_fair_window_engine(schedule, 8, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 8u);
}

TEST(FairWindowEngine, EveryStationTransmitsOncePerFullWindow) {
  // With w slots and m stations, exactly m transmissions happen per full
  // window (delivered stations leave the pool for later windows).
  FixedWindow schedule(16);
  Xoshiro256 rng(10);
  EngineOptions opts;
  opts.max_slots = 16;  // exactly one window
  const RunMetrics m = run_fair_window_engine(schedule, 5, rng, opts);
  EXPECT_EQ(m.transmissions, 5u);
}

TEST(FairWindowEngine, MeanDeliveriesMatchSingletonExpectation) {
  // m balls into w = m bins: expected singletons = m (1 - 1/m)^{m-1}.
  const std::uint64_t m0 = 64;
  RunningStats singles;
  for (int trial = 0; trial < 400; ++trial) {
    FixedWindow schedule(m0);
    Xoshiro256 rng = Xoshiro256::stream(11, trial);
    EngineOptions opts;
    opts.max_slots = m0;  // exactly one window
    const RunMetrics m = run_fair_window_engine(schedule, m0, rng, opts);
    singles.add(static_cast<double>(m.deliveries));
  }
  const double expected =
      static_cast<double>(m0) *
      std::pow(1.0 - 1.0 / static_cast<double>(m0), m0 - 1);
  EXPECT_NEAR(singles.mean(), expected, 0.05 * expected);
}

TEST(FairWindowEngine, CapInsideWindowRespected) {
  FixedWindow schedule(1000);
  Xoshiro256 rng(12);
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m = run_fair_window_engine(schedule, 500, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 10u);
}

TEST(FairWindowEngine, RejectsZeroK) {
  FixedWindow schedule(4);
  Xoshiro256 rng(13);
  EXPECT_THROW(run_fair_window_engine(schedule, 0, rng, {}),
               ContractViolation);
}

TEST(FairWindowEngine, ObserverSeesBulkSilenceSlots) {
  // Regression: the pending == 0 fast path advanced metrics.slots without
  // emitting observer callbacks, so observer-derived traces disagreed
  // with RunMetrics. Every elapsed slot must reach the observer.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    FixedWindow schedule(32);
    Xoshiro256 rng = Xoshiro256::stream(900, seed);
    CountingObserver observer;
    EngineOptions opts;
    opts.observer = &observer;
    const RunMetrics m = run_fair_window_engine(schedule, 3, rng, opts);
    ASSERT_TRUE(m.completed);
    EXPECT_EQ(observer.total, m.slots) << "seed " << seed;
    EXPECT_EQ(observer.silences, m.silence_slots) << "seed " << seed;
    EXPECT_EQ(observer.last_slot, m.slots - 1) << "seed " << seed;
  }
}

TEST(FairWindowEngine, ObserverSeesBulkSilenceUpToCap) {
  // The same path truncated by the slot cap mid-window.
  FixedWindow schedule(1000);
  Xoshiro256 rng(901);
  CountingObserver observer;
  EngineOptions opts;
  opts.observer = &observer;
  opts.max_slots = 40;
  const RunMetrics m = run_fair_window_engine(schedule, 2, rng, opts);
  EXPECT_EQ(m.slots, 40u);
  EXPECT_EQ(observer.total, 40u);
  EXPECT_EQ(observer.silences, m.silence_slots);
}

// ------------------------------------------------- batched slot engine

TEST(BatchedSlotEngine, SingleStationFullProbability) {
  ConstantFair protocol(1.0);
  Xoshiro256 rng(40);
  const RunMetrics m = run_fair_slot_engine_batched(protocol, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_DOUBLE_EQ(m.expected_transmissions, 1.0);
}

TEST(BatchedSlotEngine, TwoStationsFullProbabilityDeadlocks) {
  // p = 1 with two stations: every slot collides; the geometric draw must
  // return the whole stretch and the silence/collision split must label
  // all of it collision.
  ConstantFair protocol(1.0);
  Xoshiro256 rng(41);
  EngineOptions opts;
  opts.max_slots = 100;
  const RunMetrics m = run_fair_slot_engine_batched(protocol, 2, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 100u);
  EXPECT_EQ(m.silence_slots, 0u);
}

TEST(BatchedSlotEngine, ZeroProbabilityIsAllSilence) {
  ConstantFair protocol(0.0);
  Xoshiro256 rng(42);
  EngineOptions opts;
  opts.max_slots = 1000;
  const RunMetrics m = run_fair_slot_engine_batched(protocol, 5, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.silence_slots, 1000u);
  EXPECT_DOUBLE_EQ(m.expected_transmissions, 0.0);
}

TEST(BatchedSlotEngine, SolvesAndRecordsDeliveries) {
  ConstantFair protocol(0.05);
  Xoshiro256 rng(43);
  EngineOptions opts;
  opts.record_deliveries = true;
  const RunMetrics m = run_fair_slot_engine_batched(protocol, 20, rng, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 20u);
  ASSERT_EQ(m.delivery_slots.size(), 20u);
  EXPECT_EQ(m.slots, m.delivery_slots.back() + 1);
}

TEST(BatchedSlotEngine, BitIdenticalToExactForHintOneProtocols) {
  // A protocol with the default hint of 1 takes the exact per-slot path,
  // draw for draw: the whole run must be identical to the exact engine's.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FixedFair exact_protocol(0.08);
    FixedFair batched_protocol(0.08);
    Xoshiro256 rng_a = Xoshiro256::stream(910, seed);
    Xoshiro256 rng_b = Xoshiro256::stream(910, seed);
    const RunMetrics a = run_fair_slot_engine(exact_protocol, 15, rng_a, {});
    const RunMetrics b =
        run_fair_slot_engine_batched(batched_protocol, 15, rng_b, {});
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.silence_slots, b.silence_slots);
    EXPECT_EQ(a.collision_slots, b.collision_slots);
    EXPECT_DOUBLE_EQ(a.expected_transmissions, b.expected_transmissions);
  }
}

TEST(BatchedSlotEngine, MeanMakespanMatchesExactEngine) {
  // Same protocol, batched vs exact: the laws must agree (here via the
  // mean over independent runs; the integration suite covers the real
  // protocols).
  RunningStats exact_stats;
  RunningStats batched_stats;
  const int runs = 400;
  for (int r = 0; r < runs; ++r) {
    FixedFair exact_protocol(0.06);
    ConstantFair batched_protocol(0.06);
    Xoshiro256 rng_a = Xoshiro256::stream(920, r);
    Xoshiro256 rng_b = Xoshiro256::stream(921, r);
    exact_stats.add(static_cast<double>(
        run_fair_slot_engine(exact_protocol, 12, rng_a, {}).slots));
    batched_stats.add(static_cast<double>(
        run_fair_slot_engine_batched(batched_protocol, 12, rng_b, {}).slots));
  }
  const double se = std::sqrt(exact_stats.variance() / runs +
                              batched_stats.variance() / runs);
  EXPECT_NEAR(exact_stats.mean(), batched_stats.mean(),
              4.0 * se + 0.02 * exact_stats.mean());
}

TEST(BatchedSlotEngine, RejectsObserver) {
  ConstantFair protocol(0.5);
  Xoshiro256 rng(44);
  CountingObserver observer;
  EngineOptions opts;
  opts.observer = &observer;
  EXPECT_THROW(run_fair_slot_engine_batched(protocol, 2, rng, opts),
               ContractViolation);
}

TEST(BatchedSlotEngine, RejectsZeroK) {
  ConstantFair protocol(0.5);
  Xoshiro256 rng(45);
  EXPECT_THROW(run_fair_slot_engine_batched(protocol, 0, rng, {}),
               ContractViolation);
}

// ----------------------------------------------- batched window engine

TEST(BatchedWindowEngine, WindowOfOneWithOneStation) {
  FixedWindow schedule(1);
  Xoshiro256 rng(50);
  const RunMetrics m = run_fair_window_engine_batched(schedule, 1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.transmissions, 1u);
}

TEST(BatchedWindowEngine, WindowOfOneWithManyDeadlocks) {
  FixedWindow schedule(1);
  Xoshiro256 rng(51);
  EngineOptions opts;
  opts.max_slots = 50;
  const RunMetrics m = run_fair_window_engine_batched(schedule, 3, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.collision_slots, 50u);
  EXPECT_EQ(m.transmissions, 150u);  // 3 per slot
}

TEST(BatchedWindowEngine, LargeWindowSolvesQuickly) {
  FixedWindow schedule(64);
  Xoshiro256 rng(52);
  const RunMetrics m = run_fair_window_engine_batched(schedule, 8, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 8u);
}

TEST(BatchedWindowEngine, EveryStationTransmitsOncePerFullWindow) {
  FixedWindow schedule(16);
  Xoshiro256 rng(53);
  EngineOptions opts;
  opts.max_slots = 16;  // exactly one window
  const RunMetrics m = run_fair_window_engine_batched(schedule, 5, rng, opts);
  EXPECT_EQ(m.transmissions, 5u);
}

TEST(BatchedWindowEngine, MeanDeliveriesMatchSingletonExpectation) {
  // m balls into w = m bins: expected singletons = m (1 - 1/m)^{m-1} —
  // the same law the exact engine is pinned against.
  const std::uint64_t m0 = 64;
  RunningStats singles;
  for (int trial = 0; trial < 400; ++trial) {
    FixedWindow schedule(m0);
    Xoshiro256 rng = Xoshiro256::stream(54, trial);
    EngineOptions opts;
    opts.max_slots = m0;  // exactly one window
    const RunMetrics m =
        run_fair_window_engine_batched(schedule, m0, rng, opts);
    singles.add(static_cast<double>(m.deliveries));
  }
  const double expected =
      static_cast<double>(m0) *
      std::pow(1.0 - 1.0 / static_cast<double>(m0), m0 - 1);
  EXPECT_NEAR(singles.mean(), expected, 0.05 * expected);
}

TEST(BatchedWindowEngine, CapInsideWindowRespected) {
  FixedWindow schedule(1000);
  Xoshiro256 rng(55);
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m = run_fair_window_engine_batched(schedule, 500, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 10u);
}

TEST(BatchedWindowEngine, BitmapAndSortedPathsAgreeDrawForDraw) {
  // k = 70 stations in 4480-slot windows sits exactly on the bitmap-path
  // gate, and with ~58% probability all 70 choices are singletons — the
  // run then ends mid-window through the bitmap early exit. Forcing the
  // sorted-walk path via record_deliveries on the same seed must
  // reproduce every metric, including the mid-window makespan.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FixedWindow plain_schedule(4480);
    Xoshiro256 plain_rng = Xoshiro256::stream(930, seed);
    const RunMetrics plain =
        run_fair_window_engine_batched(plain_schedule, 70, plain_rng, {});
    ASSERT_TRUE(plain.completed);

    FixedWindow recording_schedule(4480);
    Xoshiro256 recording_rng = Xoshiro256::stream(930, seed);
    EngineOptions opts;
    opts.record_deliveries = true;
    const RunMetrics recorded = run_fair_window_engine_batched(
        recording_schedule, 70, recording_rng, opts);
    ASSERT_TRUE(recorded.completed);
    ASSERT_EQ(recorded.delivery_slots.size(), 70u);
    EXPECT_EQ(recorded.slots, recorded.delivery_slots.back() + 1);
    // Identical seed => identical choices => identical metrics whether or
    // not the ordered path was forced.
    EXPECT_EQ(plain.slots, recorded.slots);
    EXPECT_EQ(plain.silence_slots, recorded.silence_slots);
    EXPECT_EQ(plain.collision_slots, recorded.collision_slots);
    EXPECT_EQ(plain.transmissions, recorded.transmissions);
  }
}

TEST(BatchedWindowEngine, MeanMakespanMatchesExactEngine) {
  RunningStats exact_stats;
  RunningStats batched_stats;
  const int runs = 300;
  for (int r = 0; r < runs; ++r) {
    FixedWindow exact_schedule(32);
    FixedWindow batched_schedule(32);
    Xoshiro256 rng_a = Xoshiro256::stream(940, r);
    Xoshiro256 rng_b = Xoshiro256::stream(941, r);
    exact_stats.add(static_cast<double>(
        run_fair_window_engine(exact_schedule, 24, rng_a, {}).slots));
    batched_stats.add(static_cast<double>(
        run_fair_window_engine_batched(batched_schedule, 24, rng_b, {})
            .slots));
  }
  const double se = std::sqrt(exact_stats.variance() / runs +
                              batched_stats.variance() / runs);
  EXPECT_NEAR(exact_stats.mean(), batched_stats.mean(),
              4.0 * se + 0.02 * exact_stats.mean());
}

TEST(BatchedWindowEngine, RejectsObserver) {
  FixedWindow schedule(8);
  Xoshiro256 rng(56);
  CountingObserver observer;
  EngineOptions opts;
  opts.observer = &observer;
  EXPECT_THROW(run_fair_window_engine_batched(schedule, 2, rng, opts),
               ContractViolation);
}

TEST(BatchedWindowEngine, RejectsZeroK) {
  FixedWindow schedule(4);
  Xoshiro256 rng(57);
  EXPECT_THROW(run_fair_window_engine_batched(schedule, 0, rng, {}),
               ContractViolation);
}

}  // namespace
}  // namespace ucr

#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/known_k.hpp"

namespace ucr {
namespace {

TEST(PaperKSweep, PowersOfTen) {
  const auto ks = paper_k_sweep(100000);
  const std::vector<std::uint64_t> expected{10, 100, 1000, 10000, 100000};
  EXPECT_EQ(ks, expected);
}

TEST(PaperKSweep, NonPowerEndpointIncluded) {
  const auto ks = paper_k_sweep(50000);
  const std::vector<std::uint64_t> expected{10, 100, 1000, 10000, 50000};
  EXPECT_EQ(ks, expected);
}

TEST(PaperKSweep, MinimumSweep) {
  const auto ks = paper_k_sweep(10);
  EXPECT_EQ(ks, std::vector<std::uint64_t>{10});
  EXPECT_THROW(paper_k_sweep(9), ContractViolation);
}

TEST(RunFairExperiment, AggregatesRuns) {
  const auto factory = make_known_k_factory();
  const AggregateResult res = run_fair_experiment(factory, 50, 8, 77, {});
  EXPECT_EQ(res.k, 50u);
  EXPECT_EQ(res.runs, 8u);
  EXPECT_EQ(res.incomplete_runs, 0u);
  EXPECT_EQ(res.details.size(), 8u);
  EXPECT_GT(res.makespan.mean, 0.0);
  EXPECT_NEAR(res.ratio.mean, res.makespan.mean / 50.0, 1e-9);
  for (const auto& run : res.details) {
    EXPECT_TRUE(run.completed);
    EXPECT_EQ(run.deliveries, 50u);
  }
}

TEST(RunFairExperiment, DeterministicForSameSeed) {
  const auto factory = make_one_fail_factory();
  const AggregateResult a = run_fair_experiment(factory, 100, 3, 5, {});
  const AggregateResult b = run_fair_experiment(factory, 100, 3, 5, {});
  ASSERT_EQ(a.details.size(), b.details.size());
  for (std::size_t i = 0; i < a.details.size(); ++i) {
    EXPECT_EQ(a.details[i].slots, b.details[i].slots);
  }
}

TEST(RunFairExperiment, DifferentSeedsDiffer) {
  const auto factory = make_one_fail_factory();
  const AggregateResult a = run_fair_experiment(factory, 200, 1, 5, {});
  const AggregateResult b = run_fair_experiment(factory, 200, 1, 6, {});
  EXPECT_NE(a.details[0].slots, b.details[0].slots);
}

TEST(RunFairExperiment, RunsUseIndependentStreams) {
  const auto factory = make_one_fail_factory();
  const AggregateResult res = run_fair_experiment(factory, 200, 4, 9, {});
  // Extremely unlikely that two independent runs coincide exactly.
  bool all_equal = true;
  for (std::size_t i = 1; i < res.details.size(); ++i) {
    if (res.details[i].slots != res.details[0].slots) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(RunFairExperiment, RequiresFairView) {
  ProtocolFactory broken;
  broken.name = "node-only";
  broken.node = [](std::uint64_t, Xoshiro256&) {
    return std::unique_ptr<NodeProtocol>(nullptr);
  };
  EXPECT_THROW(run_fair_experiment(broken, 10, 1, 1, {}), ContractViolation);
}

TEST(RunFairExperiment, RequiresPositiveRuns) {
  const auto factory = make_known_k_factory();
  EXPECT_THROW(run_fair_experiment(factory, 10, 0, 1, {}),
               ContractViolation);
}

TEST(RunNodeExperiment, WorksOnBatchedArrivals) {
  const auto factory = make_one_fail_factory();
  const AggregateResult res =
      run_node_experiment(factory, batched_arrivals(30), 3, 11, {});
  EXPECT_EQ(res.runs, 3u);
  EXPECT_EQ(res.incomplete_runs, 0u);
  for (const auto& run : res.details) {
    EXPECT_EQ(run.deliveries, 30u);
  }
}

TEST(AggregateRuns, PoolsLatencyPercentilesAcrossRuns) {
  // Two runs' latencies pool into one sample (1..20): linear-interpolated
  // percentiles p50 = 10.5, p95 = 19.05, p99 = 19.81.
  RunMetrics a;
  RunMetrics b;
  a.completed = b.completed = true;
  a.k = b.k = 10;
  a.slots = b.slots = 20;
  for (std::uint64_t v = 1; v <= 10; ++v) a.latencies.push_back(v);
  for (std::uint64_t v = 11; v <= 20; ++v) b.latencies.push_back(v);
  const AggregateResult res = aggregate_runs("x", 10, {a, b});
  EXPECT_DOUBLE_EQ(res.latency_p50, 10.5);
  EXPECT_NEAR(res.latency_p95, 19.05, 1e-9);
  EXPECT_NEAR(res.latency_p99, 19.81, 1e-9);
}

TEST(AggregateRuns, LatencyPercentilesStayZeroWithoutRecording) {
  RunMetrics a;
  a.completed = true;
  a.k = 5;
  a.slots = 9;
  const AggregateResult res = aggregate_runs("x", 5, {a});
  EXPECT_DOUBLE_EQ(res.latency_p50, 0.0);
  EXPECT_DOUBLE_EQ(res.latency_p95, 0.0);
  EXPECT_DOUBLE_EQ(res.latency_p99, 0.0);
}

TEST(RunNodeExperiment, RequiresNodeView) {
  ProtocolFactory fair_only;
  fair_only.name = "fair-only";
  fair_only.fair_slot = [](std::uint64_t k) {
    return std::make_unique<KnownKGenie>(k);
  };
  EXPECT_THROW(
      run_node_experiment(fair_only, batched_arrivals(5), 1, 1, {}),
      ContractViolation);
}

}  // namespace
}  // namespace ucr

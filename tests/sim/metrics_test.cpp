#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ucr {
namespace {

RunMetrics valid_completed_run() {
  RunMetrics m;
  m.k = 3;
  m.completed = true;
  m.deliveries = 3;
  m.success_slots = 3;
  m.silence_slots = 2;
  m.collision_slots = 1;
  m.slots = 6;
  return m;
}

TEST(RunMetrics, RatioComputesSlotsPerK) {
  RunMetrics m = valid_completed_run();
  EXPECT_DOUBLE_EQ(m.ratio(), 2.0);
  m.k = 0;
  EXPECT_THROW(m.ratio(), ContractViolation);
}

TEST(RunMetrics, ValidatePassesOnConsistentRun) {
  EXPECT_NO_THROW(valid_completed_run().validate());
}

TEST(RunMetrics, ValidateCatchesOutcomeSumMismatch) {
  RunMetrics m = valid_completed_run();
  m.slots = 7;
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(RunMetrics, ValidateCatchesDeliverySuccessMismatch) {
  RunMetrics m = valid_completed_run();
  m.deliveries = 2;
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(RunMetrics, ValidateCatchesIncompleteWithAllDelivered) {
  RunMetrics m = valid_completed_run();
  m.completed = false;
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(RunMetrics, ValidateCatchesCompletedWithMissingDeliveries) {
  RunMetrics m = valid_completed_run();
  m.k = 4;  // claims completed but only 3 delivered
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(RunMetrics, ValidateChecksDeliverySlotOrdering) {
  RunMetrics m = valid_completed_run();
  m.delivery_slots = {1, 3, 5};
  EXPECT_NO_THROW(m.validate());
  m.delivery_slots = {1, 5, 3};
  EXPECT_THROW(m.validate(), ContractViolation);
  m.delivery_slots = {1, 1, 2};  // duplicates are impossible
  EXPECT_THROW(m.validate(), ContractViolation);
  m.delivery_slots = {1, 2};  // count mismatch
  EXPECT_THROW(m.validate(), ContractViolation);
}

TEST(EngineOptions, DefaultCapScalesWithK) {
  const EngineOptions opts;
  EXPECT_EQ(opts.resolved_cap(1), 1'000'000ULL + 100'000ULL);
  EXPECT_EQ(opts.resolved_cap(1000), 1'000'000ULL + 100'000'000ULL);
}

TEST(EngineOptions, ExplicitCapWins) {
  EngineOptions opts;
  opts.max_slots = 500;
  EXPECT_EQ(opts.resolved_cap(123456), 500u);
}

}  // namespace
}  // namespace ucr

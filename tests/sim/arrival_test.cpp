#include "sim/arrival.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace ucr {
namespace {

TEST(BatchedArrivals, AllAtSlotZero) {
  const ArrivalPattern a = batched_arrivals(5);
  ASSERT_EQ(a.size(), 5u);
  for (const auto slot : a) EXPECT_EQ(slot, 0u);
}

TEST(BatchedArrivals, EmptyBatch) {
  EXPECT_TRUE(batched_arrivals(0).empty());
}

TEST(PoissonArrivals, SortedAndSized) {
  Xoshiro256 rng(1);
  const ArrivalPattern a = poisson_arrivals(100, 0.1, rng);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(PoissonArrivals, MeanInterArrivalMatchesRate) {
  Xoshiro256 rng(2);
  const double lambda = 0.25;
  const ArrivalPattern a = poisson_arrivals(20000, lambda, rng);
  // Last arrival time ~ k / lambda.
  const double expected_span = 20000.0 / lambda;
  EXPECT_NEAR(static_cast<double>(a.back()), expected_span,
              0.05 * expected_span);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  Xoshiro256 rng(3);
  EXPECT_THROW(poisson_arrivals(10, 0.0, rng), ContractViolation);
  EXPECT_THROW(poisson_arrivals(10, -1.0, rng), ContractViolation);
}

TEST(BurstArrivals, ShapeAndSpacing) {
  const ArrivalPattern a = burst_arrivals(3, 4, 100);
  ASSERT_EQ(a.size(), 12u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // First burst at 0, second at 100, third at 200; 4 messages each.
  EXPECT_EQ(std::count(a.begin(), a.end(), 0u), 4);
  EXPECT_EQ(std::count(a.begin(), a.end(), 100u), 4);
  EXPECT_EQ(std::count(a.begin(), a.end(), 200u), 4);
}

TEST(BurstArrivals, SingleBurstIsBatch) {
  EXPECT_EQ(burst_arrivals(1, 7, 50), batched_arrivals(7));
}

TEST(BurstArrivals, RejectsEmptyShape) {
  EXPECT_THROW(burst_arrivals(0, 4, 10), ContractViolation);
  EXPECT_THROW(burst_arrivals(4, 0, 10), ContractViolation);
}

}  // namespace
}  // namespace ucr

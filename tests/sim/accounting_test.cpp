// Energy-accounting invariants of the engines: the exact and expected
// transmission counters that back the sensor_alarm example's tx/sensor
// column and the cd_comparison analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/known_k.hpp"
#include "sim/fair_engine.hpp"
#include "sim/node_engine.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

TEST(Accounting, WindowEngineCountsExactTransmissions) {
  // In a completed window-protocol run every station transmits exactly
  // once per window it participates in, so transmissions >= k (each
  // message is transmitted at least once) and every success contributes
  // one transmission.
  ExpBackonBackoff schedule;
  Xoshiro256 rng(1);
  const RunMetrics m = run_fair_window_engine(schedule, 256, rng, {});
  ASSERT_TRUE(m.completed);
  EXPECT_GE(m.transmissions, 256u);
  // Expected-count accumulator must agree with the exact counter in
  // expectation; for one run they are within Monte-Carlo noise of each
  // other (the expected count sums pending*hazard per slot).
  EXPECT_NEAR(m.expected_transmissions,
              static_cast<double>(m.transmissions),
              6.0 * std::sqrt(static_cast<double>(m.transmissions)));
}

TEST(Accounting, SlotEngineExpectedTransmissionsMatchesTheory) {
  // Known-k genie: per slot the expected transmitter count is exactly 1
  // (m stations at probability 1/m), so the accumulated expectation must
  // equal the makespan.
  KnownKGenie genie(500);
  Xoshiro256 rng(2);
  const RunMetrics m = run_fair_slot_engine(genie, 500, rng, {});
  ASSERT_TRUE(m.completed);
  EXPECT_NEAR(m.expected_transmissions, static_cast<double>(m.slots), 1e-6);
}

TEST(Accounting, NodeEngineTransmissionsAreExact) {
  // The per-node engine counts actual coin flips; over many runs the mean
  // transmissions of the genie must match its makespan (expectation 1 per
  // slot), tying the two engines' accounting together.
  const auto factory = make_known_k_factory();
  const AggregateResult res =
      run_node_experiment(factory, batched_arrivals(100), 100, 3, {});
  double tx = 0.0, slots = 0.0;
  for (const auto& run : res.details) {
    tx += static_cast<double>(run.transmissions);
    slots += static_cast<double>(run.slots);
  }
  EXPECT_NEAR(tx / slots, 1.0, 0.05);
}

TEST(Accounting, OneFailEnergyPerStationIsSuperconstant) {
  // One-Fail Adaptive's energy cost per station grows with k (stations
  // keep transmitting at probability ~1/kappa~ for the whole run) —
  // the trade-off the sensor_alarm example surfaces vs window protocols.
  OneFailAdaptive p_small;
  Xoshiro256 rng_small(4);
  const RunMetrics small = run_fair_slot_engine(p_small, 100, rng_small, {});
  OneFailAdaptive p_large;
  Xoshiro256 rng_large(5);
  const RunMetrics large = run_fair_slot_engine(p_large, 10000, rng_large, {});
  const double per_station_small = small.expected_transmissions / 100.0;
  const double per_station_large = large.expected_transmissions / 10000.0;
  EXPECT_GT(per_station_large, 1.5 * per_station_small);
}

TEST(Accounting, SawtoothEnergyPerStationIsLogarithmic) {
  // A window protocol transmits once per window; the number of windows up
  // to completion is O(log k) phases * O(log k) windows, so tx/station is
  // polylogarithmic — it must grow much slower than the makespan.
  ExpBackonBackoff s_small;
  Xoshiro256 r1(6);
  const RunMetrics small = run_fair_window_engine(s_small, 100, r1, {});
  ExpBackonBackoff s_large;
  Xoshiro256 r2(7);
  const RunMetrics large = run_fair_window_engine(s_large, 10000, r2, {});
  const double per_small =
      static_cast<double>(small.transmissions) / 100.0;
  const double per_large =
      static_cast<double>(large.transmissions) / 10000.0;
  // log^2 growth predicts a factor (log 10^4 / log 10^2)^2 = 4 between the
  // two sizes (measured ~4.0); anything near the 100x of linear growth
  // would be a regression.
  EXPECT_LT(per_large, 6.0 * per_small);
  EXPECT_GT(per_large, 1.5 * per_small);
}

}  // namespace
}  // namespace ucr

#include "sim/node_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"

namespace ucr {
namespace {

// Always transmits: with one station this solves in one slot; with two it
// deadlocks into permanent collisions (the cap must kick in).
class AlwaysTransmit final : public NodeProtocol {
 public:
  double transmit_probability() override { return 1.0; }
  void on_slot_end(const Feedback&) override {}
};

// Fixed probability p forever.
class FixedProb final : public NodeProtocol {
 public:
  explicit FixedProb(double p) : p_(p) {}
  double transmit_probability() override { return p_; }
  void on_slot_end(const Feedback&) override {}

 private:
  double p_;
};

// Misbehaving protocol for the contract test.
class BadProb final : public NodeProtocol {
 public:
  double transmit_probability() override { return 1.5; }
  void on_slot_end(const Feedback&) override {}
};

// Records the feedback it sees (for observation tests).
class Recorder final : public NodeProtocol {
 public:
  explicit Recorder(std::vector<Feedback>* sink, double p)
      : sink_(sink), p_(p) {}
  double transmit_probability() override { return p_; }
  void on_slot_end(const Feedback& fb) override { sink_->push_back(fb); }

 private:
  std::vector<Feedback>* sink_;
  double p_;
};

TEST(NodeEngine, SingleStationSolvesInOneSlot) {
  Xoshiro256 rng(1);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(1), rng, EngineOptions{});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.deliveries, 1u);
  EXPECT_EQ(m.success_slots, 1u);
  EXPECT_EQ(m.transmissions, 1u);
}

TEST(NodeEngine, PermanentCollisionHitsCap) {
  Xoshiro256 rng(2);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  EngineOptions opts;
  opts.max_slots = 200;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(2), rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 200u);
  EXPECT_EQ(m.deliveries, 0u);
  EXPECT_EQ(m.collision_slots, 200u);
}

TEST(NodeEngine, FixedProbEventuallySolves) {
  Xoshiro256 rng(3);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.1);
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(10), rng, EngineOptions{});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 10u);
  EXPECT_EQ(m.success_slots, 10u);
}

TEST(NodeEngine, MakespanEndsAtLastDelivery) {
  Xoshiro256 rng(4);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.2);
  };
  EngineOptions opts;
  opts.record_deliveries = true;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(5), rng, opts);
  ASSERT_TRUE(m.completed);
  ASSERT_EQ(m.delivery_slots.size(), 5u);
  EXPECT_EQ(m.slots, m.delivery_slots.back() + 1);
}

TEST(NodeEngine, RejectsUnsortedArrivals) {
  Xoshiro256 rng(5);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{5, 3, 1};
  EXPECT_THROW(run_node_engine(factory, arrivals, rng, EngineOptions{}),
               ContractViolation);
}

TEST(NodeEngine, RejectsEmptyWorkload) {
  Xoshiro256 rng(6);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  EXPECT_THROW(run_node_engine(factory, {}, rng, EngineOptions{}),
               ContractViolation);
}

TEST(NodeEngine, RejectsOutOfRangeProbability) {
  Xoshiro256 rng(7);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<BadProb>();
  };
  EXPECT_THROW(
      run_node_engine(factory, batched_arrivals(2), rng, EngineOptions{}),
      ContractViolation);
}

TEST(NodeEngine, LateArrivalDelaysCompletion) {
  Xoshiro256 rng(8);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};  // second station appears at slot 50
  const RunMetrics m =
      run_node_engine(factory, arrivals, rng, EngineOptions{});
  // Station 1 delivers at slot 0; station 2 at slot 50.
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 51u);
  EXPECT_EQ(m.silence_slots, 49u);
}

TEST(NodeEngine, LatencyMeasuredFromArrival) {
  Xoshiro256 rng(9);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};
  LatencyMetrics latency;
  (void)run_node_engine(factory, arrivals, rng, EngineOptions{}, &latency);
  ASSERT_EQ(latency.latencies.size(), 2u);
  EXPECT_EQ(latency.latencies[0], 1u);  // delivered in its arrival slot
  EXPECT_EQ(latency.latencies[1], 1u);
}

TEST(NodeEngine, RecordLatenciesFillsRunMetrics) {
  // EngineOptions::record_latencies carries the same per-message values
  // as the LatencyMetrics out-parameter, but inside RunMetrics — the form
  // that survives aggregation and the parallel sweep pipeline.
  Xoshiro256 rng_a(9);
  Xoshiro256 rng_b(9);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};
  LatencyMetrics latency;
  const RunMetrics plain =
      run_node_engine(factory, arrivals, rng_a, EngineOptions{}, &latency);
  EXPECT_TRUE(plain.latencies.empty());  // off by default

  EngineOptions options;
  options.record_latencies = true;
  const RunMetrics recorded =
      run_node_engine(factory, arrivals, rng_b, options);
  ASSERT_EQ(recorded.latencies.size(), latency.latencies.size());
  for (std::size_t i = 0; i < latency.latencies.size(); ++i) {
    EXPECT_EQ(recorded.latencies[i], latency.latencies[i]);
  }
}

TEST(NodeEngine, ListenersHearDeliveries) {
  Xoshiro256 rng(10);
  std::vector<Feedback> heard;
  int instance = 0;
  const NodeFactory factory =
      [&](Xoshiro256&) -> std::unique_ptr<NodeProtocol> {
    // First station transmits always; second never (records only).
    if (instance++ == 0) return std::make_unique<AlwaysTransmit>();
    return std::make_unique<Recorder>(&heard, 0.0);
  };
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(2), rng, opts);
  EXPECT_FALSE(m.completed);  // the silent recorder never delivers
  ASSERT_FALSE(heard.empty());
  EXPECT_TRUE(heard.front().heard_delivery);
  EXPECT_FALSE(heard.front().delivered_mine);
  // After the first delivery the channel is silent: no more deliveries.
  for (std::size_t i = 1; i < heard.size(); ++i) {
    EXPECT_FALSE(heard[i].heard_delivery);
  }
}

TEST(NodeEngine, ValidatedMetricsInvariants) {
  Xoshiro256 rng(11);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.05);
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(20), rng, EngineOptions{});
  // validate() ran inside; spot-check the identities here as well.
  EXPECT_EQ(m.silence_slots + m.success_slots + m.collision_slots, m.slots);
  EXPECT_EQ(m.success_slots, m.deliveries);
  EXPECT_GE(m.transmissions, m.deliveries);
}

}  // namespace
}  // namespace ucr

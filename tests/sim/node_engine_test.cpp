#include "sim/node_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"

namespace ucr {
namespace {

// Always transmits: with one station this solves in one slot; with two it
// deadlocks into permanent collisions (the cap must kick in).
class AlwaysTransmit final : public NodeProtocol {
 public:
  double transmit_probability() override { return 1.0; }
  void on_slot_end(const Feedback&) override {}
};

// Fixed probability p forever.
class FixedProb final : public NodeProtocol {
 public:
  explicit FixedProb(double p) : p_(p) {}
  double transmit_probability() override { return p_; }
  void on_slot_end(const Feedback&) override {}

 private:
  double p_;
};

// Misbehaving protocol for the contract test.
class BadProb final : public NodeProtocol {
 public:
  double transmit_probability() override { return 1.5; }
  void on_slot_end(const Feedback&) override {}
};

// Records the feedback it sees (for observation tests).
class Recorder final : public NodeProtocol {
 public:
  explicit Recorder(std::vector<Feedback>* sink, double p)
      : sink_(sink), p_(p) {}
  double transmit_probability() override { return p_; }
  void on_slot_end(const Feedback& fb) override { sink_->push_back(fb); }

 private:
  std::vector<Feedback>* sink_;
  double p_;
};

TEST(NodeEngine, SingleStationSolvesInOneSlot) {
  Xoshiro256 rng(1);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(1), rng, EngineOptions{});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.deliveries, 1u);
  EXPECT_EQ(m.success_slots, 1u);
  EXPECT_EQ(m.transmissions, 1u);
}

TEST(NodeEngine, PermanentCollisionHitsCap) {
  Xoshiro256 rng(2);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  EngineOptions opts;
  opts.max_slots = 200;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(2), rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 200u);
  EXPECT_EQ(m.deliveries, 0u);
  EXPECT_EQ(m.collision_slots, 200u);
}

TEST(NodeEngine, FixedProbEventuallySolves) {
  Xoshiro256 rng(3);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.1);
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(10), rng, EngineOptions{});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 10u);
  EXPECT_EQ(m.success_slots, 10u);
}

TEST(NodeEngine, MakespanEndsAtLastDelivery) {
  Xoshiro256 rng(4);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.2);
  };
  EngineOptions opts;
  opts.record_deliveries = true;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(5), rng, opts);
  ASSERT_TRUE(m.completed);
  ASSERT_EQ(m.delivery_slots.size(), 5u);
  EXPECT_EQ(m.slots, m.delivery_slots.back() + 1);
}

TEST(NodeEngine, RejectsUnsortedArrivals) {
  Xoshiro256 rng(5);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{5, 3, 1};
  EXPECT_THROW(run_node_engine(factory, arrivals, rng, EngineOptions{}),
               ContractViolation);
}

TEST(NodeEngine, RejectsEmptyWorkload) {
  Xoshiro256 rng(6);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  EXPECT_THROW(run_node_engine(factory, {}, rng, EngineOptions{}),
               ContractViolation);
}

TEST(NodeEngine, RejectsOutOfRangeProbability) {
  Xoshiro256 rng(7);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<BadProb>();
  };
  EXPECT_THROW(
      run_node_engine(factory, batched_arrivals(2), rng, EngineOptions{}),
      ContractViolation);
}

TEST(NodeEngine, LateArrivalDelaysCompletion) {
  Xoshiro256 rng(8);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};  // second station appears at slot 50
  const RunMetrics m =
      run_node_engine(factory, arrivals, rng, EngineOptions{});
  // Station 1 delivers at slot 0; station 2 at slot 50.
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 51u);
  EXPECT_EQ(m.silence_slots, 49u);
}

TEST(NodeEngine, LatencyMeasuredFromArrival) {
  Xoshiro256 rng(9);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};
  LatencyMetrics latency;
  (void)run_node_engine(factory, arrivals, rng, EngineOptions{}, &latency);
  ASSERT_EQ(latency.latencies.size(), 2u);
  EXPECT_EQ(latency.latencies[0], 1u);  // delivered in its arrival slot
  EXPECT_EQ(latency.latencies[1], 1u);
}

TEST(NodeEngine, RecordLatenciesFillsRunMetrics) {
  // EngineOptions::record_latencies carries the same per-message values
  // as the LatencyMetrics out-parameter, but inside RunMetrics — the form
  // that survives aggregation and the parallel sweep pipeline.
  Xoshiro256 rng_a(9);
  Xoshiro256 rng_b(9);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern arrivals{0, 50};
  LatencyMetrics latency;
  const RunMetrics plain =
      run_node_engine(factory, arrivals, rng_a, EngineOptions{}, &latency);
  EXPECT_TRUE(plain.latencies.empty());  // off by default

  EngineOptions options;
  options.record_latencies = true;
  const RunMetrics recorded =
      run_node_engine(factory, arrivals, rng_b, options);
  ASSERT_EQ(recorded.latencies.size(), latency.latencies.size());
  for (std::size_t i = 0; i < latency.latencies.size(); ++i) {
    EXPECT_EQ(recorded.latencies[i], latency.latencies[i]);
  }
}

TEST(NodeEngine, ListenersHearDeliveries) {
  Xoshiro256 rng(10);
  std::vector<Feedback> heard;
  int instance = 0;
  const NodeFactory factory =
      [&](Xoshiro256&) -> std::unique_ptr<NodeProtocol> {
    // First station transmits always; second never (records only).
    if (instance++ == 0) return std::make_unique<AlwaysTransmit>();
    return std::make_unique<Recorder>(&heard, 0.0);
  };
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(2), rng, opts);
  EXPECT_FALSE(m.completed);  // the silent recorder never delivers
  ASSERT_FALSE(heard.empty());
  EXPECT_TRUE(heard.front().heard_delivery);
  EXPECT_FALSE(heard.front().delivered_mine);
  // After the first delivery the channel is silent: no more deliveries.
  for (std::size_t i = 1; i < heard.size(); ++i) {
    EXPECT_FALSE(heard[i].heard_delivery);
  }
}

// Stationary protocol for the batched-engine contract tests: constant p
// forever, unbounded hint, bulk advance counts the slots it was told about.
class StationaryProb final : public NodeProtocol {
 public:
  StationaryProb(double p, std::uint64_t* advanced = nullptr)
      : p_(p), advanced_(advanced) {}
  double transmit_probability() override { return p_; }
  void on_slot_end(const Feedback&) override {
    if (advanced_ != nullptr) ++*advanced_;
  }
  std::uint64_t stationary_slots() const override {
    return ~std::uint64_t{0};
  }
  void on_non_delivery_slots(std::uint64_t count) override {
    if (advanced_ != nullptr) *advanced_ += count;
  }

 private:
  double p_;
  std::uint64_t* advanced_;
};

RunMetrics run_both_engines_must_match(const NodeFactory& factory,
                                       const ArrivalPattern& arrivals,
                                       std::uint64_t seed,
                                       const EngineOptions& options) {
  Xoshiro256 exact_rng(seed);
  Xoshiro256 batched_rng(seed);
  const RunMetrics exact =
      run_node_engine(factory, arrivals, exact_rng, options);
  const RunMetrics batched =
      run_node_engine_batched(factory, arrivals, batched_rng, options);
  EXPECT_EQ(exact.completed, batched.completed);
  EXPECT_EQ(exact.slots, batched.slots);
  EXPECT_EQ(exact.deliveries, batched.deliveries);
  EXPECT_EQ(exact.silence_slots, batched.silence_slots);
  EXPECT_EQ(exact.collision_slots, batched.collision_slots);
  EXPECT_EQ(exact.transmissions, batched.transmissions);
  EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                   batched.expected_transmissions);
  return batched;
}

TEST(BatchedNodeEngine, DefaultHintWorkloadIsBitIdentical) {
  // Protocols keeping the conservative stationary_slots() == 1 resolve
  // every busy slot with the exact engine's draws in the exact order, and
  // empty arrival gaps consume no randomness in either engine — so the
  // batched engine is a bit-identical drop-in, gaps and all.
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.2);
  };
  ArrivalPattern arrivals{0, 0, 0, 700, 700, 5000};
  const RunMetrics m =
      run_both_engines_must_match(factory, arrivals, 21, EngineOptions{});
  EXPECT_TRUE(m.completed);
}

TEST(BatchedNodeEngine, SkipsEmptyGapToTheCap) {
  // One undeliverable silent station and a second arrival the cap cuts
  // off: the batched engine must jump the gap and the tail in bulk and
  // still report exact per-outcome counts.
  Xoshiro256 rng(22);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<StationaryProb>(0.0);
  };
  ArrivalPattern arrivals{100, 400};
  EngineOptions opts;
  opts.max_slots = 5000;
  const RunMetrics m = run_node_engine_batched(factory, arrivals, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 5000u);
  EXPECT_EQ(m.silence_slots, 5000u);
  EXPECT_EQ(m.deliveries, 0u);
  EXPECT_EQ(m.transmissions, 0u);
}

TEST(BatchedNodeEngine, ArrivalsTruncateStationaryStretches) {
  // Both stations certify an unbounded stationary horizon, but the second
  // arrival must still cut the first station's stretch: every station's
  // bulk advance has to cover exactly the slots it was active for.
  Xoshiro256 rng(23);
  std::uint64_t advanced_first = 0;
  std::uint64_t advanced_second = 0;
  int instance = 0;
  const NodeFactory factory = [&](Xoshiro256&) {
    return std::make_unique<StationaryProb>(
        0.0, instance++ == 0 ? &advanced_first : &advanced_second);
  };
  ArrivalPattern arrivals{0, 100};
  EngineOptions opts;
  opts.max_slots = 300;
  const RunMetrics m = run_node_engine_batched(factory, arrivals, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 300u);
  EXPECT_EQ(advanced_first, 300u);
  EXPECT_EQ(advanced_second, 200u);
}

TEST(BatchedNodeEngine, PermanentCollisionStretchMatchesExactEngine) {
  // Two always-transmitting stationary stations: success probability 0,
  // silence probability 0 — the whole capped run is one bulk collision
  // stretch, and neither engine consumes randomness. Outcome counts are
  // identical; the realized transmission count of the skipped slots is
  // not materialized and shows up in expected_transmissions instead (the
  // documented accounting of the batched engine).
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<StationaryProb>(1.0);
  };
  EngineOptions opts;
  opts.max_slots = 200;
  Xoshiro256 exact_rng(24);
  Xoshiro256 batched_rng(24);
  const RunMetrics exact =
      run_node_engine(factory, batched_arrivals(2), exact_rng, opts);
  const RunMetrics batched =
      run_node_engine_batched(factory, batched_arrivals(2), batched_rng,
                              opts);
  EXPECT_FALSE(batched.completed);
  EXPECT_EQ(batched.collision_slots, 200u);
  EXPECT_EQ(exact.slots, batched.slots);
  EXPECT_EQ(exact.silence_slots, batched.silence_slots);
  EXPECT_EQ(exact.collision_slots, batched.collision_slots);
  EXPECT_EQ(exact.transmissions, 400u);  // 2 stations x 200 slots
  EXPECT_EQ(batched.transmissions, 0u);  // nothing materialized
  EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                   batched.expected_transmissions);
}

TEST(BatchedNodeEngine, StationaryStretchDeliversWithLatencies) {
  Xoshiro256 rng(25);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<StationaryProb>(0.25);
  };
  ArrivalPattern arrivals{7};
  EngineOptions opts;
  opts.record_deliveries = true;
  opts.record_latencies = true;
  LatencyMetrics latency;
  const RunMetrics m =
      run_node_engine_batched(factory, arrivals, rng, opts, &latency);
  ASSERT_TRUE(m.completed);
  ASSERT_EQ(m.delivery_slots.size(), 1u);
  EXPECT_GE(m.delivery_slots[0], 7u);  // cannot deliver before arrival
  EXPECT_EQ(m.slots, m.delivery_slots[0] + 1);
  ASSERT_EQ(latency.latencies.size(), 1u);
  EXPECT_EQ(latency.latencies[0], m.delivery_slots[0] - 7 + 1);
  ASSERT_EQ(m.latencies.size(), 1u);
  EXPECT_EQ(m.latencies[0], latency.latencies[0]);
  EXPECT_EQ(m.transmissions, 1u);  // only the success slot materializes
}

TEST(BatchedNodeEngine, ExpectedTransmissionsIsUnbiasedOverStretches) {
  // Two stationary stations with p = 0.4 (p_sum = 0.8): every run is one
  // or two bulk stretches ending in a success. The stretch accounting
  // must credit p_sum per elapsed slot including the success slot (Wald)
  // — crediting the realized 1 instead would bias the mean by
  // 1 - p_sum = +0.2 per delivery, far outside the tolerance below.
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<StationaryProb>(0.4);
  };
  const std::uint64_t runs = 20000;
  double exact_sum = 0.0;
  double batched_sum = 0.0;
  for (std::uint64_t r = 0; r < runs; ++r) {
    Xoshiro256 exact_rng = Xoshiro256::stream(91, r);
    Xoshiro256 batched_rng = Xoshiro256::stream(92, r);
    exact_sum += run_node_engine(factory, batched_arrivals(2), exact_rng,
                                 EngineOptions{})
                     .expected_transmissions;
    batched_sum += run_node_engine_batched(factory, batched_arrivals(2),
                                           batched_rng, EngineOptions{})
                       .expected_transmissions;
  }
  const double exact_mean = exact_sum / static_cast<double>(runs);
  const double batched_mean = batched_sum / static_cast<double>(runs);
  // Means are ~2.67 with per-run stddev ~2; 20k runs put the combined
  // standard error near 0.02, so 0.1 covers the Monte-Carlo noise while
  // catching the 0.4-per-run bias of the wrong convention.
  EXPECT_NEAR(exact_mean, batched_mean, 0.1);
}

TEST(BatchedNodeEngine, RejectsUnsortedArrivalsAndEmptyWorkloads) {
  Xoshiro256 rng(26);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<AlwaysTransmit>();
  };
  ArrivalPattern unsorted{5, 3, 1};
  EXPECT_THROW(
      run_node_engine_batched(factory, unsorted, rng, EngineOptions{}),
      ContractViolation);
  EXPECT_THROW(run_node_engine_batched(factory, {}, rng, EngineOptions{}),
               ContractViolation);
}

TEST(NodeEngine, ValidatedMetricsInvariants) {
  Xoshiro256 rng(11);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<FixedProb>(0.05);
  };
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(20), rng, EngineOptions{});
  // validate() ran inside; spot-check the identities here as well.
  EXPECT_EQ(m.silence_slots + m.success_slots + m.collision_slots, m.slots);
  EXPECT_EQ(m.success_slots, m.deliveries);
  EXPECT_GE(m.transmissions, m.deliveries);
}

}  // namespace
}  // namespace ucr

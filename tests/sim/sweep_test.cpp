#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "core/one_fail_adaptive.hpp"
#include "core/registry.hpp"
#include "protocols/known_k.hpp"
#include "sim/arrival.hpp"
#include "sim/resultio.hpp"

namespace ucr {
namespace {

std::vector<SweepPoint> small_grid() {
  std::vector<SweepPoint> grid;
  for (const auto& factory : paper_protocols()) {
    for (const std::uint64_t k : {20, 50}) {
      grid.push_back(SweepPoint::fair(factory, k, 4, 2011));
    }
  }
  grid.push_back(
      SweepPoint::node(make_one_fail_factory(), batched_arrivals(25), 3, 7));
  // One batched-engine cell: the fast path must be just as deterministic
  // across thread counts and dispatch orders as the exact engines.
  EngineOptions batched;
  batched.batched = true;
  grid.push_back(SweepPoint::fair(make_known_k_factory(), 40, 4, 13, batched));
  return grid;
}

std::string csv_of(const std::vector<AggregateResult>& results) {
  std::vector<AggregateRow> rows;
  for (const auto& r : results) rows.push_back(AggregateRow::from(r));
  std::ostringstream os;
  write_aggregate_csv(os, rows);
  return os.str();
}

TEST(SweepRunner, MatchesSerialExperimentsExactly) {
  const auto factory = make_one_fail_factory();
  const AggregateResult serial =
      run_fair_experiment(factory, 100, 5, 42, {});
  const auto swept =
      SweepRunner(SweepOptions{4}).run({SweepPoint::fair(factory, 100, 5, 42)});
  ASSERT_EQ(swept.size(), 1u);
  ASSERT_EQ(swept[0].details.size(), serial.details.size());
  for (std::size_t r = 0; r < serial.details.size(); ++r) {
    EXPECT_EQ(swept[0].details[r].slots, serial.details[r].slots);
    EXPECT_EQ(swept[0].details[r].deliveries, serial.details[r].deliveries);
  }
  EXPECT_EQ(swept[0].makespan.mean, serial.makespan.mean);
  EXPECT_EQ(swept[0].ratio.mean, serial.ratio.mean);
}

TEST(SweepRunner, ByteIdenticalCsvAcrossThreadCounts) {
  const auto grid = small_grid();
  const auto one = SweepRunner(SweepOptions{1}).run(grid);
  const auto eight = SweepRunner(SweepOptions{8}).run(grid);
  EXPECT_EQ(csv_of(one), csv_of(eight));
}

TEST(SweepRunner, IdenticalPerRunMetricsAcrossThreadCounts) {
  const auto grid = small_grid();
  const auto one = SweepRunner(SweepOptions{1}).run(grid);
  const auto eight = SweepRunner(SweepOptions{8}).run(grid);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t cell = 0; cell < one.size(); ++cell) {
    ASSERT_EQ(one[cell].details.size(), eight[cell].details.size());
    EXPECT_EQ(one[cell].protocol, eight[cell].protocol);
    for (std::size_t r = 0; r < one[cell].details.size(); ++r) {
      EXPECT_EQ(one[cell].details[r].slots, eight[cell].details[r].slots);
      EXPECT_EQ(one[cell].details[r].collision_slots,
                eight[cell].details[r].collision_slots);
    }
  }
}

TEST(SweepRunner, ResultsArriveInGridOrder) {
  const auto grid = small_grid();
  const auto results = SweepRunner(SweepOptions{8}).run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    EXPECT_EQ(results[cell].protocol, grid[cell].factory.name);
    const std::uint64_t expected_k = grid[cell].arrivals.empty()
                                         ? grid[cell].k
                                         : grid[cell].arrivals.size();
    EXPECT_EQ(results[cell].k, expected_k);
    EXPECT_EQ(results[cell].runs, grid[cell].runs);
  }
}

TEST(SweepRunner, NodeCellMatchesSerialNodeExperiment) {
  const auto factory = make_one_fail_factory();
  const auto arrivals = batched_arrivals(30);
  const AggregateResult serial =
      run_node_experiment(factory, arrivals, 3, 11, {});
  const auto swept = SweepRunner(SweepOptions{4})
                         .run({SweepPoint::node(factory, arrivals, 3, 11)});
  ASSERT_EQ(swept.size(), 1u);
  ASSERT_EQ(swept[0].details.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(swept[0].details[r].slots, serial.details[r].slots);
  }
}

TEST(SweepRunner, RejectsMalformedCellsBeforeRunning) {
  ProtocolFactory node_only;
  node_only.name = "node-only";
  node_only.node = [](std::uint64_t, Xoshiro256&) {
    return std::unique_ptr<NodeProtocol>(nullptr);
  };
  SweepPoint bad = SweepPoint::fair(node_only, 10, 1, 1);
  EXPECT_THROW(SweepRunner().run({bad}), ContractViolation);

  SweepPoint zero_runs = SweepPoint::fair(make_known_k_factory(), 10, 0, 1);
  EXPECT_THROW(SweepRunner().run({zero_runs}), ContractViolation);

  ProtocolFactory fair_only = make_known_k_factory();
  fair_only.node = nullptr;
  SweepPoint bad_node =
      SweepPoint::node(fair_only, batched_arrivals(5), 1, 1);
  EXPECT_THROW(SweepRunner().run({bad_node}), ContractViolation);
}

TEST(SweepRunner, PropagatesWorkItemExceptions) {
  ProtocolFactory throwing;
  throwing.name = "throwing";
  throwing.fair_slot =
      [](std::uint64_t) -> std::unique_ptr<FairSlotProtocol> {
    throw std::runtime_error("factory exploded");
  };
  std::vector<SweepPoint> grid{
      SweepPoint::fair(make_known_k_factory(), 20, 2, 1),
      SweepPoint::fair(throwing, 20, 2, 1)};
  EXPECT_THROW(SweepRunner(SweepOptions{4}).run(grid), std::runtime_error);
}

TEST(SweepRunner, LargestFirstDispatchIsByteIdentical) {
  // Size-aware (largest-first) dispatch permutes only the submission
  // order; the pre-assigned result slots keep every output bit identical
  // across dispatch orders and thread counts — k = 10^7-style skew is
  // purely a wall-clock concern. Skewed grid: one big cell amid small
  // ones.
  std::vector<SweepPoint> grid;
  const auto genie = make_known_k_factory();
  for (const std::uint64_t k : {5, 2000, 50, 11, 400}) {
    grid.push_back(SweepPoint::fair(genie, k, 3, 99));
  }
  SweepOptions serial;
  serial.threads = 1;
  serial.largest_first = false;
  SweepOptions parallel_largest;
  parallel_largest.threads = 8;
  parallel_largest.largest_first = true;
  SweepOptions parallel_grid_order;
  parallel_grid_order.threads = 8;
  parallel_grid_order.largest_first = false;

  const std::string baseline = csv_of(SweepRunner(serial).run(grid));
  EXPECT_EQ(baseline, csv_of(SweepRunner(parallel_largest).run(grid)));
  EXPECT_EQ(baseline, csv_of(SweepRunner(parallel_grid_order).run(grid)));
}

TEST(SweepRunner, BatchedCellsMatchSerialBatchedRuns) {
  const auto factory = make_known_k_factory();
  EngineOptions batched;
  batched.batched = true;
  const AggregateResult serial =
      run_fair_experiment(factory, 120, 5, 42, batched);
  const auto swept = SweepRunner(SweepOptions{4}).run(
      {SweepPoint::fair(factory, 120, 5, 42, batched)});
  ASSERT_EQ(swept.size(), 1u);
  for (std::size_t r = 0; r < serial.details.size(); ++r) {
    EXPECT_EQ(swept[0].details[r].slots, serial.details[r].slots);
  }
}

TEST(SweepRunner, ZeroThreadsMeansHardwareConcurrency) {
  EXPECT_GE(SweepRunner().threads(), 1u);
  EXPECT_EQ(SweepRunner(SweepOptions{3}).threads(), 3u);
}

TEST(SweepRunner, StreamingEmitsEveryCellInGridOrder) {
  const auto grid = small_grid();
  const auto collected = SweepRunner(SweepOptions{1}).run(grid);

  for (const unsigned threads : {1u, 4u}) {
    std::vector<std::size_t> order;
    std::vector<AggregateResult> streamed(grid.size());
    SweepRunner(SweepOptions{threads})
        .run_streaming(grid,
                       [&](std::size_t cell, AggregateResult&& result) {
                         order.push_back(cell);
                         streamed[cell] = std::move(result);
                       });
    ASSERT_EQ(order.size(), grid.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i);  // grid order, not completion order
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(streamed[i].makespan.mean, collected[i].makespan.mean);
      EXPECT_EQ(streamed[i].details.size(), collected[i].details.size());
    }
  }
}

TEST(SweepRunner, StreamingPropagatesSinkExceptions) {
  const auto grid = small_grid();
  EXPECT_THROW(SweepRunner(SweepOptions{2}).run_streaming(
                   grid,
                   [](std::size_t cell, AggregateResult&&) {
                     if (cell == 1) throw std::runtime_error("sink failed");
                   }),
               std::runtime_error);
}

TEST(SweepRunner, PerRunArrivalGeneratorIsDeterministic) {
  // A node_per_run cell: every run gets its own pattern, derived purely
  // from the run index — so results are identical for any thread count.
  const auto factory = make_one_fail_factory();
  const auto generator = [](std::uint64_t run) {
    // Staggered arrivals whose shape depends on the run.
    ArrivalPattern pattern;
    for (std::uint64_t i = 0; i < 20; ++i) {
      pattern.push_back(i * (1 + run % 3));
    }
    return pattern;
  };
  const auto point = SweepPoint::node_per_run(factory, 20, generator, 6, 11);
  const auto serial = SweepRunner(SweepOptions{1}).run({point});
  const auto parallel = SweepRunner(SweepOptions{4}).run({point});
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(serial[0].details.size(), 6u);
  EXPECT_EQ(serial[0].k, 20u);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(serial[0].details[r].slots, parallel[0].details[r].slots);
  }
  // Runs with different workloads genuinely differ from a same-workload
  // cell (the generator is actually consulted).
  const auto uniform = SweepRunner(SweepOptions{1}).run(
      {SweepPoint::node(factory, generator(0), 6, 11)});
  bool any_difference = false;
  for (std::size_t r = 0; r < 6; ++r) {
    any_difference |=
        serial[0].details[r].slots != uniform[0].details[r].slots;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SweepRunner, PerRunCellRequiresNodeView) {
  ProtocolFactory fair_only = make_known_k_factory();
  fair_only.node = nullptr;
  const auto point = SweepPoint::node_per_run(
      fair_only, 10, [](std::uint64_t) { return batched_arrivals(10); }, 2,
      1);
  EXPECT_THROW(SweepRunner().run({point}), ContractViolation);
}

}  // namespace
}  // namespace ucr

#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "core/one_fail_adaptive.hpp"
#include "core/exp_backon_backoff.hpp"
#include "sim/fair_engine.hpp"
#include "sim/node_engine.hpp"

namespace ucr {
namespace {

TEST(DownsampledSeries, RejectsZeroStride) {
  EXPECT_THROW(DownsampledSeries(0), ContractViolation);
}

TEST(DownsampledSeries, KeepsEveryStrideth) {
  DownsampledSeries series(3);
  for (std::uint64_t s = 0; s < 10; ++s) {
    series.on_slot(SlotView{s, 5, 0.2, SlotOutcome::kSilence});
  }
  EXPECT_EQ(series.observed_slots(), 10u);
  ASSERT_EQ(series.series().size(), 4u);  // slots 0, 3, 6, 9
  EXPECT_EQ(series.series()[1].slot, 3u);
}

TEST(DownsampledSeries, KeepsSuccessesWhenAsked) {
  DownsampledSeries series(100, /*keep_successes=*/true);
  series.on_slot(SlotView{0, 5, 0.2, SlotOutcome::kSilence});   // kept (0%100)
  series.on_slot(SlotView{1, 5, 0.2, SlotOutcome::kCollision}); // dropped
  series.on_slot(SlotView{2, 5, 0.2, SlotOutcome::kSuccess});   // kept
  ASSERT_EQ(series.series().size(), 2u);
  EXPECT_EQ(series.series()[1].outcome, SlotOutcome::kSuccess);
}

TEST(Observer, FairSlotEngineCallsOncePerSlot) {
  DownsampledSeries series(1);
  OneFailAdaptive protocol;
  Xoshiro256 rng(1);
  EngineOptions opts;
  opts.observer = &series;
  const RunMetrics m = run_fair_slot_engine(protocol, 50, rng, opts);
  EXPECT_EQ(series.observed_slots(), m.slots);
  EXPECT_EQ(series.series().size(), m.slots);
  // Success slots in the series match the metrics.
  std::uint64_t successes = 0;
  for (const auto& v : series.series()) {
    if (v.outcome == SlotOutcome::kSuccess) ++successes;
  }
  EXPECT_EQ(successes, m.success_slots);
}

TEST(Observer, ProbabilityExposesEstimatorOnAtSteps) {
  // SlotView::probability on an AT step is 1/kappa~, so the very first
  // slot must report 1/(delta+1).
  DownsampledSeries series(1);
  OneFailAdaptive protocol;
  Xoshiro256 rng(2);
  EngineOptions opts;
  opts.observer = &series;
  opts.max_slots = 4;
  (void)run_fair_slot_engine(protocol, 100, rng, opts);
  ASSERT_GE(series.series().size(), 1u);
  EXPECT_NEAR(series.series()[0].probability, 1.0 / 3.72, 1e-12);
}

TEST(Observer, ActiveCountIsPreDeliveryDensity) {
  DownsampledSeries series(1);
  OneFailAdaptive protocol;
  Xoshiro256 rng(3);
  EngineOptions opts;
  opts.observer = &series;
  const RunMetrics m = run_fair_slot_engine(protocol, 20, rng, opts);
  ASSERT_TRUE(m.completed);
  // First slot sees all 20; the last success slot sees exactly 1.
  EXPECT_EQ(series.series().front().active, 20u);
  const auto& last = series.series().back();
  EXPECT_EQ(last.outcome, SlotOutcome::kSuccess);
  EXPECT_EQ(last.active, 1u);
  // Active is non-increasing along the run.
  for (std::size_t i = 1; i < series.series().size(); ++i) {
    EXPECT_LE(series.series()[i].active, series.series()[i - 1].active);
  }
}

TEST(Observer, NodeEngineCallsOncePerSlot) {
  // The exact node engine materializes every slot, so metrics and
  // observer-derived traces must agree slot for slot — same contract the
  // fair engines honour.
  DownsampledSeries series(1);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<OneFailAdaptiveNode>();
  };
  Xoshiro256 rng(5);
  EngineOptions opts;
  opts.observer = &series;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(30), rng, opts);
  EXPECT_EQ(series.observed_slots(), m.slots);
  EXPECT_EQ(series.series().size(), m.slots);
  std::uint64_t successes = 0;
  for (const auto& v : series.series()) {
    if (v.outcome == SlotOutcome::kSuccess) ++successes;
  }
  EXPECT_EQ(successes, m.success_slots);
}

TEST(Observer, NodeEngineSeesEmptyArrivalGapSlots) {
  // The PR 2 window-engine pending==0 regression, ported: the slots of an
  // empty arrival gap are exactly the ones the batched node engine
  // bulk-skips, and the exact engine must still hand every one of them to
  // the observer — as silence, with zero active stations and probability
  // 0 — so observer traces never diverge from RunMetrics.
  DownsampledSeries series(1);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<OneFailAdaptiveNode>();
  };
  Xoshiro256 rng(6);
  EngineOptions opts;
  opts.observer = &series;
  opts.record_deliveries = true;
  ArrivalPattern arrivals{0, 200};
  const RunMetrics m = run_node_engine(factory, arrivals, rng, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(series.observed_slots(), m.slots);
  // Every slot after the first delivery and before slot 200 is an empty
  // gap slot: silence, no active stations, probability 0.
  const std::uint64_t first_delivery = m.delivery_slots.empty()
                                           ? series.series().size()
                                           : m.delivery_slots.front();
  bool saw_gap_slot = false;
  for (const auto& v : series.series()) {
    if (v.slot > first_delivery && v.slot < 200) {
      saw_gap_slot = true;
      EXPECT_EQ(v.outcome, SlotOutcome::kSilence);
      EXPECT_EQ(v.active, 0u);
      EXPECT_DOUBLE_EQ(v.probability, 0.0);
    }
  }
  EXPECT_TRUE(saw_gap_slot);
}

TEST(Observer, BatchedNodeEngineRejectsObservers) {
  // Skipped stretches are never materialized: attaching a per-slot
  // observer to the batched node engine is a contract violation, exactly
  // as for the batched fair engines.
  DownsampledSeries series(1);
  const NodeFactory factory = [](Xoshiro256&) {
    return std::make_unique<OneFailAdaptiveNode>();
  };
  Xoshiro256 rng(7);
  EngineOptions opts;
  opts.observer = &series;
  EXPECT_THROW(
      run_node_engine_batched(factory, batched_arrivals(10), rng, opts),
      ContractViolation);
}

TEST(Observer, WindowEngineReportsHazards) {
  DownsampledSeries series(1);
  ExpBackonBackoff schedule;
  Xoshiro256 rng(4);
  EngineOptions opts;
  opts.observer = &series;
  opts.max_slots = 2;  // first sawtooth window has exactly 2 slots
  (void)run_fair_window_engine(schedule, 10, rng, opts);
  ASSERT_EQ(series.series().size(), 2u);
  EXPECT_DOUBLE_EQ(series.series()[0].probability, 0.5);  // 1/(2-0)
  EXPECT_DOUBLE_EQ(series.series()[1].probability, 1.0);  // 1/(2-1)
}

}  // namespace
}  // namespace ucr

#include "sim/resultio.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "protocols/known_k.hpp"

namespace ucr {
namespace {

TEST(ParseCsvLine, PlainCells) {
  const auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(ParseCsvLine, EmptyCells) {
  const auto cells = parse_csv_line(",x,");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[2], "");
}

TEST(ParseCsvLine, QuotedCellsWithCommasAndQuotes) {
  const auto cells = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\",z");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "z");
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  const auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(ParseCsvLine, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv_line("\"oops"), ContractViolation);
}

TEST(ParseCsvLine, RoundTripsCsvWriterEscaping) {
  for (const auto& original :
       {std::string("plain"), std::string("with,comma"),
        std::string("with \"quotes\""), std::string("")}) {
    const auto cells = parse_csv_line(CsvWriter::escape(original));
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0], original);
  }
}

TEST(ResultIo, RoundTripPreservesRows) {
  std::vector<AggregateRow> rows(2);
  rows[0].protocol = "One-Fail Adaptive";
  rows[0].k = 1000;
  rows[0].runs = 10;
  rows[0].mean_makespan = 7432.5;
  rows[0].stddev_makespan = 51.25;
  rows[0].min_makespan = 7300;
  rows[0].p25_makespan = 7390.25;
  rows[0].median_makespan = 7430;
  rows[0].p75_makespan = 7477.5;
  rows[0].p95_makespan = 7539.125;
  rows[0].max_makespan = 7550;
  rows[0].mean_ratio = 7.4325;
  rows[0].latency_p50 = 12.5;
  rows[0].latency_p95 = 91.25;
  rows[0].latency_p99 = 140.125;
  rows[0].energy_mean = 3.625;
  rows[0].energy_max = 17;
  rows[0].spec_hash = "2eed288eb0fae51d";
  rows[1].protocol = "Log-Fails Adaptive (2)";  // name with parentheses
  rows[1].k = 100;
  rows[1].runs = 5;
  rows[1].incomplete_runs = 1;
  rows[1].mean_makespan = 9034;
  rows[1].mean_ratio = 90.34;

  std::stringstream ss;
  write_aggregate_csv(ss, rows);
  const auto back = read_aggregate_csv(ss);

  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].protocol, rows[0].protocol);
  EXPECT_EQ(back[0].k, rows[0].k);
  EXPECT_EQ(back[0].runs, rows[0].runs);
  EXPECT_NEAR(back[0].mean_makespan, rows[0].mean_makespan, 1e-5);
  EXPECT_NEAR(back[0].stddev_makespan, rows[0].stddev_makespan, 1e-5);
  EXPECT_NEAR(back[0].p25_makespan, rows[0].p25_makespan, 1e-5);
  EXPECT_NEAR(back[0].median_makespan, rows[0].median_makespan, 1e-5);
  EXPECT_NEAR(back[0].p75_makespan, rows[0].p75_makespan, 1e-5);
  EXPECT_NEAR(back[0].p95_makespan, rows[0].p95_makespan, 1e-5);
  EXPECT_NEAR(back[0].mean_ratio, rows[0].mean_ratio, 1e-5);
  EXPECT_NEAR(back[0].latency_p50, rows[0].latency_p50, 1e-5);
  EXPECT_NEAR(back[0].latency_p95, rows[0].latency_p95, 1e-5);
  EXPECT_NEAR(back[0].latency_p99, rows[0].latency_p99, 1e-5);
  EXPECT_NEAR(back[0].energy_mean, rows[0].energy_mean, 1e-5);
  EXPECT_NEAR(back[0].energy_max, rows[0].energy_max, 1e-5);
  EXPECT_EQ(back[0].spec_hash, rows[0].spec_hash);
  EXPECT_EQ(back[1].incomplete_runs, 1u);
  EXPECT_EQ(back[1].protocol, rows[1].protocol);
  EXPECT_EQ(back[1].spec_hash, "");  // hand-built rows carry no provenance
}

TEST(ResultIo, FromAggregateResult) {
  const auto factory = make_known_k_factory();
  const AggregateResult res = run_fair_experiment(factory, 50, 4, 1, {});
  const AggregateRow row = AggregateRow::from(res);
  EXPECT_EQ(row.protocol, res.protocol);
  EXPECT_EQ(row.k, 50u);
  EXPECT_EQ(row.runs, 4u);
  EXPECT_DOUBLE_EQ(row.mean_makespan, res.makespan.mean);
  EXPECT_DOUBLE_EQ(row.p25_makespan, res.makespan.p25);
  EXPECT_DOUBLE_EQ(row.median_makespan, res.makespan.median);
  EXPECT_DOUBLE_EQ(row.p75_makespan, res.makespan.p75);
  EXPECT_DOUBLE_EQ(row.p95_makespan, res.makespan.p95);
  EXPECT_DOUBLE_EQ(row.mean_ratio, res.ratio.mean);
  // The percentile spread brackets the extremes the row also carries.
  EXPECT_LE(row.min_makespan, row.p25_makespan);
  EXPECT_LE(row.p25_makespan, row.median_makespan);
  EXPECT_LE(row.median_makespan, row.p75_makespan);
  EXPECT_LE(row.p75_makespan, row.p95_makespan);
  EXPECT_LE(row.p95_makespan, row.max_makespan);
}

TEST(ResultIo, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(read_aggregate_csv(empty), ContractViolation);

  std::stringstream bad_header("who,knows\n1,2\n");
  EXPECT_THROW(read_aggregate_csv(bad_header), ContractViolation);

  std::stringstream bad_cols(
      "protocol,k,runs,incomplete_runs,mean_makespan,stddev,min,p25,median,"
      "p75,p95,max,mean_ratio,latency_p50,latency_p95,latency_p99,"
      "energy_mean,energy_max,spec_hash\nX,1,2\n");
  EXPECT_THROW(read_aggregate_csv(bad_cols), ContractViolation);

  std::stringstream bad_number(
      "protocol,k,runs,incomplete_runs,mean_makespan,stddev,min,p25,median,"
      "p75,p95,max,mean_ratio,latency_p50,latency_p95,latency_p99,"
      "energy_mean,energy_max,spec_hash\nX,abc,2,0,1,1,1,1,1,1,1,1,1,0,0,0,"
      "0,0,h\n");
  EXPECT_THROW(read_aggregate_csv(bad_number), ContractViolation);

  // Superseded formats are rejected loudly, not misread: the
  // pre-percentile 9-column layout, the pre-latency/provenance 13-column
  // layout, and the pre-energy 17-column layout.
  std::stringstream nine_columns(
      "protocol,k,runs,incomplete_runs,mean_makespan,stddev,min,max,"
      "mean_ratio\nX,1,2,0,1,1,1,1,1\n");
  EXPECT_THROW(read_aggregate_csv(nine_columns), ContractViolation);
  std::stringstream thirteen_columns(
      "protocol,k,runs,incomplete_runs,mean_makespan,stddev,min,p25,median,"
      "p75,p95,max,mean_ratio\nX,1,2,0,1,1,1,1,1,1,1,1,1\n");
  EXPECT_THROW(read_aggregate_csv(thirteen_columns), ContractViolation);
  std::stringstream seventeen_columns(
      "protocol,k,runs,incomplete_runs,mean_makespan,stddev,min,p25,median,"
      "p75,p95,max,mean_ratio,latency_p50,latency_p95,latency_p99,"
      "spec_hash\nX,1,2,0,1,1,1,1,1,1,1,1,1,0,0,0,h\n");
  EXPECT_THROW(read_aggregate_csv(seventeen_columns), ContractViolation);
}

TEST(ResultIo, SkipsBlankLines) {
  std::vector<AggregateRow> rows(1);
  rows[0].protocol = "X";
  rows[0].k = 10;
  std::stringstream ss;
  write_aggregate_csv(ss, rows);
  ss << "\n";
  EXPECT_EQ(read_aggregate_csv(ss).size(), 1u);
}

}  // namespace
}  // namespace ucr

#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(Registry, PaperProtocolsMatchFigureOne) {
  const auto protocols = paper_protocols();
  ASSERT_EQ(protocols.size(), 5u);
  EXPECT_EQ(protocols[0].name, "Log-Fails Adaptive (2)");
  EXPECT_EQ(protocols[1].name, "Log-Fails Adaptive (10)");
  EXPECT_EQ(protocols[2].name, "One-Fail Adaptive");
  EXPECT_EQ(protocols[3].name, "Exp Back-on/Back-off");
  EXPECT_EQ(protocols[4].name, "LogLog-Iterated Back-off");
}

TEST(Registry, EveryProtocolHasFairAndNodeViews) {
  for (const auto& p : all_protocols()) {
    EXPECT_TRUE(p.has_fair()) << p.name;
    EXPECT_TRUE(static_cast<bool>(p.node)) << p.name;
  }
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& p : all_protocols()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate: " << p.name;
  }
}

TEST(Registry, FactoriesProduceFreshInstances) {
  const auto protocols = paper_protocols();
  const auto& ofa = protocols[2];
  auto a = ofa.fair_slot(10);
  auto b = ofa.fair_slot(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  // Advancing one must not affect the other.
  a->on_slot_end(false);
  EXPECT_DOUBLE_EQ(b->transmit_probability(), 1.0 / 3.72);
}

TEST(Registry, ExtrasIncludeGenieAndExponential) {
  const auto extras = extra_protocols();
  ASSERT_EQ(extras.size(), 2u);
  EXPECT_NE(extras[0].name.find("Exponential"), std::string::npos);
  EXPECT_NE(extras[1].name.find("genie"), std::string::npos);
}

TEST(Registry, AllIsPaperPlusExtras) {
  EXPECT_EQ(all_protocols().size(),
            paper_protocols().size() + extra_protocols().size());
}

TEST(FindProtocol, ExactMatchWins) {
  const auto catalogue = all_protocols();
  EXPECT_EQ(find_protocol(catalogue, "One-Fail Adaptive").name,
            "One-Fail Adaptive");
  EXPECT_EQ(try_find_protocol(catalogue, "One-Fail Adaptive")->name,
            "One-Fail Adaptive");
}

TEST(FindProtocol, CaseInsensitiveFallback) {
  const auto catalogue = all_protocols();
  EXPECT_EQ(find_protocol(catalogue, "one-fail adaptive").name,
            "One-Fail Adaptive");
  EXPECT_EQ(find_protocol(catalogue, "LOG-FAILS ADAPTIVE (2)").name,
            "Log-Fails Adaptive (2)");
}

TEST(FindProtocol, AmbiguousCaseFoldRefusesToGuess) {
  std::vector<ProtocolFactory> catalogue = all_protocols();
  // Two entries that collide after case folding but not exactly.
  ProtocolFactory clone = catalogue[2];
  clone.name = "ONE-FAIL ADAPTIVE";
  catalogue.push_back(clone);
  EXPECT_EQ(try_find_protocol(catalogue, "one-fail adaptive"), nullptr);
  // The exact spellings still resolve.
  EXPECT_EQ(find_protocol(catalogue, "ONE-FAIL ADAPTIVE").name,
            "ONE-FAIL ADAPTIVE");
  EXPECT_EQ(find_protocol(catalogue, "One-Fail Adaptive").name,
            "One-Fail Adaptive");
}

TEST(FindProtocol, TypoGetsDidYouMeanSuggestion) {
  const auto catalogue = all_protocols();
  EXPECT_EQ(try_find_protocol(catalogue, "One-Fail Adaptve"), nullptr);
  try {
    find_protocol(catalogue, "LogLog-Iterated Backoff");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("LogLog-Iterated Back-off"), std::string::npos)
        << what;
  }
}

TEST(FindProtocol, EmptyCatalogueThrowsCleanly) {
  EXPECT_THROW(find_protocol({}, "anything"), ContractViolation);
}

}  // namespace
}  // namespace ucr

#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ucr {
namespace {

TEST(Registry, PaperProtocolsMatchFigureOne) {
  const auto protocols = paper_protocols();
  ASSERT_EQ(protocols.size(), 5u);
  EXPECT_EQ(protocols[0].name, "Log-Fails Adaptive (2)");
  EXPECT_EQ(protocols[1].name, "Log-Fails Adaptive (10)");
  EXPECT_EQ(protocols[2].name, "One-Fail Adaptive");
  EXPECT_EQ(protocols[3].name, "Exp Back-on/Back-off");
  EXPECT_EQ(protocols[4].name, "LogLog-Iterated Back-off");
}

TEST(Registry, EveryProtocolHasFairAndNodeViews) {
  for (const auto& p : all_protocols()) {
    EXPECT_TRUE(p.has_fair()) << p.name;
    EXPECT_TRUE(static_cast<bool>(p.node)) << p.name;
  }
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& p : all_protocols()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate: " << p.name;
  }
}

TEST(Registry, FactoriesProduceFreshInstances) {
  const auto protocols = paper_protocols();
  const auto& ofa = protocols[2];
  auto a = ofa.fair_slot(10);
  auto b = ofa.fair_slot(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  // Advancing one must not affect the other.
  a->on_slot_end(false);
  EXPECT_DOUBLE_EQ(b->transmit_probability(), 1.0 / 3.72);
}

TEST(Registry, ExtrasIncludeGenieAndExponential) {
  const auto extras = extra_protocols();
  ASSERT_EQ(extras.size(), 2u);
  EXPECT_NE(extras[0].name.find("Exponential"), std::string::npos);
  EXPECT_NE(extras[1].name.find("genie"), std::string::npos);
}

TEST(Registry, AllIsPaperPlusExtras) {
  EXPECT_EQ(all_protocols().size(),
            paper_protocols().size() + extra_protocols().size());
}

}  // namespace
}  // namespace ucr

#include "core/exp_backon_backoff.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(ExpBackonParams, Validation) {
  EXPECT_NO_THROW(ExpBackonParams{0.366}.validate());
  EXPECT_NO_THROW(ExpBackonParams{0.01}.validate());
  EXPECT_THROW(ExpBackonParams{0.0}.validate(), ContractViolation);
  EXPECT_THROW(ExpBackonParams{0.368}.validate(), ContractViolation);  // >1/e
  EXPECT_THROW(ExpBackonParams{-0.1}.validate(), ContractViolation);
}

TEST(Sawtooth, FirstPhaseWindows) {
  // Phase 1: w = 2 -> window 2; w = 2*0.634 = 1.268 -> window 2 (ceil);
  // w = 0.804 < 1 -> phase 2 begins at w = 4.
  ExpBackonBackoff sched(ExpBackonParams{0.366});
  EXPECT_EQ(sched.phase(), 1u);
  EXPECT_EQ(sched.next_window_slots(), 2u);
  EXPECT_EQ(sched.next_window_slots(), 2u);
  EXPECT_EQ(sched.phase(), 2u);
  EXPECT_EQ(sched.next_window_slots(), 4u);
}

TEST(Sawtooth, WindowsShrinkWithinAPhase) {
  ExpBackonBackoff sched(ExpBackonParams{0.2});
  std::vector<std::uint64_t> windows;
  std::uint64_t phase = sched.phase();
  // Collect one full phase starting at 2^3 = 8.
  while (sched.phase() != 4) (void)sched.next_window_slots();
  phase = 4;
  std::uint64_t prev = ~0ULL;
  while (sched.phase() == phase) {
    const std::uint64_t w = sched.next_window_slots();
    if (sched.phase() != phase && windows.empty()) break;
    windows.push_back(w);
    ASSERT_LE(w, prev);
    prev = w;
  }
  EXPECT_GE(windows.size(), 2u);
  EXPECT_EQ(windows.front(), 16u);  // 2^4
}

TEST(Sawtooth, PhaseStartsDouble) {
  ExpBackonBackoff sched(ExpBackonParams{0.366});
  std::vector<std::uint64_t> phase_starts;
  std::uint64_t last_phase = 0;
  for (int i = 0; i < 200 && phase_starts.size() < 6; ++i) {
    const std::uint64_t phase = sched.phase();
    const std::uint64_t w = sched.next_window_slots();
    if (phase != last_phase) {
      phase_starts.push_back(w);
      last_phase = phase;
    }
  }
  ASSERT_GE(phase_starts.size(), 5u);
  for (std::size_t i = 1; i < phase_starts.size(); ++i) {
    EXPECT_EQ(phase_starts[i], 2 * phase_starts[i - 1]);
  }
}

TEST(Sawtooth, InnerLoopLengthMatchesGeometry) {
  // Within phase i, windows run while 2^i (1-delta)^j >= 1:
  // j <= i * log(2)/log(1/(1-delta)) — count them for phase 5, delta=0.366.
  ExpBackonBackoff sched(ExpBackonParams{0.366});
  while (sched.phase() != 5) (void)sched.next_window_slots();
  int count = 0;
  while (sched.phase() == 5) {
    (void)sched.next_window_slots();
    ++count;
  }
  // 2^5 = 32; windows: 32*0.634^j >= 1 -> j <= log(32)/log(1/0.634) = 7.6,
  // so j = 0..7 -> 8 windows.
  EXPECT_EQ(count, 8);
}

TEST(Sawtooth, TotalSlotsUpToPhaseIsLinearInTopWindow) {
  // Theorem 2's telescoping: slots up to the end of phase i are at most
  // 2^{i+1} (1 + 1/delta) (geometric sums in both loops).
  ExpBackonParams params{0.366};
  ExpBackonBackoff sched(params);
  std::uint64_t total = 0;
  while (sched.phase() <= 14) {
    total += sched.next_window_slots();
  }
  const double cap =
      std::ldexp(1.0, 15) * (1.0 + 1.0 / params.delta) +
      16.0 * 15.0;  // slack for per-window ceil() rounding
  EXPECT_LT(static_cast<double>(total), cap);
}

TEST(Sawtooth, AllWindowsAtLeastOne) {
  ExpBackonBackoff sched(ExpBackonParams{0.05});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(sched.next_window_slots(), 1u);
  }
}

TEST(ExpBackonFactory, ProvidesWindowAndNodeViews) {
  const auto f = make_exp_backon_factory();
  EXPECT_EQ(f.name, "Exp Back-on/Back-off");
  EXPECT_TRUE(static_cast<bool>(f.window));
  EXPECT_FALSE(static_cast<bool>(f.fair_slot));
  EXPECT_TRUE(static_cast<bool>(f.node));
  EXPECT_THROW(make_exp_backon_factory(ExpBackonParams{0.5}),
               ContractViolation);
}

}  // namespace
}  // namespace ucr

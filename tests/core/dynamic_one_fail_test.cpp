#include "core/dynamic_one_fail.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "sim/fair_engine.hpp"
#include "sim/node_engine.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

TEST(DynamicOneFailState, InitialState) {
  const DynamicOneFailState st(OneFailParams{2.72});
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);
  EXPECT_TRUE(st.in_fast_start());
  EXPECT_DOUBLE_EQ(st.fast_start_ceiling(), 7.44);
  EXPECT_DOUBLE_EQ(st.transmit_probability(), 1.0 / 3.72);
}

TEST(DynamicOneFailState, FastStartDoublesThenSweeps) {
  DynamicOneFailState st(OneFailParams{2.72});
  st.advance(false);  // 3.72 -> 7.44 (== ceiling, no reset)
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 7.44);
  st.advance(false);  // 14.88 > 7.44 -> reset to floor, ceiling 14.88
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);
  EXPECT_DOUBLE_EQ(st.fast_start_ceiling(), 14.88);
  st.advance(false);  // 7.44
  st.advance(false);  // 14.88 (== ceiling)
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 14.88);
  st.advance(false);  // 29.76 > 14.88 -> reset, ceiling 29.76
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);
}

TEST(DynamicOneFailState, IsolatedStationStaysLive) {
  // The sawtooth guarantees the transmission probabilities do not sum to a
  // convergent series: the floor probability 1/(delta+1) recurs forever.
  DynamicOneFailState st(OneFailParams{2.72});
  int floor_visits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (st.transmit_probability() > 0.25) ++floor_visits;
    st.advance(false);
  }
  EXPECT_GE(floor_visits, 10);  // revisited on every phase
}

TEST(DynamicOneFailState, DeliveryEndsFastStart) {
  DynamicOneFailState st(OneFailParams{2.72});
  for (int i = 0; i < 7; ++i) st.advance(false);
  st.advance(true);
  EXPECT_FALSE(st.in_fast_start());
  // Track mode: +1 per silent slot now.
  const double k0 = st.kappa_estimate();
  st.advance(false);
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), k0 + 1.0);
}

TEST(DynamicOneFailState, TrackModeMatchesOneFailDrift) {
  DynamicOneFailState st(OneFailParams{2.72});
  st.advance(true);  // enter track at the floor
  for (int i = 0; i < 20; ++i) st.advance(false);
  const double before = st.kappa_estimate();
  st.advance(true);
  EXPECT_NEAR(st.kappa_estimate(), before - 2.72, 1e-12);
  // Floor is respected.
  for (int i = 0; i < 50; ++i) st.advance(true);
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);
}

TEST(DynamicOneFail, SolvesStaticBatches) {
  const auto factory = make_dynamic_one_fail_factory();
  for (const std::uint64_t k : {1ULL, 10ULL, 1000ULL}) {
    const AggregateResult res = run_fair_experiment(factory, k, 5, 3, {});
    EXPECT_EQ(res.incomplete_runs, 0u) << "k=" << k;
  }
}

TEST(DynamicOneFail, StaticRatioWellBelowAlgorithmOne) {
  // Without the BT interleave (and with resweeps catching undershoots) the
  // static ratio lands around 3.1-3.3 — less than half of Algorithm 1's
  // 7.44, at the cost of the analyzed tail guarantee.
  const auto factory = make_dynamic_one_fail_factory();
  const AggregateResult res = run_fair_experiment(factory, 10000, 10, 4, {});
  EXPECT_GT(res.ratio.mean, 2.72);  // cannot beat the fair optimum e
  EXPECT_LT(res.ratio.mean, 5.0);
}

TEST(DynamicOneFailState, ResweepAfterSilenceLimit) {
  DynamicOneFailState st(OneFailParams{2.72});
  st.advance(true);  // enter track mode
  ASSERT_FALSE(st.in_fast_start());
  for (std::uint64_t i = 0; i < DynamicOneFailState::kSilenceLimit; ++i) {
    st.advance(false);
  }
  EXPECT_TRUE(st.in_fast_start());
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);
  EXPECT_DOUBLE_EQ(st.fast_start_ceiling(), 7.44);
}

TEST(DynamicOneFailState, DeliveryResetsSilentRun) {
  DynamicOneFailState st(OneFailParams{2.72});
  st.advance(true);
  for (std::uint64_t i = 0; i + 1 < DynamicOneFailState::kSilenceLimit; ++i) {
    st.advance(false);
  }
  EXPECT_EQ(st.silent_run(), DynamicOneFailState::kSilenceLimit - 1);
  st.advance(true);
  EXPECT_EQ(st.silent_run(), 0u);
  EXPECT_FALSE(st.in_fast_start());
}

TEST(DynamicOneFail, SurvivesPoissonArrivalsWhereOriginalLivelocks) {
  // lambda = 0.1 makes the published Algorithm 1 livelock (see
  // EXPERIMENTS.md); the dynamic variant must complete every run.
  const auto factory = make_dynamic_one_fail_factory();
  for (std::uint64_t r = 0; r < 5; ++r) {
    Xoshiro256 arrival_rng = Xoshiro256::stream(5, r);
    const auto arrivals = poisson_arrivals(300, 0.1, arrival_rng);
    Xoshiro256 rng = Xoshiro256::stream(6, r);
    const NodeFactory node_factory = [&](Xoshiro256&) {
      return std::make_unique<DynamicOneFailNode>();
    };
    EngineOptions opts;
    opts.max_slots = 300000;
    const RunMetrics run = run_node_engine(node_factory, arrivals, rng, opts);
    EXPECT_TRUE(run.completed) << "run " << r;
  }
}

TEST(DynamicOneFailNode, StopsOnOwnDelivery) {
  DynamicOneFailNode node;
  Feedback fb;
  fb.delivered_mine = true;
  node.on_slot_end(fb);
  EXPECT_TRUE(node.state().in_fast_start());
  EXPECT_DOUBLE_EQ(node.state().kappa_estimate(), 3.72);
}

TEST(DynamicOneFailFactory, Views) {
  const auto f = make_dynamic_one_fail_factory();
  EXPECT_EQ(f.name, "Dynamic One-Fail Adaptive");
  EXPECT_TRUE(static_cast<bool>(f.fair_slot));
  EXPECT_TRUE(static_cast<bool>(f.node));
  EXPECT_THROW(make_dynamic_one_fail_factory(OneFailParams{1.0}),
               ContractViolation);
}

}  // namespace
}  // namespace ucr

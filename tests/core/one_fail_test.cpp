#include "core/one_fail_adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(OneFailParams, DeltaUpperBoundValue) {
  // sum_{j=1..5} (5/6)^j = 2.9906121...
  EXPECT_NEAR(OneFailParams::delta_upper_bound(), 2.9906121399, 1e-9);
}

TEST(OneFailParams, Validation) {
  EXPECT_NO_THROW(OneFailParams{2.72}.validate());
  EXPECT_NO_THROW(OneFailParams{2.99}.validate());
  EXPECT_THROW(OneFailParams{2.718}.validate(), ContractViolation);  // <= e
  EXPECT_THROW(OneFailParams{3.0}.validate(), ContractViolation);
  EXPECT_THROW(OneFailParams{0.5}.validate(), ContractViolation);
}

TEST(OneFailState, InitialState) {
  const OneFailState st(OneFailParams{2.72});
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), 3.72);  // delta + 1
  EXPECT_EQ(st.sigma(), 0u);
  EXPECT_EQ(st.step(), 1u);
  EXPECT_FALSE(st.is_bt_step());  // step 1 is an AT step (1 mod 2 != 0)
}

TEST(OneFailState, StepParityAlternates) {
  OneFailState st(OneFailParams{2.72});
  EXPECT_FALSE(st.is_bt_step());
  st.advance(false);
  EXPECT_TRUE(st.is_bt_step());
  st.advance(false);
  EXPECT_FALSE(st.is_bt_step());
}

TEST(OneFailState, AtProbabilityIsInverseEstimator) {
  OneFailState st(OneFailParams{2.72});
  EXPECT_DOUBLE_EQ(st.transmit_probability(), 1.0 / 3.72);
}

TEST(OneFailState, BtProbabilityFollowsSigma) {
  OneFailState st(OneFailParams{2.72});
  st.advance(false);  // move to the BT step, no delivery
  ASSERT_TRUE(st.is_bt_step());
  // sigma = 0: p = 1/(1 + log2(1)) = 1.
  EXPECT_DOUBLE_EQ(st.transmit_probability(), 1.0);

  // Hear three deliveries (on BT steps), then check p = 1/(1+log2(4)) = 1/3.
  OneFailState st2(OneFailParams{2.72});
  for (int i = 0; i < 3; ++i) {
    st2.advance(false);         // AT -> BT
    ASSERT_TRUE(st2.is_bt_step());
    st2.advance(true);          // BT delivery heard
  }
  st2.advance(false);  // AT -> BT
  ASSERT_TRUE(st2.is_bt_step());
  EXPECT_EQ(st2.sigma(), 3u);
  EXPECT_DOUBLE_EQ(st2.transmit_probability(), 1.0 / 3.0);
}

TEST(OneFailState, AtStepIncrementsEstimator) {
  OneFailState st(OneFailParams{2.72});
  const double k0 = st.kappa_estimate();
  st.advance(false);  // silent AT step: line 11 adds 1
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), k0 + 1.0);
  st.advance(false);  // silent BT step: no estimator change
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), k0 + 1.0);
}

TEST(OneFailState, AtDeliveryNetsMinusDelta) {
  // Net AT-success update: +1 (line 11) then -(delta+1) (Task 2) = -delta,
  // floored at delta+1.
  OneFailParams params{2.72};
  OneFailState st(params);
  // Raise the estimator well above the floor first: 10 silent AT steps.
  for (int i = 0; i < 20; ++i) st.advance(false);
  const double before = st.kappa_estimate();
  ASSERT_FALSE(st.is_bt_step());
  st.advance(true);
  EXPECT_NEAR(st.kappa_estimate(), before - params.delta, 1e-12);
  EXPECT_EQ(st.sigma(), 1u);
}

TEST(OneFailState, BtDeliverySubtractsDelta) {
  OneFailParams params{2.72};
  OneFailState st(params);
  for (int i = 0; i < 21; ++i) st.advance(false);
  ASSERT_TRUE(st.is_bt_step());
  const double before = st.kappa_estimate();
  st.advance(true);
  EXPECT_NEAR(st.kappa_estimate(), before - params.delta, 1e-12);
}

TEST(OneFailState, EstimatorFlooredAtDeltaPlusOne) {
  OneFailParams params{2.72};
  OneFailState st(params);
  for (int i = 0; i < 100; ++i) st.advance(true);  // deliveries only
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), params.delta + 1.0);
}

TEST(OneFailState, SigmaCountsAllHeardDeliveries) {
  OneFailState st(OneFailParams{2.72});
  for (int i = 0; i < 10; ++i) st.advance(i % 2 == 0);
  EXPECT_EQ(st.sigma(), 5u);
}

TEST(OneFailAdaptive, FairViewDelegatesToState) {
  OneFailAdaptive p;
  EXPECT_DOUBLE_EQ(p.transmit_probability(), 1.0 / 3.72);
  p.on_slot_end(false);
  EXPECT_TRUE(p.state().is_bt_step());
}

TEST(OneFailAdaptiveNode, IgnoresOwnDeliverySlot) {
  OneFailAdaptiveNode node;
  const double kappa_before = node.state().kappa_estimate();
  Feedback fb;
  fb.delivered_mine = true;
  fb.transmitted = true;
  node.on_slot_end(fb);
  // Task 3: the station stops; its state must not advance.
  EXPECT_EQ(node.state().step(), 1u);
  EXPECT_DOUBLE_EQ(node.state().kappa_estimate(), kappa_before);
}

TEST(OneFailAdaptiveNode, AdvancesOnOtherFeedback) {
  OneFailAdaptiveNode node;
  Feedback fb;
  fb.heard_delivery = true;
  node.on_slot_end(fb);
  EXPECT_EQ(node.state().step(), 2u);
  EXPECT_EQ(node.state().sigma(), 1u);
}

TEST(OneFailFactory, ProvidesBothViews) {
  const auto f = make_one_fail_factory();
  EXPECT_EQ(f.name, "One-Fail Adaptive");
  EXPECT_TRUE(static_cast<bool>(f.fair_slot));
  EXPECT_FALSE(static_cast<bool>(f.window));
  EXPECT_TRUE(static_cast<bool>(f.node));
  EXPECT_THROW(make_one_fail_factory(OneFailParams{1.0}), ContractViolation);
}

TEST(OneFailState, ProbabilityAlwaysValidUnderRandomFeedback) {
  OneFailState st(OneFailParams{2.9});
  Xoshiro256 rng(77);
  for (int i = 0; i < 5000; ++i) {
    const double p = st.transmit_probability();
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
    st.advance(rng.next_bernoulli(0.2));
  }
}

}  // namespace
}  // namespace ucr

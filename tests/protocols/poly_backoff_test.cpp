#include "protocols/poly_backoff.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

TEST(PolyBackoffParams, Validation) {
  EXPECT_NO_THROW(PolyBackoffParams{2.0}.validate());
  EXPECT_NO_THROW(PolyBackoffParams{0.5}.validate());
  EXPECT_THROW(PolyBackoffParams{0.0}.validate(), ContractViolation);
  EXPECT_THROW(PolyBackoffParams{-1.0}.validate(), ContractViolation);
}

TEST(PolyBackoffSchedule, QuadraticWindows) {
  PolynomialBackoff sched(PolyBackoffParams{2.0});
  EXPECT_EQ(sched.next_window_slots(), 1u);
  EXPECT_EQ(sched.next_window_slots(), 4u);
  EXPECT_EQ(sched.next_window_slots(), 9u);
  EXPECT_EQ(sched.next_window_slots(), 16u);
}

TEST(PolyBackoffSchedule, SublinearExponentStillPositive) {
  PolynomialBackoff sched(PolyBackoffParams{0.5});
  EXPECT_EQ(sched.next_window_slots(), 1u);  // 1^0.5
  EXPECT_EQ(sched.next_window_slots(), 1u);  // round(1.41)
  EXPECT_EQ(sched.next_window_slots(), 2u);  // round(1.73)
}

TEST(PolyBackoffSchedule, MonotoneForCAboveOne) {
  PolynomialBackoff sched(PolyBackoffParams{1.5});
  std::uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t w = sched.next_window_slots();
    ASSERT_GE(w, prev);
    prev = w;
  }
}

TEST(PolyBackoff, SolvesBatch) {
  const auto factory = make_poly_backoff_factory(PolyBackoffParams{2.0});
  const AggregateResult res = run_fair_experiment(factory, 500, 5, 42, {});
  EXPECT_EQ(res.incomplete_runs, 0u);
}

TEST(PolyBackoff, RatioGrowsSuperlinearly) {
  // Monotone polynomial back-on has a superlinear batched makespan: the
  // ratio steps/k must grow markedly with k (measured ~5.2 at k=200 vs
  // ~10 at k=20000), unlike the paper's flat-ratio sawtooth.
  const auto poly = make_poly_backoff_factory(PolyBackoffParams{2.0});
  const AggregateResult small = run_fair_experiment(poly, 200, 5, 43, {});
  const AggregateResult large = run_fair_experiment(poly, 20000, 5, 43, {});
  EXPECT_GT(large.ratio.mean, small.ratio.mean + 2.0);
}

TEST(PolyBackoffFactory, NameIncludesExponent) {
  const auto f = make_poly_backoff_factory(PolyBackoffParams{2.0});
  EXPECT_NE(f.name.find("c=2"), std::string::npos);
  EXPECT_TRUE(static_cast<bool>(f.window));
  EXPECT_TRUE(static_cast<bool>(f.node));
}

}  // namespace
}  // namespace ucr

#include "protocols/known_k.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/fair_engine.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

TEST(KnownKGenie, ProbabilityIsOneOverRemaining) {
  KnownKGenie g(4);
  EXPECT_DOUBLE_EQ(g.transmit_probability(), 0.25);
  g.on_slot_end(true);
  EXPECT_DOUBLE_EQ(g.transmit_probability(), 1.0 / 3.0);
  g.on_slot_end(false);
  EXPECT_DOUBLE_EQ(g.transmit_probability(), 1.0 / 3.0);
  g.on_slot_end(true);
  g.on_slot_end(true);
  EXPECT_EQ(g.remaining(), 1u);
  EXPECT_DOUBLE_EQ(g.transmit_probability(), 1.0);
}

TEST(KnownKGenie, RejectsZeroK) {
  EXPECT_THROW(KnownKGenie(0), ContractViolation);
  EXPECT_THROW(KnownKGenieNode(0), ContractViolation);
}

TEST(KnownKGenieNode, TracksHeardDeliveries) {
  KnownKGenieNode node(3);
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 3.0);
  Feedback fb;
  fb.heard_delivery = true;
  node.on_slot_end(fb);
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.5);
}

TEST(KnownKGenie, AchievesRatioNearE) {
  // The genie's per-slot success probability is ~1/e, so its ratio must be
  // close to e (Section 5's optimum for fair protocols).
  const auto factory = make_known_k_factory();
  const AggregateResult res =
      run_fair_experiment(factory, 2000, 20, 123, {});
  EXPECT_EQ(res.incomplete_runs, 0u);
  EXPECT_NEAR(res.ratio.mean, 2.718, 0.15);
}

TEST(KnownKGenie, BeatsEveryKnowledgeFreeProtocol) {
  // Lower bound sanity: nothing fair can beat ratio e by more than noise.
  const auto factory = make_known_k_factory();
  const AggregateResult res = run_fair_experiment(factory, 500, 30, 9, {});
  EXPECT_GT(res.ratio.mean, 2.5);
}

}  // namespace
}  // namespace ucr

#include "protocols/stack_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "sim/node_engine.hpp"

namespace ucr {
namespace {

TEST(StackTreeAggregate, SingleMessageOneSlot) {
  Xoshiro256 rng(1);
  const RunMetrics m = run_stack_tree(1, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.success_slots, 1u);
}

TEST(StackTreeAggregate, TwoMessagesResolve) {
  Xoshiro256 rng(2);
  const RunMetrics m = run_stack_tree(2, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 2u);
  // First slot must be a collision (both at level 0).
  EXPECT_GE(m.collision_slots, 1u);
}

TEST(StackTreeAggregate, SolvesLargeBatches) {
  Xoshiro256 rng(3);
  const RunMetrics m = run_stack_tree(100000, rng, {});
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 100000u);
}

TEST(StackTreeAggregate, ThroughputMatchesTheory) {
  // Classic result: the binary tree algorithm resolves a batch of k in
  // ~2.885k slots in expectation (throughput ~0.3466).
  RunningStats ratios;
  for (int t = 0; t < 30; ++t) {
    Xoshiro256 rng = Xoshiro256::stream(4, t);
    const RunMetrics m = run_stack_tree(2000, rng, {});
    ratios.add(m.ratio());
  }
  EXPECT_NEAR(ratios.mean(), 2.885, 0.1);
}

TEST(StackTreeAggregate, RejectsZeroK) {
  Xoshiro256 rng(5);
  EXPECT_THROW(run_stack_tree(0, rng, {}), ContractViolation);
}

TEST(StackTreeAggregate, RespectsCap) {
  Xoshiro256 rng(6);
  EngineOptions opts;
  opts.max_slots = 10;
  const RunMetrics m = run_stack_tree(10000, rng, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.slots, 10u);
}

TEST(StackTreeNode, LevelDynamics) {
  Xoshiro256 rng(7);
  StackTreeNode node(rng);
  EXPECT_EQ(node.level(), 0u);
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0);

  // Collision while not transmitting: pushed one level down.
  Feedback fb;
  fb.heard_collision = true;
  fb.transmitted = false;
  StackTreeNode waiting(rng);
  // Move `waiting` off level 0 first: it transmitted into a collision and
  // lost the coin flip eventually; instead drive the deterministic path:
  waiting.on_slot_end(fb);  // spectator of a collision -> level 1
  EXPECT_EQ(waiting.level(), 1u);
  EXPECT_DOUBLE_EQ(waiting.transmit_probability(), 0.0);

  // Someone else's success: pop back to level 0.
  Feedback heard;
  heard.heard_delivery = true;
  waiting.on_slot_end(heard);
  EXPECT_EQ(waiting.level(), 0u);
}

TEST(StackTreeNode, CollisionSplitIsFairCoin) {
  Xoshiro256 rng(8);
  int stayed = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    StackTreeNode node(rng);
    Feedback fb;
    fb.heard_collision = true;
    fb.transmitted = true;
    node.on_slot_end(fb);
    if (node.level() == 0) ++stayed;
  }
  EXPECT_NEAR(static_cast<double>(stayed) / trials, 0.5, 0.02);
}

TEST(StackTreeNode, ThrowsWithoutCollisionDetection) {
  Xoshiro256 rng(9);
  const NodeFactory factory = [](Xoshiro256& r) {
    return std::make_unique<StackTreeNode>(r);
  };
  EngineOptions opts;  // collision_detection defaults to false
  opts.max_slots = 100;
  EXPECT_THROW(run_node_engine(factory, batched_arrivals(3), rng, opts),
               ContractViolation);
}

TEST(StackTreeNode, NodeEngineWithCdSolves) {
  Xoshiro256 rng(10);
  const NodeFactory factory = [](Xoshiro256& r) {
    return std::make_unique<StackTreeNode>(r);
  };
  EngineOptions opts;
  opts.collision_detection = true;
  const RunMetrics m =
      run_node_engine(factory, batched_arrivals(64), rng, opts);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.deliveries, 64u);
}

TEST(StackTreeCrossValidation, AggregateMatchesNodeEngine) {
  // The aggregate stack simulation and the per-node CD protocol must agree
  // in distribution; compare mean makespans over many runs.
  const std::uint64_t k = 64;
  const int runs = 150;
  RunningStats agg, node;
  for (int t = 0; t < runs; ++t) {
    Xoshiro256 rng_a = Xoshiro256::stream(11, t);
    agg.add(static_cast<double>(run_stack_tree(k, rng_a, {}).slots));

    Xoshiro256 rng_n = Xoshiro256::stream(12, t);
    const NodeFactory factory = [](Xoshiro256& r) {
      return std::make_unique<StackTreeNode>(r);
    };
    EngineOptions opts;
    opts.collision_detection = true;
    node.add(static_cast<double>(
        run_node_engine(factory, batched_arrivals(k), rng_n, opts).slots));
  }
  const double se = std::hypot(agg.stddev(), node.stddev()) /
                    std::sqrt(static_cast<double>(runs));
  EXPECT_NEAR(agg.mean(), node.mean(), 4.0 * se + 0.02 * agg.mean());
}

}  // namespace
}  // namespace ucr

#include "protocols/log_fails_adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace ucr {
namespace {

LogFailsParams params_with(double xi_t, double epsilon = 0.0) {
  LogFailsParams p;
  p.xi_t = xi_t;
  p.epsilon = epsilon;
  return p;
}

// Feeds silent steps until `n` AT fails have accumulated.
void feed_at_fails(LogFailsState& st, std::uint64_t n) {
  std::uint64_t fails = 0;
  while (fails < n) {
    if (!st.is_bt_step()) ++fails;
    st.advance(false);
  }
}

TEST(LogFailsParams, Validation) {
  EXPECT_NO_THROW(params_with(0.5).validate());
  EXPECT_NO_THROW(params_with(0.1).validate());
  EXPECT_THROW(params_with(0.0).validate(), ContractViolation);
  EXPECT_THROW(params_with(0.6).validate(), ContractViolation);
  LogFailsParams bad;
  bad.xi_delta = 0.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
  LogFailsParams bad2;
  bad2.epsilon = 0.7;
  EXPECT_THROW(bad2.validate(), ContractViolation);
}

TEST(LogFailsState, DerivesEpsilonFromK) {
  // epsilon = 1/(k+1) = 1/101 -> BT probability 1/(1+log2(101)).
  const LogFailsState st(params_with(0.5), 100);
  EXPECT_NEAR(st.bt_probability(), 1.0 / (1.0 + std::log2(101.0)), 1e-12);
}

TEST(LogFailsState, ExplicitEpsilonWins) {
  const LogFailsState st(params_with(0.5, 1.0 / 17.0), 100);
  EXPECT_NEAR(st.bt_probability(), 1.0 / (1.0 + std::log2(17.0)), 1e-12);
}

TEST(LogFailsState, BtPeriodFromXiT) {
  EXPECT_EQ(LogFailsState(params_with(0.5), 10).bt_period(), 2u);
  EXPECT_EQ(LogFailsState(params_with(0.1), 10).bt_period(), 10u);
}

TEST(LogFailsState, BtStepsOccurAtPeriod) {
  LogFailsState st(params_with(0.5), 10);
  // Steps are 1-based: step 1 AT, step 2 BT, step 3 AT, ...
  EXPECT_FALSE(st.is_bt_step());
  st.advance(false);
  EXPECT_TRUE(st.is_bt_step());
  st.advance(false);
  EXPECT_FALSE(st.is_bt_step());
}

TEST(LogFailsState, ThresholdsScaleWithLogAndLogSquared) {
  const LogFailsState st(params_with(0.5), 100);
  const double ln101 = std::log(101.0);
  // F_s = ceil(10 ln^2(101)), F_t = ceil(10 ln(101)).
  EXPECT_EQ(st.search_threshold(),
            static_cast<std::uint64_t>(std::ceil(10.0 * ln101 * ln101)));
  EXPECT_EQ(st.track_threshold(),
            static_cast<std::uint64_t>(std::ceil(10.0 * ln101)));
  EXPECT_GT(st.search_threshold(), st.track_threshold());
}

TEST(LogFailsState, StartsInSearchPhaseWithSearchThreshold) {
  LogFailsState st(params_with(0.5), 100);
  EXPECT_TRUE(st.in_search_phase());
  EXPECT_EQ(st.fail_threshold(), st.search_threshold());
}

TEST(LogFailsState, SearchClimbsMultiplicatively) {
  LogFailsState st(params_with(0.5), 100);
  const double kappa0 = st.kappa_estimate();
  feed_at_fails(st, st.search_threshold());
  EXPECT_NEAR(st.kappa_estimate(), kappa0 * 1.1, 1e-9);
  EXPECT_EQ(st.fail_count(), 0u);  // counter resets after an update
  EXPECT_TRUE(st.in_search_phase());
}

TEST(LogFailsState, FirstDeliverySwitchesToTracking) {
  LogFailsState st(params_with(0.5), 100);
  st.advance(true);
  EXPECT_FALSE(st.in_search_phase());
  EXPECT_EQ(st.fail_threshold(), st.track_threshold());
}

TEST(LogFailsState, TrackingAddsFailBatch) {
  LogFailsState st(params_with(0.5), 100);
  // Climb a few times so the estimator is well above the floor, then
  // switch to tracking.
  feed_at_fails(st, 40 * st.search_threshold());
  st.advance(true);
  const double after_delivery = st.kappa_estimate();
  const std::uint64_t f = st.track_threshold();
  feed_at_fails(st, f);
  EXPECT_NEAR(st.kappa_estimate(), after_delivery + static_cast<double>(f),
              1e-9);
}

TEST(LogFailsState, BtStepsDoNotCountAsFails) {
  LogFailsState st(params_with(0.5), 100);
  EXPECT_FALSE(st.is_bt_step());
  st.advance(false);  // AT fail
  EXPECT_EQ(st.fail_count(), 1u);
  EXPECT_TRUE(st.is_bt_step());
  st.advance(false);  // silent BT: not a fail
  EXPECT_EQ(st.fail_count(), 1u);
}

TEST(LogFailsState, DeliveryLowersEstimatorByE) {
  LogFailsState st(params_with(0.5), 100);
  feed_at_fails(st, 40 * st.search_threshold());
  const double climbed = st.kappa_estimate();
  ASSERT_GT(climbed, 10.0);
  st.advance(true);
  EXPECT_NEAR(st.kappa_estimate(),
              std::max(climbed - LogFailsState::track_decrease(),
                       LogFailsState::kKappaFloor),
              1e-9);
}

TEST(LogFailsState, DeliveryDoesNotResetFailCounter) {
  // Fails accumulate cumulatively in the TRACK phase (this is what lets the
  // estimator keep pace with the density; see DESIGN.md §5.1).
  LogFailsState st(params_with(0.5), 100);
  st.advance(true);  // enter tracking
  st.advance(false);  // step 2: BT, not a fail
  st.advance(false);  // step 3: AT fail
  EXPECT_EQ(st.fail_count(), 1u);
  st.advance(true);  // delivery
  EXPECT_EQ(st.fail_count(), 1u);
}

TEST(LogFailsState, EstimatorNeverBelowFloor) {
  LogFailsState st(params_with(0.5), 100);
  for (int i = 0; i < 50; ++i) st.advance(true);
  EXPECT_DOUBLE_EQ(st.kappa_estimate(), LogFailsState::kKappaFloor);
  EXPECT_LE(st.transmit_probability(), 0.5);
}

TEST(LogFailsState, ProbabilitiesAreValid) {
  LogFailsState st(params_with(0.1), 1000);
  for (int i = 0; i < 5000; ++i) {
    const double p = st.transmit_probability();
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
    st.advance(i % 7 == 0);
  }
}

TEST(LogFailsFactory, DefaultNameEncodesXiT) {
  EXPECT_EQ(make_log_fails_factory(params_with(0.5)).name,
            "Log-Fails Adaptive (2)");
  EXPECT_EQ(make_log_fails_factory(params_with(0.1)).name,
            "Log-Fails Adaptive (10)");
}

TEST(LogFailsFactory, ProvidesBothViews) {
  const auto f = make_log_fails_factory(params_with(0.5));
  EXPECT_TRUE(f.has_fair());
  EXPECT_TRUE(static_cast<bool>(f.node));
  Xoshiro256 rng(1);
  auto fair = f.fair_slot(100);
  auto node = f.node(100, rng);
  EXPECT_NE(fair, nullptr);
  EXPECT_NE(node, nullptr);
}

TEST(LogFailsNode, StopsOnOwnDelivery) {
  LogFailsAdaptiveNode node(params_with(0.5), 100);
  Feedback fb;
  fb.delivered_mine = true;
  node.on_slot_end(fb);
  // State frozen: still step 1, still searching.
  EXPECT_TRUE(node.state().in_search_phase());
  EXPECT_EQ(node.state().fail_count(), 0u);
}

}  // namespace
}  // namespace ucr

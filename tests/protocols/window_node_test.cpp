#include "protocols/window_node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ucr {
namespace {

class FixedWindow final : public WindowSchedule {
 public:
  explicit FixedWindow(std::uint64_t w) : w_(w) {}
  std::uint64_t next_window_slots() override { return w_; }

 private:
  std::uint64_t w_;
};

Feedback quiet_slot(bool transmitted) {
  Feedback fb;
  fb.transmitted = transmitted;
  return fb;
}

TEST(WindowNode, RejectsNullSchedule) {
  EXPECT_THROW(WindowNodeProtocol(nullptr), ContractViolation);
}

TEST(WindowNode, HazardSequenceForWindowOfFour) {
  WindowNodeProtocol node(std::make_unique<FixedWindow>(4));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 4.0);
  node.on_slot_end(quiet_slot(false));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 3.0);
  node.on_slot_end(quiet_slot(false));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 2.0);
  node.on_slot_end(quiet_slot(false));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0);  // must fire at the end
}

TEST(WindowNode, SilentAfterTransmission) {
  WindowNodeProtocol node(std::make_unique<FixedWindow>(4));
  (void)node.transmit_probability();
  node.on_slot_end(quiet_slot(true));  // transmitted at offset 0
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
  node.on_slot_end(quiet_slot(false));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
  node.on_slot_end(quiet_slot(false));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
}

TEST(WindowNode, ResetsAtWindowBoundary) {
  WindowNodeProtocol node(std::make_unique<FixedWindow>(2));
  (void)node.transmit_probability();
  node.on_slot_end(quiet_slot(true));
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
  node.on_slot_end(quiet_slot(false));
  // New window: hazard restarts at 1/2.
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 2.0);
  EXPECT_EQ(node.current_window(), 2u);
  EXPECT_EQ(node.window_offset(), 0u);
}

TEST(WindowNode, StationaryHintCoversTheSentWindowRemainder) {
  WindowNodeProtocol node(std::make_unique<FixedWindow>(6));
  EXPECT_EQ(node.stationary_slots(), 1u);  // window not fetched yet
  (void)node.transmit_probability();
  EXPECT_EQ(node.stationary_slots(), 1u);  // hazard moves every slot
  node.on_slot_end(quiet_slot(true));      // transmitted at offset 0
  (void)node.transmit_probability();
  // Sent: silent through the remaining 5 slots of the window.
  EXPECT_EQ(node.stationary_slots(), 5u);
  node.on_non_delivery_slots(3);
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
  EXPECT_EQ(node.stationary_slots(), 2u);
  node.on_non_delivery_slots(2);  // exactly to the window boundary
  // New window: hazard restarts.
  EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0 / 6.0);
  EXPECT_EQ(node.window_offset(), 0u);
}

TEST(WindowNode, BulkAdvanceBeyondTheWindowRemainderThrows) {
  WindowNodeProtocol node(std::make_unique<FixedWindow>(4));
  (void)node.transmit_probability();
  node.on_slot_end(quiet_slot(true));
  EXPECT_THROW(node.on_non_delivery_slots(4), ContractViolation);  // 3 left
  EXPECT_NO_THROW(node.on_non_delivery_slots(0));
  EXPECT_NO_THROW(node.on_non_delivery_slots(3));
}

TEST(WindowNode, HazardChainIsUniformOverOffsets) {
  // Drive the hazard with real coins; the chosen offset must be uniform.
  const std::uint64_t w = 8;
  std::vector<double> counts(w, 0.0);
  Xoshiro256 rng(99);
  const int trials = 80000;
  for (int t = 0; t < trials; ++t) {
    WindowNodeProtocol node(std::make_unique<FixedWindow>(w));
    for (std::uint64_t j = 0; j < w; ++j) {
      const double p = node.transmit_probability();
      const bool fire = rng.next_bernoulli(p);
      if (fire) {
        ++counts[j];
      }
      node.on_slot_end(quiet_slot(fire));
    }
  }
  std::vector<double> expected(w, static_cast<double>(trials) / w);
  EXPECT_LT(chi_square_statistic(counts, expected), 24.3);  // df=7, p=0.999
}

TEST(WindowNode, ExactlyOneTransmissionPerWindow) {
  const std::uint64_t w = 5;
  Xoshiro256 rng(100);
  for (int t = 0; t < 2000; ++t) {
    WindowNodeProtocol node(std::make_unique<FixedWindow>(w));
    int fires = 0;
    for (std::uint64_t j = 0; j < w; ++j) {
      const bool fire = rng.next_bernoulli(node.transmit_probability());
      if (fire) ++fires;
      node.on_slot_end(quiet_slot(fire));
    }
    ASSERT_EQ(fires, 1);
  }
}

}  // namespace
}  // namespace ucr

// The pre-drawn window adapter: one uniformly drawn transmission slot per
// window, emitted as a deterministic 0/1 probability sequence, with
// stationarity certificates spanning the silent run-up and tail. The
// chi-square suite pins the law (uniform over every window size, the
// chain-rule image of the historical per-slot hazard 1/(W - j)); the
// walk-based tests pin the certificate arithmetic the batched node engine
// relies on; the collision-storm regression pins the one-transmission-
// per-window invariant against adversarial feedback.
#include "protocols/window_node.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ucr {
namespace {

class FixedWindow final : public WindowSchedule {
 public:
  explicit FixedWindow(std::uint64_t w) : w_(w) {}
  std::uint64_t next_window_slots() override { return w_; }

 private:
  std::uint64_t w_;
};

std::unique_ptr<WindowNodeProtocol> make_node(std::uint64_t w,
                                              std::uint64_t seed = 7) {
  // The adapter keys its private substream during construction; the engine
  // stream need not outlive it.
  Xoshiro256 rng(seed);
  return std::make_unique<WindowNodeProtocol>(std::make_unique<FixedWindow>(w),
                                              rng);
}

Feedback quiet_slot(bool transmitted) {
  Feedback fb;
  fb.transmitted = transmitted;
  return fb;
}

/// Drives one full window the way the batched engine would: verify the
/// silent run-up certificate, bulk-advance it, take the certain slot with
/// `tx_feedback`, verify and bulk-advance the silent tail. Returns the
/// window's drawn offset.
std::uint64_t walk_one_window(WindowNodeProtocol& node,
                              const Feedback& tx_feedback) {
  const double first = node.transmit_probability();  // fetches the window
  const std::uint64_t w = node.current_window();
  const std::uint64_t tx = node.drawn_offset();
  EXPECT_LT(tx, w);
  if (tx > 0) {
    EXPECT_DOUBLE_EQ(first, 0.0);
    EXPECT_EQ(node.stationary_slots(), tx);  // the whole silent run-up
    node.on_non_delivery_slots(tx);
    EXPECT_DOUBLE_EQ(node.transmit_probability(), 1.0);
  } else {
    EXPECT_DOUBLE_EQ(first, 1.0);
  }
  EXPECT_EQ(node.stationary_slots(), 1u);  // the transmission slot itself
  node.on_slot_end(tx_feedback);
  const std::uint64_t tail = w - tx - 1;
  if (tail > 0) {
    EXPECT_DOUBLE_EQ(node.transmit_probability(), 0.0);
    EXPECT_EQ(node.stationary_slots(), tail);  // the whole silent tail
    node.on_non_delivery_slots(tail);
  }
  return tx;
}

TEST(WindowNode, RejectsNullSchedule) {
  Xoshiro256 rng(1);
  EXPECT_THROW(WindowNodeProtocol(nullptr, rng), ContractViolation);
}

TEST(WindowNode, EmitsExactlyOneCertainSlotPerWindow) {
  // Slot by slot (no certificates): every window of the deterministic
  // sequence is 0,...,0,1,0,...,0 with the 1 at the drawn offset.
  auto node = make_node(6);
  for (int window = 0; window < 20; ++window) {
    int certain = 0;
    for (std::uint64_t j = 0; j < 6; ++j) {
      const double p = node->transmit_probability();
      ASSERT_TRUE(p == 0.0 || p == 1.0);
      if (p == 1.0) {
        ++certain;
        EXPECT_EQ(j, node->drawn_offset());
      }
      node->on_slot_end(quiet_slot(p == 1.0));
    }
    ASSERT_EQ(certain, 1);
  }
}

TEST(WindowNode, OneTransmissionPerWindowUnderCollisionStorms) {
  // Regression: the pre-draw must not re-arm within a window whatever the
  // channel reports. Feed the nastiest legal feedback mix — every slot a
  // heard collision, every transmission unacknowledged, interleaved
  // heard_delivery flags — and count transmissions per window.
  auto node = make_node(9, 21);
  for (int window = 0; window < 50; ++window) {
    int fires = 0;
    for (std::uint64_t j = 0; j < 9; ++j) {
      const double p = node->transmit_probability();
      if (p == 1.0) ++fires;
      Feedback fb;
      fb.transmitted = p == 1.0;
      fb.heard_collision = true;
      fb.heard_delivery = (j % 2) == 0;
      node->on_slot_end(fb);
    }
    ASSERT_EQ(fires, 1) << "window " << window;
  }
}

TEST(WindowNode, CertificatesSpanRunUpTransmissionAndTail) {
  // The batched-engine walk across many windows; feedback at the drawn
  // slot alternates delivered / collided, neither of which may disturb
  // the following windows.
  auto node = make_node(8, 33);
  bool delivered = false;
  for (int window = 0; window < 200; ++window) {
    Feedback fb = quiet_slot(true);
    fb.delivered_mine = delivered;
    walk_one_window(*node, fb);
    delivered = !delivered;
    EXPECT_EQ(node->window_offset(), node->current_window());
  }
}

TEST(WindowNode, PartialBulkAdvanceKeepsTheCertificateConsistent) {
  // A certificate may be consumed in pieces (arrival truncation does
  // exactly that): the remainder must stay certified.
  auto node = make_node(1u << 20, 5);
  (void)node->transmit_probability();
  const std::uint64_t tx = node->drawn_offset();
  ASSERT_GT(tx, 3u);  // seed 5 draws a comfortably interior offset
  node->on_non_delivery_slots(tx / 2);
  EXPECT_DOUBLE_EQ(node->transmit_probability(), 0.0);
  EXPECT_EQ(node->stationary_slots(), tx - tx / 2);
  node->on_non_delivery_slots(tx - tx / 2);
  EXPECT_DOUBLE_EQ(node->transmit_probability(), 1.0);
}

TEST(WindowNode, BulkAdvanceBeyondTheCertificateThrows) {
  auto node = make_node(64, 11);
  (void)node->transmit_probability();
  const std::uint64_t tx = node->drawn_offset();
  ASSERT_GT(tx, 0u);  // seed 11 does not draw offset 0
  // Beyond the run-up (into the certain slot) must throw ...
  EXPECT_THROW(node->on_non_delivery_slots(tx + 1), ContractViolation);
  EXPECT_NO_THROW(node->on_non_delivery_slots(0));
  node->on_non_delivery_slots(tx);
  // ... and so must any advance across the transmission slot itself.
  EXPECT_THROW(node->on_non_delivery_slots(1), ContractViolation);
  node->on_slot_end(quiet_slot(true));
  // The tail is certified exactly to the window boundary, not past it.
  EXPECT_THROW(node->on_non_delivery_slots(64 - tx), ContractViolation);
  EXPECT_NO_THROW(node->on_non_delivery_slots(64 - tx - 1));
}

TEST(WindowNode, DegenerateWindowOfOneAlwaysFires) {
  auto node = make_node(1);
  for (int slot = 0; slot < 32; ++slot) {
    EXPECT_DOUBLE_EQ(node->transmit_probability(), 1.0);
    EXPECT_EQ(node->drawn_offset(), 0u);
    EXPECT_EQ(node->stationary_slots(), 1u);
    node->on_slot_end(quiet_slot(true));
  }
}

// Uniformity of the pre-drawn offset over every window-size regime: the
// pre-draw is law-identical to the historical hazard chain 1/(W - j) iff
// the offset is uniform over {0, ..., W-1} (the chain-rule telescoping in
// protocols/window_node.hpp). W = 2 is the smallest non-degenerate
// window, 7 an odd in-between (Lemire rejection path), 64 a full
// per-offset histogram, 2^20 the huge-window regime binned 2^14 offsets
// per bucket. Thresholds are chi-square df = buckets - 1 at p = 0.999.
struct UniformityCase {
  std::uint64_t w;
  std::uint64_t buckets;
  int windows_per_bucket;
  double threshold;
};

class WindowNodeUniformity
    : public ::testing::TestWithParam<UniformityCase> {};

TEST_P(WindowNodeUniformity, PreDrawnOffsetIsUniform) {
  const UniformityCase c = GetParam();
  const std::uint64_t per_bucket = c.w / c.buckets;  // exact for these cases
  auto node = make_node(c.w, 1234 + c.w);
  std::vector<double> counts(c.buckets, 0.0);
  const int windows =
      static_cast<int>(c.buckets) * c.windows_per_bucket;
  for (int t = 0; t < windows; ++t) {
    const std::uint64_t tx = walk_one_window(*node, quiet_slot(true));
    ++counts[tx / per_bucket];
  }
  std::vector<double> expected(
      c.buckets, static_cast<double>(windows) / static_cast<double>(c.buckets));
  EXPECT_LT(chi_square_statistic(counts, expected), c.threshold)
      << "W=" << c.w;
}

INSTANTIATE_TEST_SUITE_P(
    AllWindowSizes, WindowNodeUniformity,
    ::testing::Values(UniformityCase{2, 2, 20000, 10.83},      // df=1
                      UniformityCase{7, 7, 6000, 22.46},       // df=6
                      UniformityCase{64, 64, 500, 103.4},      // df=63
                      UniformityCase{1u << 20, 64, 500, 103.4}),  // df=63
    [](const ::testing::TestParamInfo<UniformityCase>& info) {
      return "W" + std::to_string(info.param.w);
    });

TEST(WindowNode, SubstreamIsPrivateAndReproducible) {
  // Same engine-stream draw => same substream => the same offset sequence
  // (the cross-engine bit-identity anchor); different draws => different
  // sequences (stations are independent).
  std::vector<std::uint64_t> first, second, other;
  for (auto* out : {&first, &second, &other}) {
    auto node = make_node(1u << 16, out == &other ? 99 : 42);
    for (int t = 0; t < 16; ++t) {
      out->push_back(walk_one_window(*node, quiet_slot(true)));
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

}  // namespace
}  // namespace ucr

#include "protocols/exp_backoff.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(ExpBackoffParams, Validation) {
  EXPECT_NO_THROW(ExpBackoffParams{2.0}.validate());
  EXPECT_NO_THROW(ExpBackoffParams{1.5}.validate());
  EXPECT_THROW(ExpBackoffParams{1.0}.validate(), ContractViolation);
  EXPECT_THROW(ExpBackoffParams{0.5}.validate(), ContractViolation);
}

TEST(ExpBackoffSchedule, BinaryWindows) {
  ExponentialBackoff sched(ExpBackoffParams{2.0});
  EXPECT_EQ(sched.next_window_slots(), 2u);
  EXPECT_EQ(sched.next_window_slots(), 4u);
  EXPECT_EQ(sched.next_window_slots(), 8u);
  EXPECT_EQ(sched.next_window_slots(), 16u);
}

TEST(ExpBackoffSchedule, NonIntegerRatio) {
  ExponentialBackoff sched(ExpBackoffParams{1.5});
  EXPECT_EQ(sched.next_window_slots(), 2u);   // round(1.5)
  EXPECT_EQ(sched.next_window_slots(), 2u);   // round(2.25)
  EXPECT_EQ(sched.next_window_slots(), 3u);   // round(3.375)
  EXPECT_EQ(sched.next_window_slots(), 5u);   // round(5.0625)
}

TEST(ExpBackoffSchedule, StrictlyGrowingForRTwo) {
  ExponentialBackoff sched(ExpBackoffParams{2.0});
  std::uint64_t prev = 0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t w = sched.next_window_slots();
    ASSERT_GT(w, prev);
    prev = w;
  }
}

TEST(ExpBackoffSchedule, GrowsFasterThanLogLog) {
  // After the same number of windows, exponential must dwarf loglog growth
  // (this is why it overshoots and wastes slots).
  ExponentialBackoff sched(ExpBackoffParams{2.0});
  std::uint64_t w = 0;
  for (int i = 0; i < 20; ++i) w = sched.next_window_slots();
  EXPECT_EQ(w, 1u << 20);
}

TEST(ExpBackoffFactory, DefaultNameIncludesR) {
  const auto f = make_exp_backoff_factory(ExpBackoffParams{2.0});
  EXPECT_NE(f.name.find("r=2"), std::string::npos);
  EXPECT_TRUE(static_cast<bool>(f.window));
  EXPECT_TRUE(static_cast<bool>(f.node));
}

}  // namespace
}  // namespace ucr

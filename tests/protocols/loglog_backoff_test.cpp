#include "protocols/loglog_backoff.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ucr {
namespace {

TEST(LogLogParams, Validation) {
  EXPECT_NO_THROW(LogLogParams{2.0}.validate());
  EXPECT_NO_THROW(LogLogParams{4.0}.validate());
  EXPECT_THROW(LogLogParams{1.5}.validate(), ContractViolation);
  EXPECT_THROW(LogLogParams{0.0}.validate(), ContractViolation);
}

TEST(LogLogSchedule, FirstWindowsForRTwo) {
  LogLogIteratedBackoff sched(LogLogParams{2.0});
  // w=2 (lglg clamped to 1 -> factor 2), w=4 (lglg4=1 -> factor 2), w=8...
  EXPECT_EQ(sched.next_window_slots(), 2u);
  EXPECT_EQ(sched.next_window_slots(), 4u);
  EXPECT_EQ(sched.next_window_slots(), 8u);
  // lglg8 = log2(3) ~ 1.585 -> w = 8 * (1 + 1/1.585) ~ 13.05
  EXPECT_EQ(sched.next_window_slots(), 13u);
}

TEST(LogLogSchedule, MonotoneNonDecreasing) {
  LogLogIteratedBackoff sched(LogLogParams{2.0});
  std::uint64_t prev = 0;
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t w = sched.next_window_slots();
    ASSERT_GE(w, prev) << "window " << i;
    prev = w;
  }
}

TEST(LogLogSchedule, GrowthSlowsDown) {
  // The growth ratio approaches 1 as w grows (factor 1 + 1/lglg w).
  LogLogIteratedBackoff sched(LogLogParams{2.0});
  std::uint64_t prev = sched.next_window_slots();
  double early_ratio = 0.0;
  double late_ratio = 0.0;
  for (int i = 1; i < 50; ++i) {
    const std::uint64_t w = sched.next_window_slots();
    const double ratio = static_cast<double>(w) / static_cast<double>(prev);
    if (i == 2) early_ratio = ratio;
    if (i == 49) late_ratio = ratio;
    prev = w;
  }
  EXPECT_GT(early_ratio, late_ratio);
  EXPECT_GT(late_ratio, 1.0);
}

TEST(LogLogSchedule, ReachesLargeWindowsInPolylogWindows) {
  // Growing from 2 to >= 10^6 must take O(lg k * lglg k) windows — ~120ish,
  // certainly under 400 (this is what makes the makespan near-linear).
  LogLogIteratedBackoff sched(LogLogParams{2.0});
  int windows = 0;
  while (sched.next_window_slots() < 1000000) {
    ++windows;
    ASSERT_LT(windows, 400);
  }
  EXPECT_GT(windows, 20);
}

TEST(LogLogSchedule, LargerRStartsLarger) {
  LogLogIteratedBackoff sched(LogLogParams{8.0});
  EXPECT_EQ(sched.next_window_slots(), 8u);
}

TEST(LogLogFactory, ProvidesWindowAndNodeViews) {
  const auto f = make_loglog_factory();
  EXPECT_EQ(f.name, "LogLog-Iterated Back-off");
  EXPECT_TRUE(f.has_fair());
  EXPECT_TRUE(static_cast<bool>(f.window));
  EXPECT_FALSE(static_cast<bool>(f.fair_slot));
  EXPECT_TRUE(static_cast<bool>(f.node));
}

}  // namespace
}  // namespace ucr

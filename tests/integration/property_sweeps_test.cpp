// Property sweeps: parameterized invariants across the protocols' admissible
// parameter ranges, plus an exactness check of the window engine's
// conditional-binomial decomposition against a naive balls-in-bins throw.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/bounds.hpp"
#include "common/stats.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/loglog_backoff.hpp"
#include "sim/fair_engine.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

// ------------------------------------------------- OFA delta sweep property

class OneFailDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(OneFailDeltaSweep, RatioEqualsAnalysisConstant) {
  // The strongest quantitative claim of the paper's evaluation: the
  // measured ratio equals 2(delta+1) for every admissible delta, at
  // moderate k already.
  const double delta = GetParam();
  const auto factory = make_one_fail_factory(OneFailParams{delta}, "ofa");
  const AggregateResult res = run_fair_experiment(factory, 20000, 5, 7, {});
  ASSERT_EQ(res.incomplete_runs, 0u);
  EXPECT_NEAR(res.ratio.mean, one_fail_ratio(delta), 0.15) << delta;
}

INSTANTIATE_TEST_SUITE_P(AdmissibleRange, OneFailDeltaSweep,
                         ::testing::Values(2.72, 2.75, 2.8, 2.85, 2.9, 2.95,
                                           2.99));

// ------------------------------------------------ EBOBO delta sweep property

class SawtoothDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SawtoothDeltaSweep, SolvesWithinTheorem2Bound) {
  const double delta = GetParam();
  const auto factory =
      make_exp_backon_factory(ExpBackonParams{delta}, "ebobo");
  const AggregateResult res = run_fair_experiment(factory, 5000, 5, 8, {});
  ASSERT_EQ(res.incomplete_runs, 0u);
  EXPECT_LE(res.makespan.max, exp_backon_bound(delta, 5000)) << delta;
}

TEST_P(SawtoothDeltaSweep, ScheduleShapeInvariants) {
  // Within any phase: windows non-increasing; across phases: starts double.
  const double delta = GetParam();
  ExpBackonBackoff sched(ExpBackonParams{delta});
  std::uint64_t prev_window = ~0ULL;
  std::uint64_t prev_phase = 1;
  std::uint64_t prev_phase_start = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t phase = sched.phase();
    const std::uint64_t w = sched.next_window_slots();
    ASSERT_GE(w, 1u);
    if (phase == prev_phase) {
      ASSERT_LE(w, prev_window);
    } else {
      ASSERT_EQ(phase, prev_phase + 1);
      if (prev_phase_start != 0) {
        ASSERT_EQ(w, 2 * prev_phase_start);
      }
      prev_phase_start = w;
      prev_phase = phase;
    }
    prev_window = w;
  }
}

INSTANTIATE_TEST_SUITE_P(AdmissibleRange, SawtoothDeltaSweep,
                         ::testing::Values(0.05, 0.15, 0.25, 0.3, 0.35,
                                           0.366));

// ----------------------------------------- window engine exactness property

// Naive ground truth: throw m labelled balls into w bins with per-ball
// uniform choices and count singletons.
std::uint64_t naive_singletons(Xoshiro256& rng, std::uint64_t m,
                               std::uint64_t w) {
  std::vector<std::uint32_t> bins(w, 0);
  for (std::uint64_t b = 0; b < m; ++b) {
    ++bins[rng.next_below(w)];
  }
  std::uint64_t singles = 0;
  for (const auto c : bins) {
    if (c == 1) ++singles;
  }
  return singles;
}

TEST(WindowEngineExactness, ConditionalBinomialMatchesNaiveThrow) {
  // The window engine samples occupancy slot-by-slot via Binomial(pending,
  // 1/(W-j)). Its singleton-count distribution must match the naive throw:
  // compare mean and variance over many trials (fixed seeds, 5-sigma).
  const std::uint64_t m = 40;
  const std::uint64_t w = 64;
  const int trials = 30000;

  RunningStats naive;
  Xoshiro256 rng_naive(41);
  for (int t = 0; t < trials; ++t) {
    naive.add(static_cast<double>(naive_singletons(rng_naive, m, w)));
  }

  class OneWindow final : public WindowSchedule {
   public:
    explicit OneWindow(std::uint64_t w) : w_(w) {}
    std::uint64_t next_window_slots() override { return w_; }

   private:
    std::uint64_t w_;
  };

  RunningStats engine;
  for (int t = 0; t < trials; ++t) {
    OneWindow sched(w);
    Xoshiro256 rng = Xoshiro256::stream(42, t);
    EngineOptions opts;
    opts.max_slots = w;  // exactly one window
    engine.add(static_cast<double>(
        run_fair_window_engine(sched, m, rng, opts).deliveries));
  }

  const double se = std::hypot(naive.stddev(), engine.stddev()) /
                    std::sqrt(static_cast<double>(trials));
  EXPECT_NEAR(engine.mean(), naive.mean(), 5.0 * se);
  EXPECT_NEAR(engine.variance(), naive.variance(),
              0.1 * naive.variance());
}

// --------------------------------------------------- LLIBO growth property

TEST(LogLogGrowth, RatioGrowsSublogarithmically) {
  // Theta(k lglg k / lglglg k): between k = 10^3 and k = 10^5 the measured
  // ratio must grow, but by far less than a log factor.
  const auto factory = make_loglog_factory();
  const AggregateResult small = run_fair_experiment(factory, 1000, 10, 9, {});
  const AggregateResult large =
      run_fair_experiment(factory, 100000, 10, 9, {});
  EXPECT_GT(large.ratio.mean, small.ratio.mean);
  EXPECT_LT(large.ratio.mean / small.ratio.mean, 1.8);
}

// ----------------------------------------------- makespan monotonicity in k

TEST(Monotonicity, MeanMakespanIncreasesWithK) {
  for (const auto& factory :
       {make_one_fail_factory(), make_exp_backon_factory()}) {
    double prev = 0.0;
    for (const std::uint64_t k : {100ULL, 1000ULL, 10000ULL}) {
      const AggregateResult res = run_fair_experiment(factory, k, 5, 10, {});
      ASSERT_GT(res.makespan.mean, prev) << factory.name << " k=" << k;
      prev = res.makespan.mean;
    }
  }
}

}  // namespace
}  // namespace ucr

// Paper-scale (`slow`-labeled) half of the dense-arrival equivalence
// suite (see node_dense_equiv_test.cpp for the tier-1 half): node vs
// node_batched over every catalogued window protocol at k = 10^5, on the
// dense Poisson cells the pre-drawn window slots exist for and a
// 1000-burst contention cell (100 simultaneous stations per burst). At
// this scale a Monte-Carlo ensemble is unaffordable, and for window
// protocols it is also unnecessary: the pre-draw makes both engines
// consume the engine stream
// identically (one draw per activation, everything else degenerate), so
// the strongest available check is exact — every metric of a same-seed
// run, per-message latencies included, must be bit-identical while the
// batched engine skips virtually every slot.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

std::vector<ProtocolFactory> window_protocols() {
  std::vector<ProtocolFactory> selected;
  for (auto& p : all_protocols()) {
    if (p.window && p.node) selected.push_back(p);
  }
  EXPECT_GE(selected.size(), 3u);
  return selected;
}

EngineOptions exact_options() {
  EngineOptions options;
  options.record_latencies = true;
  return options;
}

EngineOptions batched_options() {
  EngineOptions options = exact_options();
  options.batched = true;
  return options;
}

void expect_bit_identity_at_scale(const ArrivalPattern& arrivals,
                                  const std::string& cell_label) {
  for (const auto& factory : window_protocols()) {
    SCOPED_TRACE(factory.name + " (" + cell_label + ")");
    const RunMetrics exact =
        run_single_node(factory, arrivals, 0, 9090, exact_options());
    const RunMetrics batched =
        run_single_node(factory, arrivals, 0, 9090, batched_options());
    ASSERT_TRUE(exact.completed);
    EXPECT_EQ(exact.slots, batched.slots);
    EXPECT_EQ(exact.silence_slots, batched.silence_slots);
    EXPECT_EQ(exact.collision_slots, batched.collision_slots);
    EXPECT_EQ(exact.success_slots, batched.success_slots);
    EXPECT_EQ(exact.transmissions, batched.transmissions);
    EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                     batched.expected_transmissions);
    EXPECT_EQ(exact.max_station_transmissions,
              batched.max_station_transmissions);
    EXPECT_EQ(exact.latencies, batched.latencies);
  }
}

TEST(NodeDenseEquivalenceSlow, PoissonLambda001AtPaperScale) {
  Xoshiro256 arrival_rng = Xoshiro256::stream(71, 0);
  const auto arrivals = poisson_arrivals(100'000, 0.01, arrival_rng);
  expect_bit_identity_at_scale(arrivals, "poisson 0.01");
}

TEST(NodeDenseEquivalenceSlow, PoissonLambda01AtPaperScale) {
  Xoshiro256 arrival_rng = Xoshiro256::stream(72, 0);
  const auto arrivals = poisson_arrivals(100'000, 0.1, arrival_rng);
  expect_bit_identity_at_scale(arrivals, "poisson 0.1");
}

TEST(NodeDenseEquivalenceSlow, BurstCellAtPaperScale) {
  const auto arrivals = burst_arrivals(1000, 100, 2000);
  expect_bit_identity_at_scale(arrivals, "burst 1000 x 100");
}

}  // namespace
}  // namespace ucr

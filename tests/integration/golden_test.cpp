// Golden determinism regression: EXPERIMENTS.md promises byte-identical
// results across runs and standard libraries, because every measurement
// path uses only the repo's own PRNG and samplers. These tests pin the
// exact makespan of every protocol for one fixed (k, seed) so that any
// change to the RNG, the samplers, an engine, or a protocol's state
// machine that alters simulated trajectories is caught immediately.
//
// If a test here fails after an *intentional* behaviour change, re-derive
// the constant with:
//   ucr_cli --protocol="<name>" --k=1000 --runs=1 --seed=77 --csv=1
// and update EXPERIMENTS.md accordingly.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

using Golden = std::pair<std::string, std::uint64_t>;

class GoldenMakespan : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenMakespan, ExactSlotCountAtSeed77) {
  const auto& [name, expected] = GetParam();
  ProtocolFactory factory;
  bool found = false;
  for (auto& p : all_protocols()) {
    if (p.name == name) {
      factory = std::move(p);
      found = true;
    }
  }
  if (!found && name == "Dynamic One-Fail Adaptive") {
    factory = make_dynamic_one_fail_factory();
    found = true;
  }
  ASSERT_TRUE(found) << name;

  const AggregateResult res = run_fair_experiment(factory, 1000, 1, 77, {});
  ASSERT_EQ(res.details.size(), 1u);
  EXPECT_EQ(res.details[0].slots, expected) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenMakespan,
    ::testing::Values(Golden{"Log-Fails Adaptive (2)", 48316},
                      Golden{"Log-Fails Adaptive (10)", 25872},
                      Golden{"One-Fail Adaptive", 7379},
                      Golden{"Exp Back-on/Back-off", 5415},
                      Golden{"LogLog-Iterated Back-off", 7746},
                      Golden{"Exponential Back-off (r=2)", 14145},
                      Golden{"Known-k genie (1/k)", 2759},
                      Golden{"Dynamic One-Fail Adaptive", 2982}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = info.param.first;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(GoldenRng, StreamOutputsPinned) {
  // First outputs of the seeded streams used throughout the harnesses.
  Xoshiro256 base(2011);
  const std::uint64_t first = base.next_u64();
  Xoshiro256 again(2011);
  EXPECT_EQ(again.next_u64(), first);

  // Streams derived from (2011, 0) and (2011, 1) are fixed forever.
  Xoshiro256 s0 = Xoshiro256::stream(2011, 0);
  Xoshiro256 s1 = Xoshiro256::stream(2011, 1);
  const std::uint64_t a = s0.next_u64();
  const std::uint64_t b = s1.next_u64();
  EXPECT_NE(a, b);
  Xoshiro256 s0_again = Xoshiro256::stream(2011, 0);
  EXPECT_EQ(s0_again.next_u64(), a);
}

}  // namespace
}  // namespace ucr

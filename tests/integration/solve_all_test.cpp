// Integration: every protocol in the registry solves static k-selection on
// both engines — all k messages delivered, exactly once, with consistent
// metrics — across a parameterized sweep of protocol x k.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/registry.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

ProtocolFactory factory_by_name(const std::string& name) {
  for (auto& p : all_protocols()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown protocol: " << name;
  return {};
}

using Case = std::tuple<std::string, std::uint64_t>;

class SolveAll : public ::testing::TestWithParam<Case> {};

TEST_P(SolveAll, FairEngineSolves) {
  const auto& [name, k] = GetParam();
  const auto factory = factory_by_name(name);
  EngineOptions opts;
  opts.record_deliveries = true;
  const AggregateResult res =
      run_fair_experiment(factory, k, 5, 20260612, opts);
  EXPECT_EQ(res.incomplete_runs, 0u) << name;
  for (const auto& run : res.details) {
    EXPECT_TRUE(run.completed);
    EXPECT_EQ(run.deliveries, k);
    EXPECT_EQ(run.success_slots, k);
    EXPECT_EQ(run.delivery_slots.size(), k);
    // validate() already ran in the engine; re-run it to be explicit.
    EXPECT_NO_THROW(run.validate());
  }
}

TEST_P(SolveAll, NodeEngineSolves) {
  const auto& [name, k] = GetParam();
  if (k > 300) GTEST_SKIP() << "per-node engine kept to small k in tests";
  const auto factory = factory_by_name(name);
  const AggregateResult res =
      run_node_experiment(factory, batched_arrivals(k), 3, 977, {});
  EXPECT_EQ(res.incomplete_runs, 0u) << name;
  for (const auto& run : res.details) {
    EXPECT_EQ(run.deliveries, k);
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const auto& p : all_protocols()) {
    for (const std::uint64_t k : {1ULL, 2ULL, 3ULL, 10ULL, 100ULL, 1000ULL}) {
      // Log-Fails Adaptive at k <= 2 takes a pathologically long estimator
      // climb relative to k; keep it but skip nothing — it still finishes
      // within the default cap.
      cases.emplace_back(p.name, k);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsTimesK, SolveAll, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(SolveAllEdge, SingleMessageIsFast) {
  // k = 1: the very first transmission succeeds for every protocol whose
  // initial probability is positive; makespan must be tiny (< 100 slots).
  for (const auto& p : all_protocols()) {
    const AggregateResult res = run_fair_experiment(p, 1, 10, 5, {});
    EXPECT_EQ(res.incomplete_runs, 0u) << p.name;
    EXPECT_LT(res.makespan.max, 2000.0) << p.name;
  }
}

}  // namespace
}  // namespace ucr

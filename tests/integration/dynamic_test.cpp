// Integration: dynamic (non-batched) arrivals through the per-node engine —
// the paper's Section 6 future-work setting. These tests pin down that the
// substrate handles staggered activations correctly and that the protocols
// remain live under them.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/node_engine.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

ProtocolFactory factory_by_name(const std::string& name) {
  for (auto& p : all_protocols()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown protocol: " << name;
  return {};
}

class DynamicArrivals : public ::testing::TestWithParam<std::string> {};

TEST_P(DynamicArrivals, PoissonArrivalsComplete) {
  const auto factory = factory_by_name(GetParam());
  Xoshiro256 arrival_rng(12);
  const auto arrivals = poisson_arrivals(80, 0.05, arrival_rng);
  const AggregateResult res =
      run_node_experiment(factory, arrivals, 3, 13, {});
  EXPECT_EQ(res.incomplete_runs, 0u) << GetParam();
  for (const auto& run : res.details) {
    EXPECT_EQ(run.deliveries, 80u);
  }
}

TEST_P(DynamicArrivals, BurstArrivalsComplete) {
  const auto factory = factory_by_name(GetParam());
  const auto arrivals = burst_arrivals(3, 30, 200);
  const AggregateResult res =
      run_node_experiment(factory, arrivals, 3, 14, {});
  EXPECT_EQ(res.incomplete_runs, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    PaperProtocols, DynamicArrivals,
    ::testing::Values("One-Fail Adaptive", "Exp Back-on/Back-off",
                      "LogLog-Iterated Back-off"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DynamicArrivalsDetail, LatenciesArePerMessage) {
  const auto factory = factory_by_name("One-Fail Adaptive");
  const auto arrivals = burst_arrivals(2, 20, 500);
  Xoshiro256 rng(15);
  LatencyMetrics latency;
  const NodeFactory node_factory = [&](Xoshiro256& r) {
    return factory.node(40, r);
  };
  const RunMetrics run =
      run_node_engine(node_factory, arrivals, rng, EngineOptions{}, &latency);
  ASSERT_TRUE(run.completed);
  ASSERT_EQ(latency.latencies.size(), 40u);
  for (const auto l : latency.latencies) {
    EXPECT_GE(l, 1u);
    EXPECT_LE(l, run.slots);
  }
}

TEST(DynamicArrivalsDetail, WellSeparatedBurstsBehaveLikeTwoBatches) {
  // With a gap far larger than the per-burst makespan, each burst is an
  // independent batched instance; makespan ~ gap + makespan(second burst).
  const auto factory = factory_by_name("Exp Back-on/Back-off");
  const std::uint64_t burst = 25;
  const std::uint64_t gap = 5000;
  const auto arrivals = burst_arrivals(2, burst, gap);
  const AggregateResult two =
      run_node_experiment(factory, arrivals, 5, 16, {});
  ASSERT_EQ(two.incomplete_runs, 0u);
  const AggregateResult one =
      run_node_experiment(factory, batched_arrivals(burst), 5, 17, {});
  // Second burst starts at `gap`; total ~ gap + one-burst makespan.
  EXPECT_NEAR(two.makespan.mean, static_cast<double>(gap) + one.makespan.mean,
              0.5 * one.makespan.mean + 100.0);
}

}  // namespace
}  // namespace ucr

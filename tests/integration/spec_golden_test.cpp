// Golden byte-identity of the shipped dynamic-arrivals sweep, node vs
// node_batched — the end-to-end pin on RNG consumption order.
//
// Two layers:
//
//  1. Cross-engine: specs/dynamic-arrivals.spec (shrunk to test scale via
//     the same flag-wins overrides CI uses) is run once with engine=node
//     and once with engine=node_batched. For every protocol whose engines
//     share a draw-for-draw RNG path — the hint-1 automata (One-Fail,
//     Dynamic One-Fail) and the pre-drawn window adapters (Exp
//     Back-on/Back-off, LogLog-Iterated Back-off) — the CSV and JSONL
//     rows must be byte-identical up to the provenance fields that name
//     the spelling (spec_hash, and the JSONL engine label). Log-Fails
//     Adaptive certifies fractional-probability stretches, so its rows
//     are equal in law but not in bytes; they are exempted here and
//     pinned statistically in node_batched_test.cpp.
//
//  2. Golden files: the full normalized output of each engine mode must
//     match the checked-in bytes under tests/golden/. Any change to where
//     either engine consumes randomness — a reordered draw, an extra coin,
//     a substream rekeying — shifts trajectories and fails this loudly,
//     even when it is law-preserving. Intentional changes re-record with
//     UCR_REGOLD=1 in the environment; the diff then documents the drift
//     in review.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"

namespace ucr {
namespace {

using exp::EngineMode;

std::vector<ProtocolFactory> full_catalogue() {
  auto protocols = all_protocols();
  protocols.push_back(make_dynamic_one_fail_factory());
  return protocols;
}

exp::SpecFile load_shrunk_dynamic_arrivals() {
  exp::SpecFile file = exp::load_spec_file(std::string(UCR_REPO_ROOT) +
                                           "/specs/dynamic-arrivals.spec");
  // Shrink to test scale the way CI shrinks shipped specs (flag-wins
  // overrides), keeping protocols, arrival grid, seed and latency
  // recording as shipped.
  file.spec.ks = {40};
  file.spec.k_max = 0;
  file.spec.runs = 3;
  file.spec.engine_options.max_slots = 40000;
  return file;
}

/// Drop the trailing spec_hash column of every CSV line: the two engine
/// modes are different canonical spec texts, so their hashes legitimately
/// differ even when every measured byte agrees.
std::string csv_without_spec_hash(const std::string& csv) {
  std::string out;
  std::istringstream in(csv);
  for (std::string line; std::getline(in, line);) {
    out += line.substr(0, line.rfind(','));
    out += '\n';
  }
  return out;
}

/// Blank a `"key":"..."` field of a JSONL row (spec_hash / engine carry
/// the spelling, not the results).
std::string jsonl_without_field(const std::string& jsonl,
                                const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  std::string out;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) {
    const std::size_t begin = line.find(marker);
    if (begin != std::string::npos) {
      const std::size_t value = begin + marker.size();
      const std::size_t end = line.find('"', value);
      if (end == std::string::npos) {
        ADD_FAILURE() << "unterminated " << key << " field: " << line;
      } else {
        line.erase(value, end - value);
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

struct SweepOutput {
  std::string csv;
  std::string jsonl;
};

SweepOutput run_mode(EngineMode mode) {
  exp::SpecFile file = load_shrunk_dynamic_arrivals();
  file.spec.engine = mode;
  const exp::ExperimentPlan plan =
      exp::compile(file.spec, full_catalogue());
  std::ostringstream csv_text;
  std::ostringstream jsonl_text;
  exp::CsvStreamSink csv(csv_text);
  exp::JsonlSink jsonl(jsonl_text);
  exp::run(plan, {&csv, &jsonl}, {1});
  SweepOutput out;
  out.csv = csv_without_spec_hash(csv_text.str());
  jsonl_without_field(jsonl_text.str(), "spec_hash").swap(out.jsonl);
  jsonl_without_field(out.jsonl, "engine").swap(out.jsonl);
  return out;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Log-Fails Adaptive (either xi) is the one catalogued protocol whose
/// batched stretches consume randomness differently (fractional-p
/// certificates); every other row must agree byte for byte.
bool exempt_from_bit_identity(const std::string& line) {
  return line.find("Log-Fails") != std::string::npos;
}

TEST(SpecGolden, DynamicArrivalsNodeVsNodeBatchedByteIdentity) {
  const SweepOutput node = run_mode(EngineMode::kNode);
  const SweepOutput batched = run_mode(EngineMode::kNodeBatched);
  std::size_t compared = 0;
  std::size_t exempted = 0;
  const std::vector<std::pair<std::string, std::string>> formats = {
      {node.csv, batched.csv}, {node.jsonl, batched.jsonl}};
  for (const auto& format : formats) {
    const auto node_lines = lines_of(format.first);
    const auto batched_lines = lines_of(format.second);
    ASSERT_EQ(node_lines.size(), batched_lines.size());
    for (std::size_t i = 0; i < node_lines.size(); ++i) {
      if (exempt_from_bit_identity(node_lines[i])) {
        EXPECT_TRUE(exempt_from_bit_identity(batched_lines[i]));
        ++exempted;
        continue;
      }
      EXPECT_EQ(node_lines[i], batched_lines[i]) << "row " << i;
      ++compared;
    }
  }
  // 6 protocols x 4 arrival cells per format (plus the CSV header), a
  // third of which are the exempt Log-Fails rows: the identity claim must
  // actually have bitten.
  EXPECT_GE(compared, 30u);
  EXPECT_EQ(exempted, 16u);
}

std::string golden_path(const std::string& name) {
  return std::string(UCR_REPO_ROOT) + "/tests/golden/" + name;
}

void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("UCR_REGOLD") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (record with UCR_REGOLD=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << name << " drifted; if the change to RNG consumption order is "
      << "intentional, re-record with UCR_REGOLD=1";
}

TEST(SpecGolden, DynamicArrivalsOutputMatchesGoldenFiles) {
  const SweepOutput node = run_mode(EngineMode::kNode);
  const SweepOutput batched = run_mode(EngineMode::kNodeBatched);
  expect_matches_golden(node.csv, "dynamic-arrivals.node.csv.golden");
  expect_matches_golden(node.jsonl, "dynamic-arrivals.node.jsonl.golden");
  expect_matches_golden(batched.csv,
                        "dynamic-arrivals.node_batched.csv.golden");
  expect_matches_golden(batched.jsonl,
                        "dynamic-arrivals.node_batched.jsonl.golden");
}

}  // namespace
}  // namespace ucr

// Dense-arrival statistical equivalence: node vs node_batched over every
// catalogued window protocol on the workloads the pre-drawn window slots
// (protocols/window_node.hpp) were built for — sustained Poisson cells at
// lambda in {0.01, 0.1}, where some station is almost always mid-window
// so the batched engine's skip runs on pre-drawn certificates rather than
// empty arrival gaps, plus a contention-heavy burst cell. Ensembles are
// independently seeded, so agreement is checked statistically (makespan,
// collisions, latency percentiles) through tests/common/stat_equiv.hpp;
// the same cells at k = 10^5 run under the `slow` label in
// node_dense_equiv_slow_test.cpp. Same-seed bit-identity — which for
// window protocols also holds — is pinned separately in
// node_batched_test.cpp; the different-seed check here is what survives
// if the two engines ever stop sharing a draw-for-draw RNG path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "sim/runner.hpp"
#include "tests/common/stat_equiv.hpp"

namespace ucr {
namespace {

/// Every catalogued protocol with a window view (the WindowNodeProtocol
/// adapter is exactly the `node` factory of these).
std::vector<ProtocolFactory> window_protocols() {
  std::vector<ProtocolFactory> selected;
  for (auto& p : all_protocols()) {
    if (p.window && p.node) selected.push_back(p);
  }
  EXPECT_GE(selected.size(), 3u);  // the catalogue ships three
  return selected;
}

EngineOptions exact_options() {
  EngineOptions options;
  options.record_latencies = true;
  return options;
}

EngineOptions batched_options() {
  EngineOptions options = exact_options();
  options.batched = true;
  return options;
}

void expect_dense_agreement(const ArrivalPattern& arrivals,
                            const std::string& cell_label,
                            std::uint64_t exact_seed,
                            std::uint64_t batched_seed) {
  const std::uint64_t runs = 100;
  for (const auto& factory : window_protocols()) {
    const AggregateResult exact = run_node_experiment(
        factory, arrivals, runs, exact_seed, exact_options());
    const AggregateResult batched = run_node_experiment(
        factory, arrivals, runs, batched_seed, batched_options());
    testutil::expect_statistical_agreement(
        exact, batched, factory.name + " (" + cell_label + ")");
  }
}

TEST(NodeDenseEquivalence, PoissonLambda001Agrees) {
  Xoshiro256 arrival_rng = Xoshiro256::stream(61, 0);
  const auto arrivals = poisson_arrivals(240, 0.01, arrival_rng);
  expect_dense_agreement(arrivals, "poisson 0.01", 5111, 5222);
}

TEST(NodeDenseEquivalence, PoissonLambda01Agrees) {
  Xoshiro256 arrival_rng = Xoshiro256::stream(62, 0);
  const auto arrivals = poisson_arrivals(240, 0.1, arrival_rng);
  expect_dense_agreement(arrivals, "poisson 0.1", 5333, 5444);
}

TEST(NodeDenseEquivalence, BurstCellAgrees) {
  // Per-burst contention is where the stretch sampler's collision
  // envelope would show a modeling error; 6 bursts of 40 keep multiple
  // stations mid-window for most of the run.
  const auto arrivals = burst_arrivals(6, 40, 300);
  expect_dense_agreement(arrivals, "burst", 5555, 5666);
}

}  // namespace
}  // namespace ucr

// Integration: the batched fair-engine fast path (EngineOptions::batched)
// induces the same law of outcomes as the exact aggregate engines, for
// every protocol in the catalogue. The batched path consumes randomness
// differently (geometric run-lengths and direct slot choices instead of
// per-slot draws), so individual runs differ; equivalence is checked
// statistically via the shared Welch-style helper in
// tests/common/stat_equiv.hpp — mean and median makespan within a
// tolerance that covers Monte-Carlo noise but catches systematic modeling
// errors — rather than by re-pinning goldens.
//
// The file also pins the two contracts the fast path ships with: protocols
// with a batching hint of 1 are bit-identical to the exact engine, and at
// paper scale the batched engine must beat the exact one by a wide
// wall-clock margin (the reason it exists).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "protocols/exp_backoff.hpp"
#include "sim/runner.hpp"
#include "tests/common/stat_equiv.hpp"

namespace ucr {
namespace {

ProtocolFactory factory_by_name(const std::string& name) {
  for (auto& p : all_protocols()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown protocol: " << name;
  return {};
}

EngineOptions batched_options() {
  EngineOptions options;
  options.batched = true;
  return options;
}

class BatchedEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchedEquivalence, MeanAndMedianMakespanAgree) {
  const auto factory = factory_by_name(GetParam());
  const std::uint64_t k = 60;
  const std::uint64_t runs = 120;

  const AggregateResult exact =
      run_fair_experiment(factory, k, runs, 1111, {});
  const AggregateResult batched =
      run_fair_experiment(factory, k, runs, 2222, batched_options());

  testutil::expect_makespan_agreement(exact, batched, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, BatchedEquivalence,
    ::testing::Values("One-Fail Adaptive", "Exp Back-on/Back-off",
                      "Log-Fails Adaptive (2)", "Log-Fails Adaptive (10)",
                      "LogLog-Iterated Back-off",
                      "Exponential Back-off (r=2)", "Known-k genie (1/k)"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(BatchedEquivalence, SparseWindowRegimeAgrees) {
  // Larger k drives exponential back-off through the batched engine's
  // sparse-window paths (bitmap and sorted-walk), which k = 60 barely
  // touches.
  const auto factory = factory_by_name("Exponential Back-off (r=2)");
  const std::uint64_t k = 3000;
  const std::uint64_t runs = 40;
  const AggregateResult exact = run_fair_experiment(factory, k, runs, 31, {});
  const AggregateResult batched =
      run_fair_experiment(factory, k, runs, 32, batched_options());
  // Fewer runs than the parametrised suite, so a wider 3% systematic
  // allowance.
  testutil::expect_makespan_agreement(exact, batched, "sparse-window", 0.03);
}

TEST(BatchedEquivalence, HintOneProtocolsAreBitIdentical) {
  // One-Fail Adaptive's hint is 1 (its estimator moves every slot): the
  // batched dispatch must reproduce the exact engine draw for draw, so
  // switching EngineOptions::batched cannot change a single metric.
  // Dynamic One-Fail is hint-1 for the same reason (kappa~ moves every
  // slot: +1 / doubling / sawtooth reset), so it shares the guarantee.
  for (const auto& factory :
       {factory_by_name("One-Fail Adaptive"),
        make_dynamic_one_fail_factory()}) {
    SCOPED_TRACE(factory.name);
    for (std::uint64_t run = 0; run < 5; ++run) {
      const RunMetrics exact = run_single_fair(factory, 500, run, 77, {});
      const RunMetrics batched =
          run_single_fair(factory, 500, run, 77, batched_options());
      EXPECT_EQ(exact.slots, batched.slots);
      EXPECT_EQ(exact.silence_slots, batched.silence_slots);
      EXPECT_EQ(exact.collision_slots, batched.collision_slots);
      EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                       batched.expected_transmissions);
    }
  }
}

TEST(BatchedEquivalence, PaperScaleSpeedupOnExpBackoff) {
  // The acceptance bar for the fast path: >= 5x wall-clock over the exact
  // engine on an exponential back-off run at paper scale. Monotone
  // back-off is the worst case for the exact engine — its windows grow to
  // >> k almost-entirely-silent slots, each costing a binomial draw.
#ifdef NDEBUG
  const std::uint64_t k = 1'000'000;
  const double required_speedup = 5.0;
#else
  // Unoptimized builds: same shape, smaller k, softer bar (the constant
  // factors between the paths shift without inlining).
  const std::uint64_t k = 100'000;
  const double required_speedup = 3.0;
#endif
  const auto factory = factory_by_name("Exponential Back-off (r=2)");

  using clock = std::chrono::steady_clock;
  const auto exact_start = clock::now();
  const RunMetrics exact = run_single_fair(factory, k, 0, 2011, {});
  const auto exact_end = clock::now();
  // The batched run is short enough that one scheduler preemption could
  // distort its measurement; take the fastest of three repeats (the exact
  // run spans seconds, where such noise is negligible).
  double batched_ms = std::numeric_limits<double>::infinity();
  RunMetrics batched;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto start = clock::now();
    batched = run_single_fair(factory, k, 0, 2011, batched_options());
    const auto end = clock::now();
    batched_ms = std::min(
        batched_ms,
        std::chrono::duration<double, std::milli>(end - start).count());
  }

  ASSERT_TRUE(exact.completed);
  ASSERT_TRUE(batched.completed);

  const double exact_ms =
      std::chrono::duration<double, std::milli>(exact_end - exact_start)
          .count();
  const double speedup = exact_ms / batched_ms;
  // Shown in the test log (--output-on-failure or ctest -V) as the
  // recorded evidence for the acceptance criterion.
  std::printf("[ batched-engine ] k=%llu exp_backoff: exact %.1f ms "
              "(%llu slots), batched %.1f ms (%llu slots), speedup %.1fx\n",
              static_cast<unsigned long long>(k), exact_ms,
              static_cast<unsigned long long>(exact.slots), batched_ms,
              static_cast<unsigned long long>(batched.slots), speedup);
  EXPECT_GE(speedup, required_speedup);
}

}  // namespace
}  // namespace ucr

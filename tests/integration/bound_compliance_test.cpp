// Integration: the measured behaviour complies with the paper's analysis —
// Theorem 1 / Theorem 2 bounds hold (with the analyses' slack), the Table 1
// ratio bands are reproduced, and Lemma 5's kappa~ <= kappa invariant-style
// relation holds along trajectories.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "common/samplers.hpp"
#include "common/stats.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/known_k.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

class BoundCompliance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundCompliance, OneFailWithinTheorem1) {
  const std::uint64_t k = GetParam();
  const auto factory = make_one_fail_factory(OneFailParams{2.72});
  const AggregateResult res = run_fair_experiment(factory, k, 20, 101, {});
  ASSERT_EQ(res.incomplete_runs, 0u);
  // Theorem 1: 2(delta+1)k + O(log^2 k) w.p. >= 1 - 2/(1+k). With 20 runs
  // at k >= 100 a violation of the bound (additive constant 50) would be a
  // regression, not noise.
  const double bound = one_fail_bound(2.72, k, 50.0);
  EXPECT_LE(res.makespan.max, bound);
}

TEST_P(BoundCompliance, ExpBackonWithinTheorem2) {
  const std::uint64_t k = GetParam();
  const auto factory = make_exp_backon_factory(ExpBackonParams{0.366});
  const AggregateResult res = run_fair_experiment(factory, k, 20, 202, {});
  ASSERT_EQ(res.incomplete_runs, 0u);
  EXPECT_LE(res.makespan.max, exp_backon_bound(0.366, k));
}

INSTANTIATE_TEST_SUITE_P(KSweep, BoundCompliance,
                         ::testing::Values(100, 1000, 10000));

TEST(TableOneBands, OneFailRatioStabilizesNearSevenPointFour) {
  // Paper Table 1: One-Fail Adaptive's measured ratio is 7.4 from k = 10^3.
  const auto factory = make_one_fail_factory(OneFailParams{2.72});
  const AggregateResult res =
      run_fair_experiment(factory, 10000, 10, 303, {});
  EXPECT_NEAR(res.ratio.mean, 7.4, 0.4);
}

TEST(TableOneBands, OneFailRatioSmallKMatchesPaper) {
  // Paper Table 1 at k = 10: ratio ~ 4.0 (the estimator starts near k).
  const auto factory = make_one_fail_factory(OneFailParams{2.72});
  const AggregateResult res = run_fair_experiment(factory, 10, 200, 404, {});
  EXPECT_NEAR(res.ratio.mean, 4.0, 1.0);
}

TEST(TableOneBands, ExpBackonRatioBetweenFourAndEight) {
  // Paper Table 1: Exp Back-on/Back-off moves between 4 and 8, well below
  // its 14.9 analysis constant.
  const auto factory = make_exp_backon_factory(ExpBackonParams{0.366});
  for (const std::uint64_t k : {1000ULL, 10000ULL}) {
    const AggregateResult res = run_fair_experiment(factory, k, 10, 505, {});
    EXPECT_GT(res.ratio.mean, 3.5) << "k=" << k;
    EXPECT_LT(res.ratio.mean, 9.0) << "k=" << k;
  }
}

TEST(TableOneBands, GenieNearE) {
  const AggregateResult res =
      run_fair_experiment(make_known_k_factory(), 1000, 20, 606, {});
  EXPECT_NEAR(res.ratio.mean, fair_optimal_ratio(), 0.25);
}

TEST(EstimatorInvariant, DeterministicBoundsAlongTrajectories) {
  // Two invariants that hold almost surely (not just w.h.p.):
  //  (a) kappa~ >= delta + 1 (the Task 2 floor of Algorithm 1);
  //  (b) kappa~ <= (delta + 1) + #AT-steps-so-far (it grows at most +1 per
  //      AT step and never increases otherwise).
  const OneFailParams params{2.72};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    OneFailAdaptive protocol(params);
    Xoshiro256 rng = Xoshiro256::stream(909, seed);
    std::uint64_t m = 500;
    std::uint64_t at_steps = 0;
    while (m > 0) {
      if (!protocol.state().is_bt_step()) ++at_steps;
      const double p = protocol.transmit_probability();
      const auto cat = sample_slot_category(rng, m, p);
      const bool delivery = cat == SlotCategory::kSuccess;
      if (delivery) --m;
      protocol.on_slot_end(delivery);
      const double kappa_tilde = protocol.state().kappa_estimate();
      ASSERT_GE(kappa_tilde, params.delta + 1.0);
      ASSERT_LE(kappa_tilde,
                params.delta + 1.0 + static_cast<double>(at_steps) + 1e-9);
    }
  }
}

TEST(EstimatorTracking, KappaEstimateApproachesTrueDensityAtDeliveries) {
  // The mechanism behind Theorem 1: the first deliveries happen when the
  // estimator has climbed to the vicinity of the true density. Check that
  // at the first delivery kappa~ is within a constant factor of kappa.
  const OneFailParams params{2.72};
  RunningStats ratio_at_first_delivery;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    OneFailAdaptive protocol(params);
    Xoshiro256 rng = Xoshiro256::stream(1717, seed);
    std::uint64_t m = 1000;
    while (m == 1000) {
      const double p = protocol.transmit_probability();
      const auto cat = sample_slot_category(rng, m, p);
      if (cat == SlotCategory::kSuccess) {
        ratio_at_first_delivery.add(protocol.state().kappa_estimate() /
                                    static_cast<double>(m));
        --m;
      }
      protocol.on_slot_end(cat == SlotCategory::kSuccess);
    }
  }
  // The first success typically lands while the estimator is still an
  // order-of-magnitude fraction of the density (success probability
  // (kappa/kappa~) e^{-kappa/kappa~} becomes non-negligible from
  // kappa~ ~ kappa/6 on); by the last deliveries it has caught up.
  EXPECT_GT(ratio_at_first_delivery.mean(), 0.08);
  EXPECT_LT(ratio_at_first_delivery.mean(), 1.2);
}

}  // namespace
}  // namespace ucr

// Integration: the batched per-node engine (run_node_engine_batched,
// EngineOptions::batched on node cells) induces the same law of outcomes
// as the exact per-node engine, for every protocol in the catalogue, under
// dynamic arrivals. Wherever a stationary stretch is actually skipped the
// batched path consumes randomness differently (geometric run lengths and
// a conditional success-attribution draw instead of per-station coins), so
// individual runs may differ; equivalence is checked statistically — mean
// and median makespan plus mean collision count within Monte-Carlo
// tolerances — through the same shared helper
// (tests/common/stat_equiv.hpp) as tests/integration/batched_engine_test.cpp.
//
// The file also pins the contracts the fast path ships with:
//  * default-hint (stationary_slots() == 1) protocols are bit-identical to
//    the exact engine — empty arrival gaps consume no randomness in either
//    engine, so the skip is invisible;
//  * window protocols are bit-identical too: the adapter pre-draws its one
//    in-window transmission slot from a private per-station substream
//    (protocols/window_node.hpp), so every window slot has probability
//    exactly 0 or 1, certified stretches are deterministic silence, and
//    the degenerate geometric/binomial draws consume nothing — per-message
//    latencies included;
//  * at paper scale (k >= 10^5 Poisson cell) the batched engine beats the
//    exact one by >= 5x wall-clock, on the sparse cell where empty slots
//    dominate AND on the dense lambda = 0.01 cell where the pre-drawn
//    certificates (not arrival gaps) carry the skip — the reason the
//    pre-draw exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "sim/runner.hpp"
#include "tests/common/stat_equiv.hpp"

namespace ucr {
namespace {

ProtocolFactory factory_by_name(const std::string& name) {
  if (name == "Dynamic One-Fail Adaptive") {
    return make_dynamic_one_fail_factory();
  }
  for (auto& p : all_protocols()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown protocol: " << name;
  return {};
}

EngineOptions exact_options() {
  EngineOptions options;
  options.record_latencies = true;  // feeds the latency-percentile check
  return options;
}

EngineOptions batched_options() {
  EngineOptions options = exact_options();
  options.batched = true;
  return options;
}

class NodeBatchedEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(NodeBatchedEquivalence, PoissonCellAgrees) {
  const auto factory = factory_by_name(GetParam());
  Xoshiro256 arrival_rng = Xoshiro256::stream(12, 0);
  const auto arrivals = poisson_arrivals(80, 0.05, arrival_rng);
  const std::uint64_t runs = 120;
  const AggregateResult exact =
      run_node_experiment(factory, arrivals, runs, 1111, exact_options());
  const AggregateResult batched =
      run_node_experiment(factory, arrivals, runs, 2222, batched_options());
  testutil::expect_statistical_agreement(exact, batched,
                                         GetParam() + " (poisson)");
}

TEST_P(NodeBatchedEquivalence, BurstCellAgrees) {
  // Bursts create real per-burst contention, so protocol dynamics (and
  // the collision envelope) dominate — the workload where a modeling
  // error in the stretch sampler would actually show.
  const auto factory = factory_by_name(GetParam());
  const auto arrivals = burst_arrivals(4, 20, 400);
  const std::uint64_t runs = 120;
  const AggregateResult exact =
      run_node_experiment(factory, arrivals, runs, 3333, exact_options());
  const AggregateResult batched =
      run_node_experiment(factory, arrivals, runs, 4444, batched_options());
  testutil::expect_statistical_agreement(exact, batched,
                                         GetParam() + " (burst)");
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, NodeBatchedEquivalence,
    ::testing::Values("One-Fail Adaptive", "Exp Back-on/Back-off",
                      "Log-Fails Adaptive (2)", "Log-Fails Adaptive (10)",
                      "LogLog-Iterated Back-off",
                      "Exponential Back-off (r=2)", "Known-k genie (1/k)",
                      "Dynamic One-Fail Adaptive"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(NodeBatchedEquivalence, HintOneProtocolsAreBitIdentical) {
  // One-Fail Adaptive and Dynamic One-Fail keep the conservative
  // stationary hint of 1 (their estimators move every slot), so every
  // busy slot takes the exact per-station draws in the exact order —
  // and empty arrival gaps consume no randomness in either engine.
  // Switching EngineOptions::batched must not change a single metric.
  Xoshiro256 arrival_rng = Xoshiro256::stream(31, 0);
  const auto poisson = poisson_arrivals(120, 0.04, arrival_rng);
  const auto bursts = burst_arrivals(3, 25, 500);
  for (const auto& factory :
       {factory_by_name("One-Fail Adaptive"),
        make_dynamic_one_fail_factory()}) {
    SCOPED_TRACE(factory.name);
    for (const auto* arrivals : {&poisson, &bursts}) {
      for (std::uint64_t run = 0; run < 5; ++run) {
        const RunMetrics exact =
            run_single_node(factory, *arrivals, run, 77, {});
        const RunMetrics batched =
            run_single_node(factory, *arrivals, run, 77, batched_options());
        EXPECT_EQ(exact.slots, batched.slots);
        EXPECT_EQ(exact.silence_slots, batched.silence_slots);
        EXPECT_EQ(exact.collision_slots, batched.collision_slots);
        EXPECT_EQ(exact.transmissions, batched.transmissions);
        EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                         batched.expected_transmissions);
      }
    }
  }
}

TEST(NodeBatchedEquivalence, WindowProtocolsAreBitIdentical) {
  // The window adapter pre-draws its in-window transmission slot from a
  // private per-station substream keyed by one engine draw at activation
  // (common/rng.hpp, derive_window_offset_stream), so its per-slot
  // probabilities are exact 0s and 1s: every engine-stream consumer
  // (Bernoulli coins, the truncated geometric, the binomial split) is
  // draw-free at degenerate p, both engines consume exactly one engine
  // draw per activated station, and the bulk skip is invisible —
  // bit-identical runs down to the per-message latencies, with real
  // multi-slot stretches exercised *before* stations transmit, not just
  // in sent-window tails.
  Xoshiro256 arrival_rng = Xoshiro256::stream(32, 0);
  // Dense enough that stations overlap and pre-transmission run-ups are
  // routinely skipped.
  const auto arrivals = poisson_arrivals(150, 0.1, arrival_rng);
  for (const char* name :
       {"Exp Back-on/Back-off", "LogLog-Iterated Back-off",
        "Exponential Back-off (r=2)"}) {
    SCOPED_TRACE(name);
    const auto factory = factory_by_name(name);
    for (std::uint64_t run = 0; run < 3; ++run) {
      const RunMetrics exact =
          run_single_node(factory, arrivals, run, 88, exact_options());
      const RunMetrics batched =
          run_single_node(factory, arrivals, run, 88, batched_options());
      EXPECT_EQ(exact.slots, batched.slots);
      EXPECT_EQ(exact.silence_slots, batched.silence_slots);
      EXPECT_EQ(exact.collision_slots, batched.collision_slots);
      EXPECT_EQ(exact.transmissions, batched.transmissions);
      EXPECT_DOUBLE_EQ(exact.expected_transmissions,
                       batched.expected_transmissions);
      EXPECT_EQ(exact.latencies, batched.latencies);
    }
  }
}

// Shared body of the paper-scale speedup pins: exact once, batched
// fastest-of-three (short enough that one scheduler preemption could
// distort a single measurement), printed evidence, asserted floor.
void expect_paper_scale_speedup(const char* tag, std::uint64_t k,
                                double lambda, double required_speedup) {
  const auto factory = factory_by_name("Exp Back-on/Back-off");
  Xoshiro256 arrival_rng = Xoshiro256::stream(4242, 0);
  const auto arrivals = poisson_arrivals(k, lambda, arrival_rng);

  using clock = std::chrono::steady_clock;
  const auto exact_start = clock::now();
  const RunMetrics exact = run_single_node(factory, arrivals, 0, 2011, {});
  const auto exact_end = clock::now();
  double batched_ms = std::numeric_limits<double>::infinity();
  RunMetrics batched;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto start = clock::now();
    batched = run_single_node(factory, arrivals, 0, 2011, batched_options());
    const auto end = clock::now();
    batched_ms = std::min(
        batched_ms,
        std::chrono::duration<double, std::milli>(end - start).count());
  }

  ASSERT_TRUE(exact.completed);
  ASSERT_TRUE(batched.completed);

  const double exact_ms =
      std::chrono::duration<double, std::milli>(exact_end - exact_start)
          .count();
  const double speedup = exact_ms / batched_ms;
  // Shown in the test log (--output-on-failure or ctest -V) as the
  // recorded evidence for the acceptance criterion.
  std::printf("[ node-batched ] %s k=%llu poisson(%g) exp_backon: exact "
              "%.1f ms (%llu slots), batched %.1f ms (%llu slots), "
              "speedup %.1fx\n",
              tag, static_cast<unsigned long long>(k), lambda, exact_ms,
              static_cast<unsigned long long>(exact.slots), batched_ms,
              static_cast<unsigned long long>(batched.slots), speedup);
  EXPECT_GE(speedup, required_speedup);
}

TEST(NodeBatchedEquivalence, PaperScaleSpeedupOnPoissonCell) {
  // The acceptance bar for the fast path: >= 5x wall-clock over the exact
  // node engine on a k >= 10^5 Poisson cell. Sparse sustained arrivals
  // are the worst case for the exact engine — the channel is idle (or
  // waiting out window tails) for the overwhelming majority of its ~10^7
  // slots, each costing a full per-slot iteration.
#ifdef NDEBUG
  // lambda sized so the skippable (empty / window-tail) slots dominate
  // by a wide margin: the pin must hold with sanitizer instrumentation
  // on top (CI runs this under ASan/UBSan), which taxes the batched
  // path's materialized slots more than the exact engine's idle loop.
  const std::uint64_t k = 100'000;
  const double lambda = 0.002;
  const double required_speedup = 5.0;
#else
  // Unoptimized builds: same shape, smaller k, sparser cell and a softer
  // bar (the constant factors between the paths shift without inlining).
  const std::uint64_t k = 20'000;
  const double lambda = 0.005;
  const double required_speedup = 3.0;
#endif
  expect_paper_scale_speedup("sparse", k, lambda, required_speedup);
}

TEST(NodeBatchedEquivalence, PaperScaleSpeedupOnDensePoissonCell) {
  // The dense-cell acceptance bar for the pre-drawn window slots: before
  // the pre-draw a not-yet-transmitted station certified only the current
  // slot, so lambda >= 0.01 cells — where some station is almost always
  // mid-window — degenerated the batched engine to per-slot cost. With
  // the pre-draw every station certifies its whole silent run-up and
  // tail, so the skip survives density: >= 5x wall-clock at k = 10^5,
  // lambda = 0.01 (sanitizer instrumentation included, as in CI).
#ifdef NDEBUG
  const std::uint64_t k = 100'000;
  const double lambda = 0.01;
  const double required_speedup = 5.0;
#else
  const std::uint64_t k = 20'000;
  const double lambda = 0.01;
  const double required_speedup = 3.0;
#endif
  expect_paper_scale_speedup("dense", k, lambda, required_speedup);
}

}  // namespace
}  // namespace ucr

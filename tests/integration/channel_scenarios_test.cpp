// Imperfect-channel scenarios end to end through the exp pipeline.
//
// The contracts pinned here are the ones docs/SCENARIOS.md promises:
//   - the fair and batched engines reject non-clean channels loudly;
//   - compile() routes every non-clean cell to the exact node engine, so
//     a batched-mode spec and a fair-mode spec of the same non-clean grid
//     produce identical results (the "loud fallback" is also a correct
//     one);
//   - every catalogued protocol runs under an adversarial arrival model
//     and an imperfect channel model;
//   - the energy columns are populated by the node engines and survive
//     the CSV round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "sim/resultio.hpp"

namespace ucr {
namespace {

using exp::ArrivalSpec;
using exp::EngineMode;
using exp::ExperimentSpec;

std::vector<ProtocolFactory> full_catalogue() {
  auto protocols = all_protocols();
  protocols.push_back(make_dynamic_one_fail_factory());
  return protocols;
}

TEST(ChannelScenarios, FairAndBatchedEnginesRejectNonCleanChannels) {
  const ProtocolFactory factory = find_protocol(all_protocols(), "Known-k genie (1/k)");
  EngineOptions options;
  options.channel = ChannelModel::capture(0.5);
  EXPECT_THROW(run_single_fair(factory, 16, 0, 1, options),
               ContractViolation);
  options.batched = true;
  EXPECT_THROW(run_single_fair(factory, 16, 0, 1, options),
               ContractViolation);
  const ArrivalPattern arrivals(16, 0);
  EXPECT_THROW(run_single_node(factory, arrivals, 0, 1, options),
               ContractViolation);
}

TEST(ChannelScenarios, CompileRoutesNonCleanCellsToExactNode) {
  ExperimentSpec spec;
  spec.with_protocol("Known-k genie (1/k)").with_ks({32});
  spec.with_channel(ChannelModel::clean())
      .with_channel(ChannelModel::capture(0.5));
  spec.engine = EngineMode::kBatched;
  spec.runs = 2;
  const auto plan = exp::compile(spec, full_catalogue());
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].engine, EngineMode::kBatched);
  EXPECT_TRUE(plan.cells[0].channel.is_clean());
  EXPECT_EQ(plan.cells[1].engine, EngineMode::kNode);
  EXPECT_EQ(plan.cells[1].channel, ChannelModel::capture(0.5));
}

// Drop the trailing spec_hash column of every CSV line: the fair-mode
// and batched-mode spellings are different canonical texts, so their
// hashes legitimately differ even when every measured byte agrees.
std::string without_spec_hash(const std::string& csv) {
  std::string out;
  std::istringstream in(csv);
  for (std::string line; std::getline(in, line);) {
    out += line.substr(0, line.rfind(','));
    out += '\n';
  }
  return out;
}

// "Statistical equivalence" pin, and then some: because every non-clean
// cell routes to the exact node engine, the batched-mode and fair-mode
// specs of one imperfect grid are not merely equal in law, they are the
// same computation — byte-identical CSV up to the spec_hash provenance
// column (which names the spelling, not the results).
TEST(ChannelScenarios, BatchedSpecEqualsFairSpecUnderImperfectChannels) {
  const auto run_mode = [](EngineMode mode) {
    ExperimentSpec spec;
    spec.with_protocol("One-Fail Adaptive").with_protocol("Known-k genie (1/k)");
    spec.with_ks({16, 64});
    spec.with_arrival(ArrivalSpec::batch())
        .with_arrival(ArrivalSpec::schedule({0, 0, 3}));
    spec.with_channel(ChannelModel::capture(0.3))
        .with_channel(ChannelModel::jamming(0.1));
    spec.engine = mode;
    spec.runs = 3;
    // A finite cap keeps One-Fail Adaptive's capped livelock cells (it
    // stalls under heavy jamming) cheap; both modes cap identically.
    spec.engine_options.max_slots = 20000;
    std::ostringstream csv;
    const auto plan = exp::compile(spec, full_catalogue());
    exp::CsvStreamSink sink(csv);
    exp::run(plan, {&sink}, {1});
    return csv.str();
  };
  const std::string fair = without_spec_hash(run_mode(EngineMode::kFair));
  const std::string batched =
      without_spec_hash(run_mode(EngineMode::kBatched));
  EXPECT_FALSE(fair.empty());
  EXPECT_EQ(fair, batched);
}

TEST(ChannelScenarios, EveryProtocolRunsAdversarialArrivalsOnImperfectChannels) {
  ExperimentSpec spec;
  for (const auto& protocol : full_catalogue()) {
    spec.with_protocol(protocol.name);
  }
  spec.with_ks({24});
  spec.with_arrival(ArrivalSpec::schedule({0, 0, 0, 5}))
      .with_arrival(ArrivalSpec::mmpp(0.5, 0.01, 20))
      .with_arrival(ArrivalSpec::pareto(1.5, 1.0));
  spec.with_channel(ChannelModel::capture(0.5))
      .with_channel(ChannelModel::jam_burst(16, 2));
  spec.runs = 2;
  const auto plan = exp::compile(spec, full_catalogue());
  exp::MemorySink memory;
  exp::run(plan, {&memory}, {1});
  ASSERT_EQ(memory.results().size(), full_catalogue().size() * 3 * 2);
  for (std::size_t i = 0; i < memory.results().size(); ++i) {
    const AggregateResult& result = memory.results()[i];
    EXPECT_EQ(memory.cells()[i].engine, EngineMode::kNode);
    // One-Fail Adaptive as published livelocks under sustained arrivals
    // (see EXPERIMENTS.md), and burst jamming aggravates it — its capped
    // runs are the documented finding, not a failure.
    if (result.protocol != "One-Fail Adaptive") {
      EXPECT_EQ(result.incomplete_runs, 0u)
          << result.protocol << " under "
          << memory.cells()[i].arrival.label() << " / "
          << memory.cells()[i].channel.label();
    }
    // Exact per-station accounting: someone transmitted at least once,
    // and no station can transmit more than the run took slots.
    EXPECT_GT(result.energy_mean, 0.0);
    EXPECT_GE(result.energy_max, 1.0);
    EXPECT_LE(result.energy_max, result.makespan.max);
  }
}

TEST(ChannelScenarios, EnergyColumnsSurviveTheCsvRoundTrip) {
  ExperimentSpec spec;
  spec.with_protocol("Known-k genie (1/k)").with_ks({32});
  spec.with_channel(ChannelModel::capture(0.8));
  spec.runs = 2;
  std::ostringstream csv;
  const auto plan = exp::compile(spec, full_catalogue());
  exp::CsvStreamSink sink(csv);
  exp::run(plan, {&sink}, {1});

  std::istringstream in(csv.str());
  const auto rows = read_aggregate_csv(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].energy_mean, 0.0);
  EXPECT_GE(rows[0].energy_max, 1.0);

  // The fair engine reports the expected energy but cannot name a worst
  // station.
  ExperimentSpec fair;
  fair.with_protocol("Known-k genie (1/k)").with_ks({32});
  fair.runs = 2;
  exp::MemorySink memory;
  exp::run(exp::compile(fair, full_catalogue()), {&memory}, {1});
  ASSERT_EQ(memory.results().size(), 1u);
  EXPECT_GT(memory.results()[0].energy_mean, 0.0);
  EXPECT_EQ(memory.results()[0].energy_max, 0.0);
}

}  // namespace
}  // namespace ucr

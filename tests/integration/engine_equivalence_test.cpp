// Integration: the O(1)-per-slot fair aggregate engine and the O(m)-per-slot
// per-node engine induce the same law on outcomes for fair protocols under
// batched arrivals (DESIGN.md §4.2). Checked statistically: mean makespans
// over many seeded runs must agree within a tolerance that generously
// covers Monte-Carlo noise but catches any systematic modeling error
// (e.g. wrong hazard chain, off-by-one in state updates).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/registry.hpp"
#include "sim/runner.hpp"

namespace ucr {
namespace {

ProtocolFactory factory_by_name(const std::string& name) {
  for (auto& p : all_protocols()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown protocol: " << name;
  return {};
}

class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, MeanMakespanAgrees) {
  const auto factory = factory_by_name(GetParam());
  const std::uint64_t k = 60;
  const std::uint64_t runs = 120;

  const AggregateResult fair =
      run_fair_experiment(factory, k, runs, 31337, {});
  const AggregateResult node =
      run_node_experiment(factory, batched_arrivals(k), runs, 424242, {});

  ASSERT_EQ(fair.incomplete_runs, 0u);
  ASSERT_EQ(node.incomplete_runs, 0u);

  // Welch-style comparison: |mean_a - mean_b| within 4 combined standard
  // errors plus a 2% systematic allowance.
  const double se_fair = fair.makespan.stddev / std::sqrt(double(runs));
  const double se_node = node.makespan.stddev / std::sqrt(double(runs));
  const double tol = 4.0 * std::hypot(se_fair, se_node) +
                     0.02 * fair.makespan.mean;
  EXPECT_NEAR(fair.makespan.mean, node.makespan.mean, tol)
      << GetParam() << ": fair=" << fair.makespan.mean
      << " node=" << node.makespan.mean;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, EngineEquivalence,
    ::testing::Values("One-Fail Adaptive", "Exp Back-on/Back-off",
                      "Log-Fails Adaptive (2)", "Log-Fails Adaptive (10)",
                      "LogLog-Iterated Back-off",
                      "Exponential Back-off (r=2)", "Known-k genie (1/k)"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(EngineEquivalence, OutcomeCompositionAgreesForGenie) {
  // Beyond the makespan: silence/collision fractions must match too.
  const auto factory = factory_by_name("Known-k genie (1/k)");
  const std::uint64_t k = 50;
  const std::uint64_t runs = 150;
  const AggregateResult fair = run_fair_experiment(factory, k, runs, 7, {});
  const AggregateResult node =
      run_node_experiment(factory, batched_arrivals(k), runs, 8, {});

  auto fraction = [](const AggregateResult& res, auto field) {
    double num = 0.0, den = 0.0;
    for (const auto& run : res.details) {
      num += static_cast<double>(field(run));
      den += static_cast<double>(run.slots);
    }
    return num / den;
  };
  const double silent_fair =
      fraction(fair, [](const RunMetrics& r) { return r.silence_slots; });
  const double silent_node =
      fraction(node, [](const RunMetrics& r) { return r.silence_slots; });
  EXPECT_NEAR(silent_fair, silent_node, 0.03);

  const double coll_fair =
      fraction(fair, [](const RunMetrics& r) { return r.collision_slots; });
  const double coll_node =
      fraction(node, [](const RunMetrics& r) { return r.collision_slots; });
  EXPECT_NEAR(coll_fair, coll_node, 0.03);
}

TEST(EngineEquivalence, WindowTransmissionCountsAgree) {
  // The window engine's exact transmission counting must match the node
  // engine's: both count one transmission per active station per window.
  const auto factory = factory_by_name("Exp Back-on/Back-off");
  const std::uint64_t k = 40;
  const std::uint64_t runs = 60;
  const AggregateResult fair = run_fair_experiment(factory, k, runs, 55, {});
  const AggregateResult node =
      run_node_experiment(factory, batched_arrivals(k), runs, 66, {});

  double tx_fair = 0.0, tx_node = 0.0;
  for (const auto& r : fair.details) tx_fair += double(r.transmissions);
  for (const auto& r : node.details) tx_node += double(r.transmissions);
  tx_fair /= double(runs);
  tx_node /= double(runs);
  EXPECT_NEAR(tx_fair, tx_node, 0.1 * tx_fair);
}

}  // namespace
}  // namespace ucr

// Quickstart: resolve contention among k stations with One-Fail Adaptive.
//
//   $ ./quickstart [--k=1000] [--seed=42]
//
// Simulates a single-hop Radio Network without collision detection in which
// k stations are simultaneously activated with one message each (static
// k-selection), runs the paper's One-Fail Adaptive protocol, and reports
// the makespan against the Theorem 1 analysis.
#include <cstdint>
#include <iostream>

#include "analysis/bounds.hpp"
#include "common/cli.hpp"
#include "core/one_fail_adaptive.hpp"
#include "sim/fair_engine.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"k", "seed"});
  const std::uint64_t k = args.get_u64("k", 1000);
  const std::uint64_t seed = args.get_u64("seed", 42);

  ucr::OneFailParams params;  // delta = 2.72, the paper's choice
  ucr::OneFailAdaptive protocol(params);

  ucr::Xoshiro256 rng(seed);
  const ucr::RunMetrics run =
      ucr::run_fair_slot_engine(protocol, k, rng, ucr::EngineOptions{});

  std::cout << "One-Fail Adaptive (delta = " << params.delta << ") on k = "
            << k << " stations\n"
            << "  makespan        : " << run.slots << " slots\n"
            << "  ratio steps/k   : " << run.ratio() << "\n"
            << "  analysis ratio  : " << ucr::one_fail_ratio(params.delta)
            << "  (Theorem 1, w.p. >= " << 1.0 - ucr::one_fail_error(k)
            << ")\n"
            << "  slot breakdown  : " << run.silence_slots << " silent, "
            << run.success_slots << " success, " << run.collision_slots
            << " collision\n";
  return run.completed ? 0 : 1;
}

// Dynamic k-selection — the future-work setting of Section 6 of the paper:
// messages arrive at different times (statistical arrivals), not in a batch.
//
//   $ ./dynamic_arrivals [--k=200] [--lambda=0.05] [--runs=10] [--seed=3]
//
// Uses the per-node engine (stations activated at different slots hold
// genuinely different protocol states, so the fair aggregate engine does
// not apply) and reports per-message delivery latency. The non-monotonic
// strategies the paper proposes for batched arrivals remain well-behaved
// under Poisson arrivals — the observation that motivates the paper's
// closing conjecture.
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "sim/node_engine.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"k", "lambda", "runs", "seed"});
  const std::uint64_t k = args.get_u64("k", 200);
  const double lambda = args.get_double("lambda", 0.05);
  const std::uint64_t runs = args.get_u64("runs", 10);
  const std::uint64_t seed = args.get_u64("seed", 3);

  std::cout << "Dynamic k-selection: " << k << " messages, Poisson arrivals "
            << "at rate " << lambda << " msg/slot, " << runs << " runs\n\n";

  ucr::Table table({"protocol", "mean makespan", "mean latency",
                    "p95 latency", "incomplete"});
  for (const auto& factory : ucr::all_protocols()) {
    if (!factory.node) continue;

    std::vector<double> makespans;
    std::vector<double> latencies;
    std::uint64_t incomplete = 0;
    for (std::uint64_t r = 0; r < runs; ++r) {
      ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(seed, r);
      const auto arrivals = ucr::poisson_arrivals(k, lambda, rng);
      ucr::LatencyMetrics latency;
      const ucr::NodeFactory node_factory = [&](ucr::Xoshiro256& node_rng) {
        return factory.node(k, node_rng);
      };
      // Finite cap: protocols designed for batched arrivals may livelock
      // under sustained arrivals (see EXPERIMENTS.md on One-Fail Adaptive);
      // capped runs show up in the `incomplete` column.
      ucr::EngineOptions opts;
      opts.max_slots = 300000;
      const auto run =
          ucr::run_node_engine(node_factory, arrivals, rng, opts, &latency);
      if (!run.completed) ++incomplete;
      makespans.push_back(static_cast<double>(run.slots));
      for (auto l : latency.latencies) {
        latencies.push_back(static_cast<double>(l));
      }
    }
    const ucr::Summary mk = ucr::summarize(makespans);
    const ucr::Summary lat = ucr::summarize(latencies);
    table.add_row({factory.name, ucr::format_count(mk.mean),
                   ucr::format_double(lat.mean, 1),
                   ucr::format_double(lat.p95, 1), std::to_string(incomplete)});
  }
  table.print(std::cout);
  std::cout << "\nLatency = slots from a message's arrival to its delivery."
            << "\n";
  return 0;
}

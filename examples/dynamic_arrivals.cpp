// Dynamic k-selection — the future-work setting of Section 6 of the paper:
// messages arrive at different times (statistical arrivals), not in a batch.
//
//   $ ./dynamic_arrivals [--k=200] [--lambda=0.05] [--runs=10] [--seed=3]
//
// Uses the per-node engine (stations activated at different slots hold
// genuinely different protocol states, so the fair aggregate engine does
// not apply) and reports per-message delivery latency. The whole study is
// one ExperimentSpec: a Poisson ArrivalSpec makes every run of a cell a
// fresh draw of the arrival process, and record_latencies carries the
// per-message latencies back in the aggregates. The non-monotonic
// strategies the paper proposes for batched arrivals remain well-behaved
// under Poisson arrivals — the observation that motivates the paper's
// closing conjecture.
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"k", "lambda", "runs", "seed"});
  const std::uint64_t k = args.get_u64("k", 200);
  const double lambda = args.get_double("lambda", 0.05);

  ucr::exp::ExperimentSpec spec;
  spec.runs = args.get_u64("runs", 10);
  spec.seed = args.get_u64("seed", 3);
  spec.engine = ucr::exp::EngineMode::kNode;
  spec.with_ks({k}).with_arrival(ucr::exp::ArrivalSpec::poisson(lambda));
  // Finite cap: protocols designed for batched arrivals may livelock
  // under sustained arrivals (see EXPERIMENTS.md on One-Fail Adaptive);
  // capped runs show up in the `incomplete` column.
  spec.engine_options.max_slots = 300000;
  spec.engine_options.record_latencies = true;
  for (const auto& factory : ucr::all_protocols()) {
    if (factory.node) spec.with_factory(factory);
  }

  std::cout << "Dynamic k-selection: " << k << " messages, Poisson arrivals "
            << "at rate " << lambda << " msg/slot, " << spec.runs
            << " runs\n\n";

  const auto results = ucr::exp::run_collect(ucr::exp::compile(spec));

  ucr::Table table({"protocol", "mean makespan", "mean latency",
                    "p95 latency", "incomplete"});
  for (const auto& result : results) {
    std::vector<double> latencies;
    for (const auto& run : result.details) {
      for (const auto l : run.latencies) {
        latencies.push_back(static_cast<double>(l));
      }
    }
    const ucr::Summary lat = ucr::summarize(latencies);
    table.add_row({result.protocol, ucr::format_count(result.makespan.mean),
                   ucr::format_double(lat.mean, 1),
                   ucr::format_double(lat.p95, 1),
                   std::to_string(result.incomplete_runs)});
  }
  table.print(std::cout);
  std::cout << "\nLatency = slots from a message's arrival to its delivery."
            << "\n";
  return 0;
}

// Protocol internals trace: watch One-Fail Adaptive's density estimator
// chase the true density, and Exp Back-on/Back-off's sawtooth window.
//
//   $ ./protocol_trace [--k=64] [--seed=5] [--slots=120]
//
// Composes the public pieces directly (shared protocol state + categorical
// slot sampler) instead of using the engine, to show how the library's
// layers fit together.
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/samplers.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"

namespace {

void trace_one_fail(std::uint64_t k, std::uint64_t seed,
                    std::uint64_t max_rows) {
  std::cout << "One-Fail Adaptive, k = " << k
            << ": estimator kappa~ vs true density kappa\n\n";
  ucr::OneFailAdaptive protocol;
  ucr::Xoshiro256 rng(seed);
  std::uint64_t m = k;

  ucr::Table table({"slot", "type", "p(tx)", "outcome", "kappa~", "kappa",
                    "sigma"});
  for (std::uint64_t slot = 1; m > 0 && slot <= max_rows; ++slot) {
    const auto& st = protocol.state();
    const double p = protocol.transmit_probability();
    const auto cat = ucr::sample_slot_category(rng, m, p);
    const bool delivery = cat == ucr::SlotCategory::kSuccess;
    const char* outcome = cat == ucr::SlotCategory::kSilence ? "silence"
                          : delivery                         ? "SUCCESS"
                                                             : "collision";
    table.add_row({std::to_string(slot), st.is_bt_step() ? "BT" : "AT",
                   ucr::format_double(p, 4), outcome,
                   ucr::format_double(st.kappa_estimate(), 2),
                   std::to_string(m), std::to_string(st.sigma())});
    if (delivery) --m;
    protocol.on_slot_end(delivery);
  }
  table.print(std::cout);
  if (m > 0) {
    std::cout << "(truncated after " << max_rows << " slots; " << m
              << " messages still pending)\n";
  }
}

void trace_sawtooth(int windows) {
  std::cout << "\nExp Back-on/Back-off window sawtooth (delta = 0.366):\n\n";
  ucr::ExpBackonBackoff schedule;
  ucr::Table table({"window#", "phase (w=2^i)", "slots"});
  for (int i = 1; i <= windows; ++i) {
    const std::uint64_t phase = schedule.phase();
    table.add_row({std::to_string(i), std::to_string(phase),
                   std::to_string(schedule.next_window_slots())});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"k", "seed", "slots"});
  trace_one_fail(args.get_u64("k", 64), args.get_u64("seed", 5),
                 args.get_u64("slots", 120));
  trace_sawtooth(25);
  return 0;
}

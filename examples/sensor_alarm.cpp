// Sensor-network alarm scenario (the paper's Sensor Network motivation).
//
//   $ ./sensor_alarm [--k=512] [--runs=20] [--seed=7]
//
// k sensors detect the same event and all try to report it over one shared
// radio channel at once — a batched arrival, the worst-case pattern the
// paper targets. Compares the two proposed protocols against the monotone
// baseline on makespan and on energy (transmissions per sensor, the battery
// cost that matters in sensor networks).
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"k", "runs", "seed"});
  const std::uint64_t k = args.get_u64("k", 512);
  const std::uint64_t runs = args.get_u64("runs", 20);
  const std::uint64_t seed = args.get_u64("seed", 7);

  std::cout << "Burst of " << k << " sensor alarms on one radio channel, "
            << runs << " runs per protocol\n\n";

  ucr::Table table({"protocol", "mean makespan", "ratio", "p95 makespan",
                    "tx/sensor"});
  for (const auto& factory : ucr::all_protocols()) {
    const ucr::AggregateResult res = ucr::run_fair_experiment(
        factory, k, runs, seed, ucr::EngineOptions{});

    // Energy: average transmissions per sensor per run (exact where the
    // engine counts, expected where it aggregates).
    double tx = 0.0;
    for (const auto& run : res.details) {
      tx += run.transmissions > 0
                ? static_cast<double>(run.transmissions)
                : run.expected_transmissions;
    }
    tx /= static_cast<double>(res.runs) * static_cast<double>(k);

    table.add_row({factory.name, ucr::format_count(res.makespan.mean),
                   ucr::format_double(res.ratio.mean, 2),
                   ucr::format_count(res.makespan.p95),
                   ucr::format_double(tx, 2)});
  }
  table.print(std::cout);
  std::cout << "\nLower is better everywhere; 'ratio' is makespan/k "
               "(Table 1 of the paper).\n";
  return 0;
}

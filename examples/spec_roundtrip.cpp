// Spec files as the experiment API: build a description in code, print
// its canonical text (what `ucr_cli --dump-spec` emits and what lives in
// specs/), parse it back, and run it — demonstrating the exact
// round-trip contract parse_spec(to_text(s)) == s and the spec_hash
// provenance stamp the sinks attach to every archived row.
//
//   $ ./spec_roundtrip [--runs=3]
#include <cstdint>
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"runs"});

  // A small mixed sweep, described declaratively.
  ucr::exp::SpecFile file;
  file.spec.with_protocol("One-Fail Adaptive")
      .with_protocol("Exp Back-on/Back-off")
      .with_ks({50, 200})
      .with_arrival(ucr::exp::ArrivalSpec::batch())
      .with_arrival(ucr::exp::ArrivalSpec::poisson(0.2));
  file.spec.runs = args.get_u64("runs", 3);
  file.spec.seed = 7;
  file.format = ucr::exp::OutputFormat::kJsonl;

  // The canonical text IS the experiment: versionable, diffable, and it
  // parses back to exactly the same value.
  const std::string text = ucr::exp::to_text(file);
  std::cout << "--- canonical spec text ---\n" << text;
  const ucr::exp::SpecFile parsed = ucr::exp::parse_spec(text);
  UCR_CHECK(parsed == file, "round trip must be exact");

  // Both forms hash identically, and every emitted row carries the hash.
  std::cout << "--- spec_hash " << ucr::exp::spec_hash(parsed.spec)
            << " ---\n";
  const ucr::exp::ExperimentPlan plan =
      ucr::exp::compile(parsed.spec, ucr::default_catalogue());
  ucr::exp::JsonlSink sink(std::cout);
  ucr::exp::run(plan, {&sink}, {});
  return 0;
}

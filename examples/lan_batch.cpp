// LAN batched-packet scenario (the paper's local-area-network motivation,
// after Bender et al. [2]).
//
//   $ ./lan_batch [--kmax=100000] [--runs=5] [--seed=11] [--csv=1]
//
// A switch port floods k stations' packets into a shared Ethernet-like
// channel at once; sweeps k over powers of ten and reports how each
// strategy's makespan scales. The sweep is one declarative ExperimentSpec
// run through the exp pipeline (the same path ucr_cli and the bench
// harnesses use); with --csv=1 the aggregate rows stream to stdout in the
// sim/resultio format (re-readable with read_aggregate_csv) instead of
// the table.
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"kmax", "runs", "seed", "csv"});
  const std::uint64_t k_max = args.get_u64("kmax", 100000);
  const bool csv = args.get_bool("csv", false);

  ucr::exp::ExperimentSpec spec;
  spec.runs = args.get_u64("runs", 5);
  spec.seed = args.get_u64("seed", 11);
  spec.with_paper_ks(k_max);
  for (const auto& p : ucr::paper_protocols()) {
    spec.with_protocol(p.name);
  }
  const auto plan = ucr::exp::compile(spec, ucr::paper_protocols());

  if (csv) {
    // Streaming sink: rows appear as the grid prefix completes.
    ucr::exp::CsvStreamSink sink(std::cout);
    ucr::exp::run(plan, {&sink});
    return 0;
  }

  const auto results = ucr::exp::run_collect(plan);
  const auto protocols = ucr::paper_protocols();
  const auto ks = ucr::paper_k_sweep(k_max);

  std::cout << "Batched packet contention on a shared LAN channel ("
            << spec.runs << " runs per point)\n\n";
  std::vector<std::string> header{"k"};
  for (const auto& factory : protocols) header.push_back(factory.name);
  ucr::Table table(header);
  for (std::size_t j = 0; j < ks.size(); ++j) {
    std::vector<std::string> row{std::to_string(ks[j])};
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      row.push_back(
          ucr::format_double(results[i * ks.size() + j].makespan.mean, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nCells are mean makespans in slots (compare Figure 1 of "
               "the paper).\n";
  return 0;
}

// LAN batched-packet scenario (the paper's local-area-network motivation,
// after Bender et al. [2]).
//
//   $ ./lan_batch [--kmax=100000] [--runs=5] [--seed=11] [--csv=1]
//
// A switch port floods k stations' packets into a shared Ethernet-like
// channel at once; sweeps k over powers of ten and reports how each
// strategy's makespan scales. With --csv=1 the series is emitted as CSV
// for replotting (same shape as Figure 1 of the paper).
#include <cstdint>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv, {"kmax", "runs", "seed", "csv"});
  const std::uint64_t k_max = args.get_u64("kmax", 100000);
  const std::uint64_t runs = args.get_u64("runs", 5);
  const std::uint64_t seed = args.get_u64("seed", 11);
  const bool csv = args.get_bool("csv", false);

  const auto protocols = ucr::paper_protocols();
  const auto ks = ucr::paper_k_sweep(k_max);

  if (csv) {
    ucr::CsvWriter writer(std::cout);
    writer.write_row({"protocol", "k", "mean_makespan", "ci95", "ratio"});
    for (const auto& factory : protocols) {
      for (std::uint64_t k : ks) {
        const auto res =
            ucr::run_fair_experiment(factory, k, runs, seed, {});
        writer.write_row({factory.name, std::to_string(k),
                          ucr::format_count(res.makespan.mean),
                          ucr::format_count(res.makespan.ci95_halfwidth),
                          ucr::format_double(res.ratio.mean, 3)});
      }
    }
    return 0;
  }

  std::cout << "Batched packet contention on a shared LAN channel ("
            << runs << " runs per point)\n\n";
  std::vector<std::string> header{"k"};
  for (const auto& factory : protocols) header.push_back(factory.name);
  ucr::Table table(header);
  for (std::uint64_t k : ks) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& factory : protocols) {
      const auto res = ucr::run_fair_experiment(factory, k, runs, seed, {});
      row.push_back(ucr::format_double(res.makespan.mean, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nCells are mean makespans in slots (compare Figure 1 of "
               "the paper).\n";
  return 0;
}

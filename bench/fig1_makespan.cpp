// Reproduces FIGURE 1 of the paper: average number of steps to solve static
// k-selection, per number of stations k, for the five evaluated protocols
// (log-log series). Emits the series both as an aligned table and as CSV
// (between BEGIN/END CSV markers) for replotting.
//
// Paper setting: k = 10^1..10^7, 10 runs per point, delta = 2.72 (OFA),
// delta = 0.366 (EBOBO), xi_delta = xi_beta = 0.1 and epsilon ~= 1/(k+1)
// (LFA, xi_t in {1/2, 1/10}), r = 2 (LLIBO).
#include <iostream>

#include "harness_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 1000000);
  const auto protocols = ucr::paper_protocols();
  const auto ks = ucr::paper_k_sweep(cfg.k_max);

  std::cout << "=== Figure 1: steps to solve static k-selection "
            << "(mean of " << cfg.effective_runs() << " runs, seed "
            << cfg.effective_seed() << ") ===\n\n";

  // The protocol x k grid is one declarative spec; run_spec executes it on
  // the shared pipeline (results in grid order, UCR_CSV_OUT streaming,
  // --shard partitioning all inherited).
  auto spec = cfg.spec().with_ks(ks);
  for (const auto& factory : protocols) spec.with_factory(factory);
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  // protocol x k -> aggregate (cells arrive protocol-major, in grid order).
  const auto& flat = run.results;
  std::vector<std::string> header{"k"};
  for (const auto& factory : protocols) header.push_back(factory.name);
  ucr::Table table(header);
  for (std::size_t j = 0; j < ks.size(); ++j) {
    std::vector<std::string> row{std::to_string(ks[j])};
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      row.push_back(
          ucr::format_double(flat[i * ks.size() + j].makespan.mean, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nBEGIN CSV\n";
  ucr::CsvWriter csv(std::cout);
  csv.write_row({"protocol", "k", "mean_steps", "ci95_halfwidth",
                 "min_steps", "max_steps"});
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    for (std::size_t j = 0; j < ks.size(); ++j) {
      const auto& res = flat[i * ks.size() + j];
      csv.write_row({protocols[i].name, std::to_string(ks[j]),
                     ucr::format_double(res.makespan.mean, 1),
                     ucr::format_double(res.makespan.ci95_halfwidth, 1),
                     ucr::format_double(res.makespan.min, 0),
                     ucr::format_double(res.makespan.max, 0)});
    }
  }
  std::cout << "END CSV\n";
  return 0;
}

// Reproduces FIGURE 1 of the paper: average number of steps to solve static
// k-selection, per number of stations k, for the five evaluated protocols
// (log-log series). Emits the series both as an aligned table and as CSV
// (between BEGIN/END CSV markers) for replotting.
//
// Paper setting: k = 10^1..10^7, 10 runs per point, delta = 2.72 (OFA),
// delta = 0.366 (EBOBO), xi_delta = xi_beta = 0.1 and epsilon ~= 1/(k+1)
// (LFA, xi_t in {1/2, 1/10}), r = 2 (LLIBO).
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "harness_common.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "sim/resultio.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 1000000);
  const auto protocols = ucr::paper_protocols();
  const auto ks = ucr::paper_k_sweep(cfg.k_max);

  std::cout << "=== Figure 1: steps to solve static k-selection "
            << "(mean of " << cfg.runs << " runs, seed " << cfg.seed
            << ") ===\n\n";

  // The protocol x k grid runs as one parallel sweep; results come back in
  // grid order, so cell (i, j) is protocol i at ks[j].
  std::vector<ucr::SweepPoint> points;
  points.reserve(protocols.size() * ks.size());
  for (const auto& factory : protocols) {
    for (const auto k : ks) {
      points.push_back(ucr::SweepPoint::fair(factory, k, cfg.runs, cfg.seed,
                                             cfg.engine_options()));
    }
  }
  const auto flat =
      ucr::SweepRunner(ucr::SweepOptions{cfg.threads}).run(points);

  // protocol x k -> aggregate
  std::vector<std::vector<ucr::AggregateResult>> grid;
  grid.reserve(protocols.size());
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    grid.emplace_back(flat.begin() + i * ks.size(),
                      flat.begin() + (i + 1) * ks.size());
  }

  std::vector<std::string> header{"k"};
  for (const auto& factory : protocols) header.push_back(factory.name);
  ucr::Table table(header);
  for (std::size_t j = 0; j < ks.size(); ++j) {
    std::vector<std::string> row{std::to_string(ks[j])};
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      row.push_back(ucr::format_double(grid[i][j].makespan.mean, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nBEGIN CSV\n";
  ucr::CsvWriter csv(std::cout);
  csv.write_row({"protocol", "k", "mean_steps", "ci95_halfwidth",
                 "min_steps", "max_steps"});
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    for (std::size_t j = 0; j < ks.size(); ++j) {
      const auto& res = grid[i][j];
      csv.write_row({protocols[i].name, std::to_string(ks[j]),
                     ucr::format_double(res.makespan.mean, 1),
                     ucr::format_double(res.makespan.ci95_halfwidth, 1),
                     ucr::format_double(res.makespan.min, 0),
                     ucr::format_double(res.makespan.max, 0)});
    }
  }
  std::cout << "END CSV\n";

  // Optional archival: UCR_CSV_OUT=<path> persists the aggregate rows in
  // the resultio format (re-readable via read_aggregate_csv).
  if (const char* out = std::getenv("UCR_CSV_OUT");
      out != nullptr && *out != '\0') {
    std::vector<ucr::AggregateRow> rows;
    for (const auto& protocol_row : grid) {
      for (const auto& res : protocol_row) {
        rows.push_back(ucr::AggregateRow::from(res));
      }
    }
    std::ofstream file(out);
    ucr::write_aggregate_csv(file, rows);
    std::cout << "(aggregate rows written to " << out << ")\n";
  }
  return 0;
}

// Reproduces TABLE 1 of the paper: the ratio steps/k as a function of k for
// each evaluated protocol, plus the paper's "Analysis" column (the
// with-high-probability constants obtained analytically).
//
// Expected shape (paper): Log-Fails Adaptive is far above its asymptote for
// k <= 10^5 and converges to ~7.8 / ~4.4; One-Fail Adaptive is flat at
// ~7.4 from k = 10^3 on; Exp Back-on/Back-off moves between 4 and 8 (well
// under its pessimistic 14.9 analysis); LogLog-Iterated sits around 10.
#include <iostream>

#include "analysis/bounds.hpp"
#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 1000000);
  const auto protocols = ucr::paper_protocols();
  const auto ks = ucr::paper_k_sweep(cfg.k_max);

  std::cout << "=== Table 1: ratio steps/nodes as a function of k "
            << "(mean of " << cfg.effective_runs() << " runs, seed "
            << cfg.effective_seed() << ") ===\n\n";

  auto spec = cfg.spec().with_ks(ks);
  for (const auto& factory : protocols) spec.with_factory(factory);
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  std::vector<std::string> header{"k"};
  for (const auto k : ks) header.push_back(std::to_string(k));
  header.push_back("Analysis");

  ucr::Table table(header);
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    std::vector<std::string> row{protocols[i].name};
    for (std::size_t j = 0; j < ks.size(); ++j) {
      const auto& res = run.results[i * ks.size() + j];
      row.push_back(ucr::format_double(res.ratio.mean, 1));
    }
    row.push_back(ucr::analysis_cell(protocols[i].name));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nReference: the smallest ratio achievable by any fair "
               "protocol is e = "
            << ucr::format_double(ucr::fair_optimal_ratio(), 3)
            << " (Section 5 of the paper).\n";
  return 0;
}

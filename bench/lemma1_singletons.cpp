// Validates LEMMA 1 of the paper empirically: when m balls are dropped
// uniformly at random into w = m bins, the number of singleton bins is at
// least delta*m with probability at least 1 - 1/k^beta, provided
// m >= (2e/(1 - e*delta)^2)(1 + (beta + 1/2) ln k).
//
// This is the engine room of Theorem 2 (each Exp Back-on/Back-off window is
// exactly this process), so the harness both checks the bound and shows how
// conservative it is: the mean singleton fraction is ~1/e ≈ 0.3679,
// comfortably above delta = 0.366 only once m is large — which is precisely
// why the lemma needs its m >= tau threshold.
//
// This is the one harness that stays off the ExperimentSpec pipeline: it
// samples the balls-in-bins process directly (no protocol, no engine), so
// there is no sweep grid to declare.
#include <cstdint>
#include <iostream>

#include "analysis/bounds.hpp"
#include "harness_common.hpp"
#include "common/rng.hpp"
#include "common/samplers.hpp"
#include "common/table.hpp"

namespace {

// Counts singleton bins of one m-balls/w-bins throw via the same sequential
// conditional-binomial decomposition the window engine uses.
std::uint64_t sample_singletons(ucr::Xoshiro256& rng, std::uint64_t m,
                                std::uint64_t w) {
  std::uint64_t pending = m;
  std::uint64_t singles = 0;
  for (std::uint64_t j = 0; j < w && pending > 0; ++j) {
    const std::uint64_t t = ucr::sample_binomial(
        rng, pending, 1.0 / static_cast<double>(w - j));
    if (t == 1) ++singles;
    pending -= t;
  }
  return singles;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 1000000);
  if (cfg.spec_file) {
    // Loud, not silent: this harness is a balls-in-bins Monte Carlo, not
    // a protocol sweep — there is no grid a spec file could replace.
    std::cout << "note: --spec/UCR_SPEC is ignored by lemma1_singletons "
                 "(no protocol grid)\n\n";
  }
  const double delta = 0.366;  // the paper's Exp Back-on/Back-off constant
  const double beta = 1.0;
  const std::uint64_t trials = cfg.runs * 20;  // default 200 throws per m

  std::cout << "=== Lemma 1: singleton bins among m balls in w = m bins "
            << "(delta = " << delta << ", beta = " << beta << ", " << trials
            << " trials) ===\n\n";

  ucr::Table table({"m", "mean singles/m", "min singles/m",
                    "P[X < delta*m]", "lemma bound 1/k^beta",
                    "m >= lemma threshold?"});
  for (std::uint64_t m = 100; m <= cfg.k_max; m *= 10) {
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(cfg.seed, m);
    std::uint64_t below = 0;
    double sum_frac = 0.0;
    double min_frac = 1.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const std::uint64_t singles = sample_singletons(rng, m, m);
      const double frac =
          static_cast<double>(singles) / static_cast<double>(m);
      sum_frac += frac;
      if (frac < min_frac) min_frac = frac;
      if (frac < delta) ++below;
    }
    const double threshold = ucr::lemma1_min_m(delta, beta, m);
    table.add_row(
        {std::to_string(m),
         ucr::format_double(sum_frac / static_cast<double>(trials), 4),
         ucr::format_double(min_frac, 4),
         ucr::format_double(static_cast<double>(below) /
                                static_cast<double>(trials),
                            4),
         ucr::format_double(1.0 / static_cast<double>(m), 6),
         static_cast<double>(m) >= threshold ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nExpected singleton fraction is (1-1/m)^(m-1) -> 1/e = "
            << ucr::format_double(1.0 / ucr::fair_optimal_ratio(), 4)
            << "; delta = 0.366 sits just below it, so the failure "
               "probability must vanish as m grows.\n";
  return 0;
}

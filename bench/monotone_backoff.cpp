// Monotone vs non-monotone ablation — the motivating comparison of the
// paper's introduction: monotone back-off (r-exponential) is superlinear
// for batched arrivals, LogLog-Iterated Back-off is the best monotone
// strategy (Theta(k lglg k / lglglg k)), and the paper's non-monotonic
// sawtooth is linear. This harness shows the growth of the ratio steps/k:
// roughly flat for the sawtooth, slowly growing for LLIBO, log-growing for
// exponential back-off.
#include <iostream>

#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "protocols/exp_backoff.hpp"
#include "protocols/loglog_backoff.hpp"
#include "protocols/poly_backoff.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);

  std::cout << "=== Monotone back-off ablation: ratio steps/k ===\n\n";

  std::vector<ucr::ProtocolFactory> protocols;
  protocols.push_back(ucr::make_exp_backon_factory(
      ucr::ExpBackonParams{0.366}, "Sawtooth (non-monotone)"));
  protocols.push_back(
      ucr::make_loglog_factory(ucr::LogLogParams{2.0}, "LogLog-Iterated"));
  for (const double r : {2.0, 4.0, 16.0}) {
    protocols.push_back(
        ucr::make_exp_backoff_factory(ucr::ExpBackoffParams{r}));
  }
  protocols.push_back(
      ucr::make_poly_backoff_factory(ucr::PolyBackoffParams{2.0}));

  const auto ks = ucr::paper_k_sweep(cfg.k_max);
  auto spec = cfg.spec().with_ks(ks);
  for (const auto& factory : protocols) spec.with_factory(factory);
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  std::vector<std::string> header{"protocol"};
  for (const auto k : ks) header.push_back(std::to_string(k));
  ucr::Table table(header);
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    std::vector<std::string> row{protocols[i].name};
    for (std::size_t j = 0; j < ks.size(); ++j) {
      row.push_back(
          ucr::format_double(run.results[i * ks.size() + j].ratio.mean, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nA flat row = linear makespan; a growing row = superlinear "
               "(monotone strategies).\n";
  return 0;
}

// Monotone vs non-monotone ablation — the motivating comparison of the
// paper's introduction: monotone back-off (r-exponential) is superlinear
// for batched arrivals, LogLog-Iterated Back-off is the best monotone
// strategy (Theta(k lglg k / lglglg k)), and the paper's non-monotonic
// sawtooth is linear. This harness shows the growth of the ratio steps/k:
// roughly flat for the sawtooth, slowly growing for LLIBO, log-growing for
// exponential back-off.
#include <iostream>

#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "protocols/exp_backoff.hpp"
#include "protocols/loglog_backoff.hpp"
#include "protocols/poly_backoff.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);

  std::cout << "=== Monotone back-off ablation: ratio steps/k ===\n\n";

  std::vector<ucr::ProtocolFactory> protocols;
  protocols.push_back(ucr::make_exp_backon_factory(
      ucr::ExpBackonParams{0.366}, "Sawtooth (non-monotone)"));
  protocols.push_back(
      ucr::make_loglog_factory(ucr::LogLogParams{2.0}, "LogLog-Iterated"));
  for (const double r : {2.0, 4.0, 16.0}) {
    protocols.push_back(
        ucr::make_exp_backoff_factory(ucr::ExpBackoffParams{r}));
  }
  protocols.push_back(
      ucr::make_poly_backoff_factory(ucr::PolyBackoffParams{2.0}));

  const auto ks = ucr::paper_k_sweep(cfg.k_max);
  std::vector<std::string> header{"protocol"};
  for (const auto k : ks) header.push_back(std::to_string(k));
  std::vector<ucr::SweepPoint> points;
  points.reserve(protocols.size() * ks.size());
  for (const auto& factory : protocols) {
    for (const auto k : ks) {
      points.push_back(ucr::SweepPoint::fair(factory, k, cfg.runs, cfg.seed,
                                             cfg.engine_options()));
    }
  }
  const auto results =
      ucr::SweepRunner(ucr::SweepOptions{cfg.threads}).run(points);

  ucr::Table table(header);
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    std::vector<std::string> row{protocols[i].name};
    for (std::size_t j = 0; j < ks.size(); ++j) {
      row.push_back(
          ucr::format_double(results[i * ks.size() + j].ratio.mean, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nA flat row = linear makespan; a growing row = superlinear "
               "(monotone strategies).\n";
  return 0;
}

// Shared plumbing of the reproduction harnesses (bench/ executables).
//
// Every harness accepts the same overrides, with the command line taking
// precedence over the environment:
//   --kmax=N     / UCR_KMAX     largest k of the sweep   (default varies)
//   --runs=N     / UCR_RUNS     runs per (protocol, k)   (default 10, as in
//                               the paper)
//   --seed=N     / UCR_SEED     base seed                (default 2011)
//   --threads=N  / UCR_THREADS  sweep worker threads     (default: all
//                               hardware threads; N >= 1, junk and 0 are
//                               rejected)
//   --batched=1  / UCR_BATCHED  run every cell through the batched engine
//                               fast paths — fair cells via
//                               sim/fair_engine.hpp, non-batch (dynamic
//                               arrival) cells via the batched per-node
//                               engine (sim/node_engine.hpp) — same law
//                               of outcomes as the exact engines but a
//                               different RNG path, so per-run numbers
//                               differ; means/quantiles agree
//   --shard=i/N  / UCR_SHARD    own shard i of N of the flattened grid
//                               (cross-machine sweeps; concatenated
//                               UCR_CSV_OUT files are byte-identical to
//                               the unsharded sweep)
//
// Harnesses describe their grid as an ExperimentSpec (exp/spec.hpp) and
// execute it with run_spec() below — the same spec -> plan -> sink
// pipeline ucr_cli drives — so there are no per-harness grid loops and
// every harness inherits sharding and streaming archival for free:
// UCR_CSV_OUT=<path> streams the aggregate rows in the sim/resultio
// format and UCR_JSONL_OUT=<path> the JSONL form (use the latter for
// grids with several arrival workloads — CSV rows cannot name the
// workload), both while the sweep is still running.
//
// Results are bit-identical for every thread count (see sim/sweep.hpp), so
// --threads is purely a wall-clock knob; --batched is the paper-scale
// wall-clock knob (UCR_KMAX=10000000 sweeps).
//
// Full-scale reproduction of the paper (k up to 10^7) is run with
// UCR_KMAX=10000000; defaults are sized so that `for b in build/bench/*`
// finishes in minutes on one core. EXPERIMENTS.md records both the
// single-machine and the sharded invocation.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec.hpp"
#include "sim/metrics.hpp"

namespace ucr::bench {

struct HarnessConfig {
  std::uint64_t k_max;
  std::uint64_t runs;
  std::uint64_t seed;
  unsigned threads;
  bool batched;
  exp::ShardSpec shard;

  /// Spec pre-filled with this harness invocation's runs / seed / engine
  /// mode / shard; the harness adds its protocol, k and arrival axes.
  exp::ExperimentSpec spec() const {
    exp::ExperimentSpec spec;
    spec.runs = runs;
    spec.seed = seed;
    spec.engine =
        batched ? exp::EngineMode::kBatched : exp::EngineMode::kFair;
    spec.shard = shard;
    return spec;
  }
};

inline HarnessConfig parse_harness_config(int argc, const char* const* argv,
                                          std::uint64_t default_kmax) {
  const CliArgs args(argc, argv,
                     {"kmax", "runs", "seed", "threads", "batched", "shard"});
  HarnessConfig cfg;
  cfg.k_max = args.get_u64("kmax", env_u64("UCR_KMAX", default_kmax));
  cfg.runs = args.get_u64("runs", env_u64("UCR_RUNS", 10));
  cfg.seed = args.get_u64("seed", env_u64("UCR_SEED", 2011));
  cfg.threads = thread_count_option(args, "UCR_THREADS");
  cfg.batched = args.get_bool("batched", env_u64("UCR_BATCHED", 0) != 0);
  std::optional<std::string> shard = args.get("shard");
  if (!shard) {
    if (const char* env = std::getenv("UCR_SHARD")) shard = std::string(env);
  }
  if (shard) cfg.shard = exp::ShardSpec::parse(*shard);
  return cfg;
}

/// This shard's cells and their aggregates, in grid order. For an
/// unsharded run cells[i].index == i, so pivot-table harnesses can index
/// the results directly by grid position.
struct SpecRun {
  std::vector<exp::CellInfo> cells;
  std::vector<AggregateResult> results;
};

/// Compiles and runs a harness spec through the shared pipeline with the
/// caller's sinks. When UCR_CSV_OUT is set (and non-empty), the rows also
/// stream to that file as cells complete (header on shard 0 only, so
/// per-shard files concatenate to the unsharded archive). UCR_JSONL_OUT
/// streams the JSONL form the same way — the archive to use for
/// heterogeneous-arrival grids, where the flat CSV row cannot name the
/// workload and rows of different arrival cells would be
/// indistinguishable.
inline void run_spec_with_sinks(const HarnessConfig& cfg,
                                const exp::ExperimentSpec& spec,
                                std::vector<exp::ResultSink*> sinks) {
  const exp::ExperimentPlan plan = exp::compile(spec);
  const auto open_archive = [](const char* env, std::ofstream& file) {
    const char* out = std::getenv(env);
    if (out == nullptr || *out == '\0') return false;  // unset/empty: off
    file.open(out);
    UCR_REQUIRE(file.is_open(), std::string("cannot open ") + env +
                                    " path '" + out + "'");
    return true;
  };
  std::ofstream csv_file;
  std::optional<exp::CsvStreamSink> csv;
  if (open_archive("UCR_CSV_OUT", csv_file)) {
    csv.emplace(csv_file);
    sinks.push_back(&*csv);
  }
  std::ofstream jsonl_file;
  std::optional<exp::JsonlSink> jsonl;
  if (open_archive("UCR_JSONL_OUT", jsonl_file)) {
    jsonl.emplace(jsonl_file);
    sinks.push_back(&*jsonl);
  }
  exp::run(plan, sinks, {cfg.threads});
}

/// run_spec_with_sinks through a MemorySink — the fit for table-rendering
/// harnesses. Harnesses that post-process heavy per-run details should
/// pass their own digesting sink to run_spec_with_sinks instead, so the
/// details are dropped cell by cell.
inline SpecRun run_spec(const HarnessConfig& cfg,
                        const exp::ExperimentSpec& spec) {
  exp::MemorySink memory;
  run_spec_with_sinks(cfg, spec, {&memory});
  return SpecRun{memory.cells(), memory.take_results()};
}

/// Flat per-cell listing, the rendering for sharded invocations (a pivot
/// table over the full grid cannot be assembled from one shard's block).
inline void print_cells(std::ostream& os, const SpecRun& run) {
  Table table({"cell", "protocol", "k", "arrivals", "mean makespan",
               "mean ratio", "incomplete"});
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const AggregateResult& res = run.results[i];
    table.add_row({std::to_string(run.cells[i].index), res.protocol,
                   std::to_string(res.k), run.cells[i].arrival.label(),
                   format_double(res.makespan.mean, 1),
                   format_double(res.ratio.mean, 3),
                   std::to_string(res.incomplete_runs)});
  }
  table.print(os);
}

}  // namespace ucr::bench

// Shared plumbing of the reproduction harnesses (bench/ executables).
//
// Every harness accepts the same overrides, with the command line taking
// precedence over the environment:
//   --kmax=N     / UCR_KMAX     largest k of the sweep   (default varies)
//   --runs=N     / UCR_RUNS     runs per (protocol, k)   (default 10, as in
//                               the paper)
//   --seed=N     / UCR_SEED     base seed                (default 2011)
//   --threads=N  / UCR_THREADS  sweep worker threads     (default: all
//                               hardware threads; N >= 1, junk and 0 are
//                               rejected)
//   --batched=1  / UCR_BATCHED  run every cell through the batched engine
//                               fast paths — fair cells via
//                               sim/fair_engine.hpp, non-batch (dynamic
//                               arrival) cells via the batched per-node
//                               engine (sim/node_engine.hpp) — same law
//                               of outcomes as the exact engines but a
//                               different RNG path, so per-run numbers
//                               differ; means/quantiles agree
//   --channel=SPEC / UCR_CHANNEL  run every cell under this channel model
//                               (channel/model.hpp grammar: clean,
//                               capture(<p>), jamming(<q>) or
//                               jam_burst(<period>,<len>)); applies to the
//                               harness grid AND to a --spec file's grid.
//                               Non-clean cells run on the exact node
//                               engine (docs/SCENARIOS.md), so this is
//                               also the quick robustness check of any
//                               archived sweep
//   --shard=i/N  / UCR_SHARD    own shard i of N of the flattened grid
//                               (cross-machine sweeps; concatenated
//                               UCR_CSV_OUT files are byte-identical to
//                               the unsharded sweep)
//   --spec=FILE  / UCR_SPEC     run the spec file's grid INSTEAD of the
//                               harness's own (exp/spec_io.hpp format;
//                               protocol names resolve against
//                               default_catalogue()). The harness then
//                               renders the generic flat cell listing —
//                               its pivot tables describe its own grid —
//                               while UCR_CSV_OUT / UCR_JSONL_OUT archive
//                               the file's sweep, so a versioned spec in
//                               specs/ IS the regression workload.
//                               --shard and --threads (and their
//                               environment forms) still override the
//                               file; --kmax/--runs/--seed/--batched
//                               describe the harness grid and are ignored
//                               with a spec override.
//
// Harnesses describe their grid as an ExperimentSpec (exp/spec.hpp) and
// execute it with run_spec() below — the same spec -> plan -> sink
// pipeline ucr_cli drives — so there are no per-harness grid loops and
// every harness inherits sharding and streaming archival for free:
// UCR_CSV_OUT=<path> streams the aggregate rows in the sim/resultio
// format and UCR_JSONL_OUT=<path> the JSONL form (use the latter for
// grids with several arrival workloads — CSV rows cannot name the
// workload), both while the sweep is still running.
//
// Results are bit-identical for every thread count (see sim/sweep.hpp), so
// --threads is purely a wall-clock knob; --batched is the paper-scale
// wall-clock knob (UCR_KMAX=10000000 sweeps).
//
// Full-scale reproduction of the paper (k up to 10^7) is run with
// UCR_KMAX=10000000; defaults are sized so that `for b in build/bench/*`
// finishes in minutes on one core. EXPERIMENTS.md records both the
// single-machine and the sharded invocation.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec.hpp"
#include "exp/spec_io.hpp"
#include "sim/metrics.hpp"

namespace ucr::bench {

struct HarnessConfig {
  std::uint64_t k_max;
  std::uint64_t runs;
  std::uint64_t seed;
  unsigned threads;
  bool batched;
  exp::ShardSpec shard;
  /// Set by --channel / UCR_CHANNEL: channel model forced onto every cell
  /// of the executed grid (harness-own or spec-file).
  std::optional<ChannelModel> channel;
  /// Set by --spec / UCR_SPEC: the file's grid replaces the harness's own
  /// in run_spec / run_spec_with_sinks.
  std::optional<exp::SpecFile> spec_file;
  /// Whether --shard / --threads were given explicitly (they then beat
  /// the spec file's values too).
  bool shard_given = false;
  bool threads_given = false;

  /// Spec pre-filled with this harness invocation's runs / seed / engine
  /// mode / shard; the harness adds its protocol, k and arrival axes.
  exp::ExperimentSpec spec() const {
    exp::ExperimentSpec spec;
    spec.runs = runs;
    spec.seed = seed;
    spec.engine =
        batched ? exp::EngineMode::kBatched : exp::EngineMode::kFair;
    spec.shard = shard;
    if (channel) spec.channels = {*channel};
    return spec;
  }

  /// True when the harness's own pivot rendering applies: the whole grid
  /// is present (unsharded) and it is the harness's own grid (no
  /// spec-file override). Sharded blocks and file-defined grids render
  /// through print_generic instead.
  bool pivot_render() const {
    return effective_shard().is_whole() && !spec_file;
  }

  /// What the executed grid actually uses — the spec file's values when
  /// one overrides the harness grid — so banners and listings never
  /// report the harness defaults for a run they did not perform.
  std::uint64_t effective_runs() const {
    return spec_file ? spec_file->spec.runs : runs;
  }
  std::uint64_t effective_seed() const {
    return spec_file ? spec_file->spec.seed : seed;
  }
  exp::ShardSpec effective_shard() const {
    return (spec_file && !shard_given) ? spec_file->spec.shard : shard;
  }
};

inline HarnessConfig parse_harness_config(int argc, const char* const* argv,
                                          std::uint64_t default_kmax) {
  const CliArgs args(argc, argv, {"kmax", "runs", "seed", "threads",
                                  "batched", "channel", "shard", "spec"});
  HarnessConfig cfg;
  cfg.k_max = args.get_u64("kmax", env_u64("UCR_KMAX", default_kmax));
  cfg.runs = args.get_u64("runs", env_u64("UCR_RUNS", 10));
  cfg.seed = args.get_u64("seed", env_u64("UCR_SEED", 2011));
  cfg.threads = thread_count_option(args, "UCR_THREADS");
  // An empty UCR_THREADS means unset, exactly as thread_count_option
  // treats it — it must not count as an override of a spec file.
  const char* threads_env = std::getenv("UCR_THREADS");
  cfg.threads_given = args.get("threads").has_value() ||
                      (threads_env != nullptr && *threads_env != '\0');
  cfg.batched = args.get_bool("batched", env_u64("UCR_BATCHED", 0) != 0);
  std::optional<std::string> channel = args.get("channel");
  if (!channel) {
    if (const char* env = std::getenv("UCR_CHANNEL")) {
      if (*env != '\0') channel = std::string(env);
    }
  }
  if (channel) cfg.channel = ChannelModel::parse(*channel);
  std::optional<std::string> shard = args.get("shard");
  if (!shard) {
    if (const char* env = std::getenv("UCR_SHARD")) shard = std::string(env);
  }
  if (shard) {
    cfg.shard = exp::ShardSpec::parse(*shard);
    cfg.shard_given = true;
  }
  std::optional<std::string> spec_path = args.get("spec");
  if (!spec_path) {
    if (const char* env = std::getenv("UCR_SPEC")) {
      if (*env != '\0') spec_path = std::string(env);
    }
  }
  if (spec_path) {
    cfg.spec_file = exp::load_spec_file(*spec_path);
  }
  return cfg;
}

/// This shard's cells and their aggregates, in grid order. For an
/// unsharded run cells[i].index == i, so pivot-table harnesses can index
/// the results directly by grid position.
struct SpecRun {
  std::vector<exp::CellInfo> cells;
  std::vector<AggregateResult> results;
};

/// Compiles and runs a harness spec through the shared pipeline with the
/// caller's sinks. When UCR_CSV_OUT is set (and non-empty), the rows also
/// stream to that file as cells complete (header on shard 0 only, so
/// per-shard files concatenate to the unsharded archive). UCR_JSONL_OUT
/// streams the JSONL form the same way — the archive to use for
/// heterogeneous-arrival grids, where the flat CSV row cannot name the
/// workload and rows of different arrival cells would be
/// indistinguishable.
inline void run_spec_with_sinks(const HarnessConfig& cfg,
                                const exp::ExperimentSpec& spec,
                                std::vector<exp::ResultSink*> sinks) {
  // --spec / UCR_SPEC: the file's grid replaces the harness's own
  // (explicit --shard / --threads still win). File specs select protocols
  // by name, so they compile against the shared live catalogue.
  unsigned threads = cfg.threads;
  exp::ExperimentPlan plan;
  if (cfg.spec_file) {
    exp::ExperimentSpec file_spec = cfg.spec_file->spec;
    file_spec.shard = cfg.effective_shard();
    if (cfg.channel) file_spec.channels = {*cfg.channel};
    if (!cfg.threads_given) threads = cfg.spec_file->threads;
    plan = exp::compile(file_spec, default_catalogue());
  } else {
    exp::ExperimentSpec own = spec;
    if (cfg.channel) own.channels = {*cfg.channel};
    plan = exp::compile(own);
  }
  const auto open_archive = [](const char* env, std::ofstream& file) {
    const char* out = std::getenv(env);
    if (out == nullptr || *out == '\0') return false;  // unset/empty: off
    file.open(out);
    UCR_REQUIRE(file.is_open(), std::string("cannot open ") + env +
                                    " path '" + out + "'");
    return true;
  };
  std::ofstream csv_file;
  std::optional<exp::CsvStreamSink> csv;
  if (open_archive("UCR_CSV_OUT", csv_file)) {
    csv.emplace(csv_file);
    sinks.push_back(&*csv);
  }
  std::ofstream jsonl_file;
  std::optional<exp::JsonlSink> jsonl;
  if (open_archive("UCR_JSONL_OUT", jsonl_file)) {
    jsonl.emplace(jsonl_file);
    sinks.push_back(&*jsonl);
  }
  exp::run(plan, sinks, {threads});
}

/// run_spec_with_sinks through a MemorySink — the fit for table-rendering
/// harnesses. Harnesses that post-process heavy per-run details should
/// pass their own digesting sink to run_spec_with_sinks instead, so the
/// details are dropped cell by cell.
inline SpecRun run_spec(const HarnessConfig& cfg,
                        const exp::ExperimentSpec& spec) {
  exp::MemorySink memory;
  run_spec_with_sinks(cfg, spec, {&memory});
  return SpecRun{memory.cells(), memory.take_results()};
}

/// Flat per-cell listing, the rendering for invocations whose grid is not
/// the harness's own pivot shape (a pivot table over the full grid cannot
/// be assembled from one shard's block, nor from a spec-file grid).
inline void print_cells(std::ostream& os, const SpecRun& run) {
  Table table({"cell", "protocol", "k", "arrivals", "channel",
               "mean makespan", "mean ratio", "incomplete"});
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const AggregateResult& res = run.results[i];
    table.add_row({std::to_string(run.cells[i].index), res.protocol,
                   std::to_string(res.k), run.cells[i].arrival.label(),
                   run.cells[i].channel.label(),
                   format_double(res.makespan.mean, 1),
                   format_double(res.ratio.mean, 3),
                   std::to_string(res.incomplete_runs)});
  }
  table.print(os);
}

/// The non-pivot rendering path (`!cfg.pivot_render()`): names why the
/// grid is generic — one shard block, or a spec-file grid — with the
/// runs/seed/shard the grid actually used, then lists the cells flat.
inline void print_generic(std::ostream& os, const HarnessConfig& cfg,
                          const SpecRun& run) {
  const exp::ShardSpec shard = cfg.effective_shard();
  if (cfg.spec_file) {
    os << "spec-file grid (" << run.results.size() << " cells"
       << (shard.is_whole() ? std::string() : ", shard " + shard.label())
       << ", " << cfg.effective_runs() << " runs, seed "
       << cfg.effective_seed() << "):\n";
  } else {
    os << "shard " << shard.label() << " of the grid:\n";
  }
  print_cells(os, run);
}

}  // namespace ucr::bench

// Shared plumbing of the reproduction harnesses (bench/ executables).
//
// Every harness accepts the same overrides, with the command line taking
// precedence over the environment:
//   --kmax=N     / UCR_KMAX     largest k of the sweep   (default varies)
//   --runs=N     / UCR_RUNS     runs per (protocol, k)   (default 10, as in
//                               the paper)
//   --seed=N     / UCR_SEED     base seed                (default 2011)
//   --threads=N  / UCR_THREADS  sweep worker threads     (default: all
//                               hardware threads; N >= 1, junk and 0 are
//                               rejected)
//   --batched=1  / UCR_BATCHED  run fair cells through the batched engine
//                               fast path (sim/fair_engine.hpp) — same law
//                               of outcomes as the exact engines but a
//                               different RNG path, so per-run numbers
//                               differ; means/quantiles agree
//
// Results are bit-identical for every thread count (see sim/sweep.hpp), so
// --threads is purely a wall-clock knob; --batched is the paper-scale
// wall-clock knob (UCR_KMAX=10000000 sweeps).
//
// Full-scale reproduction of the paper (k up to 10^7) is run with
// UCR_KMAX=10000000; defaults are sized so that `for b in build/bench/*`
// finishes in minutes on one core. EXPERIMENTS.md records both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "sim/metrics.hpp"

namespace ucr::bench {

struct HarnessConfig {
  std::uint64_t k_max;
  std::uint64_t runs;
  std::uint64_t seed;
  unsigned threads;
  bool batched;

  /// Engine options for the harness's fair sweep cells.
  EngineOptions engine_options() const {
    EngineOptions options;
    options.batched = batched;
    return options;
  }
};

inline HarnessConfig parse_harness_config(int argc, const char* const* argv,
                                          std::uint64_t default_kmax) {
  const CliArgs args(argc, argv,
                     {"kmax", "runs", "seed", "threads", "batched"});
  HarnessConfig cfg;
  cfg.k_max = args.get_u64("kmax", env_u64("UCR_KMAX", default_kmax));
  cfg.runs = args.get_u64("runs", env_u64("UCR_RUNS", 10));
  cfg.seed = args.get_u64("seed", env_u64("UCR_SEED", 2011));
  cfg.threads = thread_count_option(args, "UCR_THREADS");
  cfg.batched = args.get_bool("batched", env_u64("UCR_BATCHED", 0) != 0);
  return cfg;
}

}  // namespace ucr::bench

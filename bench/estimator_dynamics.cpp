// Estimator dynamics — the mechanism behind both adaptive protocols, made
// visible with the SlotObserver hook: the AT transmission probability is
// 1/kappa~, so the observer's per-slot (active m, probability p) pairs give
// the estimator trajectory kappa~ = 1/p against the true density m.
//
// Shows (a) One-Fail Adaptive's +1-per-step climb locking onto kappa and
// tracking it down at a fixed distance, and (b) Log-Fails Adaptive's slow
// multiplicative SEARCH phase followed by the batched TRACK phase
// (DESIGN.md §5.1) — the two regimes that explain Figure 1's curves.
#include <iostream>

#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/log_fails_adaptive.hpp"
#include "sim/observer.hpp"

namespace {

// Prints checkpoints of kappa~/kappa along one run of a slot protocol,
// executed as a single-cell, single-run ExperimentSpec with the observer
// attached (the only spec shape a shared per-slot observer is valid for).
// Runs through compile()/run_collect() directly — NOT bench::run_spec —
// because this harness traces twice and run_spec would truncate a shared
// UCR_CSV_OUT archive on the second call (observer traces are not
// aggregate archives anyway).
void trace(const char* name, const ucr::bench::HarnessConfig& cfg,
           ucr::ProtocolFactory factory, std::uint64_t k,
           bool at_steps_are_odd) {
  ucr::DownsampledSeries series(1);
  auto spec = cfg.spec().with_ks({k});
  spec.runs = 1;
  spec.engine = ucr::exp::EngineMode::kFair;  // observers need exact slots
  spec.shard = {};  // a single-trace spec is never sharded
  spec.engine_options.observer = &series;
  spec.with_factory(std::move(factory));
  const auto results =
      ucr::exp::run_collect(ucr::exp::compile(spec), {cfg.threads});
  const ucr::RunMetrics& metrics = results.front().details.front();

  std::cout << name << " (k = " << k << ", makespan " << metrics.slots
            << ", ratio " << ucr::format_double(metrics.ratio(), 2) << ")\n";
  ucr::Table table({"slot", "kappa (true)", "kappa~ (1/p on AT)",
                    "kappa~/kappa"});
  const auto& s = series.series();
  // 12 log-spaced checkpoints, AT slots only.
  std::uint64_t next = 1;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const bool at_step = at_steps_are_odd ? (s[i].slot % 2 == 0)  // 0-based
                                          : true;
    if (s[i].slot + 1 < next || !at_step) continue;
    next = next * 2;
    const double kappa_tilde = 1.0 / s[i].probability;
    table.add_row(
        {std::to_string(s[i].slot + 1), std::to_string(s[i].active),
         ucr::format_double(kappa_tilde, 1),
         ucr::format_double(kappa_tilde / static_cast<double>(s[i].active),
                            3)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);
  const std::uint64_t k = cfg.k_max;
  cfg.batched = false;  // per-slot observers require the exact engine
  if (cfg.spec_file) {
    // Loud, not silent: this harness traces fixed protocol pairs through
    // per-slot observers; an external grid cannot replace that.
    std::cout << "note: --spec/UCR_SPEC is ignored by estimator_dynamics "
                 "(observer traces run its own fixed cells)\n\n";
  }

  std::cout << "=== Density-estimator trajectories (observer hook) ===\n\n";

  trace("One-Fail Adaptive", cfg, ucr::make_one_fail_factory(), k,
        /*at_steps_are_odd=*/true);

  trace("Log-Fails Adaptive (2)", cfg,
        ucr::make_log_fails_factory(ucr::LogFailsParams{},
                                    "Log-Fails Adaptive (2)"),
        k, /*at_steps_are_odd=*/true);

  std::cout << "kappa~/kappa -> ~1 during the drain is what produces the "
               "constant Table 1 ratios;\nLog-Fails' long kappa~ << kappa "
               "prefix is its Figure 1 hump.\n";
  return 0;
}

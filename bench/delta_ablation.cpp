// Ablation of the delta design constants (DESIGN.md §5.0):
//  * One-Fail Adaptive admits e < delta <= 2.9906; the paper picked 2.72.
//    The analysis ratio 2(delta+1) grows with delta, so smaller delta looks
//    better on paper — this harness shows the measured effect.
//  * Exp Back-on/Back-off admits 0 < delta < 1/e ≈ 0.3679; the paper picked
//    0.366. Small delta shrinks windows too fast (more re-runs of the outer
//    loop), large delta is bounded by the 1/e singleton fraction; the
//    measured optimum sits near the upper end, exactly where the paper
//    operates.
#include <iostream>

#include "analysis/bounds.hpp"
#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 10000);
  const std::uint64_t k = cfg.k_max;

  std::cout << "=== delta ablation at k = " << k << " (" << cfg.effective_runs()
            << " runs) ===\n\n";

  // Both ablation axes run as one spec; the grid is the OFA deltas
  // followed by the EBOBO deltas, in listed order (explicit factories —
  // a registry name cannot carry the swept parameter).
  const std::vector<double> ofa_deltas{2.72, 2.75, 2.80, 2.85, 2.90, 2.99};
  const std::vector<double> ebobo_deltas{0.05, 0.10, 0.20, 0.30, 0.366};

  auto spec = cfg.spec().with_ks({k});
  for (const double delta : ofa_deltas) {
    spec.with_factory(
        ucr::make_one_fail_factory(ucr::OneFailParams{delta}, "ofa"));
  }
  for (const double delta : ebobo_deltas) {
    spec.with_factory(
        ucr::make_exp_backon_factory(ucr::ExpBackonParams{delta}, "ebobo"));
  }
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }
  const auto& results = run.results;

  {
    std::cout << "One-Fail Adaptive (admissible: e < delta <= 2.9906)\n";
    ucr::Table table({"delta", "measured ratio", "analysis 2(delta+1)"});
    for (std::size_t i = 0; i < ofa_deltas.size(); ++i) {
      const double delta = ofa_deltas[i];
      table.add_row({ucr::format_double(delta, 3),
                     ucr::format_double(results[i].ratio.mean, 2),
                     ucr::format_double(ucr::one_fail_ratio(delta), 2)});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\nExp Back-on/Back-off (admissible: 0 < delta < 1/e)\n";
    ucr::Table table({"delta", "measured ratio", "analysis 4(1+1/delta)"});
    for (std::size_t i = 0; i < ebobo_deltas.size(); ++i) {
      const double delta = ebobo_deltas[i];
      const auto& res = results[ofa_deltas.size() + i];
      table.add_row({ucr::format_double(delta, 3),
                     ucr::format_double(res.ratio.mean, 2),
                     ucr::format_double(ucr::exp_backon_ratio(delta), 2)});
    }
    table.print(std::cout);
  }
  return 0;
}

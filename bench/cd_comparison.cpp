// What collision detection buys — the related-work comparison axis of the
// paper's Section 2: with CD, the classic randomized tree/stack algorithm
// resolves a batch in ~2.885k expected slots; the paper's protocols pay a
// constant-factor premium (7.4k / ~6k) for working WITHOUT collision
// detection and WITHOUT any knowledge of k. This harness quantifies that
// premium across k, including the known-k genie (e*k ~ 2.72k) as the fair
// floor.
#include <iostream>

#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/known_k.hpp"
#include "protocols/stack_tree.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);

  std::cout << "=== Collision detection vs the paper's model "
            << "(ratio steps/k, " << cfg.effective_runs() << " runs) ===\n\n";

  std::vector<std::uint64_t> ks;
  for (std::uint64_t k = 100; k <= cfg.k_max; k *= 10) ks.push_back(k);

  // The three fair protocols are one spec (protocol-major grid); the stack
  // tree runs its own dedicated aggregate simulation (no ProtocolFactory
  // view) serially — it is the cheapest column by far.
  auto spec = cfg.spec().with_ks(ks);
  spec.with_factory(ucr::make_one_fail_factory())
      .with_factory(ucr::make_exp_backon_factory())
      .with_factory(ucr::make_known_k_factory());
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    std::cout << "(stack-tree column omitted on non-pivot runs)\n";
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  ucr::Table table({"k", "stack-tree (CD)", "One-Fail (no CD)",
                    "Sawtooth (no CD)", "genie (knows k)"});
  for (std::size_t j = 0; j < ks.size(); ++j) {
    const std::uint64_t k = ks[j];
    // Stack tree through its dedicated aggregate simulation.
    double stack_sum = 0.0;
    for (std::uint64_t r = 0; r < cfg.runs; ++r) {
      ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(cfg.seed, r);
      stack_sum += ucr::run_stack_tree(k, rng, {}).ratio();
    }
    const double stack_ratio = stack_sum / static_cast<double>(cfg.runs);

    const auto& r_ofa = run.results[0 * ks.size() + j];
    const auto& r_ebobo = run.results[1 * ks.size() + j];
    const auto& r_genie = run.results[2 * ks.size() + j];

    table.add_row({std::to_string(k), ucr::format_double(stack_ratio, 2),
                   ucr::format_double(r_ofa.ratio.mean, 2),
                   ucr::format_double(r_ebobo.ratio.mean, 2),
                   ucr::format_double(r_genie.ratio.mean, 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe no-CD premium of the paper's protocols is a small "
               "constant factor over the CD tree algorithm; all are linear."
            << "\n";
  return 0;
}

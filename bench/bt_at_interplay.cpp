// Ablation of One-Fail Adaptive's two-regime design (DESIGN.md §5.0): the
// AT algorithm is built to drain the batch while contention is high, the
// BT algorithm to finish the O(log)-sized tail. This harness measures, per
// k, which step type actually delivers each message and when the hand-off
// happens — making the Lemma 5 / Lemma 6 division of labour visible in
// simulation.
//
// The AT/BT attribution needs no engine hook: communication steps are
// numbered from 1 and step t is a BT step iff t is even (core/
// one_fail_adaptive.hpp), so the recorded delivery slot s (0-based) was a
// BT delivery iff s is odd, and the m-th-from-last delivery index places
// it in the tail. The study is one ExperimentSpec with record_deliveries,
// consumed by a digesting ResultSink: each cell's delivery slots are
// folded into four counters the moment the cell completes and the heavy
// details are dropped, so memory stays bounded by one cell even at
// paper-scale k (a MemorySink would hold every delivery slot of the
// whole grid).
#include <iostream>

#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/one_fail_adaptive.hpp"

namespace {

struct CellDigest {
  std::uint64_t k = 0;
  std::uint64_t runs = 0;
  std::uint64_t at_total = 0;
  std::uint64_t bt_total = 0;
  std::uint64_t bt_tail = 0;
  std::uint64_t tail_total = 0;
  double mean_ratio = 0.0;
};

/// Folds each cell's per-run delivery slots into AT/BT counters on
/// emission (grid order) and discards the details.
class InterplaySink final : public ucr::exp::ResultSink {
 public:
  void emit(const ucr::exp::CellInfo&,
            const ucr::AggregateResult& result) override {
    CellDigest digest;
    digest.k = result.k;
    digest.runs = result.runs;
    digest.mean_ratio = result.ratio.mean;
    for (const auto& detail : result.details) {
      for (std::size_t idx = 0; idx < detail.delivery_slots.size(); ++idx) {
        // Step t = slot + 1; BT iff t even. Messages pending before this
        // delivery: k - idx.
        const bool bt = (detail.delivery_slots[idx] + 1) % 2 == 0;
        (bt ? digest.bt_total : digest.at_total) += 1;
        if (result.k - idx <= 32) {
          ++digest.tail_total;
          if (bt) ++digest.bt_tail;
        }
      }
    }
    digests_.push_back(digest);
  }

  const std::vector<CellDigest>& digests() const { return digests_; }

 private:
  std::vector<CellDigest> digests_;
};

}  // namespace

int main(int argc, char** argv) {
  auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);
  if (cfg.spec_file) {
    // Loud, not silent: the AT/BT attribution needs record_deliveries
    // and One-Fail's even-step BT numbering — a foreign grid would
    // digest to zeros. Run this harness's own grid instead.
    std::cout << "note: --spec/UCR_SPEC is ignored by bt_at_interplay "
                 "(the AT/BT digest is specific to One-Fail Adaptive's "
                 "delivery recording)\n\n";
    cfg.spec_file.reset();
  }

  std::cout << "=== One-Fail Adaptive: AT vs BT division of labour ("
            << cfg.runs << " runs) ===\n\n";

  std::vector<std::uint64_t> ks;
  for (std::uint64_t k = 100; k <= cfg.k_max; k *= 10) ks.push_back(k);

  auto spec = cfg.spec().with_ks(ks);
  spec.engine = ucr::exp::EngineMode::kFair;  // exact slots for parity
  spec.engine_options.record_deliveries = true;
  spec.with_factory(ucr::make_one_fail_factory());

  InterplaySink sink;
  ucr::bench::run_spec_with_sinks(cfg, spec, {&sink});

  if (!cfg.shard.is_whole()) {
    std::cout << "shard " << cfg.shard.label() << " of the grid:\n";
  }
  ucr::Table table({"k", "deliv. by AT", "deliv. by BT", "BT share",
                    "BT share of last 32", "mean ratio"});
  for (const CellDigest& digest : sink.digests()) {
    const double runs_d = static_cast<double>(digest.runs);
    table.add_row(
        {std::to_string(digest.k),
         ucr::format_double(static_cast<double>(digest.at_total) / runs_d,
                            1),
         ucr::format_double(static_cast<double>(digest.bt_total) / runs_d,
                            1),
         ucr::format_double(
             static_cast<double>(digest.bt_total) /
                 static_cast<double>(digest.at_total + digest.bt_total),
             3),
         ucr::format_double(static_cast<double>(digest.bt_tail) /
                                static_cast<double>(digest.tail_total),
                            3),
         ucr::format_double(digest.mean_ratio, 2)});
  }
  table.print(std::cout);
  std::cout << "\nAT does the bulk of the work; BT's share concentrates in "
               "the O(log k) tail, exactly the Lemma 5 -> Lemma 6 hand-off."
            << "\n";
  return 0;
}

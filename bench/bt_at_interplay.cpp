// Ablation of One-Fail Adaptive's two-regime design (DESIGN.md §5.0): the
// AT algorithm is built to drain the batch while contention is high, the
// BT algorithm to finish the O(log)-sized tail. This harness measures, per
// k, which step type actually delivers each message and when the hand-off
// happens — making the Lemma 5 / Lemma 6 division of labour visible in
// simulation.
#include <iostream>

#include "harness_common.hpp"
#include "common/samplers.hpp"
#include "common/table.hpp"
#include "core/one_fail_adaptive.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 100000);

  std::cout << "=== One-Fail Adaptive: AT vs BT division of labour ("
            << cfg.runs << " runs) ===\n\n";

  ucr::Table table({"k", "deliv. by AT", "deliv. by BT", "BT share",
                    "BT share of last 32", "mean ratio"});
  for (std::uint64_t k = 100; k <= cfg.k_max; k *= 10) {
    std::uint64_t at_total = 0;
    std::uint64_t bt_total = 0;
    std::uint64_t bt_tail = 0;
    std::uint64_t tail_total = 0;
    std::uint64_t slots_total = 0;
    for (std::uint64_t r = 0; r < cfg.runs; ++r) {
      ucr::OneFailAdaptive protocol;
      ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(cfg.seed, r);
      std::uint64_t m = k;
      while (m > 0) {
        const bool bt = protocol.state().is_bt_step();
        const double p = protocol.transmit_probability();
        const auto cat = ucr::sample_slot_category(rng, m, p);
        const bool delivery = cat == ucr::SlotCategory::kSuccess;
        if (delivery) {
          (bt ? bt_total : at_total) += 1;
          if (m <= 32) {
            ++tail_total;
            if (bt) ++bt_tail;
          }
          --m;
        }
        ++slots_total;
        protocol.on_slot_end(delivery);
      }
    }
    const double runs_d = static_cast<double>(cfg.runs);
    table.add_row(
        {std::to_string(k),
         ucr::format_double(static_cast<double>(at_total) / runs_d, 1),
         ucr::format_double(static_cast<double>(bt_total) / runs_d, 1),
         ucr::format_double(
             static_cast<double>(bt_total) /
                 static_cast<double>(at_total + bt_total),
             3),
         ucr::format_double(static_cast<double>(bt_tail) /
                                static_cast<double>(tail_total),
                            3),
         ucr::format_double(static_cast<double>(slots_total) /
                                (runs_d * static_cast<double>(k)),
                            2)});
  }
  table.print(std::cout);
  std::cout << "\nAT does the bulk of the work; BT's share concentrates in "
               "the O(log k) tail, exactly the Lemma 5 -> Lemma 6 hand-off."
            << "\n";
  return 0;
}

// Dynamic-arrival study (the paper's Section 6 future work): sweeps the
// Poisson arrival rate lambda and reports makespan and delivery latency of
// the paper's protocols under non-batched arrivals, plus an adversarial
// burst pattern. Uses the per-node engine: with staggered arrivals station
// states genuinely diverge and the fair aggregate engine does not apply.
//
// The whole study is ONE ExperimentSpec: heterogeneous per-run workloads
// are first-class sweep cells (a Poisson ArrivalSpec re-samples the
// pattern for every run from its reserved substream), so the harness
// shares the parallel SweepRunner pipeline with every other driver
// instead of driving the ThreadPool by hand, and per-message latencies
// ride along in the aggregates via EngineOptions::record_latencies.
#include <cstdint>
#include <iostream>

#include "harness_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"

namespace {

/// Per-cell latency digest over the concatenated per-run latencies (run
/// order, so deterministic for any thread count). The percentiles
/// themselves now ride along in the aggregate (latency_p50/p95/p99, also
/// persisted per CSV/JSONL row); mean and the Jain fairness index are the
/// extras this harness still derives from the details.
struct LatencyDigest {
  double mean = 0.0;
  double fairness = 0.0;  // Jain index over per-message latencies
};

LatencyDigest digest_latencies(const ucr::AggregateResult& result) {
  std::vector<double> latencies;
  for (const auto& run : result.details) {
    for (const auto l : run.latencies) {
      latencies.push_back(static_cast<double>(l));
    }
  }
  LatencyDigest out;
  out.mean = ucr::summarize(latencies).mean;
  if (!latencies.empty()) {
    out.fairness = ucr::jain_fairness_index(latencies);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 200);
  const std::uint64_t k = cfg.k_max;  // per-node engine: keep k moderate

  std::cout << "=== Dynamic arrivals (k = " << k << ", " << cfg.effective_runs()
            << " runs per cell, per-node engine) ===\n\n";

  const std::vector<double> lambdas{0.02, 0.1, 0.5};

  // Staggered arrivals run per-station; --batched selects the batched
  // node engine (bulk-skipped silent stretches — the paper-scale knob for
  // low-lambda sweeps, where most slots are empty).
  auto spec = cfg.spec().with_ks({k});
  spec.engine = cfg.batched ? ucr::exp::EngineMode::kNodeBatched
                            : ucr::exp::EngineMode::kNode;
  // Finite cap: a protocol may livelock under sustained arrivals (One-
  // Fail Adaptive does at high lambda — see EXPERIMENTS.md); such runs
  // are reported through the `incomplete` column, not waited out.
  spec.engine_options.max_slots = 300000;
  spec.engine_options.record_latencies = true;
  for (const double lambda : lambdas) {
    spec.with_arrival(ucr::exp::ArrivalSpec::poisson(lambda));
  }
  spec.with_arrival(ucr::exp::ArrivalSpec::burst(4, 64));
  for (const auto& factory : ucr::paper_protocols()) {
    spec.with_factory(factory);
  }
  // This repo's future-work variant (DESIGN.md / dynamic_one_fail.hpp).
  spec.with_factory(ucr::make_dynamic_one_fail_factory());
  const std::size_t protocol_count = spec.protocols.size();
  const std::size_t arrival_count = spec.arrivals.size();

  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  // Cells are protocol-major: cell (p, a) = p * arrival_count + a. Render
  // one table per arrival workload, protocols as rows.
  for (std::size_t a = 0; a < arrival_count; ++a) {
    if (a < lambdas.size()) {
      std::cout << "Poisson arrivals, lambda = " << lambdas[a]
                << " msg/slot\n";
    } else {
      std::cout << "Adversarial bursts: 4 bursts of " << k / 4
                << " messages, gap 64 slots\n";
    }
    ucr::Table table(
        {"protocol", "mean makespan", "mean latency", "p50 latency",
         "p95 latency", "p99 latency", "fairness", "incomplete"});
    for (std::size_t p = 0; p < protocol_count; ++p) {
      const auto& res = run.results[p * arrival_count + a];
      const LatencyDigest lat = digest_latencies(res);
      table.add_row({res.protocol, ucr::format_count(res.makespan.mean),
                     ucr::format_double(lat.mean, 1),
                     ucr::format_double(res.latency_p50, 1),
                     ucr::format_double(res.latency_p95, 1),
                     ucr::format_double(res.latency_p99, 1),
                     ucr::format_double(lat.fairness, 3),
                     std::to_string(res.incomplete_runs)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}

// Dynamic-arrival study (the paper's Section 6 future work): sweeps the
// Poisson arrival rate lambda and reports makespan and delivery latency of
// the paper's protocols under non-batched arrivals, plus an adversarial
// burst pattern. Uses the per-node engine: with staggered arrivals station
// states genuinely diverge and the fair aggregate engine does not apply.
#include <cstdint>
#include <future>
#include <iostream>

#include "harness_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "sim/node_engine.hpp"

namespace {

struct DynResult {
  double mean_makespan = 0.0;
  double mean_latency = 0.0;
  double p95_latency = 0.0;
  double fairness = 0.0;  // Jain index over per-message latencies
  std::uint64_t incomplete = 0;
};

DynResult run_dynamic(const ucr::ProtocolFactory& factory,
                      const std::vector<ucr::ArrivalPattern>& workloads,
                      std::uint64_t seed, unsigned threads) {
  // Each workload runs on its own worker with its pre-derived RNG substream
  // (stream(seed, 1000 + r), as the serial loop always seeded) and commits
  // into slot r, so the per-run results — and the latency concatenation
  // order below — are identical for every thread count.
  std::vector<ucr::RunMetrics> runs(workloads.size());
  std::vector<ucr::LatencyMetrics> run_latencies(workloads.size());
  {
    ucr::ThreadPool pool(threads);
    std::vector<std::future<void>> pending;
    for (std::size_t r = 0; r < workloads.size(); ++r) {
      pending.push_back(pool.submit([&factory, &workloads, &runs,
                                     &run_latencies, seed, r] {
        ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(seed, 1000 + r);
        const std::uint64_t k = workloads[r].size();
        const ucr::NodeFactory node_factory = [&](ucr::Xoshiro256& node_rng) {
          return factory.node(k, node_rng);
        };
        // Finite cap: a protocol may livelock under sustained arrivals (One-
        // Fail Adaptive does at high lambda — see EXPERIMENTS.md); such runs
        // are reported through the `incomplete` column, not waited out.
        ucr::EngineOptions opts;
        opts.max_slots = 300000;
        runs[r] = ucr::run_node_engine(node_factory, workloads[r], rng, opts,
                                       &run_latencies[r]);
      }));
    }
    for (auto& f : pending) f.get();
  }

  DynResult out;
  std::vector<double> makespans;
  std::vector<double> latencies;
  for (std::size_t r = 0; r < workloads.size(); ++r) {
    if (!runs[r].completed) ++out.incomplete;
    makespans.push_back(static_cast<double>(runs[r].slots));
    for (auto l : run_latencies[r].latencies) {
      latencies.push_back(static_cast<double>(l));
    }
  }
  out.mean_makespan = ucr::summarize(makespans).mean;
  const auto lat = ucr::summarize(latencies);
  out.mean_latency = lat.mean;
  out.p95_latency = lat.p95;
  if (!latencies.empty()) {
    out.fairness = ucr::jain_fairness_index(latencies);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 200);
  const std::uint64_t k = cfg.k_max;  // per-node engine: keep k moderate

  std::cout << "=== Dynamic arrivals (k = " << k << ", " << cfg.runs
            << " runs per cell, per-node engine) ===\n\n";

  auto protocols = ucr::paper_protocols();
  // This repo's future-work variant (DESIGN.md / dynamic_one_fail.hpp).
  protocols.push_back(ucr::make_dynamic_one_fail_factory());

  for (const double lambda : {0.02, 0.1, 0.5}) {
    std::cout << "Poisson arrivals, lambda = " << lambda << " msg/slot\n";
    ucr::Table table(
        {"protocol", "mean makespan", "mean latency", "p95 latency",
         "fairness", "incomplete"});
    for (const auto& factory : protocols) {
      std::vector<ucr::ArrivalPattern> workloads;
      for (std::uint64_t r = 0; r < cfg.runs; ++r) {
        ucr::Xoshiro256 arrival_rng = ucr::Xoshiro256::stream(cfg.seed, r);
        workloads.push_back(ucr::poisson_arrivals(k, lambda, arrival_rng));
      }
      const DynResult res =
          run_dynamic(factory, workloads, cfg.seed, cfg.threads);
      table.add_row({factory.name, ucr::format_count(res.mean_makespan),
                     ucr::format_double(res.mean_latency, 1),
                     ucr::format_double(res.p95_latency, 1),
                     ucr::format_double(res.fairness, 3),
                     std::to_string(res.incomplete)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Adversarial bursts: 4 bursts of " << k / 4 << " messages, "
            << "gap 64 slots\n";
  ucr::Table table({"protocol", "mean makespan", "mean latency",
                    "p95 latency", "fairness", "incomplete"});
  for (const auto& factory : protocols) {
    const auto workload = ucr::burst_arrivals(4, k / 4, 64);
    std::vector<ucr::ArrivalPattern> workloads(cfg.runs, workload);
    const DynResult res =
        run_dynamic(factory, workloads, cfg.seed, cfg.threads);
    table.add_row({factory.name, ucr::format_count(res.mean_makespan),
                   ucr::format_double(res.mean_latency, 1),
                   ucr::format_double(res.p95_latency, 1),
                   ucr::format_double(res.fairness, 3),
                   std::to_string(res.incomplete)});
  }
  table.print(std::cout);
  return 0;
}

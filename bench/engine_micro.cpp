// Microbenchmarks (google-benchmark) of the simulation substrate: sampler
// throughput and slots/second of both engines. These justify the engine
// split documented in DESIGN.md §4 — the aggregate engine is what makes
// the paper's k = 10^7 sweep feasible on a laptop. BM_SpecSweep times the
// whole spec -> plan -> run pipeline on a *versioned* workload
// (specs/engine-micro.spec, overridable with UCR_SPEC), so the CI
// regression baseline is itself a spec file next to the code.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/samplers.hpp"
#include "coord/coordinator.hpp"
#include "coord/workers.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/spec_io.hpp"
#include "protocols/exp_backoff.hpp"
#include "protocols/known_k.hpp"
#include "protocols/window_node.hpp"
#include "sim/fair_engine.hpp"
#include "sim/node_engine.hpp"
#include "svc/result_cache.hpp"

#ifndef UCR_ENGINE_MICRO_SPEC
#define UCR_ENGINE_MICRO_SPEC "specs/engine-micro.spec"
#endif

#ifndef UCR_CLI_DEFAULT
#define UCR_CLI_DEFAULT ""
#endif

namespace {

void BM_Xoshiro_NextDouble(benchmark::State& state) {
  ucr::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
}
BENCHMARK(BM_Xoshiro_NextDouble);

void BM_CounterRng_NextDouble(benchmark::State& state) {
  ucr::CounterRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
}
BENCHMARK(BM_CounterRng_NextDouble);

// Bulk draw throughput: the counter-based generator has no loop-carried
// state dependency, so fill_u64 is where it should pull ahead of the
// sequential xoshiro recurrence.
template <typename Rng>
void BM_FillU64(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    rng.fill_u64(out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FillU64<ucr::Xoshiro256>)->Arg(4096);
BENCHMARK(BM_FillU64<ucr::CounterRng>)->Arg(4096);

void BM_SlotCategory(benchmark::State& state) {
  ucr::Xoshiro256 rng(2);
  const std::uint64_t m = state.range(0);
  const double p = 1.0 / static_cast<double>(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ucr::sample_slot_category(rng, m, p));
  }
}
BENCHMARK(BM_SlotCategory)->Arg(100)->Arg(1000000);

void BM_BinomialInversion(benchmark::State& state) {
  ucr::Xoshiro256 rng(3);
  const std::uint64_t n = state.range(0);
  const double p = 1.0 / static_cast<double>(n);  // mean 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(ucr::sample_binomial(rng, n, p));
  }
}
BENCHMARK(BM_BinomialInversion)->Arg(1000)->Arg(1000000);

void BM_BinomialBtrs(benchmark::State& state) {
  ucr::Xoshiro256 rng(4);
  const std::uint64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ucr::sample_binomial(rng, n, 0.3));
  }
}
BENCHMARK(BM_BinomialBtrs)->Arg(1000)->Arg(1000000);

// Whole-run benchmarks: items processed = slots simulated.
void BM_FairSlotEngine_OneFail(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::OneFailAdaptive protocol;
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(5, seed++);
    const auto run = ucr::run_fair_slot_engine(protocol, k, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FairSlotEngine_OneFail)->Arg(1000)->Arg(100000);

void BM_FairWindowEngine_Sawtooth(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::ExpBackonBackoff schedule;
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(6, seed++);
    const auto run = ucr::run_fair_window_engine(schedule, k, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FairWindowEngine_Sawtooth)->Arg(1000)->Arg(100000);

// Exact vs batched on the same workload: the batched engine's win is the
// sparse-window regime of monotone back-off, where almost every slot is
// silent and the exact engine still pays one binomial draw for it.
void BM_FairWindowEngine_ExpBackoff(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::ExponentialBackoff schedule;
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(8, seed++);
    const auto run = ucr::run_fair_window_engine(schedule, k, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FairWindowEngine_ExpBackoff)->Arg(10000)->Arg(100000);

void BM_FairWindowEngineBatched_ExpBackoff(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::ExponentialBackoff schedule;
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(8, seed++);
    const auto run = ucr::run_fair_window_engine_batched(schedule, k, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FairWindowEngineBatched_ExpBackoff)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_FairSlotEngineBatched_Genie(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::KnownKGenie genie(k);
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(9, seed++);
    const auto run = ucr::run_fair_slot_engine_batched(genie, k, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FairSlotEngineBatched_Genie)->Arg(100000)->Arg(1000000);

// The dense dynamic-cell trajectory (tools/bench_report.py tracks this):
// sustained Poisson arrivals at lambda = 0.01 on a window protocol, where
// the batched node engine's skip runs on the pre-drawn in-window slot
// certificates (protocols/window_node.hpp) — before the pre-draw, a
// not-yet-transmitted station capped every stretch at one slot and this
// workload degenerated to per-slot cost. Items processed = slots covered,
// so the tracked quantity is effective slots/second including everything
// the engine skips.
void BM_NodeBatched_DensePoisson(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  ucr::Xoshiro256 arrival_rng = ucr::Xoshiro256::stream(12, 0);
  const auto arrivals = ucr::poisson_arrivals(k, 0.01, arrival_rng);
  const ucr::NodeFactory factory = [](ucr::Xoshiro256& rng) {
    return std::make_unique<ucr::WindowNodeProtocol>(
        std::make_unique<ucr::ExpBackonBackoff>(), rng);
  };
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(13, seed++);
    const auto run = ucr::run_node_engine_batched(factory, arrivals, rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_NodeBatched_DensePoisson)->Arg(10000)->Arg(100000);

void BM_NodeEngine_OneFail(benchmark::State& state) {
  const std::uint64_t k = state.range(0);
  std::uint64_t seed = 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    ucr::Xoshiro256 rng = ucr::Xoshiro256::stream(7, seed++);
    const ucr::NodeFactory factory = [](ucr::Xoshiro256&) {
      return std::make_unique<ucr::OneFailAdaptiveNode>();
    };
    const auto run = ucr::run_node_engine(
        factory, ucr::batched_arrivals(k), rng, {});
    slots += run.slots;
    benchmark::DoNotOptimize(run.slots);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_NodeEngine_OneFail)->Arg(100)->Arg(1000);

// Whole-pipeline sweep from a versioned spec file. One iteration = the
// complete sweep the file describes (compile is outside the loop: the
// regression target is execution, not parsing).
void BM_SpecSweep(benchmark::State& state) {
  const char* env = std::getenv("UCR_SPEC");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : UCR_ENGINE_MICRO_SPEC;
  ucr::exp::SpecFile file;
  try {
    file = ucr::exp::load_spec_file(path);
  } catch (const ucr::ContractViolation& e) {
    state.SkipWithError(e.what());
    return;
  }
  const ucr::exp::ExperimentPlan plan =
      ucr::exp::compile(file.spec, ucr::default_catalogue());

  std::uint64_t slots = 0;
  for (auto _ : state) {
    const auto results = ucr::exp::run_collect(plan, {file.threads});
    for (const auto& result : results) {
      for (const auto& detail : result.details) slots += detail.slots;
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots));
  state.SetLabel(path);
}
// The sweep executes on pool workers, so the main thread's own CPU time
// is idle waiting: measure process-wide CPU (what bench_compare.py
// tracks) and pace iterations by wall clock. The shipped spec pins
// threads = 1 so process CPU is the work itself, not scheduler noise.
BENCHMARK(BM_SpecSweep)->MeasureProcessCPUTime()->UseRealTime();

// The warm half of docs/SERVICE.md's cost model: the identical sweep
// with every cell already banked in the result cache, so one iteration
// is pure replay (key lookup + record parse + re-render), no
// simulation. The cache is primed once outside the timing loop; items
// processed = cells replayed, so the per-cell replay cost is the
// tracked regression quantity.
void BM_CachedSweep(benchmark::State& state) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("UCR_SPEC");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : UCR_ENGINE_MICRO_SPEC;
  ucr::exp::SpecFile file;
  try {
    file = ucr::exp::load_spec_file(path);
  } catch (const ucr::ContractViolation& e) {
    state.SkipWithError(e.what());
    return;
  }
  const ucr::exp::ExperimentPlan plan =
      ucr::exp::compile(file.spec, ucr::default_catalogue());

  const fs::path root =
      fs::temp_directory_path() / "ucr_bm_cached_sweep";
  fs::remove_all(root);
  ucr::svc::ResultCache cache(root.string());
  ucr::exp::run_collect(plan, {file.threads, &cache});  // prime

  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto results =
        ucr::exp::run_collect(plan, {file.threads, &cache});
    cells += results.size();
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cells));
  state.SetLabel(path);
  fs::remove_all(root);
}
BENCHMARK(BM_CachedSweep)->MeasureProcessCPUTime()->UseRealTime();

// Coordinator dispatch overhead (docs/ORCHESTRATOR.md): the same
// versioned workload fanned out over two local workers with warm
// per-worker result caches, so every cell replays from cache and what
// remains is the orchestration itself — overlay writing, one fork/exec
// of the real ucr_cli per shard, progress polling, shard-output
// validation and concatenation. Items processed = shards dispatched,
// so the tracked regression quantity is per-shard dispatch overhead;
// cpu_time is the coordinator thread's own work, excluding both the
// workers' simulation and the poll sleeps.
void BM_CoordLocalSweep(benchmark::State& state) {
  namespace fs = std::filesystem;
  const char* cli_env = std::getenv("UCR_CLI");
  const std::string cli =
      (cli_env != nullptr && *cli_env != '\0') ? cli_env : UCR_CLI_DEFAULT;
  if (cli.empty() || !fs::exists(cli)) {
    state.SkipWithError("ucr_cli binary not found (set UCR_CLI)");
    return;
  }
  const char* env = std::getenv("UCR_SPEC");
  const std::string spec =
      (env != nullptr && *env != '\0') ? env : UCR_ENGINE_MICRO_SPEC;

  const fs::path root = fs::temp_directory_path() / "ucr_bm_coord_sweep";
  fs::remove_all(root);

  ucr::coord::CoordinatorOptions options;
  options.spec_path = spec;
  options.workers = ucr::coord::parse_workers("local\nlocal\n");
  options.cli = cli;
  options.work_dir = (root / "work").string();

  std::uint64_t shards = 0;
  try {
    // Prime the per-worker caches: the one cold run simulates, every
    // timed iteration afterwards is pure replay + dispatch.
    std::ostringstream primed;
    ucr::coord::Coordinator(options).run(primed);
    for (auto _ : state) {
      ucr::coord::Coordinator coordinator(options);
      std::ostringstream out;
      const ucr::coord::CoordReport report = coordinator.run(out);
      shards += report.shards;
      benchmark::DoNotOptimize(report.rows);
    }
  } catch (const ucr::ContractViolation& e) {
    state.SkipWithError(e.what());
    fs::remove_all(root);
    return;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(shards));
  state.SetLabel(spec);
  fs::remove_all(root);
}
// Paced by wall clock: the per-iteration latency is dominated by child
// lifetimes and the poll loop, which thread CPU time cannot see.
BENCHMARK(BM_CoordLocalSweep)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// Validates the with-high-probability claims of Theorems 1 and 2: the
// empirical probability that a run exceeds its analysis bound, against the
// theoretical error bounds 2/(1+k) (Thm 1) and 1/k^c (Thm 2).
//
// The paper's analyses are conservative (Table 1 shows measured ratios well
// below the bounds), so the expected outcome is ZERO exceedances — the
// point of the harness is that the guarantee holds with large margin, and
// to quantify that margin (worst observed ratio vs bound).
#include <iostream>

#include "analysis/bounds.hpp"
#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"

namespace {

/// Runs of the cell whose makespan exceeds `bound`.
std::uint64_t count_exceedances(const ucr::AggregateResult& result,
                                double bound) {
  std::uint64_t exceed = 0;
  for (const auto& run : result.details) {
    if (static_cast<double>(run.slots) > bound) ++exceed;
  }
  return exceed;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 10000);
  const std::uint64_t trials = cfg.runs * 20;  // default 200 runs per point

  std::cout << "=== Tail probability vs analysis bounds (" << trials
            << " runs per point) ===\n\n";

  const double ofa_delta = 2.72;
  const double ebobo_delta = 0.366;

  std::vector<std::uint64_t> ks;
  for (std::uint64_t k = 100; k <= cfg.k_max; k *= 10) ks.push_back(k);

  // One spec, protocol-major (all OFA cells then all EBOBO cells); the
  // per-run exceedance counts come from the aggregates' details.
  auto spec = cfg.spec().with_ks(ks);
  spec.runs = trials;
  spec.with_factory(
          ucr::make_one_fail_factory(ucr::OneFailParams{ofa_delta}, "ofa"))
      .with_factory(ucr::make_exp_backon_factory(
          ucr::ExpBackonParams{ebobo_delta}, "ebobo"));
  const auto run = ucr::bench::run_spec(cfg, spec);

  if (!cfg.pivot_render()) {
    ucr::bench::print_generic(std::cout, cfg, run);
    return 0;
  }

  ucr::Table table({"protocol", "k", "bound (slots)", "worst run", "margin",
                    "P[exceed] emp", "P[fail] theory"});
  for (std::size_t j = 0; j < ks.size(); ++j) {
    const std::uint64_t k = ks[j];
    {
      const auto& res = run.results[j];  // OFA block
      // Theorem 1 with the additive O(log^2 k) term instantiated at c = 1;
      // the linear term dominates at these k.
      const double bound = ucr::one_fail_bound(ofa_delta, k, 1.0);
      const std::uint64_t exceed = count_exceedances(res, bound);
      table.add_row(
          {"One-Fail Adaptive", std::to_string(k), ucr::format_count(bound),
           ucr::format_count(res.makespan.max),
           ucr::format_double(bound / res.makespan.max, 2),
           ucr::format_double(
               static_cast<double>(exceed) / static_cast<double>(trials), 4),
           ucr::format_double(ucr::one_fail_error(k), 5)});
    }
    {
      const auto& res = run.results[ks.size() + j];  // EBOBO block
      const double bound = ucr::exp_backon_bound(ebobo_delta, k);
      const std::uint64_t exceed = count_exceedances(res, bound);
      table.add_row(
          {"Exp Back-on/Back-off", std::to_string(k),
           ucr::format_count(bound), ucr::format_count(res.makespan.max),
           ucr::format_double(bound / res.makespan.max, 2),
           ucr::format_double(
               static_cast<double>(exceed) / static_cast<double>(trials), 4),
           ucr::format_double(1.0 / static_cast<double>(k), 5)});
    }
  }
  table.print(std::cout);
  return 0;
}

// Validates the with-high-probability claims of Theorems 1 and 2: the
// empirical probability that a run exceeds its analysis bound, against the
// theoretical error bounds 2/(1+k) (Thm 1) and 1/k^c (Thm 2).
//
// The paper's analyses are conservative (Table 1 shows measured ratios well
// below the bounds), so the expected outcome is ZERO exceedances — the
// point of the harness is that the guarantee holds with large margin, and
// to quantify that margin (worst observed ratio vs bound).
#include <iostream>

#include "analysis/bounds.hpp"
#include "harness_common.hpp"
#include "common/table.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"

int main(int argc, char** argv) {
  const auto cfg = ucr::bench::parse_harness_config(argc, argv, 10000);
  const std::uint64_t trials = cfg.runs * 20;  // default 200 runs per point

  std::cout << "=== Tail probability vs analysis bounds (" << trials
            << " runs per point) ===\n\n";

  const double ofa_delta = 2.72;
  const double ebobo_delta = 0.366;
  const auto ofa =
      ucr::make_one_fail_factory(ucr::OneFailParams{ofa_delta}, "ofa");
  const auto ebobo = ucr::make_exp_backon_factory(
      ucr::ExpBackonParams{ebobo_delta}, "ebobo");

  ucr::Table table({"protocol", "k", "bound (slots)", "worst run", "margin",
                    "P[exceed] emp", "P[fail] theory"});
  for (std::uint64_t k = 100; k <= cfg.k_max; k *= 10) {
    {
      const auto res = ucr::run_fair_experiment(ofa, k, trials, cfg.seed, {});
      // Theorem 1 with the additive O(log^2 k) term instantiated at c = 1;
      // the linear term dominates at these k.
      const double bound = ucr::one_fail_bound(ofa_delta, k, 1.0);
      std::uint64_t exceed = 0;
      for (const auto& run : res.details) {
        if (static_cast<double>(run.slots) > bound) ++exceed;
      }
      table.add_row(
          {"One-Fail Adaptive", std::to_string(k), ucr::format_count(bound),
           ucr::format_count(res.makespan.max),
           ucr::format_double(bound / res.makespan.max, 2),
           ucr::format_double(
               static_cast<double>(exceed) / static_cast<double>(trials), 4),
           ucr::format_double(ucr::one_fail_error(k), 5)});
    }
    {
      const auto res =
          ucr::run_fair_experiment(ebobo, k, trials, cfg.seed, {});
      const double bound = ucr::exp_backon_bound(ebobo_delta, k);
      std::uint64_t exceed = 0;
      for (const auto& run : res.details) {
        if (static_cast<double>(run.slots) > bound) ++exceed;
      }
      table.add_row(
          {"Exp Back-on/Back-off", std::to_string(k),
           ucr::format_count(bound), ucr::format_count(res.makespan.max),
           ucr::format_double(bound / res.makespan.max, 2),
           ucr::format_double(
               static_cast<double>(exceed) / static_cast<double>(trials), 4),
           ucr::format_double(1.0 / static_cast<double>(k), 5)});
    }
  }
  table.print(std::cout);
  return 0;
}

// ucr_servd — the sweep daemon: accepts textual specs over a local
// socket, executes them FIFO on the worker pool, and streams JSONL result
// rows back in grid order. With --cache, completed cells are banked in
// the provenance-keyed result cache, so resubmitting a spec (or resuming
// a killed one) replays banked cells instead of recomputing them.
// Protocol and cache layout: docs/SERVICE.md.
//
// Examples:
//   ucr_servd --socket=/tmp/ucr.sock --cache=/tmp/ucr-cache
//   ucr_cli --submit=specs/fig1.spec --socket=/tmp/ucr.sock --wait
//   ucr_cli --shutdown --socket=/tmp/ucr.sock
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/socket.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_servd --socket=PATH [--cache=DIR] [--threads=N]\n\n"
         "  --socket=PATH   AF_UNIX socket to listen on (required; any\n"
         "                  stale socket file is replaced)\n"
         "  --cache=DIR     result cache root — completed cells persist\n"
         "                  across jobs and daemon restarts (default:\n"
         "                  no cache, every job computes every cell)\n"
         "  --threads=N     sweep worker threads per job (default: each\n"
         "                  spec's own threads value; 0 there means all\n"
         "                  hardware threads)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ucr::CliArgs args(argc, argv, {"socket", "cache", "threads"});
    const auto socket_path = args.get("socket");
    if (!socket_path.has_value()) return usage("--socket=PATH is required");

    ucr::svc::SweepService::Options options;
    if (const auto cache = args.get("cache")) options.cache_dir = *cache;
    options.threads = ucr::thread_count_option(args, "UCR_THREADS");

    ucr::svc::SweepService service(options);
    const int listen_fd = ucr::svc::listen_unix(*socket_path);
    // The ready line is the startup handshake scripts wait for — it is
    // printed only after the socket accepts connections.
    std::cerr << "ucr_servd: listening on " << *socket_path
              << (options.cache_dir.empty()
                      ? std::string(" (no cache)")
                      : ", cache " + options.cache_dir)
              << "\n";
    ucr::svc::run_server(listen_fd, *socket_path, service);
    // Drain: jobs still queued at shutdown finish into the cache.
    service.stop();
    std::cerr << "ucr_servd: shut down\n";
    return 0;
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

#!/usr/bin/env python3
"""Persist engine_micro results as a benchmark trajectory and render trends.

The CI benchmarks job measures every run (tools/bench_compare.py flags
regressions against the immediately previous run), but until this tool the
history was two-deep: each run overwrote the baseline, so a speedup landed
in one PR was invisible three PRs later. bench_report.py turns the runs
into a persisted trajectory:

    bench_report.py append <engine_micro.json> --dir=<trajectory-dir>
                    [--commit=<sha>] [--spec-hash=<hash>]
    bench_report.py report --dir=<trajectory-dir> [--out=<report.md>]
                    [--window=<n>]

`append` validates the google-benchmark JSON (malformed input is a hard
error with a nonzero exit — CI must fail loudly, not silently skip) and
writes the next `BENCH_<n>.json` entry into the trajectory directory:

    {"schema": 1, "entry": n, "commit": "<sha>",
     "spec_hash": "<spec_hash of specs/engine-micro.spec>",
     "benchmarks": {"<name>": <cpu_time ns>, ...}}

The spec_hash is the same shard-invariant provenance key the exp pipeline
stamps on archived rows (`ucr_cli --spec=... --hash-spec`), so a baseline
shift is attributable: either the code changed (commit) or the workload
did (spec_hash).

`report` renders the trajectory as a markdown trend table — one row per
benchmark, one column per entry (newest last), plus the relative change
over the reported window — suitable for the GitHub step summary and for
committing as an artifact. Exit status: 0 on success, 2 on malformed
inputs or an empty trajectory where one was required.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

ENTRY_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")
SCHEMA_VERSION = 1


def fail(message: str) -> "sys.NoReturn":
    print(f"bench_report: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_cpu_times(path: str) -> dict[str, float]:
    """Benchmark name -> representative cpu_time (ns) from google-benchmark
    JSON. Aggregate entries (median preferred, then mean) win over raw
    iterations, mirroring tools/bench_compare.py. Malformed or benchmark-free
    input is a hard error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        fail(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")
    if not isinstance(data, dict) or not isinstance(
            data.get("benchmarks"), list):
        fail(f"{path} is not google-benchmark JSON "
             "(missing a 'benchmarks' array)")
    iterations: dict[str, float] = {}
    aggregates: dict[str, float] = {}
    preferred = {"median": 0, "mean": 1}
    aggregate_rank: dict[str, int] = {}
    for entry in data["benchmarks"]:
        if not isinstance(entry, dict):
            fail(f"{path}: non-object entry in 'benchmarks'")
        name = entry.get("name", "")
        time = entry.get("cpu_time")
        if not name or time is None:
            continue
        try:
            time = float(time)
        except (TypeError, ValueError):
            fail(f"{path}: benchmark {name!r} has a non-numeric cpu_time")
        if entry.get("run_type") == "aggregate":
            aggregate = entry.get("aggregate_name", "")
            if aggregate not in preferred:
                continue
            base = entry.get("run_name", name.rsplit("_", 1)[0])
            rank = preferred[aggregate]
            if rank < aggregate_rank.get(base, len(preferred)):
                aggregate_rank[base] = rank
                aggregates[base] = time
        else:
            iterations[name] = time
    times = aggregates if aggregates else iterations
    if not times:
        fail(f"{path} contains no benchmark timings")
    return times


def trajectory_entries(directory: str) -> list[tuple[int, str]]:
    """Sorted (index, path) pairs of the BENCH_<n>.json entries in
    `directory` (empty list when the directory does not exist yet)."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in os.listdir(directory):
        match = ENTRY_PATTERN.match(filename)
        if match:
            entries.append((int(match.group(1)),
                            os.path.join(directory, filename)))
    entries.sort()
    return entries


def load_entry(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except OSError as error:
        fail(f"cannot read trajectory entry {path}: {error}")
    except json.JSONDecodeError as error:
        fail(f"trajectory entry {path} is not valid JSON: {error}")
    if not isinstance(entry, dict) or not isinstance(
            entry.get("benchmarks"), dict):
        fail(f"trajectory entry {path} is malformed "
             "(missing a 'benchmarks' object)")
    return entry


def cmd_append(args: argparse.Namespace) -> int:
    times = load_cpu_times(args.results)
    entries = trajectory_entries(args.dir)
    index = entries[-1][0] + 1 if entries else 0
    os.makedirs(args.dir, exist_ok=True)
    entry = {
        "schema": SCHEMA_VERSION,
        "entry": index,
        "commit": args.commit,
        "spec_hash": args.spec_hash,
        "benchmarks": times,
    }
    path = os.path.join(args.dir, f"BENCH_{index}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"bench_report: appended {path} "
          f"({len(times)} benchmarks, commit {args.commit or 'unknown'}, "
          f"spec_hash {args.spec_hash or 'unknown'})")
    return 0


def format_ns(value: float) -> str:
    """Compact human-readable nanoseconds for table cells."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.1f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.1f}ns"


def render_report(entries: list[dict], window: int) -> str:
    shown = entries[-window:] if window > 0 else entries
    names: list[str] = []
    for entry in shown:
        for name in entry["benchmarks"]:
            if name not in names:
                names.append(name)
    lines = ["# engine_micro benchmark trend", ""]
    total = len(entries)
    lines.append(
        f"{total} trajectory entr{'y' if total == 1 else 'ies'}; showing "
        f"the last {len(shown)}. Cells are representative cpu_time per "
        "iteration; Δ is the change from the oldest to the newest shown "
        "entry.")
    lines.append("")
    header = ["benchmark"]
    for entry in shown:
        commit = entry.get("commit") or "?"
        header.append(f"#{entry.get('entry', '?')} ({str(commit)[:9]})")
    header.append("Δ window")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for name in names:
        row = [f"`{name}`"]
        series = [entry["benchmarks"].get(name) for entry in shown]
        for value in series:
            row.append(format_ns(value) if value is not None else "—")
        present = [value for value in series if value is not None]
        if len(present) >= 2 and present[0] > 0:
            delta = present[-1] / present[0] - 1.0
            row.append(f"{delta:+.1%}")
        else:
            row.append("—")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    hashes = {entry.get("spec_hash") for entry in shown if
              entry.get("spec_hash")}
    if len(hashes) > 1:
        lines.append(
            "> **Note:** the workload changed within this window "
            f"(spec_hash values: {', '.join(sorted(hashes))}); compare "
            "cells across the change with care.")
        lines.append("")
    return "\n".join(lines)


def cmd_report(args: argparse.Namespace) -> int:
    entry_files = trajectory_entries(args.dir)
    if not entry_files:
        fail(f"no BENCH_*.json entries in {args.dir!r} — run "
             "'bench_report.py append' first")
    entries = [load_entry(path) for _, path in entry_files]
    report = render_report(entries, args.window)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"bench_report: wrote {args.out} ({len(entries)} entries)")
    else:
        print(report)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    append = sub.add_parser(
        "append", help="validate results and append a trajectory entry")
    append.add_argument("results",
                        help="google-benchmark JSON output to persist")
    append.add_argument("--dir", default="bench-trajectory",
                        help="trajectory directory (default bench-trajectory)")
    append.add_argument("--commit", default="",
                        help="commit SHA the results were measured at")
    append.add_argument("--spec-hash", default="",
                        help="spec_hash of the benchmark workload "
                        "(ucr_cli --spec=specs/engine-micro.spec --hash-spec)")
    append.set_defaults(func=cmd_append)

    report = sub.add_parser(
        "report", help="render the trajectory as a markdown trend table")
    report.add_argument("--dir", default="bench-trajectory",
                        help="trajectory directory (default bench-trajectory)")
    report.add_argument("--out", default="",
                        help="write the report here instead of stdout")
    report.add_argument("--window", type=int, default=8,
                        help="number of most recent entries to show "
                        "(default 8; 0 = all)")
    report.set_defaults(func=cmd_report)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Documentation gate for CI (.github/workflows/ci.yml, `docs` job).

Three checks, all hard failures:

1. Relative markdown links in README.md, EXPERIMENTS.md, docs/*.md and
   specs/README.md must resolve to files inside the repository (no 404s
   within the tree). External (http/https/mailto) links and pure
   #anchors are skipped.
2. Every `specs/<name>.spec` path mentioned anywhere in those documents
   (inline code included, not just markdown links) must exist — the
   runbook is written around `ucr_cli --spec=...`, so a renamed or
   deleted catalogue file must fail the docs job.
3. The reverse: every `specs/*.spec` file on disk must be referenced
   from at least one of those documents — an undocumented sweep is a
   sweep nobody will run.
4. Every section pointer of the form `docs/<file>.md "Section title"`
   in a source comment (src/, tests/, bench/, tools/) must name a real
   markdown heading of that document — e.g. the RNG helpers cite
   docs/ARCHITECTURE.md "Pre-drawn window slots", so renaming that
   section without updating the pointers fails here.
5. With --cli=<path to ucr_cli>, every protocol name `ucr_cli --list`
   prints must appear as a `## <name>` section heading in
   docs/PROTOCOLS.md — the same contract the tier-1 drift test
   (tests/docs/protocols_doc_test.cpp) enforces, re-checked here from
   the built binary so the docs job cannot pass with a stale catalog.

Exit codes: 0 ok, 1 check failed, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SPEC_REF_RE = re.compile(r"specs/[A-Za-z0-9._/-]+\.spec")
SECTION_REF_RE = re.compile(r"docs/([A-Za-z0-9._-]+\.md) \"([^\"]+)\"")
HEADING_RE = re.compile(r"^#{1,6} +(.+?)\s*$", re.MULTILINE)


def iter_doc_files(root: pathlib.Path):
    for name in ("README.md", "EXPERIMENTS.md", "specs/README.md"):
        path = root / name
        if path.is_file():
            yield path
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def check_links(root: pathlib.Path) -> list[str]:
    errors = []
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(root)}: broken relative link "
                    f"'{target}'"
                )
    return errors


def check_spec_refs(root: pathlib.Path) -> list[str]:
    """Every specs/*.spec path a document mentions must exist on disk."""
    errors = []
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for ref in sorted(set(SPEC_REF_RE.findall(text))):
            if not (root / ref).is_file():
                errors.append(
                    f"{doc.relative_to(root)}: references missing spec "
                    f"file '{ref}'"
                )
    return errors


def check_spec_coverage(root: pathlib.Path) -> list[str]:
    """Every specs/*.spec file on disk must be referenced from >= 1 doc."""
    specs_dir = root / "specs"
    if not specs_dir.is_dir():
        return []
    referenced = set()
    for doc in iter_doc_files(root):
        referenced.update(SPEC_REF_RE.findall(
            doc.read_text(encoding="utf-8")))
    errors = []
    for spec in sorted(specs_dir.rglob("*.spec")):
        rel = spec.relative_to(root).as_posix()
        if rel not in referenced:
            errors.append(
                f"{rel}: not referenced from any document "
                "(README.md, EXPERIMENTS.md, specs/README.md, docs/*.md)"
            )
    return errors


def check_section_refs(root: pathlib.Path) -> list[str]:
    """Every `docs/<file>.md "Section"` pointer in a source comment must
    name a real heading of that document."""
    headings: dict[str, set[str]] = {}
    errors = []
    for tree in ("src", "tests", "bench", "tools"):
        base = root / tree
        if not base.is_dir():
            continue
        for ext in ("*.hpp", "*.cpp", "*.py"):
            for source in sorted(base.rglob(ext)):
                text = source.read_text(encoding="utf-8",
                                        errors="replace")
                for doc_name, section in SECTION_REF_RE.findall(text):
                    if doc_name not in headings:
                        doc = root / "docs" / doc_name
                        headings[doc_name] = (
                            set(HEADING_RE.findall(
                                doc.read_text(encoding="utf-8")))
                            if doc.is_file() else set()
                        )
                    if section not in headings[doc_name]:
                        errors.append(
                            f"{source.relative_to(root)}: cites "
                            f"docs/{doc_name} \"{section}\", which is "
                            "not a heading there"
                        )
    return errors


def registered_names(cli: str) -> list[str]:
    out = subprocess.run(
        [cli, "--list"], check=True, capture_output=True, text=True
    ).stdout
    names = []
    for line in out.splitlines():
        if line.startswith("  "):
            names.append(line.strip())
    if not names:
        raise RuntimeError(f"'{cli} --list' printed no protocol names")
    return names


def check_protocol_catalog(root: pathlib.Path, cli: str) -> list[str]:
    catalog = root / "docs" / "PROTOCOLS.md"
    if not catalog.is_file():
        return ["docs/PROTOCOLS.md is missing"]
    text = catalog.read_text(encoding="utf-8")
    errors = []
    for name in registered_names(cli):
        if f"## {name}\n" not in text:
            errors.append(
                f"docs/PROTOCOLS.md: missing '## {name}' section for "
                f"registered protocol '{name}'"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument(
        "--cli",
        help="path to a built ucr_cli; enables the protocol-catalog check",
    )
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    if not (root / "README.md").is_file():
        print(f"error: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    errors = (check_links(root) + check_spec_refs(root)
              + check_spec_coverage(root) + check_section_refs(root))
    if args.cli:
        try:
            errors += check_protocol_catalog(root, args.cli)
        except (OSError, subprocess.CalledProcessError, RuntimeError) as e:
            print(f"error: protocol catalog check failed to run: {e}",
                  file=sys.stderr)
            return 2

    for error in errors:
        print(f"FAIL: {error}")
    if errors:
        return 1
    checked = "links + spec refs + spec coverage + section refs" + (
        " + protocol catalog" if args.cli else ""
    )
    print(f"docs check ok ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// ucr_cli — one command-line driver for the whole library. The canonical
// experiment description is the textual spec (src/exp/spec_io.hpp):
// --spec=FILE loads one, every other flag sets the same field of the
// ExperimentSpec directly, and explicit flags win over the file — so a
// versioned spec plus a one-flag override (a different shard, a different
// format) is the normal cross-machine invocation. --dump-spec prints the
// canonical merged text instead of running, which is also how a flag
// invocation gets turned into a spec file in the first place. Either way
// the CLI is just spec construction + the compile/run/sink pipeline, so a
// sweep typed here, a spec file, a bench harness and a sharded
// cross-machine run all execute the exact same code path.
//
// Examples:
//   ucr_cli --list
//   ucr_cli --spec=specs/fig1.spec
//   ucr_cli --spec=specs/fig1.spec --shard=2/4
//   ucr_cli --protocols=paper --kmax=100000 --format=csv --dump-spec
//   ucr_cli --protocol="One-Fail Adaptive" --k=100000 --runs=10
//   ucr_cli --protocols=paper --kmax=1000000 --shard=0/4 --format=csv
//   ucr_cli --protocol="LogLog-Iterated Back-off" --k=500
//           --arrivals=poisson --lambda=0.1 --runs=5 --format=jsonl
//   ucr_cli --protocol="Exp Back-on/Back-off" --k=100000
//           --arrivals=poisson --lambda=0.02 --engine=node_batched
#include <cstdlib>
#include <iostream>
#include <utility>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"

namespace {

int list_protocols() {
  std::cout << "Available protocols:\n";
  for (const auto& p : ucr::default_catalogue()) {
    std::cout << "  " << p.name << "\n";
  }
  return 0;
}

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_cli --spec=FILE [overriding flags]\n"
         "       ucr_cli --protocol=<name> [options]\n"
         "       ucr_cli --protocols=<a,b|paper|all> [options]\n"
         "       ucr_cli --list\n\n"
         "spec file front end:\n"
         "  --spec=FILE       load a textual ExperimentSpec (the key=value\n"
         "                    format of src/exp/spec_io.hpp; the shipped\n"
         "                    sweeps live in specs/). Explicit flags below\n"
         "                    override the file's values (flag wins).\n"
         "  --dump-spec       print the canonical merged spec text and\n"
         "                    exit — turns any flag invocation into a\n"
         "                    versionable spec file\n"
         "  --hash-spec       print the merged spec's shard-invariant\n"
         "                    spec_hash (the provenance key stamped on\n"
         "                    every archived row) and exit — what CI uses\n"
         "                    to tag benchmark trajectory entries\n"
         "spec axes (each flag sets one field of the ExperimentSpec):\n"
         "  --protocol=NAME   one protocol (case-insensitive; typos get a\n"
         "                    did-you-mean hint — try --list)\n"
         "  --protocols=LIST  comma-separated names, or 'paper' (the five\n"
         "                    evaluated protocols) or 'all'\n"
         "  --k=N             single batch size (default 1000)\n"
         "  --ks=LIST         comma-separated k grid (e.g. 10,100,1000)\n"
         "  --kmax=N          the paper's sweep: powers of ten up to N\n"
         "  --runs=N          independent runs per cell (default 10)\n"
         "  --seed=N          base seed (default 2011)\n"
         "  --engine=fair|batched|node|node_batched\n"
         "                    aggregate engine (default), the batched fast\n"
         "                    paths (paper-scale k and long dynamic\n"
         "                    workloads; same law of outcomes, different\n"
         "                    RNG path; batched also accelerates non-batch\n"
         "                    cells via the batched per-station engine), or\n"
         "                    the exact/batched per-station engine\n"
         "  --arrivals=LIST   per-cell workloads, comma-separated (commas\n"
         "                    inside parentheses group arguments): bare\n"
         "                    batch|poisson|burst shaped by the flags\n"
         "                    below, or any spec-file arrival expression —\n"
         "                    poisson(<lambda>), burst(<bursts>,<gap>),\n"
         "                    schedule(<slot>,...), mmpp(<hi>,<lo>,<dwell>),\n"
         "                    pareto(<alpha>,<xm>) (docs/SCENARIOS.md;\n"
         "                    default batch; non-batch cells run\n"
         "                    per-station)\n"
         "  --lambda=X        Poisson arrival rate in msg/slot (default\n"
         "                    0.1; fresh pattern per run)\n"
         "  --bursts=N --gap=N  burst workload shape (default 4 bursts,\n"
         "                    gap 64)\n"
         "  --channel=LIST    per-cell channel models, comma-separated\n"
         "                    (parentheses group): clean, capture(<p>),\n"
         "                    jamming(<q>), jam_burst(<period>,<len>)\n"
         "                    (default clean; non-clean cells run on the\n"
         "                    exact node engine — docs/SCENARIOS.md)\n"
         "  --max-slots=N     slot cap (default: engine default)\n"
         "  --shard=i/N       run shard i of N (contiguous cell block of\n"
         "                    the flattened grid; concatenating the CSV or\n"
         "                    JSONL output of shards 0..N-1 is\n"
         "                    byte-identical to the unsharded sweep)\n"
         "execution / output:\n"
         "  --threads=N       sweep worker threads, N >= 1 (default: all\n"
         "                    cores; results are identical for every N)\n"
         "  --format=table|csv|jsonl   output format (default table)\n"
         "  --csv=1           alias for --format=csv\n";
  return 2;
}

/// Splits a comma-separated list, rejecting empty items.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    UCR_REQUIRE(end > start, "empty item in list '" + text + "'");
    items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Splits a comma-separated list whose items may carry parenthesized
/// argument lists — "batch,mmpp(0.5,0.01,100)" is two items, not four.
/// Only commas at parenthesis depth zero separate items.
std::vector<std::string> split_expr_list(const std::string& text) {
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  for (const char ch : text) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    UCR_REQUIRE(depth >= 0, "unbalanced ')' in list '" + text + "'");
    if (ch == ',' && depth == 0) {
      UCR_REQUIRE(!current.empty(), "empty item in list '" + text + "'");
      items.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  UCR_REQUIRE(depth == 0, "unbalanced '(' in list '" + text + "'");
  UCR_REQUIRE(!current.empty(), "empty item in list '" + text + "'");
  items.push_back(std::move(current));
  return items;
}

int run_spec(const ucr::CliArgs& args) {
  const auto protocols = ucr::default_catalogue();

  // Layer 1: the spec file, when given (else a default-initialized spec).
  ucr::exp::SpecFile file;
  const bool from_file = args.get("spec").has_value();
  if (from_file) {
    file = ucr::exp::load_spec_file(*args.get("spec"));
  }
  ucr::exp::ExperimentSpec& spec = file.spec;

  // Layer 2: explicit flags override the file, field by field.

  // Protocol axis: either protocol flag replaces the file's selection.
  if (args.get("protocol") || args.get("protocols")) {
    spec.protocol_names.clear();
    spec.protocols.clear();
    if (const auto one = args.get("protocol")) {
      spec.with_protocol(*one);
    }
    if (const auto many = args.get("protocols")) {
      if (*many == "paper") {
        for (const auto& p : ucr::paper_protocols()) {
          spec.with_protocol(p.name);
        }
      } else if (*many == "all") {
        for (const auto& p : protocols) spec.with_protocol(p.name);
      } else {
        for (const auto& name : split_list(*many)) spec.with_protocol(name);
      }
    }
  }

  // k axis: --ks wins over --kmax wins over --k; the classic default
  // k = 1000 applies only when neither a flag nor the file set a grid.
  if (const auto ks = args.get("ks")) {
    spec.ks.clear();
    spec.k_max = 0;
    for (const auto& item : split_list(*ks)) {
      spec.ks.push_back(ucr::parse_u64_strict(item, "--ks item"));
    }
  } else if (args.get("kmax")) {
    spec.with_paper_ks(args.get_u64("kmax", 0));
  } else if (args.get("k")) {
    spec.ks = {args.get_u64("k", 1000)};
    spec.k_max = 0;
  } else if (!from_file && spec.ks.empty() && spec.k_max == 0) {
    spec.ks = {1000};
  }

  if (args.get("runs")) spec.runs = args.get_u64("runs", spec.runs);
  if (args.get("seed")) spec.seed = args.get_u64("seed", spec.seed);

  if (const auto engine = args.get("engine")) {
    if (*engine == "fair") {
      spec.engine = ucr::exp::EngineMode::kFair;
    } else if (*engine == "batched") {
      spec.engine = ucr::exp::EngineMode::kBatched;
    } else if (*engine == "node") {
      spec.engine = ucr::exp::EngineMode::kNode;
    } else if (*engine == "node_batched") {
      spec.engine = ucr::exp::EngineMode::kNodeBatched;
    } else {
      return usage("unknown --engine (fair, batched, node or node_batched)");
    }
  }

  // Arrival axis: an explicit --arrivals list replaces the file's cells;
  // --lambda/--bursts/--gap shape those flag-built cells. Without
  // --arrivals the shape flags have nothing to apply to (a file carries
  // each cell's parameters inline) — fail loudly rather than let a user
  // believe they re-parameterized the file's cells.
  if (const auto arrivals = args.get("arrivals")) {
    spec.arrivals.clear();
    const double lambda = args.get_double("lambda", 0.1);
    const std::uint64_t bursts = args.get_u64("bursts", 4);
    const std::uint64_t gap = args.get_u64("gap", 64);
    for (const auto& kind : split_expr_list(*arrivals)) {
      if (kind == "batch") {
        spec.with_arrival(ucr::exp::ArrivalSpec::batch());
      } else if (kind == "poisson") {
        spec.with_arrival(ucr::exp::ArrivalSpec::poisson(lambda));
      } else if (kind == "burst") {
        spec.with_arrival(ucr::exp::ArrivalSpec::burst(bursts, gap));
      } else {
        // Full spec-file expression syntax — schedule(...), mmpp(...),
        // pareto(...), or an explicitly parameterized poisson/burst.
        spec.with_arrival(ucr::exp::ArrivalSpec::parse(kind));
      }
    }
  } else if (args.get("lambda") || args.get("bursts") || args.get("gap")) {
    return usage(
        "--lambda/--bursts/--gap only shape cells built by --arrivals; to "
        "override a spec file's arrival cells, restate the list (e.g. "
        "--arrivals=poisson --lambda=0.9)");
  }

  // Channel axis: an explicit --channel list replaces the file's cells.
  if (const auto channel = args.get("channel")) {
    spec.channels.clear();
    for (const auto& item : split_expr_list(*channel)) {
      spec.with_channel(ucr::ChannelModel::parse(item));
    }
  }

  if (args.get("max-slots")) {
    spec.engine_options.max_slots = args.get_u64("max-slots", 0);
  }
  if (const auto shard = args.get("shard")) {
    spec.shard = ucr::exp::ShardSpec::parse(*shard);
  }
  // An empty UCR_THREADS means unset (a CI script's THREADS=$N with N
  // undefined must not wipe a file's pinned thread count).
  const char* threads_env = std::getenv("UCR_THREADS");
  if (args.get("threads") ||
      (threads_env != nullptr && *threads_env != '\0')) {
    file.threads = ucr::thread_count_option(args, "UCR_THREADS");
  }
  if (const auto format = args.get("format")) {
    if (*format == "table") {
      file.format = ucr::exp::OutputFormat::kTable;
    } else if (*format == "csv") {
      file.format = ucr::exp::OutputFormat::kCsv;
    } else if (*format == "jsonl") {
      file.format = ucr::exp::OutputFormat::kJsonl;
    } else {
      return usage("unknown --format (table, csv or jsonl)");
    }
  } else if (args.get_bool("csv", false)) {
    file.format = ucr::exp::OutputFormat::kCsv;
  }

  // The merged description is now final; --dump-spec prints its canonical
  // text (re-loadable with --spec) instead of running it.
  if (args.get_bool("dump-spec", false)) {
    std::cout << ucr::exp::to_text(file);
    return 0;
  }
  if (args.get_bool("hash-spec", false)) {
    std::cout << ucr::exp::spec_hash(spec) << "\n";
    return 0;
  }

  if (spec.protocol_names.empty() && spec.protocols.empty()) {
    return usage("--protocol, --protocols or a --spec file naming "
                 "protocols is required (try --list)");
  }

  const auto plan = ucr::exp::compile(spec, protocols);

  // Streaming formats go straight to the sink — constant memory, rows
  // appear as the grid prefix completes.
  if (file.format != ucr::exp::OutputFormat::kTable) {
    ucr::exp::CsvStreamSink csv(std::cout);
    ucr::exp::JsonlSink jsonl(std::cout);
    ucr::exp::ResultSink* sink =
        file.format == ucr::exp::OutputFormat::kCsv
            ? static_cast<ucr::exp::ResultSink*>(&csv)
            : &jsonl;
    std::uint64_t incomplete = 0;
    class CountingSink final : public ucr::exp::ResultSink {
     public:
      explicit CountingSink(std::uint64_t& total) : total_(&total) {}
      void emit(const ucr::exp::CellInfo&,
                const ucr::AggregateResult& result) override {
        *total_ += result.incomplete_runs;
      }

     private:
      std::uint64_t* total_;
    } counting(incomplete);
    ucr::exp::run(plan, {sink, &counting}, {file.threads});
    return incomplete == 0 ? 0 : 1;
  }

  ucr::exp::MemorySink memory;
  ucr::exp::run(plan, {&memory}, {file.threads});
  const auto& results = memory.results();
  const auto& cells = memory.cells();

  std::uint64_t incomplete = 0;
  for (const auto& result : results) incomplete += result.incomplete_runs;

  if (results.size() == 1) {
    // Single cell: the familiar one-experiment report.
    const auto& result = results.front();
    const auto& cell = cells.front();
    std::cout << result.protocol << " on k = " << result.k << " ("
              << spec.runs << " runs, seed " << spec.seed << ", "
              << ucr::exp::engine_mode_name(cell.engine) << " engine, "
              << cell.arrival.label() << " arrivals, "
              << cell.channel.label() << " channel";
    if (!plan.shard.is_whole()) std::cout << ", shard " << plan.shard.label();
    std::cout << ")\n\n";
    ucr::Table table({"metric", "value"});
    table.add_row(
        {"mean makespan", ucr::format_double(result.makespan.mean, 1)});
    table.add_row({"95% CI halfwidth",
                   ucr::format_double(result.makespan.ci95_halfwidth, 1)});
    table.add_row({"min / max",
                   ucr::format_double(result.makespan.min, 0) + " / " +
                       ucr::format_double(result.makespan.max, 0)});
    table.add_row(
        {"mean ratio steps/k", ucr::format_double(result.ratio.mean, 3)});
    table.add_row({"incomplete runs", std::to_string(result.incomplete_runs)});
    table.print(std::cout);
    return incomplete == 0 ? 0 : 1;
  }

  // Grid: one row per cell, in grid order.
  std::cout << "Sweep of " << plan.total_cells << " cells";
  if (!plan.shard.is_whole()) {
    std::cout << " (this shard " << plan.shard.label() << ": "
              << results.size() << " cells)";
  }
  std::cout << ", " << spec.runs << " runs per cell, seed " << spec.seed
            << "\n\n";
  ucr::Table table({"protocol", "k", "arrivals", "channel", "engine",
                    "mean makespan", "ci95", "ratio", "incomplete"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.add_row({result.protocol, std::to_string(result.k),
                   cells[i].arrival.label(), cells[i].channel.label(),
                   ucr::exp::engine_mode_name(cells[i].engine),
                   ucr::format_double(result.makespan.mean, 1),
                   ucr::format_double(result.makespan.ci95_halfwidth, 1),
                   ucr::format_double(result.ratio.mean, 3),
                   std::to_string(result.incomplete_runs)});
  }
  table.print(std::cout);
  return incomplete == 0 ? 0 : 1;
}

}  // namespace

int run_cli(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv,
                          {"spec", "dump-spec", "hash-spec", "protocol",
                           "protocols", "k",
                           "ks", "kmax", "runs", "seed", "engine", "arrivals",
                           "lambda", "bursts", "gap", "channel", "max-slots",
                           "shard", "threads", "csv", "format", "list"});
  if (args.get_bool("list", false)) return list_protocols();
  return run_spec(args);
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// ucr_cli — one command-line driver for the whole library: pick a protocol,
// a workload, an engine and a scale; get per-run metrics, an aggregate
// summary, or machine-readable CSV.
//
// Examples:
//   ucr_cli --list
//   ucr_cli --protocol="One-Fail Adaptive" --k=100000 --runs=10
//   ucr_cli --protocol="Exp Back-on/Back-off" --k=1000 --engine=node
//   ucr_cli --protocol="LogLog-Iterated Back-off" --k=500
//           --arrivals=poisson --lambda=0.1 --runs=5
//   ucr_cli --protocol="One-Fail Adaptive" --k=1000 --csv=1
#include <iostream>
#include <utility>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/dynamic_one_fail.hpp"
#include "core/registry.hpp"
#include "sim/resultio.hpp"
#include "sim/sweep.hpp"

namespace {

std::vector<ucr::ProtocolFactory> catalogue() {
  auto protocols = ucr::all_protocols();
  protocols.push_back(ucr::make_dynamic_one_fail_factory());
  return protocols;
}

int list_protocols() {
  std::cout << "Available protocols:\n";
  for (const auto& p : catalogue()) {
    std::cout << "  " << p.name << "\n";
  }
  return 0;
}

int usage(const char* error) {
  if (error != nullptr) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_cli --protocol=<name> [options]\n"
         "       ucr_cli --list\n\n"
         "options:\n"
         "  --k=N             batch size / number of messages (default 1000)\n"
         "  --runs=N          independent runs (default 10)\n"
         "  --seed=N          base seed (default 2011)\n"
         "  --engine=fair|batched|node   aggregate engine (default), its\n"
         "                    batched fast path (paper-scale k; same law of\n"
         "                    outcomes, different RNG path), or the\n"
         "                    per-station engine\n"
         "  --arrivals=batch|poisson|burst   workload (default batch;\n"
         "                    non-batch workloads force --engine=node)\n"
         "  --lambda=X        Poisson arrival rate in msg/slot (default 0.1)\n"
         "  --bursts=N --gap=N  burst workload shape (default 4 bursts)\n"
         "  --max-slots=N     slot cap (default: engine default)\n"
         "  --threads=N       sweep worker threads, N >= 1 (default: all\n"
         "                    cores; results are identical for every N)\n"
         "  --csv=1           emit the aggregate row as CSV\n";
  return 2;
}

}  // namespace

int run_cli(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv,
                          {"protocol", "k", "runs", "seed", "engine",
                           "arrivals", "lambda", "bursts", "gap",
                           "max-slots", "threads", "csv", "list"});
  if (args.get_bool("list", false)) return list_protocols();

  const auto name = args.get("protocol");
  if (!name) return usage("--protocol is required (try --list)");

  const ucr::ProtocolFactory* factory = nullptr;
  const auto protocols = catalogue();
  for (const auto& p : protocols) {
    if (p.name == *name) factory = &p;
  }
  if (factory == nullptr) return usage("unknown protocol (try --list)");

  const std::uint64_t k = args.get_u64("k", 1000);
  const std::uint64_t runs = args.get_u64("runs", 10);
  const std::uint64_t seed = args.get_u64("seed", 2011);
  const std::string engine = args.get("engine").value_or("fair");
  if (engine != "fair" && engine != "batched" && engine != "node") {
    return usage("unknown --engine (fair, batched or node)");
  }
  const std::string arrivals_kind = args.get("arrivals").value_or("batch");
  if (engine == "batched" && arrivals_kind != "batch") {
    return usage(
        "--engine=batched requires batched arrivals (non-batch workloads "
        "run per-station: use --engine=node)");
  }
  const unsigned threads = ucr::thread_count_option(args, "UCR_THREADS");

  ucr::EngineOptions options;
  options.max_slots = args.get_u64("max-slots", 0);
  options.batched = engine == "batched";

  // Every path is one sweep cell; SweepRunner spreads its `runs` across the
  // worker threads with bit-identical output for any --threads value.
  ucr::SweepPoint point;
  if (arrivals_kind == "batch" && engine != "node") {
    if (!factory->has_fair()) return usage("protocol has no fair view");
    point = ucr::SweepPoint::fair(*factory, k, runs, seed, options);
  } else {
    if (!factory->node) return usage("protocol has no per-node view");
    ucr::ArrivalPattern arrivals;
    if (arrivals_kind == "batch") {
      arrivals = ucr::batched_arrivals(k);
    } else if (arrivals_kind == "poisson") {
      ucr::Xoshiro256 arrival_rng = ucr::Xoshiro256::stream(seed, 999);
      arrivals =
          ucr::poisson_arrivals(k, args.get_double("lambda", 0.1), arrival_rng);
    } else if (arrivals_kind == "burst") {
      const std::uint64_t bursts = args.get_u64("bursts", 4);
      arrivals = ucr::burst_arrivals(bursts, k / bursts,
                                     args.get_u64("gap", 64));
    } else {
      return usage("unknown --arrivals kind");
    }
    point = ucr::SweepPoint::node(*factory, std::move(arrivals), runs, seed,
                                  options);
  }
  const ucr::AggregateResult result =
      ucr::SweepRunner(ucr::SweepOptions{threads}).run({point})[0];

  if (args.get_bool("csv", false)) {
    ucr::write_aggregate_csv(std::cout,
                             {ucr::AggregateRow::from(result)});
    return result.incomplete_runs == 0 ? 0 : 1;
  }

  std::cout << result.protocol << " on k = " << result.k << " (" << runs
            << " runs, seed " << seed << ", " << engine << " engine, "
            << arrivals_kind << " arrivals)\n\n";
  ucr::Table table({"metric", "value"});
  table.add_row({"mean makespan", ucr::format_double(result.makespan.mean, 1)});
  table.add_row({"95% CI halfwidth",
                 ucr::format_double(result.makespan.ci95_halfwidth, 1)});
  table.add_row({"min / max",
                 ucr::format_double(result.makespan.min, 0) + " / " +
                     ucr::format_double(result.makespan.max, 0)});
  table.add_row({"mean ratio steps/k",
                 ucr::format_double(result.ratio.mean, 3)});
  table.add_row({"incomplete runs", std::to_string(result.incomplete_runs)});
  table.print(std::cout);
  return result.incomplete_runs == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// ucr_cli — one command-line driver for the whole library. The canonical
// experiment description is the textual spec (src/exp/spec_io.hpp):
// --spec=FILE loads one, every other flag sets the same field of the
// ExperimentSpec directly, and explicit flags win over the file — so a
// versioned spec plus a one-flag override (a different shard, a different
// format) is the normal cross-machine invocation. --dump-spec prints the
// canonical merged text instead of running, which is also how a flag
// invocation gets turned into a spec file in the first place. Either way
// the CLI is just spec construction + the compile/run/sink pipeline, so a
// sweep typed here, a spec file, a bench harness and a sharded
// cross-machine run all execute the exact same code path.
//
// Examples:
//   ucr_cli --list
//   ucr_cli --spec=specs/fig1.spec
//   ucr_cli --spec=specs/fig1.spec --shard=2/4
//   ucr_cli --protocols=paper --kmax=100000 --format=csv --dump-spec
//   ucr_cli --protocol="One-Fail Adaptive" --k=100000 --runs=10
//   ucr_cli --protocols=paper --kmax=1000000 --shard=0/4 --format=csv
//   ucr_cli --protocol="LogLog-Iterated Back-off" --k=500
//           --arrivals=poisson --lambda=0.1 --runs=5 --format=jsonl
//   ucr_cli --protocol="Exp Back-on/Back-off" --k=100000
//           --arrivals=poisson --lambda=0.02 --engine=node_batched
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"
#include "svc/client.hpp"
#include "svc/result_cache.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/socket.hpp"

namespace {

int list_protocols() {
  std::cout << "Available protocols:\n";
  for (const auto& p : ucr::default_catalogue()) {
    std::cout << "  " << p.name << "\n";
  }
  return 0;
}

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_cli --spec=FILE [overriding flags]\n"
         "       ucr_cli --protocol=<name> [options]\n"
         "       ucr_cli --protocols=<a,b|paper|all> [options]\n"
         "       ucr_cli --list\n\n"
         "spec file front end:\n"
         "  --spec=FILE       load a textual ExperimentSpec (the key=value\n"
         "                    format of src/exp/spec_io.hpp; the shipped\n"
         "                    sweeps live in specs/). Explicit flags below\n"
         "                    override the file's values (flag wins).\n"
         "  --dump-spec       print the canonical merged spec text and\n"
         "                    exit — turns any flag invocation into a\n"
         "                    versionable spec file\n"
         "  --hash-spec       print the merged spec's shard-invariant\n"
         "                    spec_hash (the provenance key stamped on\n"
         "                    every archived row) and exit — what CI uses\n"
         "                    to tag benchmark trajectory entries\n"
         "spec axes (each flag sets one field of the ExperimentSpec):\n"
         "  --protocol=NAME   one protocol (case-insensitive; typos get a\n"
         "                    did-you-mean hint — try --list)\n"
         "  --protocols=LIST  comma-separated names, or 'paper' (the five\n"
         "                    evaluated protocols) or 'all'\n"
         "  --k=N             single batch size (default 1000)\n"
         "  --ks=LIST         comma-separated k grid (e.g. 10,100,1000)\n"
         "  --kmax=N          the paper's sweep: powers of ten up to N\n"
         "  --runs=N          independent runs per cell (default 10)\n"
         "  --seed=N          base seed (default 2011)\n"
         "  --engine=fair|batched|node|node_batched\n"
         "                    aggregate engine (default), the batched fast\n"
         "                    paths (paper-scale k and long dynamic\n"
         "                    workloads; same law of outcomes, different\n"
         "                    RNG path; batched also accelerates non-batch\n"
         "                    cells via the batched per-station engine), or\n"
         "                    the exact/batched per-station engine\n"
         "  --arrivals=LIST   per-cell workloads, comma-separated (commas\n"
         "                    inside parentheses group arguments): bare\n"
         "                    batch|poisson|burst shaped by the flags\n"
         "                    below, or any spec-file arrival expression —\n"
         "                    poisson(<lambda>), burst(<bursts>,<gap>),\n"
         "                    schedule(<slot>,...), mmpp(<hi>,<lo>,<dwell>),\n"
         "                    pareto(<alpha>,<xm>) (docs/SCENARIOS.md;\n"
         "                    default batch; non-batch cells run\n"
         "                    per-station)\n"
         "  --lambda=X        Poisson arrival rate in msg/slot (default\n"
         "                    0.1; fresh pattern per run)\n"
         "  --bursts=N --gap=N  burst workload shape (default 4 bursts,\n"
         "                    gap 64)\n"
         "  --channel=LIST    per-cell channel models, comma-separated\n"
         "                    (parentheses group): clean, capture(<p>),\n"
         "                    jamming(<q>), jam_burst(<period>,<len>)\n"
         "                    (default clean; non-clean cells run on the\n"
         "                    exact node engine — docs/SCENARIOS.md)\n"
         "  --max-slots=N     slot cap (default: engine default)\n"
         "  --shard=i/N       run shard i of N (contiguous cell block of\n"
         "                    the flattened grid; concatenating the CSV or\n"
         "                    JSONL output of shards 0..N-1 is\n"
         "                    byte-identical to the unsharded sweep)\n"
         "execution / output:\n"
         "  --threads=N       sweep worker threads, N >= 1 (default: all\n"
         "                    cores; results are identical for every N)\n"
         "  --format=table|csv|jsonl   output format (default table)\n"
         "  --csv=1           alias for --format=csv\n"
         "cached / resumable execution (docs/SERVICE.md):\n"
         "  --cache=DIR       attach the on-disk result cache: cells\n"
         "                    already banked under the spec's provenance\n"
         "                    key replay byte-identically instead of\n"
         "                    recomputing, fresh cells are banked before\n"
         "                    they are emitted — kill + rerun = resume\n"
         "  --list-cells      print the compiled grid (cell index,\n"
         "                    protocol, k, arrivals, channel, engine)\n"
         "                    without running anything\n"
         "  --abort-after-cells=N  fault injection for resume testing:\n"
         "                    fail loudly once N cells have been emitted\n"
         "                    (env spelling UCR_ABORT_AFTER_CELLS=N; with\n"
         "                    UCR_ABORT_MODE=kill the process hard-exits\n"
         "                    137 instead of throwing — a worker machine\n"
         "                    dying mid-shard, for coordinator tests)\n"
         "daemon client (needs a running ucr_servd; docs/SERVICE.md):\n"
         "  --serve --socket=PATH [--cache=DIR]\n"
         "                    run the sweep daemon in-process (the\n"
         "                    standalone spelling is ucr_servd)\n"
         "  --submit=FILE --socket=PATH [--wait]\n"
         "                    submit a spec file; --wait streams the\n"
         "                    job's JSONL rows to stdout (byte-identical\n"
         "                    to --spec=FILE --format=jsonl) and prints\n"
         "                    a summary to stderr, otherwise the job id\n"
         "                    is printed and the job runs detached\n"
         "  --status=JOB --socket=PATH    print a job's progress\n"
         "  --cancel=JOB --socket=PATH    stop a job at its next cell\n"
         "  --json            with --status/--cancel: print the daemon's\n"
         "                    JSON response verbatim instead of the\n"
         "                    human summary (docs/SERVICE.md fields)\n"
         "  --shutdown --socket=PATH      stop the daemon\n";
  return 2;
}

/// Whole file as a string; ContractViolation naming the path on failure.
std::string read_file(const std::string& path) {
  std::ifstream in(path);
  UCR_REQUIRE(in.is_open(), "cannot open spec file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  UCR_REQUIRE(!in.bad(), "cannot read spec file '" + path + "'");
  return text.str();
}

/// "job job-2 done: 12/12 cells, 12 cache hits (100%)" — the CI service
/// smoke greps the percentage, so keep the shape stable.
std::string job_summary(const std::string& id, const std::string& state,
                        std::uint64_t completed, std::uint64_t total,
                        std::uint64_t cache_hits) {
  std::string line = "job " + id + " " + state + ": " +
                     std::to_string(completed) + "/" + std::to_string(total) +
                     " cells, " + std::to_string(cache_hits) + " cache hits";
  if (total > 0) {
    line += " (" + std::to_string(cache_hits * 100 / total) + "%)";
  }
  return line;
}

/// The summary line of a status/cancel response.
std::string job_summary(const ucr::json::Value& response) {
  return job_summary(response.at("job").as_string(),
                     response.at("state").as_string(),
                     response.at("completed").as_u64(),
                     response.at("total").as_u64(),
                     response.at("cache_hits").as_u64());
}

/// Daemon and client modes (--serve / --submit / --status / --cancel /
/// --shutdown), all addressed by --socket.
int run_client(const ucr::CliArgs& args) {
  const auto socket_path = args.get("socket");
  if (!socket_path.has_value()) {
    return usage("daemon and client modes need --socket=PATH");
  }

  if (args.get_bool("serve", false)) {
    ucr::svc::SweepService::Options options;
    if (const auto cache = args.get("cache")) options.cache_dir = *cache;
    options.threads = ucr::thread_count_option(args, "UCR_THREADS");
    ucr::svc::SweepService service(options);
    const int listen_fd = ucr::svc::listen_unix(*socket_path);
    std::cerr << "ucr_cli: serving on " << *socket_path << "\n";
    ucr::svc::run_server(listen_fd, *socket_path, service);
    service.stop();
    return 0;
  }
  if (args.get_bool("shutdown", false)) {
    ucr::svc::request(*socket_path, ucr::svc::simple_request("shutdown"));
    std::cerr << "ucr_cli: daemon at " << *socket_path
              << " shutting down\n";
    return 0;
  }
  // --json prints the daemon's response line verbatim (machine-readable;
  // the field names are pinned by tests and docs/SERVICE.md).
  const bool raw_json = args.get_bool("json", false);
  if (const auto job = args.get("status")) {
    const std::string line = ucr::svc::job_request("status", *job);
    if (raw_json) {
      std::cout << ucr::svc::request_raw(*socket_path, line) << "\n";
    } else {
      std::cout << job_summary(ucr::svc::request(*socket_path, line)) << "\n";
    }
    return 0;
  }
  if (const auto job = args.get("cancel")) {
    const std::string line = ucr::svc::job_request("cancel", *job);
    if (raw_json) {
      std::cout << ucr::svc::request_raw(*socket_path, line) << "\n";
    } else {
      std::cout << job_summary(ucr::svc::request(*socket_path, line)) << "\n";
    }
    return 0;
  }

  const auto spec_file = args.get("submit");
  UCR_CHECK(spec_file.has_value(), "run_client dispatched without a mode");
  const auto response = ucr::svc::request(
      *socket_path, ucr::svc::submit_request(read_file(*spec_file)));
  const std::string id = response.at("job").as_string();
  if (!args.get_bool("wait", false)) {
    std::cerr << "ucr_cli: submitted " << id << " ("
              << response.at("total").number_token() << " cells, spec_hash "
              << response.at("spec_hash").as_string() << ")\n";
    std::cout << id << "\n";
    return 0;
  }
  // --wait: only result rows on stdout, so the streamed output can be
  // byte-compared against a direct `--spec=FILE --format=jsonl` run.
  const ucr::svc::StreamResult result = ucr::svc::stream_job(
      *socket_path, id,
      [](const std::string& row) { std::cout << row << "\n"; });
  std::cerr << "ucr_cli: "
            << job_summary(id, result.state, result.completed, result.total,
                           result.cache_hits);
  if (!result.error.empty()) std::cerr << " — " << result.error;
  std::cerr << "\n";
  return result.state == "done" ? 0 : 1;
}

/// Fault-injection sink for resume and retry tests: placed ahead of the
/// output sinks, it fails when the (N+1)th cell is emitted, so exactly N
/// rows reach the output while cell N itself is already banked in the
/// cache (run() stores before emitting). Two failure modes: `throw`
/// (default) fails loudly through the normal error path; `kill`
/// hard-exits with status 137 — the status a SIGKILLed process reports —
/// without unwinding, which is how the coordinator tests simulate a
/// worker machine dying mid-shard (docs/ORCHESTRATOR.md).
class AbortSink final : public ucr::exp::ResultSink {
 public:
  AbortSink(std::uint64_t limit, bool kill) : limit_(limit), kill_(kill) {}
  void emit(const ucr::exp::CellInfo&,
            const ucr::AggregateResult&) override {
    if (emitted_ >= limit_ && kill_) {
      std::cout.flush();  // emitted rows are real output; the death is not
      std::_Exit(137);
    }
    UCR_REQUIRE(emitted_ < limit_,
                "aborting after " + std::to_string(limit_) +
                    " cells (--abort-after-cells fault injection)");
    ++emitted_;
  }

 private:
  std::uint64_t limit_;
  bool kill_;
  std::uint64_t emitted_ = 0;
};

/// The abort-injection configuration: the --abort-after-cells flag, or —
/// so a coordinator worker can be made to die mid-shard without any
/// change to the argv the coordinator builds — the UCR_ABORT_AFTER_CELLS
/// environment variable. UCR_ABORT_MODE selects `throw` (default) or
/// `kill` (see AbortSink).
std::optional<AbortSink> make_abort_sink(const ucr::CliArgs& args) {
  std::optional<std::uint64_t> limit;
  if (args.get("abort-after-cells")) {
    limit = args.get_u64("abort-after-cells", 0);
  } else if (const char* env = std::getenv("UCR_ABORT_AFTER_CELLS");
             env != nullptr && *env != '\0') {
    limit = ucr::parse_u64_strict(env, "UCR_ABORT_AFTER_CELLS");
  }
  if (!limit.has_value()) return std::nullopt;
  bool kill = false;
  if (const char* mode = std::getenv("UCR_ABORT_MODE");
      mode != nullptr && *mode != '\0') {
    const std::string value = mode;
    UCR_REQUIRE(value == "throw" || value == "kill",
                "unknown UCR_ABORT_MODE '" + value + "' (throw, kill)");
    kill = value == "kill";
  }
  return AbortSink(*limit, kill);
}

/// Splits a comma-separated list, rejecting empty items.
std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    UCR_REQUIRE(end > start, "empty item in list '" + text + "'");
    items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Splits a comma-separated list whose items may carry parenthesized
/// argument lists — "batch,mmpp(0.5,0.01,100)" is two items, not four.
/// Only commas at parenthesis depth zero separate items.
std::vector<std::string> split_expr_list(const std::string& text) {
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  for (const char ch : text) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    UCR_REQUIRE(depth >= 0, "unbalanced ')' in list '" + text + "'");
    if (ch == ',' && depth == 0) {
      UCR_REQUIRE(!current.empty(), "empty item in list '" + text + "'");
      items.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  UCR_REQUIRE(depth == 0, "unbalanced '(' in list '" + text + "'");
  UCR_REQUIRE(!current.empty(), "empty item in list '" + text + "'");
  items.push_back(std::move(current));
  return items;
}

int run_spec(const ucr::CliArgs& args) {
  const auto protocols = ucr::default_catalogue();

  // Layer 1: the spec file, when given (else a default-initialized spec).
  ucr::exp::SpecFile file;
  const bool from_file = args.get("spec").has_value();
  if (from_file) {
    file = ucr::exp::load_spec_file(*args.get("spec"));
  }
  ucr::exp::ExperimentSpec& spec = file.spec;

  // Layer 2: explicit flags override the file, field by field.

  // Protocol axis: either protocol flag replaces the file's selection.
  if (args.get("protocol") || args.get("protocols")) {
    spec.protocol_names.clear();
    spec.protocols.clear();
    if (const auto one = args.get("protocol")) {
      spec.with_protocol(*one);
    }
    if (const auto many = args.get("protocols")) {
      if (*many == "paper") {
        for (const auto& p : ucr::paper_protocols()) {
          spec.with_protocol(p.name);
        }
      } else if (*many == "all") {
        for (const auto& p : protocols) spec.with_protocol(p.name);
      } else {
        for (const auto& name : split_list(*many)) spec.with_protocol(name);
      }
    }
  }

  // k axis: --ks wins over --kmax wins over --k; the classic default
  // k = 1000 applies only when neither a flag nor the file set a grid.
  if (const auto ks = args.get("ks")) {
    spec.ks.clear();
    spec.k_max = 0;
    for (const auto& item : split_list(*ks)) {
      spec.ks.push_back(ucr::parse_u64_strict(item, "--ks item"));
    }
  } else if (args.get("kmax")) {
    spec.with_paper_ks(args.get_u64("kmax", 0));
  } else if (args.get("k")) {
    spec.ks = {args.get_u64("k", 1000)};
    spec.k_max = 0;
  } else if (!from_file && spec.ks.empty() && spec.k_max == 0) {
    spec.ks = {1000};
  }

  if (args.get("runs")) spec.runs = args.get_u64("runs", spec.runs);
  if (args.get("seed")) spec.seed = args.get_u64("seed", spec.seed);

  if (const auto engine = args.get("engine")) {
    if (*engine == "fair") {
      spec.engine = ucr::exp::EngineMode::kFair;
    } else if (*engine == "batched") {
      spec.engine = ucr::exp::EngineMode::kBatched;
    } else if (*engine == "node") {
      spec.engine = ucr::exp::EngineMode::kNode;
    } else if (*engine == "node_batched") {
      spec.engine = ucr::exp::EngineMode::kNodeBatched;
    } else {
      return usage("unknown --engine (fair, batched, node or node_batched)");
    }
  }

  // Arrival axis: an explicit --arrivals list replaces the file's cells;
  // --lambda/--bursts/--gap shape those flag-built cells. Without
  // --arrivals the shape flags have nothing to apply to (a file carries
  // each cell's parameters inline) — fail loudly rather than let a user
  // believe they re-parameterized the file's cells.
  if (const auto arrivals = args.get("arrivals")) {
    spec.arrivals.clear();
    const double lambda = args.get_double("lambda", 0.1);
    const std::uint64_t bursts = args.get_u64("bursts", 4);
    const std::uint64_t gap = args.get_u64("gap", 64);
    for (const auto& kind : split_expr_list(*arrivals)) {
      if (kind == "batch") {
        spec.with_arrival(ucr::exp::ArrivalSpec::batch());
      } else if (kind == "poisson") {
        spec.with_arrival(ucr::exp::ArrivalSpec::poisson(lambda));
      } else if (kind == "burst") {
        spec.with_arrival(ucr::exp::ArrivalSpec::burst(bursts, gap));
      } else {
        // Full spec-file expression syntax — schedule(...), mmpp(...),
        // pareto(...), or an explicitly parameterized poisson/burst.
        spec.with_arrival(ucr::exp::ArrivalSpec::parse(kind));
      }
    }
  } else if (args.get("lambda") || args.get("bursts") || args.get("gap")) {
    return usage(
        "--lambda/--bursts/--gap only shape cells built by --arrivals; to "
        "override a spec file's arrival cells, restate the list (e.g. "
        "--arrivals=poisson --lambda=0.9)");
  }

  // Channel axis: an explicit --channel list replaces the file's cells.
  if (const auto channel = args.get("channel")) {
    spec.channels.clear();
    for (const auto& item : split_expr_list(*channel)) {
      spec.with_channel(ucr::ChannelModel::parse(item));
    }
  }

  if (args.get("max-slots")) {
    spec.engine_options.max_slots = args.get_u64("max-slots", 0);
  }
  if (const auto shard = args.get("shard")) {
    spec.shard = ucr::exp::ShardSpec::parse(*shard);
  }
  // An empty UCR_THREADS means unset (a CI script's THREADS=$N with N
  // undefined must not wipe a file's pinned thread count).
  const char* threads_env = std::getenv("UCR_THREADS");
  if (args.get("threads") ||
      (threads_env != nullptr && *threads_env != '\0')) {
    file.threads = ucr::thread_count_option(args, "UCR_THREADS");
  }
  if (const auto format = args.get("format")) {
    if (*format == "table") {
      file.format = ucr::exp::OutputFormat::kTable;
    } else if (*format == "csv") {
      file.format = ucr::exp::OutputFormat::kCsv;
    } else if (*format == "jsonl") {
      file.format = ucr::exp::OutputFormat::kJsonl;
    } else {
      return usage("unknown --format (table, csv or jsonl)");
    }
  } else if (args.get_bool("csv", false)) {
    file.format = ucr::exp::OutputFormat::kCsv;
  }

  // The merged description is now final; --dump-spec prints its canonical
  // text (re-loadable with --spec) instead of running it.
  if (args.get_bool("dump-spec", false)) {
    std::cout << ucr::exp::to_text(file);
    return 0;
  }
  if (args.get_bool("hash-spec", false)) {
    std::cout << ucr::exp::spec_hash(spec) << "\n";
    return 0;
  }

  if (spec.protocol_names.empty() && spec.protocols.empty()) {
    return usage("--protocol, --protocols or a --spec file naming "
                 "protocols is required (try --list)");
  }

  const auto plan = ucr::exp::compile(spec, protocols);

  // --list-cells: the flattened grid this plan would run (this shard's
  // cells, full-grid indices), straight from the compiled plan — the
  // address book for cache records and daemon job progress.
  if (args.get_bool("list-cells", false)) {
    std::cout << "spec_hash = " << plan.spec_hash << "\n";
    std::cout << plan.cells.size() << " cells";
    if (!plan.shard.is_whole()) {
      std::cout << " (shard " << plan.shard.label() << " of "
                << plan.total_cells << " total)";
    }
    std::cout << ":\n\n";
    ucr::Table table(
        {"cell", "protocol", "k", "arrivals", "channel", "engine"});
    for (const auto& cell : plan.cells) {
      table.add_row({std::to_string(cell.index), cell.protocol,
                     std::to_string(cell.k), cell.arrival.label(),
                     cell.channel.label(),
                     ucr::exp::engine_mode_name(cell.engine)});
    }
    table.print(std::cout);
    return 0;
  }

  ucr::exp::RunOptions run_options;
  run_options.threads = file.threads;
  std::unique_ptr<ucr::svc::ResultCache> cache;
  if (const auto cache_dir = args.get("cache")) {
    cache = std::make_unique<ucr::svc::ResultCache>(*cache_dir);
    run_options.cache = cache.get();
  }
  std::optional<AbortSink> abort_sink = make_abort_sink(args);

  // Streaming formats go straight to the sink — constant memory, rows
  // appear as the grid prefix completes.
  if (file.format != ucr::exp::OutputFormat::kTable) {
    ucr::exp::CsvStreamSink csv(std::cout);
    ucr::exp::JsonlSink jsonl(std::cout);
    ucr::exp::ResultSink* sink =
        file.format == ucr::exp::OutputFormat::kCsv
            ? static_cast<ucr::exp::ResultSink*>(&csv)
            : &jsonl;
    std::uint64_t incomplete = 0;
    class CountingSink final : public ucr::exp::ResultSink {
     public:
      explicit CountingSink(std::uint64_t& total) : total_(&total) {}
      void emit(const ucr::exp::CellInfo&,
                const ucr::AggregateResult& result) override {
        *total_ += result.incomplete_runs;
      }

     private:
      std::uint64_t* total_;
    } counting(incomplete);
    std::vector<ucr::exp::ResultSink*> sinks;
    if (abort_sink.has_value()) sinks.push_back(&*abort_sink);
    sinks.push_back(sink);
    sinks.push_back(&counting);
    ucr::exp::run(plan, sinks, run_options);
    return incomplete == 0 ? 0 : 1;
  }

  ucr::exp::MemorySink memory;
  std::vector<ucr::exp::ResultSink*> sinks;
  if (abort_sink.has_value()) sinks.push_back(&*abort_sink);
  sinks.push_back(&memory);
  ucr::exp::run(plan, sinks, run_options);
  const auto& results = memory.results();
  const auto& cells = memory.cells();

  std::uint64_t incomplete = 0;
  for (const auto& result : results) incomplete += result.incomplete_runs;

  if (results.size() == 1) {
    // Single cell: the familiar one-experiment report.
    const auto& result = results.front();
    const auto& cell = cells.front();
    std::cout << result.protocol << " on k = " << result.k << " ("
              << spec.runs << " runs, seed " << spec.seed << ", "
              << ucr::exp::engine_mode_name(cell.engine) << " engine, "
              << cell.arrival.label() << " arrivals, "
              << cell.channel.label() << " channel";
    if (!plan.shard.is_whole()) std::cout << ", shard " << plan.shard.label();
    std::cout << ")\n\n";
    ucr::Table table({"metric", "value"});
    table.add_row(
        {"mean makespan", ucr::format_double(result.makespan.mean, 1)});
    table.add_row({"95% CI halfwidth",
                   ucr::format_double(result.makespan.ci95_halfwidth, 1)});
    table.add_row({"min / max",
                   ucr::format_double(result.makespan.min, 0) + " / " +
                       ucr::format_double(result.makespan.max, 0)});
    table.add_row(
        {"mean ratio steps/k", ucr::format_double(result.ratio.mean, 3)});
    table.add_row({"incomplete runs", std::to_string(result.incomplete_runs)});
    table.print(std::cout);
    return incomplete == 0 ? 0 : 1;
  }

  // Grid: one row per cell, in grid order.
  std::cout << "Sweep of " << plan.total_cells << " cells";
  if (!plan.shard.is_whole()) {
    std::cout << " (this shard " << plan.shard.label() << ": "
              << results.size() << " cells)";
  }
  std::cout << ", " << spec.runs << " runs per cell, seed " << spec.seed
            << "\n\n";
  ucr::Table table({"protocol", "k", "arrivals", "channel", "engine",
                    "mean makespan", "ci95", "ratio", "incomplete"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    table.add_row({result.protocol, std::to_string(result.k),
                   cells[i].arrival.label(), cells[i].channel.label(),
                   ucr::exp::engine_mode_name(cells[i].engine),
                   ucr::format_double(result.makespan.mean, 1),
                   ucr::format_double(result.makespan.ci95_halfwidth, 1),
                   ucr::format_double(result.ratio.mean, 3),
                   std::to_string(result.incomplete_runs)});
  }
  table.print(std::cout);
  return incomplete == 0 ? 0 : 1;
}

}  // namespace

int run_cli(int argc, char** argv) {
  const ucr::CliArgs args(argc, argv,
                          {"spec", "dump-spec", "hash-spec", "protocol",
                           "protocols", "k",
                           "ks", "kmax", "runs", "seed", "engine", "arrivals",
                           "lambda", "bursts", "gap", "channel", "max-slots",
                           "shard", "threads", "csv", "format", "list",
                           "list-cells", "cache", "abort-after-cells",
                           "serve", "socket", "submit", "wait", "status",
                           "cancel", "shutdown", "json"});
  if (args.get_bool("list", false)) return list_protocols();
  if (args.get_bool("serve", false) || args.get("submit") ||
      args.get("status") || args.get("cancel") ||
      args.get_bool("shutdown", false)) {
    return run_client(args);
  }
  return run_spec(args);
}

int main(int argc, char** argv) {
  try {
    return run_cli(argc, argv);
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

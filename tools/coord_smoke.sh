#!/usr/bin/env bash
# Coordinator round trip, end to end over real processes:
#   1. run the sweep directly with `ucr_cli --spec` (the reference bytes),
#   2. run the same sweep through ucr_coordd over a 3-worker fleet whose
#      third worker is rigged to die mid-shard (UCR_ABORT_MODE=kill via a
#      generic `exec:` launcher), and assert the assembled archive is
#      byte-identical to the direct run and that at least one attempt was
#      retried,
#   3. park a coordinator on a never-progressing worker and drive the
#      control socket with ucr_coordctl (--ping, --status --json).
# Usage: coord_smoke.sh <ucr_coordd> <ucr_coordctl> <ucr_cli>
set -euo pipefail

coordd=$1
coordctl=$2
cli=$3

work=$(mktemp -d)
coordd_pid=""
cleanup() {
  if [ -n "$coordd_pid" ] && kill -0 "$coordd_pid" 2>/dev/null; then
    kill "$coordd_pid" 2>/dev/null || true
    wait "$coordd_pid" 2>/dev/null || true
  fi
  pkill -f "$work/stall.sh" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# The sweep under test: the paper protocol set on a small grid, JSONL so
# shard concatenation is exercised against real streaming output. 15
# cells over 3 shards = 5 cells per shard, so the rigged worker (which
# dies when the 2nd cell is emitted) always dies mid-shard.
"$cli" --protocols=paper --ks=40,80,160 --runs=4 --seed=7 \
  --format=jsonl --threads=1 --dump-spec >"$work/base.spec"

"$cli" --spec="$work/base.spec" >"$work/direct.jsonl"

cat >"$work/fleet.workers" <<EOF
# two healthy local workers and one that dies mid-shard
local name=good-1
local name=good-2
exec name=killer: env UCR_ABORT_AFTER_CELLS=1 UCR_ABORT_MODE=kill
EOF

"$coordd" --spec="$work/base.spec" --workers="$work/fleet.workers" \
  --cli="$cli" --work-dir="$work/coord" --shards=3 \
  --output="$work/coord.jsonl" 2>"$work/coordd.log"

cat "$work/coordd.log"
if grep -q "(0 retried)" "$work/coordd.log"; then
  echo "rigged worker never died — the retry path was not exercised"
  exit 1
fi
cmp "$work/coord.jsonl" "$work/direct.jsonl" || {
  echo "coordinator archive differs from direct ucr_cli --spec run"
  exit 1
}
[ -s "$work/coord.jsonl" ] || { echo "no rows assembled"; exit 1; }

# Control plane: a one-worker fleet that never writes output keeps the
# run parked (heartbeat far above the test timeout), so the socket can be
# driven deterministically while the shard is "running".
cat >"$work/stall.sh" <<'EOF'
#!/bin/sh
sleep 600
EOF
chmod +x "$work/stall.sh"
printf 'exec name=stall: %s\n' "$work/stall.sh" >"$work/stall.workers"

sock="$work/coord.sock"
"$coordd" --spec="$work/base.spec" --workers="$work/stall.workers" \
  --cli="$cli" --work-dir="$work/coord2" --shards=1 --heartbeat=600 \
  --socket="$sock" --output="$work/unused.jsonl" \
  2>"$work/coordd2.log" &
coordd_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "control socket never came up"; cat "$work/coordd2.log"; exit 1; }

"$coordctl" --socket="$sock" --ping
"$coordctl" --socket="$sock" --status
# The socket opens just before the scheduling loop starts, so poll until
# the stalled worker has actually been handed its shard.
for _ in $(seq 1 100); do
  "$coordctl" --socket="$sock" --status --json >"$work/status.json"
  if grep -q '"busy":1' "$work/status.json"; then break; fi
  sleep 0.1
done
cat "$work/status.json"
grep -q '"state":"running"' "$work/status.json" || {
  echo "status --json did not report a running coordinator"; exit 1
}
grep -q '"workers":\[{"name":"stall","capacity":1,"busy":1' \
  "$work/status.json" || {
  echo "status --json did not report the stalled worker as busy"; exit 1
}

kill "$coordd_pid"
wait "$coordd_pid" 2>/dev/null || true
coordd_pid=""
echo "coord smoke OK"

// ucr_coordd — the distributed sweep coordinator (docs/ORCHESTRATOR.md).
// Takes one spec file, partitions it into --shard=i/N work units, fans
// them out over a worker fleet (a workers file of `local` / `exec:`
// lines), health-checks workers by output progress, retries failed or
// timed-out shards on other workers, and writes the concatenated —
// validated, byte-identical-to-unsharded — archive to stdout or --output.
// With --socket, a control socket answers ping/status while the run is
// in flight (ucr_coordctl is the client).
//
// Examples:
//   ucr_coordd --spec=specs/fig1.spec --local=4 --format=jsonl
//              --work-dir=/tmp/coord > fig1.jsonl
//   ucr_coordd --spec=specs/fig1.spec --workers=fleet.workers
//              --cli=./build/tools/ucr_cli --work-dir=/tmp/coord
//              --socket=/tmp/coord.sock --output=fig1.jsonl
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "coord/control.hpp"
#include "coord/coordinator.hpp"
#include "coord/workers.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_coordd --spec=FILE (--workers=FILE | --local=N)\n"
         "                  --work-dir=DIR [options]\n\n"
         "  --spec=FILE      base spec to sweep (must be unsharded; the\n"
         "                   coordinator owns the shard axis)\n"
         "  --workers=FILE   worker fleet, one worker per line:\n"
         "                     local [capacity=N] [name=STR]\n"
         "                     exec [capacity=N] [name=STR]: argv prefix\n"
         "                   ('exec: ssh node7 wrapper.sh' prepends its\n"
         "                   argv to the ucr_cli invocation)\n"
         "  --local=N        shortcut: a fleet of N local workers\n"
         "  --work-dir=DIR   scratch root for shard overlays, per-attempt\n"
         "                   outputs, worker logs and caches (created;\n"
         "                   never deleted)\n"
         "  --shards=N       work units (default: fleet capacity, clamped\n"
         "                   to the grid size)\n"
         "  --cli=PATH       ucr_cli binary workers run (default:\n"
         "                   'ucr_cli' through PATH)\n"
         "  --output=FILE    assembled archive destination (default:\n"
         "                   stdout)\n"
         "  --format=csv|jsonl  output format override (required when\n"
         "                   the spec says table)\n"
         "  --threads=N      worker threads per shard invocation\n"
         "  --max-attempts=N attempts per shard before the run fails\n"
         "                   loudly (default 3)\n"
         "  --heartbeat=SEC  kill + retry a worker whose output has not\n"
         "                   grown for SEC seconds (default 60)\n"
         "  --no-worker-cache  skip the per-worker result caches\n"
         "  --socket=PATH    serve the ping/status control protocol on\n"
         "                   this AF_UNIX socket while running\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ucr::CliArgs args(
        argc, argv,
        {"spec", "workers", "local", "work-dir", "shards", "cli", "output",
         "format", "threads", "max-attempts", "heartbeat",
         "no-worker-cache", "socket"});

    ucr::coord::CoordinatorOptions options;
    const auto spec = args.get("spec");
    if (!spec.has_value()) return usage("--spec=FILE is required");
    options.spec_path = *spec;

    const auto workers_file = args.get("workers");
    const auto local = args.get("local");
    if (workers_file.has_value() == local.has_value()) {
      return usage("exactly one of --workers=FILE or --local=N selects "
                   "the fleet");
    }
    if (workers_file.has_value()) {
      options.workers = ucr::coord::load_workers_file(*workers_file);
    } else {
      const std::uint64_t count =
          ucr::parse_u64_strict(*local, "--local");
      UCR_REQUIRE(count >= 1, "--local needs at least one worker");
      std::string text;
      for (std::uint64_t i = 0; i < count; ++i) text += "local\n";
      options.workers = ucr::coord::parse_workers(text);
    }

    const auto work_dir = args.get("work-dir");
    if (!work_dir.has_value()) return usage("--work-dir=DIR is required");
    options.work_dir = *work_dir;

    options.shards = args.get_u64("shards", 0);
    if (const auto cli = args.get("cli")) options.cli = *cli;
    options.max_attempts = static_cast<unsigned>(
        args.get_u64("max-attempts", options.max_attempts));
    options.heartbeat_seconds =
        args.get_double("heartbeat", options.heartbeat_seconds);
    options.worker_cache = !args.get_bool("no-worker-cache", false);
    if (const auto format = args.get("format")) {
      if (*format == "csv") {
        options.format = ucr::exp::OutputFormat::kCsv;
      } else if (*format == "jsonl") {
        options.format = ucr::exp::OutputFormat::kJsonl;
      } else {
        return usage("unknown --format (csv or jsonl — table output "
                     "cannot be concatenated)");
      }
    }
    options.worker_threads = ucr::thread_count_option(args, "UCR_THREADS");

    ucr::coord::Coordinator coordinator(std::move(options));
    std::cerr << "ucr_coordd: " << coordinator.shards() << " shards, "
              << "spec_hash " << coordinator.spec_hash() << "\n";

    std::optional<ucr::coord::ControlServer> control;
    if (const auto socket = args.get("socket")) {
      control.emplace(*socket, coordinator);
      std::cerr << "ucr_coordd: control socket on " << *socket << "\n";
    }

    std::ofstream file_out;
    std::ostream* out = &std::cout;
    if (const auto output = args.get("output")) {
      file_out.open(*output);
      UCR_REQUIRE(file_out.is_open(),
                  "cannot open output file '" + *output + "'");
      out = &file_out;
    }

    const ucr::coord::CoordReport report = coordinator.run(*out);
    if (control.has_value()) control->stop();
    std::cerr << "ucr_coordd: done: " << report.shards << " shards, "
              << report.attempts << " attempts (" << report.retries
              << " retried), " << report.rows << " rows, spec_hash "
              << report.spec_hash << "\n";
    // Mirror ucr_cli: exit 1 when the archive is complete but some cell
    // had incomplete runs.
    return report.incomplete_runs ? 1 : 0;
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// ucr_coordctl — thin client for the coordinator's control socket
// (coord/control.hpp). The protocol is the same line-oriented JSON over
// AF_UNIX the sweep daemon speaks, so this reuses the svc client helpers
// verbatim; --json prints the coordinator's response byte-for-byte for
// scripts (the field names are pinned by tests and docs/ORCHESTRATOR.md).
//
// Examples:
//   ucr_coordctl --socket=/tmp/coord.sock --ping
//   ucr_coordctl --socket=/tmp/coord.sock --status
//   ucr_coordctl --socket=/tmp/coord.sock --status --json
#include <iostream>
#include <string>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "svc/client.hpp"

namespace {

int usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ucr_coordctl --socket=PATH (--ping | --status) [--json]\n\n"
         "  --socket=PATH  a running ucr_coordd's control socket\n"
         "  --ping         check the coordinator is alive\n"
         "  --status       print run progress (shards done/running/\n"
         "                 pending, attempts, per-worker load)\n"
         "  --json         print the coordinator's JSON response\n"
         "                 verbatim instead of the human summary\n";
  return 2;
}

void print_status(const ucr::json::Value& status) {
  std::cout << "coordinator " << status.at("state").as_string() << ": "
            << status.at("completed").number_token() << "/"
            << status.at("shards").number_token() << " shards done, "
            << status.at("running").number_token() << " running, "
            << status.at("pending").number_token() << " pending, "
            << status.at("attempts").number_token() << " attempts, "
            << "spec_hash " << status.at("spec_hash").as_string() << "\n";
  for (const ucr::json::Value& worker : status.at("workers").items()) {
    std::cout << "  worker " << worker.at("name").as_string() << ": "
              << worker.at("busy").number_token() << "/"
              << worker.at("capacity").number_token() << " busy, "
              << worker.at("failures").number_token() << " failures\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ucr::CliArgs args(argc, argv,
                            {"socket", "ping", "status", "json"});
    const auto socket_path = args.get("socket");
    if (!socket_path.has_value()) return usage("--socket=PATH is required");

    if (args.get_bool("ping", false)) {
      ucr::svc::request(*socket_path, ucr::svc::simple_request("ping"));
      std::cout << "coordinator at " << *socket_path << " is alive\n";
      return 0;
    }
    if (args.get_bool("status", false)) {
      const std::string raw = ucr::svc::request_raw(
          *socket_path, ucr::svc::simple_request("status"));
      if (args.get_bool("json", false)) {
        std::cout << raw << "\n";
      } else {
        print_status(ucr::json::parse(raw));
      }
      return 0;
    }
    return usage("one of --ping or --status is required");
  } catch (const ucr::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

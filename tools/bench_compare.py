#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files and flag regressions.

Used by CI to warn (non-blocking by default) when a benchmark's cpu_time
regresses by more than a threshold against the previous run's artifact:

    bench_compare.py baseline.json current.json [--threshold=0.20] [--strict]

Exit status: 0 unless --strict is given and at least one regression was
found (2 for usage/parse errors). Output is one line per benchmark; on a
GitHub runner regressions are also emitted as ::warning:: annotations so
they surface on the workflow summary without failing the job.

A missing or empty baseline is not an error: the first run of a fresh
cache has nothing to compare against, so the tool prints a one-line
"baseline created" note and exits 0 — the current results become the
baseline for the next run.

When a run was made with --benchmark_repetitions, the aggregate entries
are preferred (median, falling back to mean) and the raw iterations are
ignored; single-run files use the plain iteration entries. Benchmarks
present in only one file are reported but never treated as regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_times(path: str) -> dict[str, float]:
    """Maps benchmark name -> representative cpu_time (ns)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", [])
    iterations: dict[str, float] = {}
    aggregates: dict[str, float] = {}
    preferred = {"median": 0, "mean": 1}
    aggregate_rank: dict[str, int] = {}
    for entry in benchmarks:
        name = entry.get("name", "")
        time = entry.get("cpu_time")
        if time is None:
            continue
        if entry.get("run_type") == "aggregate":
            aggregate = entry.get("aggregate_name", "")
            if aggregate not in preferred:
                continue
            base = entry.get("run_name", name.rsplit("_", 1)[0])
            rank = preferred[aggregate]
            if rank < aggregate_rank.get(base, len(preferred)):
                aggregate_rank[base] = rank
                aggregates[base] = float(time)
        else:
            iterations[name] = float(time)
    return aggregates if aggregates else iterations


def github_warning(message: str) -> None:
    if os.environ.get("GITHUB_ACTIONS") == "true":
        print(f"::warning title=benchmark regression::{message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative cpu_time increase that counts as a regression "
        "(default 0.20 = +20%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when regressions are found (default: warn only)",
    )
    args = parser.parse_args()

    if (not os.path.exists(args.baseline)
            or os.path.getsize(args.baseline) == 0):
        print(f"bench_compare: no baseline at {args.baseline} — "
              "baseline created from this run; nothing to compare yet.")
        return 0

    try:
        baseline = load_times(args.baseline)
        current = load_times(args.current)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: cannot read inputs: {error}", file=sys.stderr)
        return 2

    regressions = []
    for name in sorted(current):
        if name not in baseline:
            print(f"  NEW       {name}")
            continue
        before, after = baseline[name], current[name]
        if before <= 0:
            continue
        delta = after / before - 1.0
        marker = "ok"
        if delta > args.threshold:
            marker = "REGRESSED"
            message = (
                f"{name}: cpu_time {before:.0f}ns -> {after:.0f}ns "
                f"({delta:+.1%}, threshold +{args.threshold:.0%})"
            )
            regressions.append(message)
            github_warning(message)
        elif delta < -args.threshold:
            marker = "improved"
        print(f"  {marker:9s} {name}: {before:.0f}ns -> {after:.0f}ns "
              f"({delta:+.1%})")
    for name in sorted(set(baseline) - set(current)):
        print(f"  REMOVED   {name}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"+{args.threshold:.0%}.")
        return 1 if args.strict else 0
    print("\nNo regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

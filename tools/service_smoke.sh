#!/usr/bin/env bash
# Daemon round trip, end to end over a real socket:
#   1. start ucr_servd with a fresh cache,
#   2. submit the spec twice through the ucr_cli client,
#   3. assert the second job reports 100% cache hits,
#   4. assert both streamed outputs are byte-identical to each other and
#      to a direct `ucr_cli --spec` run of the same file,
#   5. shut the daemon down cleanly over the protocol.
# Usage: service_smoke.sh <ucr_servd> <ucr_cli> <spec-file>
set -euo pipefail

servd=$1
cli=$2
spec=$3

work=$(mktemp -d)
sock="$work/ucr.sock"
servd_pid=""
cleanup() {
  if [ -n "$servd_pid" ] && kill -0 "$servd_pid" 2>/dev/null; then
    kill "$servd_pid" 2>/dev/null || true
    wait "$servd_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

"$servd" --socket="$sock" --cache="$work/cache" 2>"$work/servd.log" &
servd_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "daemon never came up"; cat "$work/servd.log"; exit 1; }

# The shipped shard-example grid contains a deliberately capped livelock
# cell, so the direct run exits 1 (incomplete runs) — capture the rows,
# not the exit code.
"$cli" --spec="$spec" >"$work/direct.jsonl" || true

"$cli" --submit="$spec" --socket="$sock" --wait \
  >"$work/job1.jsonl" 2>"$work/job1.summary"
"$cli" --submit="$spec" --socket="$sock" --wait \
  >"$work/job2.jsonl" 2>"$work/job2.summary"

cat "$work/job1.summary" "$work/job2.summary"

grep -q "(100%)" "$work/job2.summary" || {
  echo "second job was not fully cached"; exit 1
}
cmp "$work/job1.jsonl" "$work/job2.jsonl" || {
  echo "warm job rows differ from cold job rows"; exit 1
}
cmp "$work/job1.jsonl" "$work/direct.jsonl" || {
  echo "daemon rows differ from direct ucr_cli --spec run"; exit 1
}
# Rows actually flowed (guards against vacuous empty-vs-empty passes).
[ -s "$work/job1.jsonl" ] || { echo "no rows streamed"; exit 1; }

"$cli" --shutdown --socket="$sock"
wait "$servd_pid"
servd_pid=""
echo "service smoke OK"

#!/usr/bin/env bash
# The --json machine-readable status contract, end to end over a real
# socket: submit a job to ucr_servd, ask `ucr_cli --status=JOB --json`,
# and assert every documented field name appears in the raw line (the
# coord unit tests pin the coordinator side of the same contract; this
# pins the daemon side). Scripts parse these names, so a rename must
# fail here.
# Usage: status_json_smoke.sh <ucr_servd> <ucr_cli> <spec-file>
set -euo pipefail

servd=$1
cli=$2
spec=$3

work=$(mktemp -d)
sock="$work/ucr.sock"
servd_pid=""
cleanup() {
  if [ -n "$servd_pid" ] && kill -0 "$servd_pid" 2>/dev/null; then
    kill "$servd_pid" 2>/dev/null || true
    wait "$servd_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

"$servd" --socket="$sock" --cache="$work/cache" 2>"$work/servd.log" &
servd_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "daemon never came up"; cat "$work/servd.log"; exit 1; }

job=$("$cli" --submit="$spec" --socket="$sock" 2>/dev/null)
out=$("$cli" --status="$job" --socket="$sock" --json)
echo "$out"

for field in '"ok":' '"job":' '"state":' '"spec_hash":' \
             '"total":' '"completed":' '"cache_hits":'; do
  case "$out" in
    *"$field"*) ;;
    *) echo "missing $field in --json status"; exit 1 ;;
  esac
done

# --json prints the daemon's raw line: exactly one line of JSON, no
# human summary prose mixed in.
[ "$(printf '%s\n' "$out" | wc -l)" -eq 1 ] || {
  echo "--json status was not a single line"; exit 1
}
case "$out" in
  {*}) ;;
  *) echo "--json status is not a JSON object: $out"; exit 1 ;;
esac

"$cli" --shutdown --socket="$sock"
wait "$servd_pid"
servd_pid=""
echo "status json smoke OK"

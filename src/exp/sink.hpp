// Result sinks — the output end of the exp pipeline.
//
// run() pushes every completed cell aggregate to each attached sink in
// grid order (the determinism contract of sim/sweep.hpp carries through:
// rows arrive in the same order, with the same bytes, for any thread count
// and dispatch order). Sinks are streaming by construction: a cell is
// handed over as soon as the grid prefix up to it is complete, so a
// file-backed sink holds O(1) cells however large the grid is.
//
// Shard semantics: sinks with a file-level header (CSV) emit it on shard
// 0 only, so concatenating the outputs of shards 0..N-1 byte-for-byte
// reproduces the unsharded file.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/plan.hpp"
#include "sim/resultio.hpp"

namespace ucr::exp {

/// Consumer of completed cells. begin/emit/end are called from run(): emit
/// once per cell in grid order; begin before any cell; end after the last.
/// Sinks are not required to be thread-safe — run() serializes calls.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void begin(const ExperimentPlan& plan) { (void)plan; }
  virtual void emit(const CellInfo& cell, const AggregateResult& result) = 0;
  virtual void end() {}
};

/// Streaming CSV in the sim/resultio aggregate format (re-readable with
/// read_aggregate_csv): header exactly once, on shard 0 only, then one row
/// per cell, flushed as emitted — constant memory for any grid size. Rows
/// carry the plan's spec_hash, which is shard-invariant, so sharded
/// archives are self-describing and still concatenate byte-identically.
class CsvStreamSink final : public ResultSink {
 public:
  /// Does not take ownership; the stream must outlive the sink.
  /// `flush_each_row` (the default) flushes the stream after every row,
  /// so a streamed consumer — or the archive of a killed run — never
  /// loses a completed cell to buffering; pass false only for throughput
  /// sinks where end() alone flushing is acceptable.
  explicit CsvStreamSink(std::ostream& os, bool flush_each_row = true)
      : os_(&os), flush_each_row_(flush_each_row) {}

  void begin(const ExperimentPlan& plan) override;
  void emit(const CellInfo& cell, const AggregateResult& result) override;
  void end() override;

 private:
  std::ostream* os_;
  bool flush_each_row_;
  std::string spec_hash_;
};

/// One JSON object per line per cell, carrying the cell identity (grid
/// index, arrival label, engine) and the plan's spec_hash alongside the
/// aggregate — the format for heterogeneous grids, where a flat CSV row
/// cannot name the workload. No header, so shard concatenation is
/// trivially byte-identical.
class JsonlSink final : public ResultSink {
 public:
  /// Does not take ownership; the stream must outlive the sink.
  /// `flush_each_row` as in CsvStreamSink: every row reaches the consumer
  /// as soon as it is emitted (the sweep daemon's stream verb and killed
  /// runs both depend on it).
  explicit JsonlSink(std::ostream& os, bool flush_each_row = true)
      : os_(&os), flush_each_row_(flush_each_row) {}

  void begin(const ExperimentPlan& plan) override;
  void emit(const CellInfo& cell, const AggregateResult& result) override;
  void end() override;

 private:
  std::ostream* os_;
  bool flush_each_row_;
  std::string spec_hash_;
};

/// Collects cells in memory, for tests and table-rendering drivers.
class MemorySink final : public ResultSink {
 public:
  void emit(const CellInfo& cell, const AggregateResult& result) override;

  const std::vector<CellInfo>& cells() const { return cells_; }
  const std::vector<AggregateResult>& results() const { return results_; }
  std::vector<AggregateResult> take_results() { return std::move(results_); }

 private:
  std::vector<CellInfo> cells_;
  std::vector<AggregateResult> results_;
};

/// JSON string escaping per RFC 8259 (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace ucr::exp

#include "exp/cell_task.hpp"

#include <utility>

#include "common/check.hpp"

namespace ucr::exp {

std::string CellTask::key() const {
  return spec_hash + "/cell-" + std::to_string(cell.index);
}

CellResult CellTask::execute() const {
  UCR_REQUIRE(point.runs > 0, "cell task needs runs >= 1");
  std::vector<RunMetrics> metrics(point.runs);
  for (std::uint64_t r = 0; r < point.runs; ++r) {
    metrics[r] = run_sweep_point_run(point, r);
  }
  return CellResult{
      cell, aggregate_runs(point.factory.name, point.cell_k(),
                           std::move(metrics))};
}

std::vector<CellTask> enumerate_cell_tasks(const ExperimentPlan& plan) {
  UCR_CHECK(plan.points.size() == plan.cells.size(),
            "plan points and cells out of step");
  std::vector<CellTask> tasks;
  tasks.reserve(plan.points.size());
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    tasks.push_back(CellTask{plan.spec_hash, plan.cells[i], plan.points[i]});
  }
  return tasks;
}

}  // namespace ucr::exp

#include "exp/spec.hpp"

#include <cstdlib>
#include <map>
#include <utility>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

namespace ucr::exp {

namespace {

double parse_double_strict(const std::string& text,
                           const std::string& source) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  UCR_REQUIRE(end != text.c_str() && *end == '\0' && !text.empty(),
              "malformed number '" + text + "' in " + source);
  return value;
}

}  // namespace

ArrivalSpec ArrivalSpec::batch() { return ArrivalSpec{}; }

ArrivalSpec ArrivalSpec::poisson(double lambda) {
  ArrivalSpec spec;
  spec.kind = Kind::kPoisson;
  spec.lambda = lambda;
  return spec;
}

ArrivalSpec ArrivalSpec::burst(std::uint64_t bursts, std::uint64_t gap) {
  ArrivalSpec spec;
  spec.kind = Kind::kBurst;
  spec.bursts = bursts;
  spec.gap = gap;
  return spec;
}

ArrivalSpec ArrivalSpec::schedule(std::vector<std::uint64_t> slots) {
  ArrivalSpec spec;
  spec.kind = Kind::kSchedule;
  spec.schedule_slots = std::move(slots);
  return spec;
}

ArrivalSpec ArrivalSpec::mmpp(double lambda_hi, double lambda_lo,
                              std::uint64_t dwell) {
  ArrivalSpec spec;
  spec.kind = Kind::kMmpp;
  spec.lambda_hi = lambda_hi;
  spec.lambda_lo = lambda_lo;
  spec.dwell = dwell;
  return spec;
}

ArrivalSpec ArrivalSpec::pareto(double alpha, double xm) {
  ArrivalSpec spec;
  spec.kind = Kind::kPareto;
  spec.alpha = alpha;
  spec.xm = xm;
  return spec;
}

std::string ArrivalSpec::label() const {
  switch (kind) {
    case Kind::kBatch:
      return "batch";
    case Kind::kPoisson:
      return "poisson(" + format_double(lambda, 6) + ")";
    case Kind::kBurst:
      return "burst(" + std::to_string(bursts) + "," + std::to_string(gap) +
             ")";
    case Kind::kSchedule: {
      std::string out = "schedule(";
      for (std::size_t i = 0; i < schedule_slots.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(schedule_slots[i]);
      }
      return out + ")";
    }
    case Kind::kMmpp:
      return "mmpp(" + format_double(lambda_hi, 6) + "," +
             format_double(lambda_lo, 6) + "," + std::to_string(dwell) + ")";
    case Kind::kPareto:
      return "pareto(" + format_double(alpha, 6) + "," +
             format_double(xm, 6) + ")";
  }
  UCR_CHECK(false, "unreachable arrival kind");
  return {};
}

const std::vector<std::string>& ArrivalSpec::kind_names() {
  static const std::vector<std::string> names{
      "batch", "poisson", "burst", "schedule", "mmpp", "pareto",
  };
  return names;
}

ArrivalSpec ArrivalSpec::parse(const std::string& text) {
  const std::string value = trim(text);
  if (value == "batch") return batch();

  // "<kind>(<args>)" — split the head off the parenthesized argument list.
  const std::size_t open = value.find('(');
  const std::string head = trim(value.substr(0, open));
  static const std::map<std::string, std::string> grammar{
      {"poisson", "poisson(<lambda>)"},
      {"burst", "burst(<bursts>,<gap>)"},
      {"schedule", "schedule(<slot>,<slot>,...)"},
      {"mmpp", "mmpp(<lambda_hi>,<lambda_lo>,<dwell>)"},
      {"pareto", "pareto(<alpha>,<xm>)"},
  };
  const auto shape = grammar.find(head);
  if (shape != grammar.end()) {
    UCR_REQUIRE(open != std::string::npos && value.back() == ')',
                "malformed arrival '" + value + "' (expected " +
                    shape->second + ")");
    const std::string source = "arrival '" + value + "'";
    std::vector<std::string> args;
    std::string arg_text = value.substr(open + 1, value.size() - open - 2);
    std::size_t start = 0;
    while (start <= arg_text.size()) {
      const std::size_t comma = arg_text.find(',', start);
      const std::size_t end =
          comma == std::string::npos ? arg_text.size() : comma;
      args.push_back(trim(arg_text.substr(start, end - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    const auto want = [&](std::size_t n) {
      UCR_REQUIRE(args.size() == n, "malformed arrival '" + value +
                                        "' (expected " + shape->second + ")");
    };
    ArrivalSpec spec;
    if (head == "poisson") {
      want(1);
      spec = poisson(parse_double_strict(args[0], source));
    } else if (head == "burst") {
      want(2);
      spec = burst(parse_u64_strict(args[0], source),
                   parse_u64_strict(args[1], source));
    } else if (head == "schedule") {
      std::vector<std::uint64_t> slots;
      slots.reserve(args.size());
      for (const std::string& arg : args) {
        slots.push_back(parse_u64_strict(arg, source));
      }
      spec = schedule(std::move(slots));
    } else if (head == "mmpp") {
      want(3);
      spec = mmpp(parse_double_strict(args[0], source),
                  parse_double_strict(args[1], source),
                  parse_u64_strict(args[2], source));
    } else {
      want(2);
      spec = pareto(parse_double_strict(args[0], source),
                    parse_double_strict(args[1], source));
    }
    spec.validate();
    return spec;
  }
  throw ContractViolation(
      "unknown arrival kind '" + head + "' — did you mean '" +
      closest_name(kind_names(), head) +
      "'? (batch, poisson(<lambda>), burst(<bursts>,<gap>), "
      "schedule(<slot>,...), mmpp(<lambda_hi>,<lambda_lo>,<dwell>) or "
      "pareto(<alpha>,<xm>))");
}

ArrivalPattern ArrivalSpec::materialize(std::uint64_t k, std::uint64_t seed,
                                        std::uint64_t stream_id) const {
  validate();
  switch (kind) {
    case Kind::kBatch:
      return batched_arrivals(k);
    case Kind::kPoisson: {
      Xoshiro256 rng = Xoshiro256::stream(seed, stream_id);
      return poisson_arrivals(k, lambda, rng);
    }
    case Kind::kBurst: {
      // Distribute k over the bursts; the first k % bursts bursts carry
      // the remainder so exactly k messages arrive for any k.
      const std::uint64_t base = k / bursts;
      const std::uint64_t extra = k % bursts;
      if (extra == 0) {
        return burst_arrivals(bursts, base, gap);
      }
      ArrivalPattern pattern;
      pattern.reserve(k);
      std::uint64_t slot = 0;
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const std::uint64_t size = base + (b < extra ? 1 : 0);
        for (std::uint64_t i = 0; i < size; ++i) pattern.push_back(slot);
        slot += gap;
      }
      return pattern;
    }
    case Kind::kSchedule:
      return schedule_arrivals(schedule_slots, k);
    case Kind::kMmpp: {
      Xoshiro256 rng = Xoshiro256::stream(seed, stream_id);
      return mmpp_arrivals(k, lambda_hi, lambda_lo, dwell, rng);
    }
    case Kind::kPareto: {
      Xoshiro256 rng = Xoshiro256::stream(seed, stream_id);
      return pareto_arrivals(k, alpha, xm, rng);
    }
  }
  UCR_CHECK(false, "unreachable arrival kind");
  return {};
}

void ArrivalSpec::validate() const {
  if (kind == Kind::kPoisson) {
    UCR_REQUIRE(lambda > 0.0, "poisson arrival rate must be positive");
  }
  if (kind == Kind::kBurst) {
    UCR_REQUIRE(bursts > 0, "burst arrival spec needs at least one burst");
  }
  if (kind == Kind::kSchedule) {
    UCR_REQUIRE(!schedule_slots.empty(),
                "schedule arrival spec needs at least one slot");
    for (std::size_t i = 1; i < schedule_slots.size(); ++i) {
      UCR_REQUIRE(schedule_slots[i] >= schedule_slots[i - 1],
                  "schedule arrival slots must be non-decreasing (slot " +
                      std::to_string(schedule_slots[i]) + " at position " +
                      std::to_string(i) + " follows " +
                      std::to_string(schedule_slots[i - 1]) + ")");
    }
  }
  if (kind == Kind::kMmpp) {
    UCR_REQUIRE(lambda_hi > 0.0, "mmpp burst-state rate must be positive");
    UCR_REQUIRE(lambda_lo >= 0.0,
                "mmpp quiet-state rate must be non-negative");
    UCR_REQUIRE(dwell >= 1, "mmpp mean dwell must be at least one slot");
  }
  if (kind == Kind::kPareto) {
    UCR_REQUIRE(alpha > 0.0, "pareto shape alpha must be positive");
    UCR_REQUIRE(xm > 0.0, "pareto scale xm must be positive");
  }
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const auto slash = text.find('/');
  UCR_REQUIRE(slash != std::string::npos,
              "malformed shard '" + text + "' (expected i/N, e.g. 0/4)");
  const std::string source = "shard '" + text + "' (expected i/N)";
  ShardSpec shard;
  shard.index = parse_u64_strict(text.substr(0, slash), source);
  shard.count = parse_u64_strict(text.substr(slash + 1), source);
  shard.validate();
  return shard;
}

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

void ShardSpec::validate() const {
  UCR_REQUIRE(count >= 1, "shard count must be >= 1");
  UCR_REQUIRE(index < count, "shard index " + std::to_string(index) +
                                 " out of range for " +
                                 std::to_string(count) + " shards");
}

const char* engine_mode_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kFair:
      return "fair";
    case EngineMode::kBatched:
      return "batched";
    case EngineMode::kNode:
      return "node";
    case EngineMode::kNodeBatched:
      return "node_batched";
  }
  UCR_CHECK(false, "unreachable engine mode");
  return "";
}

ExperimentSpec& ExperimentSpec::with_protocol(std::string name) {
  protocol_names.push_back(std::move(name));
  return *this;
}

ExperimentSpec& ExperimentSpec::with_factory(ProtocolFactory factory) {
  protocols.push_back(std::move(factory));
  return *this;
}

ExperimentSpec& ExperimentSpec::with_ks(std::vector<std::uint64_t> grid) {
  ks = std::move(grid);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_paper_ks(std::uint64_t max) {
  ks.clear();
  k_max = max;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_arrival(ArrivalSpec arrival) {
  arrivals.push_back(arrival);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_channel(ChannelModel channel) {
  channels.push_back(channel);
  return *this;
}

std::vector<std::string> ExperimentSpec::all_protocol_names() const {
  std::vector<std::string> names = protocol_names;
  names.reserve(names.size() + protocols.size());
  for (const ProtocolFactory& factory : protocols) {
    names.push_back(factory.name);
  }
  return names;
}

bool ExperimentSpec::operator==(const ExperimentSpec& other) const {
  if (protocol_names != other.protocol_names) return false;
  if (protocols.size() != other.protocols.size()) return false;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    if (protocols[i].name != other.protocols[i].name) return false;
  }
  return ks == other.ks && k_max == other.k_max &&
         arrivals == other.arrivals && channels == other.channels &&
         runs == other.runs && seed == other.seed && engine == other.engine &&
         engine_options == other.engine_options && shard == other.shard;
}

}  // namespace ucr::exp

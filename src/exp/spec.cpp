#include "exp/spec.hpp"

#include <cstdlib>
#include <utility>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

namespace ucr::exp {

namespace {

double parse_double_strict(const std::string& text,
                           const std::string& source) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  UCR_REQUIRE(end != text.c_str() && *end == '\0' && !text.empty(),
              "malformed number '" + text + "' in " + source);
  return value;
}

}  // namespace

ArrivalSpec ArrivalSpec::batch() { return ArrivalSpec{}; }

ArrivalSpec ArrivalSpec::poisson(double lambda) {
  ArrivalSpec spec;
  spec.kind = Kind::kPoisson;
  spec.lambda = lambda;
  return spec;
}

ArrivalSpec ArrivalSpec::burst(std::uint64_t bursts, std::uint64_t gap) {
  ArrivalSpec spec;
  spec.kind = Kind::kBurst;
  spec.bursts = bursts;
  spec.gap = gap;
  return spec;
}

std::string ArrivalSpec::label() const {
  switch (kind) {
    case Kind::kBatch:
      return "batch";
    case Kind::kPoisson:
      return "poisson(" + format_double(lambda, 6) + ")";
    case Kind::kBurst:
      return "burst(" + std::to_string(bursts) + "," + std::to_string(gap) +
             ")";
  }
  UCR_CHECK(false, "unreachable arrival kind");
  return {};
}

ArrivalSpec ArrivalSpec::parse(const std::string& text) {
  const std::string value = trim(text);
  if (value == "batch") return batch();

  // "<kind>(<args>)" — split the head off the parenthesized argument list.
  const std::size_t open = value.find('(');
  const std::string head = trim(value.substr(0, open));
  if (head == "poisson" || head == "burst") {
    UCR_REQUIRE(open != std::string::npos && value.back() == ')',
                "malformed arrival '" + value + "' (expected " + head +
                    (head == "poisson" ? "(<lambda>))" : "(<bursts>,<gap>))"));
    const std::string args =
        value.substr(open + 1, value.size() - open - 2);
    ArrivalSpec spec;
    if (head == "poisson") {
      spec = poisson(
          parse_double_strict(trim(args), "arrival '" + value + "'"));
    } else {
      const std::size_t comma = args.find(',');
      UCR_REQUIRE(comma != std::string::npos,
                  "malformed arrival '" + value +
                      "' (expected burst(<bursts>,<gap>))");
      const std::string source = "arrival '" + value + "'";
      spec = burst(parse_u64_strict(trim(args.substr(0, comma)), source),
                   parse_u64_strict(trim(args.substr(comma + 1)), source));
    }
    spec.validate();
    return spec;
  }
  throw ContractViolation(
      "unknown arrival kind '" + head + "' — did you mean '" +
      closest_name({"batch", "poisson", "burst"}, head) +
      "'? (batch, poisson(<lambda>) or burst(<bursts>,<gap>))");
}

ArrivalPattern ArrivalSpec::materialize(std::uint64_t k, std::uint64_t seed,
                                        std::uint64_t stream_id) const {
  validate();
  switch (kind) {
    case Kind::kBatch:
      return batched_arrivals(k);
    case Kind::kPoisson: {
      Xoshiro256 rng = Xoshiro256::stream(seed, stream_id);
      return poisson_arrivals(k, lambda, rng);
    }
    case Kind::kBurst: {
      // Distribute k over the bursts; the first k % bursts bursts carry
      // the remainder so exactly k messages arrive for any k.
      const std::uint64_t base = k / bursts;
      const std::uint64_t extra = k % bursts;
      if (extra == 0) {
        return burst_arrivals(bursts, base, gap);
      }
      ArrivalPattern pattern;
      pattern.reserve(k);
      std::uint64_t slot = 0;
      for (std::uint64_t b = 0; b < bursts; ++b) {
        const std::uint64_t size = base + (b < extra ? 1 : 0);
        for (std::uint64_t i = 0; i < size; ++i) pattern.push_back(slot);
        slot += gap;
      }
      return pattern;
    }
  }
  UCR_CHECK(false, "unreachable arrival kind");
  return {};
}

void ArrivalSpec::validate() const {
  if (kind == Kind::kPoisson) {
    UCR_REQUIRE(lambda > 0.0, "poisson arrival rate must be positive");
  }
  if (kind == Kind::kBurst) {
    UCR_REQUIRE(bursts > 0, "burst arrival spec needs at least one burst");
  }
}

ShardSpec ShardSpec::parse(const std::string& text) {
  const auto slash = text.find('/');
  UCR_REQUIRE(slash != std::string::npos,
              "malformed shard '" + text + "' (expected i/N, e.g. 0/4)");
  const std::string source = "shard '" + text + "' (expected i/N)";
  ShardSpec shard;
  shard.index = parse_u64_strict(text.substr(0, slash), source);
  shard.count = parse_u64_strict(text.substr(slash + 1), source);
  shard.validate();
  return shard;
}

std::string ShardSpec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

void ShardSpec::validate() const {
  UCR_REQUIRE(count >= 1, "shard count must be >= 1");
  UCR_REQUIRE(index < count, "shard index " + std::to_string(index) +
                                 " out of range for " +
                                 std::to_string(count) + " shards");
}

const char* engine_mode_name(EngineMode mode) {
  switch (mode) {
    case EngineMode::kFair:
      return "fair";
    case EngineMode::kBatched:
      return "batched";
    case EngineMode::kNode:
      return "node";
    case EngineMode::kNodeBatched:
      return "node_batched";
  }
  UCR_CHECK(false, "unreachable engine mode");
  return "";
}

ExperimentSpec& ExperimentSpec::with_protocol(std::string name) {
  protocol_names.push_back(std::move(name));
  return *this;
}

ExperimentSpec& ExperimentSpec::with_factory(ProtocolFactory factory) {
  protocols.push_back(std::move(factory));
  return *this;
}

ExperimentSpec& ExperimentSpec::with_ks(std::vector<std::uint64_t> grid) {
  ks = std::move(grid);
  return *this;
}

ExperimentSpec& ExperimentSpec::with_paper_ks(std::uint64_t max) {
  ks.clear();
  k_max = max;
  return *this;
}

ExperimentSpec& ExperimentSpec::with_arrival(ArrivalSpec arrival) {
  arrivals.push_back(arrival);
  return *this;
}

std::vector<std::string> ExperimentSpec::all_protocol_names() const {
  std::vector<std::string> names = protocol_names;
  names.reserve(names.size() + protocols.size());
  for (const ProtocolFactory& factory : protocols) {
    names.push_back(factory.name);
  }
  return names;
}

bool ExperimentSpec::operator==(const ExperimentSpec& other) const {
  if (protocol_names != other.protocol_names) return false;
  if (protocols.size() != other.protocols.size()) return false;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    if (protocols[i].name != other.protocols[i].name) return false;
  }
  return ks == other.ks && k_max == other.k_max &&
         arrivals == other.arrivals && runs == other.runs &&
         seed == other.seed && engine == other.engine &&
         engine_options == other.engine_options && shard == other.shard;
}

}  // namespace ucr::exp

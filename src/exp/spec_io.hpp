// Textual spec format — the canonical, versionable experiment API.
//
// A sweep is a text file: a line-oriented `key = value` description that
// parses into the same ExperimentSpec every driver already runs
// (spec -> compile() -> plan -> run() -> sinks), so an experiment can be
// committed next to its archive, diffed, handed to a remote shard driver,
// and replayed bit for bit. The repository ships the paper's canonical
// sweeps under specs/ (see specs/README.md); `ucr_cli --spec=FILE` and the
// bench harnesses (UCR_SPEC) consume them directly.
//
// Format, by example (canonical key order; '#' starts a comment):
//
//   spec_version = 1
//   protocols = One-Fail Adaptive, Exp Back-on/Back-off
//   ks = 10, 100, 1000          # or: kmax = 1000000 (powers of ten)
//   arrival = batch             # repeatable: one line per grid cell
//   arrival = poisson(0.1)
//   arrival = burst(4,64)
//   runs = 10
//   seed = 2011
//   engine = fair               # fair | batched | node | node_batched
//   max_slots = 0               # 0 = engine default cap
//   record_deliveries = false
//   record_latencies = false
//   collision_detection = false
//   shard = 0/1                 # i/N block of the flattened grid
//   threads = 0                 # 0 = all hardware threads
//   format = table              # table | csv | jsonl
//
// Every key except spec_version is optional; omitted keys keep the
// ExperimentSpec defaults shown above. Unknown keys, duplicate scalar
// keys, unsupported versions and malformed values all throw
// ContractViolation naming the offending line, with a did-you-mean hint
// (the find_protocol machinery) for misspelled keys and enum values.
//
// Overlays: a spec may instead start from another spec and state only a
// delta —
//
//   spec_version = 1
//   include = fig1.spec          # adopt the base spec wholesale...
//   shard = 2/8                  # ...then override individual keys
//
// resolved at parse time, so the overlay has the same canonical text and
// spec_hash as the flattened spec (see parse_spec(text, loader) below;
// shipped examples live in specs/overlays/).
//
// Round trip: to_text() emits the canonical form (every key, canonical
// order, shortest-round-trip numbers), and `parse_spec(to_text(s)) == s`
// for every spec a file can express — explicit ProtocolFactory entries
// serialize by catalogue name (they parse back as protocol_names), and
// the EngineOptions observer hook plus the derived `batched` flag are
// runtime-only state that is never written. tests/exp/spec_io_test.cpp
// pins the round trip for randomized specs and every shipped specs/*.spec.
#pragma once

#include <functional>
#include <string>

#include "exp/spec.hpp"

namespace ucr::exp {

/// Output rendering selected by a spec file or --format.
enum class OutputFormat { kTable, kCsv, kJsonl };

const char* output_format_name(OutputFormat format);

/// One parsed spec file: the experiment description plus the execution
/// (worker threads) and output (format) knobs a runbook wants pinned in
/// the same document.
struct SpecFile {
  ExperimentSpec spec;
  /// Sweep worker threads; 0 means all hardware threads.
  unsigned threads = 0;
  OutputFormat format = OutputFormat::kTable;

  bool operator==(const SpecFile&) const = default;
};

/// Parses the `key = value` format above. Throws ContractViolation on any
/// malformed input, naming the line: unknown key (with did-you-mean),
/// duplicate scalar key, missing/unsupported spec_version, ks + kmax
/// together, malformed numbers/engine/arrival/shard/format. `include`
/// lines are rejected here — includes need a loader (overload below) or a
/// file context (load_spec_file).
SpecFile parse_spec(const std::string& text);

/// Resolves an `include = <name>` line to the text of the named base
/// spec. Called at parse time; throws ContractViolation when the name
/// cannot be resolved (the parser prefixes the offending line).
using SpecLoader = std::function<std::string(const std::string& name)>;

/// parse_spec with spec *overlays* resolved at parse time: an
/// `include = <base>` line (which must precede every key except
/// spec_version, at most once) loads the named base spec through
/// `loader`, adopts its entire description, and treats the remaining
/// lines as deltas — scalar keys override the base's value, and the
/// first `arrival` / `channel` line replaces the base's whole list (an
/// overlay restates an axis, it never appends to one). The base must be
/// flat: a nested `include` inside it fails with a line-numbered error.
/// Because resolution happens at parse time, an overlay parses to the
/// same SpecFile value — hence the same canonical text and the same
/// spec_hash — as the flattened spec it abbreviates; that equality is
/// what lets a per-worker shard file be a one-line diff of the canonical
/// sweep (docs/ORCHESTRATOR.md).
SpecFile parse_spec(const std::string& text, const SpecLoader& loader);

/// Reads `path` and parse_spec()s its contents — the one spec-loading
/// path every front end (ucr_cli --spec, the bench harnesses' UCR_SPEC,
/// engine_micro's BM_SpecSweep) shares. `include` names resolve relative
/// to the directory containing `path` (absolute names stand alone).
/// Throws ContractViolation naming the path when a file cannot be opened.
SpecFile load_spec_file(const std::string& path);

/// Serializes the canonical form: every key, canonical order, numbers in
/// shortest-round-trip notation, one `arrival` line per cell. The
/// canonical text of a parsed file is stable: parse -> to_text -> parse
/// is a fixed point.
std::string to_text(const SpecFile& file);

/// Canonical text of the experiment description alone (a SpecFile with
/// default threads/format) — what spec_hash digests.
std::string to_text(const ExperimentSpec& spec);

/// Stable 64-bit FNV-1a content hash (16 hex digits) of the canonical
/// spec text with the *execution partition normalized out*: shard,
/// threads and output format do not contribute, so every shard of a
/// sweep — and a CSV and a JSONL archive of the same sweep — carries the
/// same hash. This is the provenance stamp CsvStreamSink/JsonlSink attach
/// to every row, which keeps concatenated shard archives self-describing
/// AND byte-identical to the unsharded run.
std::string spec_hash(const ExperimentSpec& spec);

}  // namespace ucr::exp

// run(): ExperimentPlan -> CellTask[] -> ResultSink(s).
//
// The end of the pipeline, as a thin driver over the CellTask unit
// (exp/cell_task.hpp): the plan is lifted into per-cell tasks, tasks
// execute across the worker pool (SweepRunner), and every completed cell
// is pushed to each sink as soon as the grid prefix up to it is done — in
// grid order, with bit-identical content for any thread count and
// dispatch order (the sim/sweep.hpp determinism contract).
//
// Attaching a CellResultStore makes the driver resumable: tasks whose
// (spec_hash, cell_index) key is already in the store replay the cached
// aggregate into the sinks without executing anything, and every freshly
// computed cell is stored *before* it is emitted — so a run killed after
// N cells has banked those N cells, and re-running the same spec against
// the same store streams them back and computes only the rest, with
// output byte-identical to an uninterrupted cold run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/cell_task.hpp"
#include "exp/plan.hpp"
#include "exp/sink.hpp"

namespace ucr::exp {

/// Persistence hook for completed cells, keyed by the task's provenance
/// pair (spec_hash, cell_index). The on-disk implementation is
/// svc::ResultCache (svc/result_cache.hpp); this interface keeps the exp
/// layer free of its storage format. Implementations must be safe to call
/// from worker threads under run()'s emission serialization (calls are
/// never concurrent with each other).
class CellResultStore {
 public:
  virtual ~CellResultStore() = default;

  /// Returns the cached aggregate of (spec_hash, cell_index), or nullopt
  /// when the cell has not been stored. Implementations should throw
  /// (loudly) on corrupt or schema-stale records rather than return
  /// nullopt — silently recomputing would mask archive rot.
  virtual std::optional<AggregateResult> load(const std::string& spec_hash,
                                              std::size_t cell_index) = 0;

  /// Persists a completed cell. Called once per fresh cell, before the
  /// cell is emitted to any sink.
  virtual void store(const CellTask& task,
                     const AggregateResult& result) = 0;
};

struct RunOptions {
  /// Worker threads; 0 means all hardware threads. (Dispatch is always in
  /// grid order — sinks consume the completed grid prefix, so size-aware
  /// reordering would buffer nearly the whole grid before the first row;
  /// see SweepOptions::largest_first.)
  unsigned threads = 0;
  /// When set, cells already present in the store are replayed instead of
  /// executed and fresh cells are stored before emission (see above).
  /// Cached replay carries no per-run details (AggregateResult::details
  /// is empty) and never fires observers, so run() rejects a cache on
  /// observer plans.
  CellResultStore* cache = nullptr;
};

/// Executes the plan, streaming each cell to every sink in grid order.
/// Sinks see begin(plan), then one emit per cell, then end() — end() is
/// only reached when every cell succeeded; an exception from a work item
/// or a sink propagates after the in-flight items drain.
void run(const ExperimentPlan& plan, const std::vector<ResultSink*>& sinks,
         const RunOptions& options = {});

/// Convenience: runs with a MemorySink plus the given extra sinks and
/// returns the aggregates in grid order.
std::vector<AggregateResult> run_collect(
    const ExperimentPlan& plan, const RunOptions& options = {},
    const std::vector<ResultSink*>& extra_sinks = {});

}  // namespace ucr::exp

// run(): ExperimentPlan -> ResultSink(s), on the parallel SweepRunner.
//
// The end of the pipeline. Cells execute across the worker pool and every
// completed cell is pushed to each sink as soon as the grid prefix up to
// it is done — in grid order, with bit-identical content for any thread
// count and dispatch order (the sim/sweep.hpp determinism contract).
#pragma once

#include <vector>

#include "exp/plan.hpp"
#include "exp/sink.hpp"

namespace ucr::exp {

struct RunOptions {
  /// Worker threads; 0 means all hardware threads. (Dispatch is always in
  /// grid order — sinks consume the completed grid prefix, so size-aware
  /// reordering would buffer nearly the whole grid before the first row;
  /// see SweepOptions::largest_first.)
  unsigned threads = 0;
};

/// Executes the plan, streaming each cell to every sink in grid order.
/// Sinks see begin(plan), then one emit per cell, then end() — end() is
/// only reached when every cell succeeded; an exception from a work item
/// or a sink propagates after the in-flight items drain.
void run(const ExperimentPlan& plan, const std::vector<ResultSink*>& sinks,
         const RunOptions& options = {});

/// Convenience: runs with a MemorySink plus the given extra sinks and
/// returns the aggregates in grid order.
std::vector<AggregateResult> run_collect(
    const ExperimentPlan& plan, const RunOptions& options = {},
    const std::vector<ResultSink*>& extra_sinks = {});

}  // namespace ucr::exp

#include "exp/run.hpp"

#include <utility>

#include "common/check.hpp"

namespace ucr::exp {

void run(const ExperimentPlan& plan, const std::vector<ResultSink*>& sinks,
         const RunOptions& options) {
  for (ResultSink* sink : sinks) {
    UCR_REQUIRE(sink != nullptr, "null ResultSink attached to run()");
    sink->begin(plan);
  }
  SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  SweepRunner(sweep_options)
      .run_streaming(plan.points,
                     [&plan, &sinks](std::size_t cell,
                                     AggregateResult&& result) {
                       for (ResultSink* sink : sinks) {
                         sink->emit(plan.cells[cell], result);
                       }
                     });
  for (ResultSink* sink : sinks) {
    sink->end();
  }
}

std::vector<AggregateResult> run_collect(
    const ExperimentPlan& plan, const RunOptions& options,
    const std::vector<ResultSink*>& extra_sinks) {
  MemorySink memory;
  std::vector<ResultSink*> sinks{&memory};
  sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
  run(plan, sinks, options);
  return memory.take_results();
}

}  // namespace ucr::exp

#include "exp/run.hpp"

#include <utility>

#include "common/check.hpp"

namespace ucr::exp {

void run(const ExperimentPlan& plan, const std::vector<ResultSink*>& sinks,
         const RunOptions& options) {
  for (ResultSink* sink : sinks) {
    UCR_REQUIRE(sink != nullptr, "null ResultSink attached to run()");
  }
  std::vector<CellTask> tasks = enumerate_cell_tasks(plan);

  // Probe the store up front: cached cells replay, the rest execute. A
  // replayed cell never runs, so an observer would silently miss its
  // slots — reject the combination loudly (observer plans are single-cell
  // single-run anyway; they have nothing to gain from a cache).
  std::vector<std::optional<AggregateResult>> ready(tasks.size());
  if (options.cache != nullptr) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      UCR_REQUIRE(tasks[i].point.options.observer == nullptr,
                  "a result cache cannot be attached to an observer plan "
                  "(cached replay never materializes slots)");
      ready[i] = options.cache->load(plan.spec_hash, tasks[i].cell.index);
    }
  }
  std::vector<std::size_t> miss;
  std::vector<SweepPoint> miss_points;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!ready[i].has_value()) {
      miss.push_back(i);
      miss_points.push_back(tasks[i].point);
    }
  }

  for (ResultSink* sink : sinks) {
    sink->begin(plan);
  }

  // Grid-order emission cursor, shared by cached replays and fresh
  // completions: a cell is handed to the sinks as soon as every cell
  // before it is ready, cached or computed.
  std::size_t cursor = 0;
  const auto emit_ready = [&] {
    while (cursor < tasks.size() && ready[cursor].has_value()) {
      AggregateResult result = std::move(*ready[cursor]);
      ready[cursor].reset();
      const std::size_t index = cursor++;
      for (ResultSink* sink : sinks) {
        sink->emit(tasks[index].cell, result);
      }
    }
  };

  // A fully (or leading-prefix) cached sweep streams before any work is
  // scheduled.
  emit_ready();

  if (!miss_points.empty()) {
    SweepOptions sweep_options;
    sweep_options.threads = options.threads;
    // run_streaming completes miss cells in sub-grid prefix order, which
    // is grid order restricted to the misses — so when miss j lands,
    // every earlier cell is ready and the cursor can sweep past it. The
    // callback runs under run_streaming's emission mutex, preserving the
    // sinks' serialization contract. Fresh cells are stored before they
    // are emitted: a run killed mid-stream has banked every cell it
    // already wrote (and the one in flight), which is what makes the
    // store a checkpoint.
    SweepRunner(sweep_options)
        .run_streaming(miss_points, [&](std::size_t j,
                                        AggregateResult&& result) {
          const std::size_t index = miss[j];
          if (options.cache != nullptr) {
            options.cache->store(tasks[index], result);
          }
          ready[index] = std::move(result);
          emit_ready();
        });
  }

  // Trailing cached cells (a warm suffix after the last miss).
  emit_ready();
  UCR_CHECK(cursor == tasks.size(), "run() emitted fewer cells than planned");
  for (ResultSink* sink : sinks) {
    sink->end();
  }
}

std::vector<AggregateResult> run_collect(
    const ExperimentPlan& plan, const RunOptions& options,
    const std::vector<ResultSink*>& extra_sinks) {
  MemorySink memory;
  std::vector<ResultSink*> sinks{&memory};
  sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
  run(plan, sinks, options);
  return memory.take_results();
}

}  // namespace ucr::exp

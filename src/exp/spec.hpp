// Declarative experiment descriptions — the input end of the exp pipeline
//
//   ExperimentSpec --compile()--> ExperimentPlan --run()--> ResultSink(s)
//
// An ExperimentSpec is a value type that *describes* a sweep instead of
// wiring one: which protocols (by registry name and/or explicit factories),
// which batch sizes, which arrival workloads per cell, how many runs, which
// engine, and — for cross-machine sweeps — which shard of the flattened
// grid this invocation owns. Every driver in the tree (ucr_cli, the bench/
// harnesses, the sweep examples) builds one of these and hands it to
// compile() + run() instead of assembling SweepPoint grids by hand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/arrival.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace ucr::exp {

/// Declarative description of one arrival workload. Batch, burst and
/// schedule patterns are deterministic functions of (kind, parameters, k);
/// the randomized kinds (Poisson, MMPP, Pareto) re-sample a fresh pattern
/// for every run from a substream derived from (seed, workload cell, run),
/// so such a cell is a heterogeneous-workload cell by construction — each
/// run sees its own draw of the arrival process, and the draw is fixed by
/// the spec alone (never by scheduling).
struct ArrivalSpec {
  enum class Kind { kBatch, kPoisson, kBurst, kSchedule, kMmpp, kPareto };

  Kind kind = Kind::kBatch;
  /// Poisson arrival rate in messages per slot.
  double lambda = 0.1;
  /// Burst shape: `bursts` batches of k/bursts messages, `gap` silent
  /// slots apart.
  std::uint64_t bursts = 4;
  std::uint64_t gap = 64;
  /// Fixed worst-case schedule: the adversary's slot list, sorted
  /// non-decreasing; tiled with period back() + 1 when k exceeds it
  /// (sim/arrival.hpp schedule_arrivals).
  std::vector<std::uint64_t> schedule_slots;
  /// MMPP shape: burst-state and quiet-state rates (messages per slot)
  /// and the geometric mean dwell (slots) in each state.
  double lambda_hi = 0.5;
  double lambda_lo = 0.01;
  std::uint64_t dwell = 100;
  /// Pareto inter-arrival shape/scale: gaps of xm * U^(-1/alpha) slots.
  double alpha = 1.5;
  double xm = 1.0;

  static ArrivalSpec batch();
  static ArrivalSpec poisson(double lambda);
  static ArrivalSpec burst(std::uint64_t bursts, std::uint64_t gap);
  static ArrivalSpec schedule(std::vector<std::uint64_t> slots);
  static ArrivalSpec mmpp(double lambda_hi, double lambda_lo,
                          std::uint64_t dwell);
  static ArrivalSpec pareto(double alpha, double xm);

  bool is_batch() const { return kind == Kind::kBatch; }
  /// Randomized kinds re-sample a fresh pattern per run (heterogeneous
  /// cells); deterministic kinds materialize one pattern per cell.
  bool is_random() const {
    return kind == Kind::kPoisson || kind == Kind::kMmpp ||
           kind == Kind::kPareto;
  }

  /// Human/JSONL label: "batch", "poisson(0.1)", "burst(4,64)",
  /// "schedule(0,0,5)", "mmpp(0.5,0.01,100)", "pareto(1.5,1)".
  std::string label() const;

  /// Parses the label syntax back: "batch", "poisson(<lambda>)",
  /// "burst(<bursts>,<gap>)", "schedule(<s1>,<s2>,...)",
  /// "mmpp(<lambda_hi>,<lambda_lo>,<dwell>)", "pareto(<alpha>,<xm>)"
  /// (whitespace around tokens tolerated). Validates the parameters;
  /// unknown kinds get a did-you-mean ContractViolation. The inverse of
  /// the spec-file serialization (exp/spec_io.hpp), which prints doubles
  /// with shortest-round-trip precision so parse(print(s)) == s exactly.
  static ArrivalSpec parse(const std::string& text);

  /// The spec keywords, in canonical order — shared by parse()'s
  /// did-you-mean hint and the docs drift test
  /// (tests/docs/scenarios_doc_test.cpp), so docs/SCENARIOS.md cannot go
  /// stale against the live registry.
  static const std::vector<std::string>& kind_names();

  /// Materializes the concrete pattern for one run of a cell. `stream_id`
  /// is the arrival-substream index assigned by compile() (distinct per
  /// (cell, run), disjoint from the engine substreams); deterministic
  /// kinds ignore it.
  ArrivalPattern materialize(std::uint64_t k, std::uint64_t seed,
                             std::uint64_t stream_id) const;

  /// Throws ContractViolation on out-of-range parameters (lambda <= 0,
  /// bursts == 0, an empty or unsorted schedule, non-positive MMPP /
  /// Pareto shapes).
  void validate() const;

  bool operator==(const ArrivalSpec&) const = default;
};

/// Deterministic partition of the flattened grid for cross-machine sweeps:
/// shard i of N owns the contiguous cell block [i*total/N, (i+1)*total/N),
/// so concatenating the sink output of shards 0..N-1 in order reproduces
/// the unsharded output byte for byte (sinks emit their header, if any, on
/// shard 0 only).
struct ShardSpec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;

  /// Parses "i/N" (e.g. "0/4"); throws ContractViolation on malformed
  /// text, count == 0 or index >= count.
  static ShardSpec parse(const std::string& text);

  bool is_whole() const { return count == 1; }
  std::string label() const;  ///< "i/N"

  /// Throws ContractViolation unless index < count and count >= 1.
  void validate() const;

  bool operator==(const ShardSpec&) const = default;
};

/// Which engine executes the cells of the grid. Cells with non-batch
/// arrivals always run per-station — that is what "the fair aggregate
/// engine does not apply" means — so kFair and kBatched select the engine
/// for batch cells and additionally whether non-batch cells take the
/// exact node engine (kFair) or its batched fast path (kBatched): one
/// spec-level "fast" switch accelerates the whole grid. kNode /
/// kNodeBatched force every cell, batch-arrival ones included, onto the
/// exact / batched per-node engine.
enum class EngineMode { kFair, kBatched, kNode, kNodeBatched };

const char* engine_mode_name(EngineMode mode);

/// The declarative sweep description. Defaults reproduce the paper's
/// evaluation shape: 10 runs, seed 2011, batch arrivals, exact fair
/// engine, unsharded.
struct ExperimentSpec {
  /// Protocols resolved by name through the catalogue handed to compile()
  /// (find_protocol: exact match, then unique case-insensitive match,
  /// then a did-you-mean error) ...
  std::vector<std::string> protocol_names;
  /// ... followed by explicit factories, for parameterized configurations
  /// a registry name cannot express (e.g. the delta ablations).
  std::vector<ProtocolFactory> protocols;

  /// Explicit k grid; when empty, paper_k_sweep(k_max) is used (k_max
  /// must then be >= 10).
  std::vector<std::uint64_t> ks;
  std::uint64_t k_max = 0;

  /// Per-cell arrival workloads; empty means {batch}.
  std::vector<ArrivalSpec> arrivals;

  /// Per-cell channel models (channel/model.hpp); empty means {clean}.
  /// A grid axis like `arrivals`: the flattened grid is protocol-major,
  /// then k, then arrival, then channel. Cells with a non-clean channel
  /// run on the exact node engine whatever `engine` says (the fair and
  /// batched engines require the clean channel; compile() routes, the
  /// cell's reported engine says so — see docs/SCENARIOS.md).
  std::vector<ChannelModel> channels;

  std::uint64_t runs = 10;
  std::uint64_t seed = 2011;
  EngineMode engine = EngineMode::kFair;
  /// Cap / recording / observer knobs applied to every cell. The batched
  /// flag is derived from `engine`, not read from here.
  EngineOptions engine_options;

  ShardSpec shard;

  /// The flattened grid is protocol-major: for each protocol, for each k,
  /// for each arrival spec, for each channel model — one cell. Helpers
  /// below mutate-and-return so specs can be built fluently.
  ExperimentSpec& with_protocol(std::string name);
  ExperimentSpec& with_factory(ProtocolFactory factory);
  ExperimentSpec& with_ks(std::vector<std::uint64_t> grid);
  ExperimentSpec& with_paper_ks(std::uint64_t max);
  ExperimentSpec& with_arrival(ArrivalSpec arrival);
  ExperimentSpec& with_channel(ChannelModel channel);

  /// All protocol selectors in compile() resolution order: names first,
  /// then the names of the explicit factories. What the spec-file
  /// serialization and spec_hash (exp/spec_io.hpp) emit as `protocols`.
  std::vector<std::string> all_protocol_names() const;

  /// Value equality — the spec-file round-trip contract
  /// (`parse_spec(to_text(s)) == s`, exp/spec_io.hpp) is stated in terms
  /// of it. Explicit factories are std::functions and compare by *name*
  /// (a factory is textually representable only through its catalogue
  /// name); everything else is member-wise, including EngineOptions
  /// (whose observer hook compares by pointer).
  bool operator==(const ExperimentSpec& other) const;
};

}  // namespace ucr::exp

// Resumable per-cell task units — the middle of the exp pipeline.
//
//   ExperimentPlan --enumerate_cell_tasks()--> CellTask[] --execute()-->
//   CellResult --> ResultSink(s)
//
// A CellTask is one grid cell lifted out of the plan: the work
// (SweepPoint), the identity sinks need (CellInfo), and the provenance key
// (spec_hash, cell_index) that names the cell globally — the same pair on
// every shard, every thread count, and every machine compiling the same
// spec. Because run r of a cell is seeded stream(seed, r) and the arrival
// substreams are a pure function of the spec (exp/plan.cpp), a CellTask is
// independently executable: task.execute() on any box returns the exact
// AggregateResult the full sweep would have produced for that cell. That
// independence is what the provenance-keyed result cache
// (svc/result_cache.hpp), the sweep daemon (svc/service.hpp), and
// checkpoint/restart of week-long sweeps are built on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/plan.hpp"

namespace ucr::exp {

/// The outcome of one executed cell: identity plus aggregate, the unit a
/// ResultSink consumes and a result cache persists.
struct CellResult {
  CellInfo cell;
  AggregateResult aggregate;
};

/// One independently executable cell of a compiled plan.
struct CellTask {
  /// Provenance: the plan's shard-invariant spec content hash.
  std::string spec_hash;
  /// Cell identity; `cell.index` is the position in the *full* flattened
  /// grid, so shards of one sweep never collide on a key.
  CellInfo cell;
  /// The work: protocol factory, workload, runs, seed, engine options.
  SweepPoint point;

  /// Globally unique cache/debug key: "<spec_hash>/cell-<index>".
  std::string key() const;

  /// Executes every run of this cell serially and folds the aggregate.
  /// Bit-identical to what SweepRunner produces for the same cell (runs
  /// are seeded stream(seed, r) either way; tests/exp/cell_task_test.cpp
  /// pins it).
  CellResult execute() const;
};

/// Lifts a compiled plan into its task list, in grid order: tasks[i] is
/// the work of plan.cells[i] stamped with plan.spec_hash.
std::vector<CellTask> enumerate_cell_tasks(const ExperimentPlan& plan);

}  // namespace ucr::exp

#include "exp/plan.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/spec_io.hpp"

namespace ucr::exp {

namespace {

// Arrival substreams live far above the engine substreams (run r of every
// cell draws its engine randomness from stream(seed, r), r < runs), so a
// workload draw can never alias an engine stream. Within the arrival
// range, (workload cell, run) maps to base + workload_cell * runs + run,
// where workload_cell indexes the (k, arrival) pair WITHOUT the protocol
// or channel axes: every protocol and every channel model of the sweep
// sees the identical per-run workload draws (a paired design — columns
// differ only by protocol/channel behaviour, not by workload-sampling
// noise). Still a pure function of the spec, which is what makes sharded
// and unsharded compilations of the same grid produce identical
// workloads.
constexpr std::uint64_t kArrivalStreamBase = 1ULL << 32;

}  // namespace

ExperimentPlan compile(const ExperimentSpec& spec,
                       const std::vector<ProtocolFactory>& catalogue) {
  UCR_REQUIRE(spec.runs > 0, "experiment spec needs runs >= 1");
  spec.shard.validate();

  // Resolve the protocol axis: names through the catalogue, then explicit
  // factories, in spec order.
  std::vector<ProtocolFactory> protocols;
  protocols.reserve(spec.protocol_names.size() + spec.protocols.size());
  for (const std::string& name : spec.protocol_names) {
    protocols.push_back(find_protocol(catalogue, name));
  }
  for (const ProtocolFactory& factory : spec.protocols) {
    protocols.push_back(factory);
  }
  UCR_REQUIRE(!protocols.empty(),
              "experiment spec selects no protocols (add protocol_names "
              "or explicit factories)");

  // Resolve the k axis.
  std::vector<std::uint64_t> ks = spec.ks;
  if (ks.empty()) {
    UCR_REQUIRE(spec.k_max >= 10,
                "experiment spec has no k grid: set ks explicitly or "
                "k_max >= 10 for the paper sweep");
    ks = paper_k_sweep(spec.k_max);
  }
  for (const std::uint64_t k : ks) {
    UCR_REQUIRE(k > 0, "experiment spec contains a k == 0 cell");
  }

  // Resolve the arrival axis.
  std::vector<ArrivalSpec> arrivals = spec.arrivals;
  if (arrivals.empty()) arrivals.push_back(ArrivalSpec::batch());
  for (const ArrivalSpec& arrival : arrivals) {
    arrival.validate();
  }

  // Resolve the channel axis.
  std::vector<ChannelModel> channels = spec.channels;
  if (channels.empty()) channels.push_back(ChannelModel::clean());
  for (const ChannelModel& channel : channels) {
    channel.validate();
  }
  const bool grid_has_imperfect =
      std::any_of(channels.begin(), channels.end(),
                  [](const ChannelModel& c) { return !c.is_clean(); });

  // Engine resolution: node-mode specs (and every non-batch cell) run
  // per-station; batched-mode specs take the batched fast path of
  // whichever engine a cell lands on. One spec-level switch, the whole
  // grid accelerated.
  const bool spec_forces_node = spec.engine == EngineMode::kNode ||
                                spec.engine == EngineMode::kNodeBatched;
  const bool spec_is_batched = spec.engine == EngineMode::kBatched ||
                               spec.engine == EngineMode::kNodeBatched;

  // Validate engine views against the whole grid up front: a spec that
  // cannot run should fail at compile(), not mid-sweep.
  const bool grid_has_node_cells =
      spec_forces_node || grid_has_imperfect ||
      std::any_of(arrivals.begin(), arrivals.end(),
                  [](const ArrivalSpec& a) { return !a.is_batch(); });
  const bool grid_has_fair_cells =
      !spec_forces_node &&
      std::any_of(arrivals.begin(), arrivals.end(),
                  [](const ArrivalSpec& a) { return a.is_batch(); }) &&
      std::any_of(channels.begin(), channels.end(),
                  [](const ChannelModel& c) { return c.is_clean(); });
  for (const ProtocolFactory& factory : protocols) {
    if (grid_has_node_cells) {
      UCR_REQUIRE(static_cast<bool>(factory.node),
                  "protocol '" + factory.name +
                      "' has no per-node view, required by this spec's "
                      "non-batch or kNode cells");
    }
    if (grid_has_fair_cells) {
      UCR_REQUIRE(factory.has_fair(),
                  "protocol '" + factory.name +
                      "' has no fair-engine view, required by this spec's "
                      "batch cells");
    }
  }

  const std::size_t total =
      protocols.size() * ks.size() * arrivals.size() * channels.size();
  UCR_CHECK(total > 0, "flattened grid cannot be empty here");

  // A per-slot observer is a single mutable object; it cannot be shared by
  // concurrent work items, so it is only accepted for a one-run grid.
  if (spec.engine_options.observer != nullptr) {
    UCR_REQUIRE(total == 1 && spec.runs == 1,
                "a per-slot observer can only be attached to a "
                "single-cell, single-run spec (grids run in parallel)");
    UCR_REQUIRE(!spec_is_batched,
                "the batched engines never materialize skipped slots; "
                "per-slot observers require kFair or kNode");
  }

  // This shard's contiguous block of the flattened grid. 128-bit
  // intermediate so index * total cannot overflow for pathological counts.
  const auto shard_bound = [&](std::uint64_t i) {
    return static_cast<std::size_t>(static_cast<unsigned __int128>(i) *
                                    total / spec.shard.count);
  };
  const std::size_t begin = shard_bound(spec.shard.index);
  const std::size_t end = shard_bound(spec.shard.index + 1);

  ExperimentPlan plan;
  plan.total_cells = total;
  plan.runs = spec.runs;
  plan.seed = spec.seed;
  plan.engine = spec.engine;
  plan.shard = spec.shard;
  plan.spec_hash = exp::spec_hash(spec);
  plan.points.reserve(end - begin);
  plan.cells.reserve(end - begin);

  std::size_t index = 0;
  for (const ProtocolFactory& factory : protocols) {
    for (std::size_t k_index = 0; k_index < ks.size(); ++k_index) {
      const std::uint64_t k = ks[k_index];
      for (std::size_t arrival_index = 0; arrival_index < arrivals.size();
           ++arrival_index) {
        const ArrivalSpec& arrival = arrivals[arrival_index];
        for (const ChannelModel& channel : channels) {
          const std::size_t cell = index++;
          if (cell < begin || cell >= end) continue;

          CellInfo info;
          info.index = cell;
          info.protocol = factory.name;
          info.k = k;
          info.arrival = arrival;
          info.channel = channel;
          const bool imperfect = !channel.is_clean();
          const bool node_cell =
              spec_forces_node || imperfect || !arrival.is_batch();
          info.engine = imperfect ? EngineMode::kNode
                        : node_cell
                            ? (spec_is_batched ? EngineMode::kNodeBatched
                                               : EngineMode::kNode)
                            : spec.engine;

          EngineOptions options = spec.engine_options;
          options.batched = info.batched_engine();
          options.channel = channel;

          SweepPoint point;
          if (!node_cell) {
            point =
                SweepPoint::fair(factory, k, spec.runs, spec.seed, options);
          } else if (arrival.is_random()) {
            // Heterogeneous cell: each run draws its own arrival pattern
            // from the substream block of its (k, arrival) pair — the
            // same block for every protocol AND every channel model, so
            // columns are compared on identical workload draws.
            const std::uint64_t stream_base =
                kArrivalStreamBase +
                (static_cast<std::uint64_t>(k_index) * arrivals.size() +
                 arrival_index) *
                    spec.runs;
            const std::uint64_t seed = spec.seed;
            point = SweepPoint::node_per_run(
                factory, k,
                [arrival, k, seed, stream_base](std::uint64_t run) {
                  return arrival.materialize(k, seed, stream_base + run);
                },
                spec.runs, spec.seed, options);
          } else {
            point = SweepPoint::node(factory,
                                     arrival.materialize(k, spec.seed, 0),
                                     spec.runs, spec.seed, options);
          }
          plan.points.push_back(std::move(point));
          plan.cells.push_back(std::move(info));
        }
      }
    }
  }
  UCR_CHECK(plan.points.size() == end - begin,
            "shard block does not match the emitted cell count");
  return plan;
}

ExperimentPlan compile(const ExperimentSpec& spec) {
  return compile(spec, {});
}

}  // namespace ucr::exp

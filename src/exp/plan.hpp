// compile(): ExperimentSpec -> ExperimentPlan.
//
// Compilation is where every spec error surfaces — unknown protocol names,
// missing engine views, malformed shards, empty grids — so run() only ever
// sees a well-formed plan. The plan owns this shard's SweepPoints plus the
// metadata sinks need (cell identity, grid position, shard bounds).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "sim/sweep.hpp"

namespace ucr::exp {

/// Identity of one grid cell, as sinks see it.
struct CellInfo {
  /// Position in the *full* flattened grid (not shard-relative), so a
  /// sharded run reports the same indices the unsharded run would.
  std::size_t index = 0;
  std::string protocol;
  std::uint64_t k = 0;
  ArrivalSpec arrival;
  /// The channel model this cell runs under (channel/model.hpp).
  ChannelModel channel;
  /// The engine this cell actually runs on. Non-batch arrivals (and kNode
  /// / kNodeBatched specs) run per-station: exact (kNode) under
  /// fair-mode specs, batched (kNodeBatched) under batched-mode specs.
  /// Batch cells keep the spec's fair/batched mode. Cells with a
  /// non-clean channel always run on the exact node engine — the fair
  /// engines rest on a common-feedback symmetry imperfect channels break,
  /// and the batched fast paths skip slots whose channel coins must be
  /// drawn — so `engine` is kNode there whatever the spec says. The
  /// distinction matters downstream because batched runs are a different
  /// sample path than exact runs from the same seed wherever a stretch is
  /// skipped.
  EngineMode engine = EngineMode::kFair;

  bool node_engine() const {
    return engine == EngineMode::kNode || engine == EngineMode::kNodeBatched;
  }
  bool batched_engine() const {
    return engine == EngineMode::kBatched ||
           engine == EngineMode::kNodeBatched;
  }
};

/// A compiled, validated, shard-filtered sweep: points[i] is the work of
/// cells[i], in grid order.
struct ExperimentPlan {
  std::vector<SweepPoint> points;
  std::vector<CellInfo> cells;
  /// Size of the full grid across all shards.
  std::size_t total_cells = 0;
  std::uint64_t runs = 0;
  std::uint64_t seed = 0;
  EngineMode engine = EngineMode::kFair;
  ShardSpec shard;
  /// Content hash of the canonical spec text (exp/spec_io.hpp),
  /// shard-normalized: every shard of one sweep carries the same value.
  /// The streaming sinks stamp it on each emitted row as provenance.
  std::string spec_hash;
};

/// Compiles and validates a spec against a protocol catalogue (names in
/// spec.protocol_names are resolved with find_protocol — exact, then
/// unique case-insensitive, then a did-you-mean ContractViolation).
/// Throws ContractViolation on: no protocols, no k grid (and k_max < 10),
/// k == 0 cells, runs == 0, invalid shard, invalid arrival parameters, a
/// protocol lacking the engine view its cells need, or a per-slot
/// observer attached to a grid with more than one (cell, run) work item
/// or to a batched-mode spec (skipped slots are never materialized).
ExperimentPlan compile(const ExperimentSpec& spec,
                       const std::vector<ProtocolFactory>& catalogue);

/// Compiles a spec whose protocols are all explicit factories.
ExperimentPlan compile(const ExperimentSpec& spec);

}  // namespace ucr::exp

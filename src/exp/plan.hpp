// compile(): ExperimentSpec -> ExperimentPlan.
//
// Compilation is where every spec error surfaces — unknown protocol names,
// missing engine views, malformed shards, empty grids — so run() only ever
// sees a well-formed plan. The plan owns this shard's SweepPoints plus the
// metadata sinks need (cell identity, grid position, shard bounds).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "sim/sweep.hpp"

namespace ucr::exp {

/// Identity of one grid cell, as sinks see it.
struct CellInfo {
  /// Position in the *full* flattened grid (not shard-relative), so a
  /// sharded run reports the same indices the unsharded run would.
  std::size_t index = 0;
  std::string protocol;
  std::uint64_t k = 0;
  ArrivalSpec arrival;
  /// The engine this cell actually runs on: kNode for non-batch arrivals
  /// or EngineMode::kNode specs, else the spec's fair/batched mode — the
  /// distinction matters downstream because batched runs are a different
  /// sample path than exact-fair runs from the same seed.
  EngineMode engine = EngineMode::kFair;

  bool node_engine() const { return engine == EngineMode::kNode; }
};

/// A compiled, validated, shard-filtered sweep: points[i] is the work of
/// cells[i], in grid order.
struct ExperimentPlan {
  std::vector<SweepPoint> points;
  std::vector<CellInfo> cells;
  /// Size of the full grid across all shards.
  std::size_t total_cells = 0;
  std::uint64_t runs = 0;
  std::uint64_t seed = 0;
  EngineMode engine = EngineMode::kFair;
  ShardSpec shard;
};

/// Compiles and validates a spec against a protocol catalogue (names in
/// spec.protocol_names are resolved with find_protocol — exact, then
/// unique case-insensitive, then a did-you-mean ContractViolation).
/// Throws ContractViolation on: no protocols, no k grid (and k_max < 10),
/// k == 0 cells, runs == 0, invalid shard, invalid arrival parameters, a
/// protocol lacking the engine view its cells need, EngineMode::kBatched
/// with non-batch arrivals, or a per-slot observer attached to a grid
/// with more than one (cell, run) work item.
ExperimentPlan compile(const ExperimentSpec& spec,
                       const std::vector<ProtocolFactory>& catalogue);

/// Compiles a spec whose protocols are all explicit factories.
ExperimentPlan compile(const ExperimentSpec& spec);

}  // namespace ucr::exp

#include "exp/sink.hpp"

#include <ostream>

#include "common/json.hpp"
#include "common/table.hpp"

namespace ucr::exp {

void CsvStreamSink::begin(const ExperimentPlan& plan) {
  spec_hash_ = plan.spec_hash;
  if (plan.shard.index == 0) {
    write_aggregate_header(*os_);
  }
}

void CsvStreamSink::emit(const CellInfo& cell, const AggregateResult& result) {
  (void)cell;
  AggregateRow row = AggregateRow::from(result);
  row.spec_hash = spec_hash_;
  write_aggregate_row(*os_, row);
  if (flush_each_row_) os_->flush();
}

void CsvStreamSink::end() { os_->flush(); }

std::string json_escape(const std::string& text) {
  return json::escape(text);
}

void JsonlSink::begin(const ExperimentPlan& plan) {
  spec_hash_ = plan.spec_hash;
}

void JsonlSink::emit(const CellInfo& cell, const AggregateResult& result) {
  std::ostream& os = *os_;
  os << "{\"cell\":" << cell.index                                   //
     << ",\"spec_hash\":\"" << spec_hash_ << "\""                    //
     << ",\"protocol\":\"" << json_escape(result.protocol) << "\""   //
     << ",\"k\":" << result.k                                        //
     << ",\"arrival\":\"" << json_escape(cell.arrival.label()) << "\""
     << ",\"channel\":\"" << json_escape(cell.channel.label()) << "\""
     << ",\"engine\":\"" << engine_mode_name(cell.engine) << "\""
     << ",\"runs\":" << result.runs                                  //
     << ",\"incomplete_runs\":" << result.incomplete_runs            //
     << ",\"mean_makespan\":" << format_double(result.makespan.mean, 6)
     << ",\"stddev_makespan\":" << format_double(result.makespan.stddev, 6)
     << ",\"min_makespan\":" << format_double(result.makespan.min, 6)
     << ",\"p25_makespan\":" << format_double(result.makespan.p25, 6)
     << ",\"median_makespan\":" << format_double(result.makespan.median, 6)
     << ",\"p75_makespan\":" << format_double(result.makespan.p75, 6)
     << ",\"p95_makespan\":" << format_double(result.makespan.p95, 6)
     << ",\"max_makespan\":" << format_double(result.makespan.max, 6)
     << ",\"mean_ratio\":" << format_double(result.ratio.mean, 6)    //
     << ",\"latency_p50\":" << format_double(result.latency_p50, 6)
     << ",\"latency_p95\":" << format_double(result.latency_p95, 6)
     << ",\"latency_p99\":" << format_double(result.latency_p99, 6)
     << ",\"energy_mean\":" << format_double(result.energy_mean, 6)
     << ",\"energy_max\":" << format_double(result.energy_max, 6)  //
     << "}\n";
  if (flush_each_row_) os.flush();
}

void JsonlSink::end() { os_->flush(); }

void MemorySink::emit(const CellInfo& cell, const AggregateResult& result) {
  cells_.push_back(cell);
  results_.push_back(result);
}

}  // namespace ucr::exp

#include "exp/spec_io.hpp"

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

namespace ucr::exp {

namespace {

// Canonical key order of to_text(); also the did-you-mean candidate set
// for unknown keys.
const std::vector<std::string>& known_keys() {
  static const std::vector<std::string> keys{
      "spec_version",
      "include",
      "protocols",
      "ks",
      "kmax",
      "arrival",
      "runs",
      "seed",
      "engine",
      "max_slots",
      "record_deliveries",
      "record_latencies",
      "collision_detection",
      "channel",
      "shard",
      "threads",
      "format",
  };
  return keys;
}

/// Splits a comma-separated list, trimming items and rejecting empties.
std::vector<std::string> split_list(const std::string& text,
                                    const std::string& source) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string item = trim(text.substr(start, end - start));
    UCR_REQUIRE(!item.empty(), source + ": empty item in list '" + text + "'");
    items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

bool parse_bool(const std::string& value, const std::string& source) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  throw ContractViolation(source + ": malformed boolean '" + value +
                          "' (true, false, 1 or 0)");
}

EngineMode parse_engine_mode(const std::string& value,
                             const std::string& source) {
  static const std::vector<std::string> names{
      "fair",
      "batched",
      "node",
      "node_batched",
  };
  if (value == "fair") return EngineMode::kFair;
  if (value == "batched") return EngineMode::kBatched;
  if (value == "node") return EngineMode::kNode;
  if (value == "node_batched") return EngineMode::kNodeBatched;
  throw ContractViolation(source + ": unknown engine '" + value +
                          "' — did you mean '" + closest_name(names, value) +
                          "'?");
}

OutputFormat parse_output_format(const std::string& value,
                                 const std::string& source) {
  static const std::vector<std::string> names{"table", "csv", "jsonl"};
  if (value == "table") return OutputFormat::kTable;
  if (value == "csv") return OutputFormat::kCsv;
  if (value == "jsonl") return OutputFormat::kJsonl;
  throw ContractViolation(source + ": unknown format '" + value +
                          "' — did you mean '" + closest_name(names, value) +
                          "'?");
}

std::string arrival_text(const ArrivalSpec& arrival) {
  switch (arrival.kind) {
    case ArrivalSpec::Kind::kBatch:
      return "batch";
    case ArrivalSpec::Kind::kPoisson:
      // Shortest-round-trip notation: parse must recover lambda exactly
      // (the 6-decimal label() would truncate, e.g., 1e-7 to 0.000000).
      return "poisson(" + format_double_shortest(arrival.lambda) + ")";
    case ArrivalSpec::Kind::kBurst:
      return "burst(" + std::to_string(arrival.bursts) + "," +
             std::to_string(arrival.gap) + ")";
    case ArrivalSpec::Kind::kSchedule: {
      std::string out = "schedule(";
      for (std::size_t i = 0; i < arrival.schedule_slots.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(arrival.schedule_slots[i]);
      }
      return out + ")";
    }
    case ArrivalSpec::Kind::kMmpp:
      return "mmpp(" + format_double_shortest(arrival.lambda_hi) + "," +
             format_double_shortest(arrival.lambda_lo) + "," +
             std::to_string(arrival.dwell) + ")";
    case ArrivalSpec::Kind::kPareto:
      return "pareto(" + format_double_shortest(arrival.alpha) + "," +
             format_double_shortest(arrival.xm) + ")";
  }
  UCR_CHECK(false, "unreachable arrival kind");
  return {};
}

std::string channel_text(const ChannelModel& channel) {
  switch (channel.kind) {
    case ChannelModel::Kind::kClean:
      return "clean";
    case ChannelModel::Kind::kCapture:
      return "capture(" + format_double_shortest(channel.p_capture) + ")";
    case ChannelModel::Kind::kJamming:
      return "jamming(" + format_double_shortest(channel.jam_prob) + ")";
    case ChannelModel::Kind::kJamBurst:
      return "jam_burst(" + std::to_string(channel.jam_period) + "," +
             std::to_string(channel.jam_len) + ")";
  }
  UCR_CHECK(false, "unreachable channel kind");
  return {};
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i];
  }
  return out;
}

/// The parser core behind both parse_spec overloads and load_spec_file.
/// `loader` resolves `include = <name>` lines (nullptr rejects them);
/// `allow_include` is false while parsing an included base, so overlays
/// are exactly one level deep.
SpecFile parse_spec_impl(const std::string& text, const SpecLoader& loader,
                         bool allow_include) {
  SpecFile file;
  ExperimentSpec& spec = file.spec;

  std::set<std::string> seen;
  bool versioned = false;
  // Overlay bookkeeping: which parts of the description were adopted from
  // an included base. The first overlay line for a repeatable axis
  // (`arrival` / `channel`) replaces the inherited list instead of
  // appending to it, and an overlay `ks` / `kmax` displaces an inherited
  // value of the *other* key (the two stay mutually exclusive, but a
  // delta may switch a sweep from one spelling to the other).
  bool included = false;
  bool overlay_arrivals = false;
  bool overlay_channels = false;
  bool inherited_ks = false;
  bool inherited_kmax = false;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    const std::size_t end =
        newline == std::string::npos ? text.size() : newline;
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (newline == std::string::npos && line.empty()) break;

    // Comments run from '#' to end of line; no key or value contains '#'.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::string source = "spec line " + std::to_string(line_no);
    const std::size_t equals = line.find('=');
    UCR_REQUIRE(equals != std::string::npos,
                source + ": malformed line '" + line +
                    "' (expected key = value)");
    const std::string key = trim(line.substr(0, equals));
    const std::string value = trim(line.substr(equals + 1));
    UCR_REQUIRE(!key.empty(), source + ": missing key before '='");
    UCR_REQUIRE(!value.empty(), source + ": missing value for '" + key + "'");

    // Every key but the repeatable grid axes `arrival` / `channel` is
    // single-shot.
    if (key != "arrival" && key != "channel") {
      UCR_REQUIRE(seen.insert(key).second,
                  source + ": duplicate key '" + key + "'");
    }

    try {
      if (key == "spec_version") {
        UCR_REQUIRE(value == "1", source + ": unsupported spec_version '" +
                                      value + "' (this build reads 1)");
        versioned = true;
      } else if (key == "include") {
        UCR_REQUIRE(allow_include,
                    source + ": nested include '" + value +
                        "' (an included base spec must be flat — overlays "
                        "are one level deep)");
        UCR_REQUIRE(loader != nullptr,
                    source + ": include needs a file context (load the "
                             "overlay with load_spec_file, or pass a "
                             "SpecLoader to parse_spec)");
        for (const std::string& prior : seen) {
          UCR_REQUIRE(prior == "include" || prior == "spec_version",
                      source + ": include must precede every key except "
                               "spec_version (saw '" + prior +
                               "' first — an overlay states its base, "
                               "then its deltas)");
        }
        SpecFile base;
        try {
          base = parse_spec_impl(loader(value), loader,
                                 /*allow_include=*/false);
        } catch (const ContractViolation& e) {
          throw ContractViolation(source + ": include '" + value + "': " +
                                  e.what());
        }
        file = std::move(base);  // `spec` still references file.spec
        included = true;
        inherited_ks = !spec.ks.empty();
        inherited_kmax = spec.k_max != 0;
      } else if (key == "protocols") {
        spec.protocol_names = split_list(value, source);
      } else if (key == "ks") {
        if (inherited_kmax && seen.count("kmax") == 0) spec.k_max = 0;
        spec.ks.clear();
        for (const std::string& item : split_list(value, source)) {
          spec.ks.push_back(parse_u64_strict(item, source + " key 'ks'"));
        }
      } else if (key == "kmax") {
        if (inherited_ks && seen.count("ks") == 0) spec.ks.clear();
        spec.k_max = parse_u64_strict(value, source + " key 'kmax'");
      } else if (key == "arrival") {
        if (included && !overlay_arrivals) spec.arrivals.clear();
        overlay_arrivals = true;
        spec.with_arrival(ArrivalSpec::parse(value));
      } else if (key == "runs") {
        spec.runs = parse_u64_strict(value, source + " key 'runs'");
      } else if (key == "seed") {
        spec.seed = parse_u64_strict(value, source + " key 'seed'");
      } else if (key == "engine") {
        spec.engine = parse_engine_mode(value, source);
      } else if (key == "max_slots") {
        spec.engine_options.max_slots =
            parse_u64_strict(value, source + " key 'max_slots'");
      } else if (key == "record_deliveries") {
        spec.engine_options.record_deliveries = parse_bool(value, source);
      } else if (key == "record_latencies") {
        spec.engine_options.record_latencies = parse_bool(value, source);
      } else if (key == "collision_detection") {
        spec.engine_options.collision_detection = parse_bool(value, source);
      } else if (key == "channel") {
        if (included && !overlay_channels) spec.channels.clear();
        overlay_channels = true;
        spec.with_channel(ChannelModel::parse(value));
      } else if (key == "shard") {
        spec.shard = ShardSpec::parse(value);
      } else if (key == "threads") {
        // 0 is the explicit "all hardware threads" spelling here (a bare
        // --threads=0 is rejected as a likely typo, but a versioned file
        // states it deliberately).
        file.threads =
            value == "0" ? 0 : parse_thread_count(value, source);
      } else if (key == "format") {
        file.format = parse_output_format(value, source);
      } else {
        throw ContractViolation(source + ": unknown key '" + key +
                                "' — did you mean '" +
                                closest_name(known_keys(), key) + "'?");
      }
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      // Nested parsers (arrival, shard, numbers) don't know the line;
      // prefix it exactly once.
      if (what.find(source) == std::string::npos) {
        throw ContractViolation(source + ": " + what);
      }
      throw;
    }
  }

  UCR_REQUIRE(versioned,
              "spec is missing 'spec_version = 1' (required so future "
              "format changes fail loudly instead of misparsing)");
  UCR_REQUIRE(spec.ks.empty() || spec.k_max == 0,
              "spec sets both 'ks' and 'kmax' (they are mutually "
              "exclusive: ks is explicit, kmax derives the paper sweep)");
  return file;
}

}  // namespace

const char* output_format_name(OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable:
      return "table";
    case OutputFormat::kCsv:
      return "csv";
    case OutputFormat::kJsonl:
      return "jsonl";
  }
  UCR_CHECK(false, "unreachable output format");
  return "";
}

SpecFile parse_spec(const std::string& text) {
  return parse_spec_impl(text, nullptr, /*allow_include=*/true);
}

SpecFile parse_spec(const std::string& text, const SpecLoader& loader) {
  return parse_spec_impl(text, loader, /*allow_include=*/true);
}

namespace {

std::string read_spec_text(const std::string& path) {
  std::ifstream in(path);
  UCR_REQUIRE(in.is_open(), "cannot open spec file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

SpecFile load_spec_file(const std::string& path) {
  // Includes resolve relative to the directory of the *including* file —
  // an overlay names its base the way a runbook reads it, independent of
  // the process's working directory. (One level deep, so the including
  // file is always `path` itself.)
  std::string dir;
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  const SpecLoader loader = [&dir](const std::string& name) {
    const bool absolute = !name.empty() && name.front() == '/';
    return read_spec_text(absolute ? name : dir + name);
  };
  return parse_spec(read_spec_text(path), loader);
}

std::string to_text(const ExperimentSpec& spec) {
  std::string out = "spec_version = 1\n";
  const std::vector<std::string> protocols = spec.all_protocol_names();
  if (!protocols.empty()) {
    out += "protocols = " + join(protocols) + "\n";
  }
  if (!spec.ks.empty()) {
    std::vector<std::string> items;
    items.reserve(spec.ks.size());
    for (const std::uint64_t k : spec.ks) items.push_back(std::to_string(k));
    out += "ks = " + join(items) + "\n";
  } else if (spec.k_max != 0) {
    out += "kmax = " + std::to_string(spec.k_max) + "\n";
  }
  for (const ArrivalSpec& arrival : spec.arrivals) {
    out += "arrival = " + arrival_text(arrival) + "\n";
  }
  out += "runs = " + std::to_string(spec.runs) + "\n";
  out += "seed = " + std::to_string(spec.seed) + "\n";
  out += "engine = " + std::string(engine_mode_name(spec.engine)) + "\n";
  out += "max_slots = " + std::to_string(spec.engine_options.max_slots) +
         "\n";
  const auto bool_text = [](bool v) { return v ? "true" : "false"; };
  out += "record_deliveries = " +
         std::string(bool_text(spec.engine_options.record_deliveries)) + "\n";
  out += "record_latencies = " +
         std::string(bool_text(spec.engine_options.record_latencies)) + "\n";
  out += "collision_detection = " +
         std::string(bool_text(spec.engine_options.collision_detection)) +
         "\n";
  for (const ChannelModel& channel : spec.channels) {
    out += "channel = " + channel_text(channel) + "\n";
  }
  out += "shard = " + spec.shard.label() + "\n";
  return out;
}

std::string to_text(const SpecFile& file) {
  std::string out = to_text(file.spec);
  out += "threads = " + std::to_string(file.threads) + "\n";
  out += "format = " + std::string(output_format_name(file.format)) + "\n";
  return out;
}

std::string spec_hash(const ExperimentSpec& spec) {
  // Normalize the execution partition out: every shard of a sweep hashes
  // identically, which is what lets sharded archives concatenate
  // byte-for-byte into the unsharded one while still naming their spec.
  ExperimentSpec whole = spec;
  whole.shard = ShardSpec{};
  const std::uint64_t hash = fnv1a64(to_text(whole));
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = hex[(hash >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace ucr::exp

#include "coord/control.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "svc/socket.hpp"

namespace ucr::coord {

namespace {

std::string error_json(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + json::escape(message) + "\"}";
}

void handle_connection(svc::LineSocket socket,
                       const Coordinator& coordinator) {
  try {
    while (true) {
      const std::optional<std::string> line = socket.recv_line();
      if (!line.has_value()) return;  // client hung up
      if (line->empty()) continue;
      try {
        const json::Value request = json::parse(*line);
        const std::string& cmd = request.at("cmd").as_string();
        if (cmd == "ping") {
          socket.send_line("{\"ok\":true,\"pong\":true}");
        } else if (cmd == "status") {
          socket.send_line(coord_status_json(coordinator.status()));
        } else {
          socket.send_line(
              error_json("unknown cmd '" + cmd + "' (ping, status)"));
        }
      } catch (const ContractViolation& e) {
        socket.send_line(error_json(e.what()));
      }
    }
  } catch (const ContractViolation&) {
    // Transport failure mid-exchange: drop the connection, keep serving.
  }
}

}  // namespace

std::string coord_status_json(const CoordStatus& status) {
  std::string out = "{\"ok\":true";
  out += ",\"state\":\"" + json::escape(status.state) + "\"";
  out += ",\"spec_hash\":\"" + status.spec_hash + "\"";
  out += ",\"shards\":" + std::to_string(status.shards);
  out += ",\"completed\":" + std::to_string(status.completed);
  out += ",\"running\":" + std::to_string(status.running);
  out += ",\"pending\":" + std::to_string(status.pending);
  out += ",\"attempts\":" + std::to_string(status.attempts);
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < status.worker_states.size(); ++i) {
    const WorkerStatus& worker = status.worker_states[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + json::escape(worker.name) + "\"";
    out += ",\"capacity\":" + std::to_string(worker.capacity);
    out += ",\"busy\":" + std::to_string(worker.busy);
    out += ",\"failures\":" + std::to_string(worker.failures);
    out += "}";
  }
  out += "]}";
  return out;
}

ControlServer::ControlServer(std::string socket_path,
                             const Coordinator& coordinator)
    : socket_path_(std::move(socket_path)), coordinator_(coordinator) {
  listen_fd_ = svc::listen_unix(socket_path_);
  thread_ = std::thread([this] {
    std::vector<std::thread> handlers;
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listener shut down by stop() — drain and exit
      }
      svc::LineSocket connection(fd);
      handlers.emplace_back(handle_connection, std::move(connection),
                            std::cref(coordinator_));
    }
    for (std::thread& handler : handlers) handler.join();
  });
}

ControlServer::~ControlServer() { stop(); }

void ControlServer::stop() {
  if (!thread_.joinable()) return;
  // shutdown() on the listener makes the blocked accept() return an
  // error, which ends the accept loop; the fd stays valid until after
  // the join so the loop never touches a closed descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

}  // namespace ucr::coord

#include "coord/workers.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"

namespace ucr::coord {

namespace {

/// Whitespace-splits `text` into tokens (no quoting — a wrapper script
/// covers argv elements that need spaces).
std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Applies one `key=value` worker option; throws on unknown keys.
void apply_option(WorkerSpec& worker, const std::string& token,
                  const std::string& source, std::set<std::string>& seen) {
  const std::size_t equals = token.find('=');
  UCR_REQUIRE(equals != std::string::npos,
              source + ": malformed worker option '" + token +
                  "' (expected key=value)");
  const std::string key = token.substr(0, equals);
  const std::string value = token.substr(equals + 1);
  UCR_REQUIRE(seen.insert(key).second,
              source + ": duplicate worker option '" + key + "'");
  if (key == "capacity") {
    const std::uint64_t capacity =
        parse_u64_strict(value, source + " option 'capacity'");
    UCR_REQUIRE(capacity >= 1,
                source + ": capacity must be >= 1 (a capacity-0 worker "
                         "could never hold a shard)");
    worker.capacity = static_cast<unsigned>(capacity);
  } else if (key == "name") {
    UCR_REQUIRE(!value.empty(), source + ": empty worker name");
    worker.name = value;
  } else {
    throw ContractViolation(source + ": unknown worker option '" + key +
                            "' (capacity, name)");
  }
}

}  // namespace

std::vector<WorkerSpec> parse_workers(const std::string& text) {
  std::vector<WorkerSpec> workers;
  std::set<std::string> names;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    const std::size_t end =
        newline == std::string::npos ? text.size() : newline;
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (newline == std::string::npos && line.empty()) break;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::string source = "workers line " + std::to_string(line_no);
    WorkerSpec worker;
    std::set<std::string> seen_options;

    if (line == "local" || line.rfind("local ", 0) == 0) {
      worker.kind = WorkerSpec::Kind::kLocal;
      for (const std::string& token :
           split_tokens(line.substr(std::string("local").size()))) {
        apply_option(worker, token, source, seen_options);
      }
    } else if (line.rfind("exec", 0) == 0) {
      worker.kind = WorkerSpec::Kind::kExec;
      const std::size_t colon = line.find(':');
      UCR_REQUIRE(colon != std::string::npos,
                  source + ": exec worker needs ': <argv prefix>' (e.g. "
                           "'exec: ssh node7 wrapper.sh')");
      for (const std::string& token : split_tokens(
               line.substr(std::string("exec").size(),
                           colon - std::string("exec").size()))) {
        apply_option(worker, token, source, seen_options);
      }
      worker.exec_prefix = split_tokens(line.substr(colon + 1));
      UCR_REQUIRE(!worker.exec_prefix.empty(),
                  source + ": empty exec argv prefix");
    } else {
      throw ContractViolation(
          source + ": unknown worker kind in '" + line +
          "' (a worker line starts with 'local' or 'exec')");
    }

    if (worker.name.empty()) {
      worker.name = (worker.kind == WorkerSpec::Kind::kLocal
                         ? std::string("local-")
                         : std::string("exec-")) +
                    std::to_string(workers.size() + 1);
    }
    UCR_REQUIRE(names.insert(worker.name).second,
                source + ": duplicate worker name '" + worker.name + "'");
    workers.push_back(std::move(worker));
  }
  UCR_REQUIRE(!workers.empty(),
              "workers file declares no workers (every non-comment line is "
              "one worker: 'local' or 'exec: <argv prefix>')");
  return workers;
}

std::vector<WorkerSpec> load_workers_file(const std::string& path) {
  std::ifstream in(path);
  UCR_REQUIRE(in.is_open(), "cannot open workers file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_workers(text.str());
}

}  // namespace ucr::coord

#include "coord/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace ucr::coord {

namespace {

/// Opens `path` for the child's fd `target` (O_CLOEXEC deliberately NOT
/// set — the descriptor must survive the exec). Child-side only: failure
/// writes a note to fd 2 and _exits 127.
void redirect_or_die(const char* path, int target, int flags) {
  const int fd = ::open(path, flags, 0644);
  if (fd < 0 || ::dup2(fd, target) < 0) {
    const char* message = "coord child: cannot open redirect target\n";
    (void)!::write(2, message, std::strlen(message));
    ::_exit(127);
  }
  if (fd != target) ::close(fd);
}

}  // namespace

pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::string& stdout_path,
                    const std::string& stderr_path) {
  UCR_REQUIRE(!argv.empty(), "spawn_process: empty argv");
  // execvp wants mutable char*; build the array before forking so the
  // child does no allocation between fork and exec.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  UCR_REQUIRE(pid >= 0,
              std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    // Child: redirect, then exec. Only async-signal-safe calls from here.
    redirect_or_die(stdout_path.c_str(), 1,
                    O_WRONLY | O_CREAT | O_TRUNC);
    redirect_or_die(stderr_path.c_str(), 2,
                    O_WRONLY | O_CREAT | O_APPEND);
    ::execvp(cargv[0], cargv.data());
    const char* prefix = "coord child: exec failed: ";
    (void)!::write(2, prefix, std::strlen(prefix));
    const char* reason = std::strerror(errno);
    (void)!::write(2, reason, std::strlen(reason));
    (void)!::write(2, "\n", 1);
    ::_exit(127);
  }
  return pid;
}

std::optional<int> try_wait(pid_t pid) {
  int status = 0;
  const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
  UCR_REQUIRE(reaped >= 0, "waitpid(" + std::to_string(pid) +
                               ") failed: " + std::strerror(errno));
  if (reaped == 0) return std::nullopt;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 128;  // stopped/continued should not reach here under WNOHANG
}

void kill_process(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace ucr::coord

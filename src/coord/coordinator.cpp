#include "coord/coordinator.hpp"

#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "coord/process.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "sim/resultio.hpp"

namespace ucr::coord {

namespace {

namespace fs = std::filesystem;

/// The exact CSV header line the streaming sink emits on shard 0.
const std::string& csv_header_line() {
  static const std::string header = [] {
    std::ostringstream out;
    write_aggregate_header(out);
    std::string text = out.str();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }();
  return header;
}

/// Splits sink output into lines (no terminators); requires the text to
/// end at a line boundary — a torn final line means a worker died
/// mid-write, which must read as failure, not as a short row count.
std::vector<std::string> split_complete_lines(const std::string& text,
                                              const std::string& source) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t newline = text.find('\n', start);
    UCR_REQUIRE(newline != std::string::npos,
                source + ": output ends mid-line (torn write)");
    lines.push_back(text.substr(start, newline - start));
    start = newline + 1;
  }
  return lines;
}

/// True when one comma-separated field of `row` is exactly `hash`.
bool csv_row_carries_hash(const std::string& row, const std::string& hash) {
  std::size_t start = 0;
  while (start <= row.size()) {
    const std::size_t comma = row.find(',', start);
    const std::size_t end = comma == std::string::npos ? row.size() : comma;
    if (row.compare(start, end - start, hash) == 0) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

/// Last `max_bytes` of a file, for failure messages; empty when
/// unreadable.
std::string tail_of_file(const std::string& path,
                         std::size_t max_bytes = 512) {
  std::ifstream in(path);
  if (!in.is_open()) return {};
  std::ostringstream text;
  text << in.rdbuf();
  std::string all = text.str();
  if (all.size() > max_bytes) all.erase(0, all.size() - max_bytes);
  return all;
}

std::string read_whole_file(const std::string& path,
                            const std::string& source) {
  std::ifstream in(path);
  UCR_REQUIRE(in.is_open(), source + ": cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

const char* shard_state_name(ShardStatus::State state) {
  switch (state) {
    case ShardStatus::State::kPending:
      return "pending";
    case ShardStatus::State::kRunning:
      return "running";
    case ShardStatus::State::kDone:
      return "done";
    case ShardStatus::State::kFailed:
      return "failed";
  }
  UCR_CHECK(false, "unreachable shard state");
  return "";
}

void validate_shard_output(const std::string& text, exp::OutputFormat format,
                           std::uint64_t shard_index,
                           std::uint64_t expected_rows,
                           const std::string& hash) {
  const std::string source = "shard " + std::to_string(shard_index);
  const std::vector<std::string> lines = split_complete_lines(text, source);

  std::size_t first_row = 0;
  if (format == exp::OutputFormat::kCsv && shard_index == 0) {
    // The shard-0-only header contract: shard 0 opens with exactly the
    // aggregate CSV header, every other shard starts straight at rows.
    UCR_REQUIRE(!lines.empty() && lines[0] == csv_header_line(),
                source + ": missing or wrong CSV header on shard 0");
    first_row = 1;
  }
  if (format == exp::OutputFormat::kCsv && shard_index != 0) {
    UCR_REQUIRE(lines.empty() || lines[0] != csv_header_line(),
                source + ": unexpected CSV header (only shard 0 emits it)");
  }

  const std::uint64_t rows = lines.size() - first_row;
  UCR_REQUIRE(rows == expected_rows,
              source + ": expected " + std::to_string(expected_rows) +
                  " data rows, found " + std::to_string(rows));

  for (std::size_t i = first_row; i < lines.size(); ++i) {
    const std::string& row = lines[i];
    const bool carries =
        format == exp::OutputFormat::kCsv
            ? csv_row_carries_hash(row, hash)
            : row.find("\"spec_hash\":\"" + hash + "\"") != std::string::npos;
    UCR_REQUIRE(carries, source + " row " + std::to_string(i - first_row) +
                             ": spec_hash mismatch (expected " + hash +
                             ") in: " + row);
  }
}

std::string shard_overlay_text(const std::string& base_path,
                               std::uint64_t index, std::uint64_t count,
                               const std::optional<exp::OutputFormat>& format,
                               unsigned worker_threads) {
  std::string out = "spec_version = 1\n";
  out += "include = " + base_path + "\n";
  out += "shard = " + std::to_string(index) + "/" + std::to_string(count) +
         "\n";
  if (format.has_value()) {
    out += "format = " + std::string(exp::output_format_name(*format)) + "\n";
  }
  if (worker_threads != 0) {
    out += "threads = " + std::to_string(worker_threads) + "\n";
  }
  return out;
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  UCR_REQUIRE(!options_.workers.empty(),
              "coordinator needs at least one worker");
  UCR_REQUIRE(options_.max_attempts >= 1,
              "coordinator max_attempts must be >= 1");
  UCR_REQUIRE(!options_.work_dir.empty(),
              "coordinator needs a work directory");
  UCR_REQUIRE(options_.heartbeat_seconds > 0,
              "coordinator heartbeat must be positive");

  // Every spec error surfaces here, before a single worker is spawned.
  base_ = exp::load_spec_file(options_.spec_path);
  UCR_REQUIRE(base_.spec.shard.is_whole(),
              "base spec '" + options_.spec_path + "' is already sharded (" +
                  base_.spec.shard.label() +
                  ") — the coordinator owns the shard axis");
  format_ = options_.format.value_or(base_.format);
  UCR_REQUIRE(format_ != exp::OutputFormat::kTable,
              "coordinator output must be a streaming format (csv or "
              "jsonl) — table output cannot be concatenated; set "
              "`format` in the spec or pass --format");

  const auto catalogue = default_catalogue();
  const exp::ExperimentPlan plan = exp::compile(base_.spec, catalogue);
  spec_hash_ = plan.spec_hash;

  std::uint64_t capacity = 0;
  for (const WorkerSpec& worker : options_.workers) {
    capacity += worker.capacity;
  }
  std::uint64_t shards =
      options_.shards == 0 ? capacity : options_.shards;
  if (shards > plan.total_cells) shards = plan.total_cells;
  if (shards == 0) shards = 1;

  // Per-shard expected row counts, straight from the compiler that will
  // govern the workers — the row-coverage check is pinned to the same
  // partition arithmetic the workers execute.
  shard_rows_.reserve(shards);
  shard_states_.reserve(shards);
  for (std::uint64_t i = 0; i < shards; ++i) {
    exp::ExperimentSpec sharded = base_.spec;
    sharded.shard.index = i;
    sharded.shard.count = shards;
    const exp::ExperimentPlan shard_plan = exp::compile(sharded, catalogue);
    shard_rows_.push_back(shard_plan.cells.size());
    ShardStatus status;
    status.index = i;
    status.rows = shard_plan.cells.size();
    shard_states_.push_back(status);
  }
  for (const WorkerSpec& worker : options_.workers) {
    WorkerStatus status;
    status.name = worker.name;
    status.capacity = worker.capacity;
    worker_states_.push_back(status);
  }

  fs::create_directories(options_.work_dir);
}

std::string Coordinator::overlay_path(std::uint64_t shard) const {
  return options_.work_dir + "/shard-" + std::to_string(shard) + ".spec";
}

std::string Coordinator::output_path(std::uint64_t shard,
                                     unsigned attempt) const {
  return options_.work_dir + "/shard-" + std::to_string(shard) +
         ".attempt-" + std::to_string(attempt) + ".out";
}

std::vector<std::string> Coordinator::worker_argv(
    const WorkerSpec& worker, std::uint64_t shard) const {
  std::vector<std::string> argv;
  if (worker.kind == WorkerSpec::Kind::kExec) argv = worker.exec_prefix;
  argv.push_back(options_.cli);
  argv.push_back("--spec=" + overlay_path(shard));
  if (options_.worker_cache) {
    argv.push_back("--cache=" + options_.work_dir + "/cache-" + worker.name);
  }
  return argv;
}

CoordStatus Coordinator::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CoordStatus status;
  status.state = run_state_;
  status.spec_hash = spec_hash_;
  status.shards = shard_states_.size();
  for (const ShardStatus& shard : shard_states_) {
    if (shard.state == ShardStatus::State::kDone) ++status.completed;
    if (shard.state == ShardStatus::State::kRunning) ++status.running;
    if (shard.state == ShardStatus::State::kPending) ++status.pending;
  }
  status.attempts = attempts_total_;
  status.shard_states = shard_states_;
  status.worker_states = worker_states_;
  return status;
}

struct Coordinator::Attempt {
  std::uint64_t shard = 0;
  std::size_t worker = 0;
  pid_t pid = -1;
  unsigned number = 1;  // 1-based attempt count for this shard
  std::string out_path;
  std::uintmax_t last_size = 0;
  std::chrono::steady_clock::time_point last_progress;
};

CoordReport Coordinator::run(std::ostream& out) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UCR_REQUIRE(!ran_, "Coordinator::run() is single-shot");
    ran_ = true;
    run_state_ = "running";
  }

  const std::uint64_t shards = shard_rows_.size();
  const std::string base_abs =
      fs::absolute(fs::path(options_.spec_path)).string();
  for (std::uint64_t i = 0; i < shards; ++i) {
    std::ofstream overlay(overlay_path(i));
    UCR_REQUIRE(overlay.is_open(),
                "cannot write shard overlay '" + overlay_path(i) + "'");
    overlay << shard_overlay_text(base_abs, i, shards, options_.format,
                                  options_.worker_threads);
  }

  std::deque<std::uint64_t> pending;
  for (std::uint64_t i = 0; i < shards; ++i) pending.push_back(i);
  std::vector<std::set<std::size_t>> failed_on(shards);
  std::vector<std::string> accepted(shards);
  std::vector<Attempt> in_flight;
  CoordReport report;
  report.spec_hash = spec_hash_;
  report.shards = shards;
  std::uint64_t completed = 0;
  std::size_t round_robin = 0;

  const auto kill_in_flight = [&] {
    for (const Attempt& attempt : in_flight) kill_process(attempt.pid);
    in_flight.clear();
  };

  // One attempt ended (exit, bad output, or heartbeat kill). Accept it or
  // requeue the shard; throws — loudly, after killing every other worker —
  // when the shard is out of attempts.
  const auto finish_attempt = [&](const Attempt& attempt,
                                  std::optional<int> exit_code,
                                  const std::string& why) {
    const std::uint64_t shard = attempt.shard;
    std::string failure = why;
    if (failure.empty() && exit_code.has_value() && *exit_code > 1) {
      failure = "worker exited " + std::to_string(*exit_code);
    }
    if (failure.empty()) {
      try {
        validate_shard_output(
            read_whole_file(attempt.out_path,
                            "shard " + std::to_string(shard)),
            format_, shard, shard_rows_[shard], spec_hash_);
      } catch (const ContractViolation& e) {
        failure = e.what();
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    if (failure.empty()) {
      accepted[shard] = attempt.out_path;
      shard_states_[shard].state = ShardStatus::State::kDone;
      shard_states_[shard].exit_code = *exit_code;
      if (*exit_code == 1) report.incomplete_runs = true;
      ++completed;
      return;
    }
    failed_on[shard].insert(attempt.worker);
    ++worker_states_[attempt.worker].failures;
    ++report.retries;
    const std::string worker_name = options_.workers[attempt.worker].name;
    if (shard_states_[shard].attempts >= options_.max_attempts) {
      shard_states_[shard].state = ShardStatus::State::kFailed;
      run_state_ = "failed";
      throw ContractViolation(
          "shard " + std::to_string(shard) + " failed " +
          std::to_string(shard_states_[shard].attempts) + "/" +
          std::to_string(options_.max_attempts) + " attempts; last on "
          "worker '" + worker_name + "': " + failure +
          "\nworker stderr tail:\n" + tail_of_file(attempt.out_path + ".log"));
    }
    shard_states_[shard].state = ShardStatus::State::kPending;
    pending.push_back(shard);
  };

  try {
    while (completed < shards) {
      // Dispatch: capacity-weighted round-robin, preferring workers that
      // have not already failed the shard (retry lands elsewhere whenever
      // the fleet allows it).
      for (std::size_t scan = 0; scan < pending.size();) {
        const std::uint64_t shard = pending[scan];
        std::size_t chosen = options_.workers.size();
        const bool everywhere_failed =
            failed_on[shard].size() >= options_.workers.size();
        for (std::size_t step = 0; step < options_.workers.size(); ++step) {
          const std::size_t candidate =
              (round_robin + step) % options_.workers.size();
          std::lock_guard<std::mutex> lock(mutex_);
          if (worker_states_[candidate].busy >=
              options_.workers[candidate].capacity) {
            continue;
          }
          if (!everywhere_failed && failed_on[shard].count(candidate) > 0) {
            continue;
          }
          chosen = candidate;
          break;
        }
        if (chosen == options_.workers.size()) {
          ++scan;  // no eligible worker free right now; try later shards
          continue;
        }
        round_robin = (chosen + 1) % options_.workers.size();
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(scan));

        Attempt attempt;
        attempt.shard = shard;
        attempt.worker = chosen;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          attempt.number = ++shard_states_[shard].attempts;
          ++attempts_total_;
          ++worker_states_[chosen].busy;
          shard_states_[shard].state = ShardStatus::State::kRunning;
          shard_states_[shard].worker = options_.workers[chosen].name;
        }
        ++report.attempts;
        attempt.out_path = output_path(shard, attempt.number);
        attempt.pid =
            spawn_process(worker_argv(options_.workers[chosen], shard),
                          attempt.out_path, attempt.out_path + ".log");
        attempt.last_progress = std::chrono::steady_clock::now();
        in_flight.push_back(std::move(attempt));
      }

      // Reap and heartbeat.
      for (std::size_t i = 0; i < in_flight.size();) {
        Attempt& attempt = in_flight[i];
        const std::optional<int> exit_code = try_wait(attempt.pid);
        std::string why;
        bool ended = exit_code.has_value();
        if (!ended) {
          std::error_code ec;
          const std::uintmax_t size =
              fs::file_size(attempt.out_path, ec);
          const auto now = std::chrono::steady_clock::now();
          if (!ec && size > attempt.last_size) {
            attempt.last_size = size;
            attempt.last_progress = now;
          } else if (std::chrono::duration<double>(now -
                                                   attempt.last_progress)
                         .count() > options_.heartbeat_seconds) {
            kill_process(attempt.pid);
            why = "no output progress for " +
                  std::to_string(options_.heartbeat_seconds) +
                  "s (heartbeat timeout) — worker killed";
            ended = true;
          }
        }
        if (!ended) {
          ++i;
          continue;
        }
        const Attempt finished = std::move(attempt);
        in_flight.erase(in_flight.begin() +
                        static_cast<std::ptrdiff_t>(i));
        {
          std::lock_guard<std::mutex> lock(mutex_);
          --worker_states_[finished.worker].busy;
        }
        finish_attempt(finished, exit_code, why);
      }

      if (completed < shards) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  } catch (...) {
    kill_in_flight();
    std::lock_guard<std::mutex> lock(mutex_);
    run_state_ = "failed";
    throw;
  }

  // Assemble: shard order, already validated at acceptance — the
  // concatenation is byte-identical to the unsharded run by the pinned
  // sharding contract (shard 0 carries the only header).
  for (std::uint64_t i = 0; i < shards; ++i) {
    const std::string text =
        read_whole_file(accepted[i], "shard " + std::to_string(i));
    out << text;
    report.rows += shard_rows_[i];
  }
  out.flush();

  std::lock_guard<std::mutex> lock(mutex_);
  run_state_ = "done";
  return report;
}

}  // namespace ucr::coord

// The distributed sweep coordinator — the driver the sharding contract
// was designed for (docs/ORCHESTRATOR.md).
//
// One Coordinator owns one sweep: it loads a base spec file, partitions
// the flattened grid into `--shard=i/N` work units, fans them out over a
// worker fleet (coord/workers.hpp) as ucr_cli child invocations, watches
// each worker with an output-progress heartbeat, retries failed or
// timed-out shards on other workers (bounded attempts, loud terminal
// failure), and concatenates the per-shard sinks in shard order. Each
// work unit is a spec *overlay* written to the work directory —
//
//   spec_version = 1
//   include = <base spec>
//   shard = i/N
//
// — so a worker runs the exact `ucr_cli --spec=FILE` code path every
// single-machine sweep runs, and the unit file is a one-line diff of the
// canonical sweep (exp/spec_io.hpp overlays).
//
// Correctness rests on contracts the repository already pins: shard
// concatenation is byte-identical to the unsharded run (shards emit their
// sink header on shard 0 only), and every archived row carries the
// shard-invariant spec_hash. The coordinator *checks* both on every
// shard before splicing it in — validate_shard_output() below — so a
// half-written file from a killed worker can never silently corrupt the
// assembled archive; it is retried like any other failure. Determinism
// is also what makes reassignment free of correctness risk: any worker,
// any attempt, produces the same bytes for shard i. With worker caches
// on, a retried shard on a warm worker replays its banked cells
// (svc/result_cache.hpp) instead of recomputing them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exp/spec_io.hpp"
#include "coord/workers.hpp"

namespace ucr::coord {

struct CoordinatorOptions {
  /// Base spec file. Must be unsharded (the coordinator owns the shard
  /// axis) and must select a streaming format — table output cannot be
  /// concatenated (override with `format` below).
  std::string spec_path;
  /// The fleet (coord/workers.hpp). Dispatch is capacity-weighted
  /// round-robin; a shard is retried on a worker that has not already
  /// failed it whenever one exists.
  std::vector<WorkerSpec> workers;
  /// Shard count; 0 means the fleet's total capacity. Clamped to the
  /// grid size so no shard is empty.
  std::uint64_t shards = 0;
  /// ucr_cli binary the workers run (exec workers receive it verbatim
  /// after their argv prefix).
  std::string cli = "ucr_cli";
  /// Scratch root for overlays, per-attempt outputs, worker logs and
  /// worker caches. Created if missing; never deleted here.
  std::string work_dir;
  /// Attempts per shard before the whole run fails loudly.
  unsigned max_attempts = 3;
  /// A running shard whose output file has not grown for this long is
  /// declared dead: the worker process is killed and the shard retried.
  double heartbeat_seconds = 60.0;
  /// Give each worker its own ResultCache under work_dir, so a retried
  /// shard on a warm worker replays banked cells instead of recomputing.
  bool worker_cache = true;
  /// Output format override written into the shard overlays (flag-wins,
  /// like ucr_cli --format). Required when the base spec says `table`.
  std::optional<exp::OutputFormat> format;
  /// Worker threads per shard invocation (0 keeps the spec's own value).
  unsigned worker_threads = 0;
};

/// One shard's scheduling state, as status() reports it.
struct ShardStatus {
  enum class State { kPending, kRunning, kDone, kFailed };

  std::uint64_t index = 0;
  State state = State::kPending;
  unsigned attempts = 0;
  /// Worker currently running (or last to run) this shard.
  std::string worker;
  /// Data rows this shard must produce (its compiled cell count).
  std::uint64_t rows = 0;
  /// Exit code of the accepted attempt; -1 before completion.
  int exit_code = -1;
};

const char* shard_state_name(ShardStatus::State state);

struct WorkerStatus {
  std::string name;
  unsigned capacity = 1;
  /// Shards currently in flight on this worker.
  unsigned busy = 0;
  /// Attempts that died on this worker (exit, validation, heartbeat).
  unsigned failures = 0;
};

/// Snapshot of the whole run, served over the control socket
/// (coord/control.hpp) and rendered by ucr_coordctl.
struct CoordStatus {
  /// "pending" | "running" | "done" | "failed".
  std::string state = "pending";
  std::string spec_hash;
  std::uint64_t shards = 0;
  std::uint64_t completed = 0;
  std::uint64_t running = 0;
  std::uint64_t pending = 0;
  /// Worker invocations launched so far; attempts - completed - running
  /// is the number of failures absorbed by retries.
  std::uint64_t attempts = 0;
  std::vector<ShardStatus> shard_states;
  std::vector<WorkerStatus> worker_states;
};

/// Final accounting of a successful run().
struct CoordReport {
  std::string spec_hash;
  std::uint64_t shards = 0;
  std::uint64_t attempts = 0;
  /// Attempts that failed and were re-dispatched.
  std::uint64_t retries = 0;
  /// Total data rows spliced into the output.
  std::uint64_t rows = 0;
  /// True when any shard exited 1 (cells with incomplete runs — the
  /// output is still complete and byte-exact; mirrors ucr_cli's exit 1).
  bool incomplete_runs = false;
};

/// Validates one shard's sink output before it is spliced into the
/// assembled archive: shard 0 (and only shard 0) opens with the CSV
/// header, the data-row count equals `expected_rows`, and every row
/// carries `hash` as its spec_hash (a whole CSV field / the JSONL
/// "spec_hash" member). Throws ContractViolation naming the shard and
/// the first offending row.
void validate_shard_output(const std::string& text, exp::OutputFormat format,
                           std::uint64_t shard_index,
                           std::uint64_t expected_rows,
                           const std::string& hash);

/// The overlay text of one work unit: include = base, shard = i/N, plus
/// the format/threads overrides when set.
std::string shard_overlay_text(const std::string& base_path,
                               std::uint64_t index, std::uint64_t count,
                               const std::optional<exp::OutputFormat>& format,
                               unsigned worker_threads);

class Coordinator {
 public:
  /// Loads and compiles the base spec (every spec error surfaces here,
  /// before any worker starts), clamps the shard count, and prepares the
  /// work directory. Throws ContractViolation on a sharded or
  /// table-format base spec, an empty fleet, or max_attempts == 0.
  explicit Coordinator(CoordinatorOptions options);

  /// Runs the sweep to completion: dispatch, heartbeat, retry,
  /// concatenate-with-validation into `out`. Returns the final report;
  /// throws ContractViolation (after killing every in-flight worker)
  /// when a shard exhausts max_attempts or the output fails validation.
  /// Call at most once.
  CoordReport run(std::ostream& out);

  /// Thread-safe snapshot for the control plane; callable during run().
  CoordStatus status() const;

  /// The spec_hash of the compiled base sweep.
  const std::string& spec_hash() const { return spec_hash_; }

  /// Effective shard count after clamping.
  std::uint64_t shards() const { return shard_rows_.size(); }

 private:
  struct Attempt;

  std::string overlay_path(std::uint64_t shard) const;
  std::string output_path(std::uint64_t shard, unsigned attempt) const;
  std::vector<std::string> worker_argv(const WorkerSpec& worker,
                                       std::uint64_t shard) const;

  CoordinatorOptions options_;
  exp::SpecFile base_;
  exp::OutputFormat format_ = exp::OutputFormat::kJsonl;
  std::string spec_hash_;
  /// Expected data rows per shard (compiled cell counts).
  std::vector<std::uint64_t> shard_rows_;

  mutable std::mutex mutex_;
  std::vector<ShardStatus> shard_states_;
  std::vector<WorkerStatus> worker_states_;
  std::string run_state_ = "pending";
  std::uint64_t attempts_total_ = 0;
  bool ran_ = false;
};

}  // namespace ucr::coord

// The worker fleet description consumed by the sweep coordinator
// (coord/coordinator.hpp): a line-oriented text file, one worker per
// line, in the same loud-failure style as the spec format
// (exp/spec_io.hpp). Format, by example ('#' starts a comment):
//
//   local                       # fork/exec ucr_cli on this host
//   local capacity=2            # holds two shards in flight
//   exec: ssh node7 /opt/ucr/bin/ucr_cli-wrapper
//   exec capacity=4 name=slurm: srun --ntasks=1
//
// `local` workers run the coordinator's own ucr_cli binary as a child
// process. `exec` workers prepend the argv prefix after the ':' to the
// exact same ucr_cli invocation — the coordinator never knows about ssh
// or slurm, the prefix does (a wrapper script covers anything needing
// quoting; the prefix itself splits on whitespace). Options before the
// ':' (or after `local`):
//
//   capacity=N   shards the worker holds concurrently (default 1);
//                dispatch is capacity-weighted round-robin
//   name=STR     label in status output and log/cache paths
//                (default local-<n> / exec-<n> by position)
//
// docs/ORCHESTRATOR.md is the format reference.
#pragma once

#include <string>
#include <vector>

namespace ucr::coord {

/// One worker of the fleet.
struct WorkerSpec {
  enum class Kind { kLocal, kExec };

  Kind kind = Kind::kLocal;
  /// kExec: argv tokens prepended to the ucr_cli invocation.
  std::vector<std::string> exec_prefix;
  /// Concurrent shards this worker holds (>= 1).
  unsigned capacity = 1;
  /// Status / path label; unique across the fleet.
  std::string name;

  bool operator==(const WorkerSpec&) const = default;
};

/// Parses a workers file. Throws ContractViolation naming the offending
/// line on: unknown worker kind (with the two valid spellings), malformed
/// or duplicate options, capacity 0, an empty exec prefix, a duplicate
/// worker name, or an empty fleet.
std::vector<WorkerSpec> parse_workers(const std::string& text);

/// Reads `path` and parse_workers()s it; throws ContractViolation naming
/// the path when the file cannot be opened.
std::vector<WorkerSpec> load_workers_file(const std::string& path);

}  // namespace ucr::coord

// The coordinator's control plane: the same line-oriented JSON over
// AF_UNIX protocol the sweep daemon speaks (svc/server.hpp), scoped down
// to observation — a coordinator run is driven by ucr_coordd's command
// line, the socket only answers questions about it.
//
//   {"cmd":"ping"}    -> {"ok":true,"pong":true}
//   {"cmd":"status"}  -> {"ok":true,"state":...,"spec_hash":...,
//                         "shards":N,"completed":N,"running":N,
//                         "pending":N,"attempts":N,"workers":[
//                         {"name":...,"capacity":N,"busy":N,"failures":N}]}
//
// Any failure answers {"ok":false,"error":MESSAGE} and keeps the
// connection open. ucr_coordctl is the thin client.
#pragma once

#include <string>
#include <thread>

#include "coord/coordinator.hpp"

namespace ucr::coord {

/// The status reply's JSON text. The field names above are a tool
/// contract (scripts parse them); tests pin them exactly.
std::string coord_status_json(const CoordStatus& status);

/// Serves the control protocol on its own accept thread while the
/// Coordinator runs in the caller's thread. Coordinator::status() is
/// thread-safe, so the server holds only a const reference.
class ControlServer {
 public:
  /// Binds and listens on `socket_path` (replacing a stale socket file)
  /// and starts the accept thread. Throws ContractViolation when the
  /// bind fails.
  ControlServer(std::string socket_path, const Coordinator& coordinator);

  /// Stops the server if still running.
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Shuts the accept loop down, joins every connection handler, closes
  /// the listener and unlinks the socket path. Idempotent.
  void stop();

 private:
  std::string socket_path_;
  const Coordinator& coordinator_;
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace ucr::coord

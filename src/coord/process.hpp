// Child-process plumbing for the sweep coordinator: spawn an argv with
// stdout/stderr redirected to files, poll for exit without blocking, and
// kill stragglers. Deliberately minimal — the coordinator's scheduling
// loop (coord/coordinator.cpp) is the only consumer, and everything it
// needs from a worker is "running / exited with status / dead".
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace ucr::coord {

/// fork/execvp's `argv` (argv[0] resolved through PATH) with stdout
/// truncate-redirected to `stdout_path` and stderr append-redirected to
/// `stderr_path`. Returns the child pid; throws ContractViolation when
/// the fork fails. An exec failure inside the child surfaces as exit
/// status 127 (the shell convention), with the reason appended to
/// `stderr_path`.
pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::string& stdout_path,
                    const std::string& stderr_path);

/// Non-blocking reap: nullopt while the child is still running, else its
/// exit code (128 + signal for a signal death, mirroring the shell).
/// Throws ContractViolation when `pid` is not a child of this process.
std::optional<int> try_wait(pid_t pid);

/// SIGKILLs the child and reaps it (blocking — SIGKILL cannot be
/// ignored). Safe to call on an already-exited-but-unreaped child.
void kill_process(pid_t pid);

}  // namespace ucr::coord

#include "analysis/theory_checks.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ucr {

double fact3_lower(double x) {
  UCR_REQUIRE(x != 0.0 && std::fabs(x) < 1.0, "Fact 3 needs 0 < |x| < 1");
  return std::exp(x / (1.0 + x));
}

double fact3_upper(double x) {
  UCR_REQUIRE(x != 0.0 && std::fabs(x) < 1.0, "Fact 3 needs 0 < |x| < 1");
  return std::exp(x);
}

double fact4_f(double a, double x) {
  UCR_REQUIRE(a > 1.0, "Fact 4 needs a > 1");
  UCR_REQUIRE(x > 1.0, "Fact 4 needs x > 1");
  return (a / x) * std::pow(1.0 - 1.0 / x, a - 1.0);
}

double at_success_probability(std::uint64_t kappa, double kappa_tilde) {
  UCR_REQUIRE(kappa >= 1, "at least one station required");
  UCR_REQUIRE(kappa_tilde > 1.0, "estimator must exceed 1");
  const double kd = static_cast<double>(kappa);
  return (kd / kappa_tilde) *
         std::exp((kd - 1.0) * std::log1p(-1.0 / kappa_tilde));
}

double lemma1_failure_bound(std::uint64_t m, double delta) {
  UCR_REQUIRE(delta > 0.0 && delta < 1.0 / std::exp(1.0),
              "Lemma 1 requires 0 < delta < 1/e");
  UCR_REQUIRE(m >= 1, "at least one ball required");
  const double e = std::exp(1.0);
  const double md = static_cast<double>(m);
  const double d = 1.0 - e * delta;
  const double bound =
      std::exp(-md * d * d / (2.0 * e)) * e * std::sqrt(md);
  return bound > 1.0 ? 1.0 : bound;
}

double lemma4_sigma_threshold(double kappa_r1, double alpha, double t,
                              double delta, double beta) {
  UCR_REQUIRE(beta > 1.0, "beta must exceed 1");
  const double ln_b = std::log(beta);
  UCR_REQUIRE((delta + 1.0) * ln_b > 1.0,
              "Lemma 4 requires (delta + 1) ln(beta) > 1");
  const double denom = (delta + 1.0) * ln_b - 1.0;
  return kappa_r1 * (ln_b - 1.0) / denom -
         (alpha + 1.0 - t) * (ln_b - 1.0) / denom;
}

}  // namespace ucr

// Closed-form quantities from the paper's analysis.
//
// These back the "Analysis" column of Table 1, the Lemma 1 threshold used
// by the balls-in-bins bench, and the bound-compliance property tests.
#pragma once

#include <cstdint>
#include <string>

namespace ucr {

/// e — the smallest ratio achievable by any fair protocol (Section 5).
double fair_optimal_ratio();

// ---------------------------------------------------------------- Theorem 1

/// Linear coefficient of One-Fail Adaptive: 2(delta + 1). For the paper's
/// delta = 2.72 this is 7.44 ("7.4" in Table 1).
double one_fail_ratio(double delta);

/// Full Theorem 1 bound 2(delta+1)k + c·log2(k)^2 for an explicit choice of
/// the (paper-unspecified) constant of the additive term.
double one_fail_bound(double delta, std::uint64_t k, double log_term_c);

/// Failure-probability bound of Theorem 1: 2/(1+k).
double one_fail_error(std::uint64_t k);

// ---------------------------------------------------------------- Theorem 2

/// Linear coefficient of Exp Back-on/Back-off: 4(1 + 1/delta). For the
/// paper's delta = 0.366 this is 14.93 ("14.9" in Table 1).
double exp_backon_ratio(double delta);

/// Full Theorem 2 bound 4(1 + 1/delta)k.
double exp_backon_bound(double delta, std::uint64_t k);

// ------------------------------------------------------------------ Lemma 1

/// Minimum m for Lemma 1: (2e/(1-e·delta)^2)(1 + (beta + 1/2) ln k).
/// Throwing m >= this many balls into w >= m bins yields at least delta·m
/// singleton bins with probability at least 1 - 1/k^beta.
double lemma1_min_m(double delta, double beta, std::uint64_t k);

// --------------------------------------------------- One-Fail Adaptive guts

/// Round threshold tau = 300·delta·ln(1+k) (Appendix A).
double ofa_tau(double delta, std::uint64_t k);

/// gamma = (delta-1)(3-delta)/(delta-2) (Lemma 3).
double ofa_gamma(double delta);

/// S = 2·sum_{j=0..4} (5/6)^j · tau (Lemma 5).
double ofa_big_s(double delta, std::uint64_t k);

/// M — the AT->BT hand-off threshold of Lemmas 5/6:
/// ((delta+1)·ln(delta) - 1)/(ln(delta) - 1) · S
///   + ((gamma + 2·tau + 1)·ln(delta) - 1)/(ln(delta) - 1).
double ofa_big_m(double delta, std::uint64_t k);

// --------------------------------------------------------- baseline labels

/// [7]'s analysis ratio for Log-Fails Adaptive as reported in Table 1:
/// 7.8 for xi_t = 1/2 and 4.4 for xi_t = 1/10 (interpolated as
/// (e + 1 + xi) / (1 - xi_t) with xi = 0.18 resp. 0.20).
double log_fails_analysis_ratio(double xi_t);

/// The LogLog-Iterated Back-off asymptotic shape lglg(k)/lglglg(k)
/// (its Table-1 "Analysis" cell is the expression, not a constant).
double loglog_ratio_shape(std::uint64_t k);

/// The Table-1 "Analysis" cell rendered as the paper prints it, keyed by
/// the registry's protocol names (e.g. "One-Fail Adaptive" -> "7.4",
/// "LogLog-Iterated Back-off" -> "Th(loglog k/logloglog k)").
std::string analysis_cell(const std::string& protocol_name);

}  // namespace ucr

#include "analysis/bounds.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathx.hpp"

namespace ucr {

double fair_optimal_ratio() { return std::exp(1.0); }

double one_fail_ratio(double delta) {
  UCR_REQUIRE(delta > 0.0, "delta must be positive");
  return 2.0 * (delta + 1.0);
}

double one_fail_bound(double delta, std::uint64_t k, double log_term_c) {
  UCR_REQUIRE(k >= 1, "k must be positive");
  UCR_REQUIRE(log_term_c >= 0.0, "additive-term constant must be >= 0");
  const double lg = log2x(static_cast<double>(k) + 1.0);
  return one_fail_ratio(delta) * static_cast<double>(k) + log_term_c * lg * lg;
}

double one_fail_error(std::uint64_t k) {
  return 2.0 / (1.0 + static_cast<double>(k));
}

double exp_backon_ratio(double delta) {
  UCR_REQUIRE(delta > 0.0 && delta < 1.0 / std::exp(1.0),
              "Theorem 2 requires 0 < delta < 1/e");
  return 4.0 * (1.0 + 1.0 / delta);
}

double exp_backon_bound(double delta, std::uint64_t k) {
  return exp_backon_ratio(delta) * static_cast<double>(k);
}

double lemma1_min_m(double delta, double beta, std::uint64_t k) {
  UCR_REQUIRE(delta > 0.0 && delta < 1.0 / std::exp(1.0),
              "Lemma 1 requires 0 < delta < 1/e");
  UCR_REQUIRE(beta > 0.0, "Lemma 1 requires beta > 0");
  UCR_REQUIRE(k >= 2, "Lemma 1 threshold needs k >= 2");
  const double e = std::exp(1.0);
  const double denom = 1.0 - e * delta;
  return (2.0 * e / (denom * denom)) *
         (1.0 + (beta + 0.5) * lnx(static_cast<double>(k)));
}

double ofa_tau(double delta, std::uint64_t k) {
  UCR_REQUIRE(delta > 0.0, "delta must be positive");
  return 300.0 * delta * lnx(1.0 + static_cast<double>(k));
}

double ofa_gamma(double delta) {
  UCR_REQUIRE(delta > 2.0, "gamma is defined for delta > 2");
  return (delta - 1.0) * (3.0 - delta) / (delta - 2.0);
}

double ofa_big_s(double delta, std::uint64_t k) {
  double sum = 0.0;
  double term = 1.0;
  for (int j = 0; j <= 4; ++j) {
    sum += term;
    term *= 5.0 / 6.0;
  }
  return 2.0 * sum * ofa_tau(delta, k);
}

double ofa_big_m(double delta, std::uint64_t k) {
  UCR_REQUIRE(delta > std::exp(1.0), "Lemma 5 requires delta > e");
  const double ln_delta = lnx(delta);
  UCR_CHECK(ln_delta > 1.0, "ln(delta) > 1 must hold for delta > e");
  const double s = ofa_big_s(delta, k);
  const double tau = ofa_tau(delta, k);
  const double gamma = ofa_gamma(delta);
  return ((delta + 1.0) * ln_delta - 1.0) / (ln_delta - 1.0) * s +
         ((gamma + 2.0 * tau + 1.0) * ln_delta - 1.0) / (ln_delta - 1.0);
}

double log_fails_analysis_ratio(double xi_t) {
  UCR_REQUIRE(xi_t > 0.0 && xi_t < 1.0, "xi_t must be in (0, 1)");
  // (e + 1 + xi) / (1 - xi_t); xi as used in the paper's Table 1 rows.
  const double e = std::exp(1.0);
  const double xi = xi_t >= 0.5 ? 0.182 : 0.2;
  return (e + 1.0 + xi) / (1.0 - xi_t);
}

double loglog_ratio_shape(std::uint64_t k) {
  UCR_REQUIRE(k >= 16, "lglg/lglglg shape needs k >= 16");
  const double lglg = log2x(log2x(static_cast<double>(k)));
  const double lglglg = log2x(lglg);
  UCR_REQUIRE(lglglg > 0.0, "shape undefined where lglglg(k) <= 0");
  return lglg / lglglg;
}

std::string analysis_cell(const std::string& protocol_name) {
  if (protocol_name == "Log-Fails Adaptive (2)") return "7.8";
  if (protocol_name == "Log-Fails Adaptive (10)") return "4.4";
  if (protocol_name == "One-Fail Adaptive") return "7.4";
  if (protocol_name == "Exp Back-on/Back-off") return "14.9";
  if (protocol_name == "LogLog-Iterated Back-off")
    return "Th(lglg k/lglglg k)";
  if (protocol_name == "Known-k genie (1/k)") return "2.72 (= e)";
  return "-";
}

}  // namespace ucr

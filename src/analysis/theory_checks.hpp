// Executable forms of the mathematical ingredients of the paper's analysis
// (Appendix A), so the proofs' building blocks can be validated numerically
// by the test suite and the lemma benches:
//
//  * Fact 3  — e^{x/(1+x)} <= 1+x <= e^x for 0 < |x| < 1;
//  * Fact 4  — f(x) = (a/x)(1-1/x)^{a-1} is non-decreasing for x < a and
//              maximized at x = a;
//  * the slot success probability Pr(X = 1) = (kappa/kappa~)
//              (1 - 1/kappa~)^{kappa-1} that Lemmas 2-4 reason about;
//  * Lemma 1's failure-probability bound exp(-m(1-e*delta)^2/(2e))·e·sqrt(m)
//    (the Poisson-approximation bound corrected to the exact case).
#pragma once

#include <cstdint>

namespace ucr {

/// Fact 3 lower bound: e^{x/(1+x)}. Requires 0 < |x| < 1.
double fact3_lower(double x);

/// Fact 3 upper bound: e^x. Requires 0 < |x| < 1.
double fact3_upper(double x);

/// Fact 4's function f(x) = (a/x)(1 - 1/x)^{a-1}, for x > 1, a > 1.
double fact4_f(double a, double x);

/// Probability that a slot is successful when kappa stations each transmit
/// with probability 1/kappa_tilde: (kappa/kappa~)(1 - 1/kappa~)^{kappa-1}.
/// This is the Pr(X_{r,t} = 1) of the Appendix. Requires kappa >= 1 and
/// kappa_tilde > 1.
double at_success_probability(std::uint64_t kappa, double kappa_tilde);

/// Lemma 1's bound on Pr(#singleton bins < delta*m) when m balls are thrown
/// into m bins: exp(-m(1-e*delta)^2/(2e)) * e * sqrt(m) (clamped to 1).
/// Requires 0 < delta < 1/e.
double lemma1_failure_bound(std::uint64_t m, double delta);

/// Lemma 4's sigma threshold: the number of deliveries up to AT step t of a
/// round that keeps the success probability >= 1/beta, given kappa_{r,1},
/// alpha and t (see the Appendix):
///   sigma <= kappa_{r,1} (ln b - 1)/((d+1) ln b - 1)
///            - (alpha + 1 - t)(ln b - 1)/((d+1) ln b - 1).
/// Requires (delta + 1) ln(beta) > 1.
double lemma4_sigma_threshold(double kappa_r1, double alpha, double t,
                              double delta, double beta);

}  // namespace ucr

#include "common/strings.hpp"

#include <cctype>

namespace ucr {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

}  // namespace ucr

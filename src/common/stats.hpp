// Statistics toolkit for the evaluation harness.
#pragma once

#include <cstdint>
#include <vector>

namespace ucr {

/// Single-pass running moments (Welford). Numerically stable; supports merge
/// so that per-run statistics can be combined across experiment shards.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Descriptive summary of a sample (copies and sorts the data once).
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(n)); 0 when count < 2.
  double ci95_halfwidth = 0.0;
};

/// Builds a Summary from a sample. Empty input yields a zero Summary.
Summary summarize(const std::vector<double>& sample);

/// Linear-interpolation quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Pearson chi-square statistic for observed vs expected counts.
/// Bins with expected < 1e-12 must have observed == 0 (checked).
double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected);

/// Jain's fairness index (sum x)^2 / (n * sum x^2) in (0, 1]; 1 = perfectly
/// even. Used on per-message latencies in the dynamic-arrival experiments.
/// Requires a non-empty sample with non-negative values and positive sum.
double jain_fairness_index(const std::vector<double>& sample);

}  // namespace ucr

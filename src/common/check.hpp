// Lightweight contract checking for the ucr library.
//
// UCR_CHECK / UCR_REQUIRE are always-on (release builds included): the
// simulation engines are the measurement instrument of this reproduction,
// so silent state corruption is worse than the nanoseconds these cost.
// Violations throw ucr::ContractViolation with file:line context so that
// tests can assert on misuse of public APIs.
#pragma once

#include <stdexcept>
#include <string>

namespace ucr {

/// Thrown when a UCR_REQUIRE (precondition) or UCR_CHECK (invariant) fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace ucr

/// Precondition on arguments of a public API. Throws ContractViolation.
#define UCR_REQUIRE(expr, message)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ucr::detail::contract_failure("precondition", #expr, __FILE__,    \
                                      __LINE__, (message));               \
    }                                                                     \
  } while (false)

/// Internal invariant. Throws ContractViolation.
#define UCR_CHECK(expr, message)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ucr::detail::contract_failure("invariant", #expr, __FILE__,       \
                                      __LINE__, (message));               \
    }                                                                     \
  } while (false)

// Column-aligned plain-text tables for the benchmark harnesses.
//
// The paper's Table 1 and the per-figure series are reported on stdout in a
// format meant to be diffed against EXPERIMENTS.md, so formatting lives in
// the library rather than in each harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ucr {

/// Simple right-aligned text table. Usage:
///   Table t({"k", "steps", "ratio"});
///   t.add_row({"10", "40", "4.0"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with a header separator; columns sized to the widest cell.
  void print(std::ostream& os) const;

  /// Renders the whole table to a string (testing convenience).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helper: `format_double(3.14159, 2) == "3.14"`.
std::string format_double(double v, int decimals);

/// Shortest decimal string that parses back (strtod) to exactly `v` —
/// std::to_chars shortest round-trip. The number format of spec files
/// (exp/spec_io.hpp), where parse(to_text(s)) must recover every
/// parameter bit for bit; fixed-decimals formatting would truncate, e.g.,
/// a Poisson rate of 1e-7 to "0.000000".
std::string format_double_shortest(double v);

/// Engineering formatting for slot counts: integers below 10^15, otherwise
/// scientific with three significant digits.
std::string format_count(double v);

}  // namespace ucr

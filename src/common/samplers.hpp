// Exact discrete samplers used by the aggregate simulation engine.
//
// The fair-protocol engine replaces per-station coin flips with draws of the
// *number of transmitters* in a slot. Two regimes:
//
//  * slot-probability protocols only need the category {0, 1, >=2}, sampled
//    in O(1) from the closed-form probabilities (see sample_slot_category);
//  * window protocols need the exact transmitter count, i.e. a true
//    Binomial(n, p) sample for n up to 10^7 and arbitrary p.
//
// Binomial sampling is implemented from scratch (std::binomial_distribution
// is not reproducible across standard libraries):
//  * inversion (CDF walk) when n*min(p,1-p) < 12 — expected O(np) work;
//  * BTRS, Hörmann's transformed-rejection algorithm with squeeze
//    ("The generation of binomial random variates", W. Hörmann, 1993),
//    otherwise — exact, O(1) expected work.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace ucr {

/// Outcome category of a slot where m stations transmit independently
/// with probability p each (matches channel::SlotOutcome semantics).
enum class SlotCategory : std::uint8_t {
  kSilence = 0,
  kSuccess = 1,
  kCollision = 2
};

/// Draws the category of Binomial(m, p) in O(1): 0 -> silence,
/// 1 -> success, >=2 -> collision.
SlotCategory sample_slot_category(Xoshiro256& rng, std::uint64_t m, double p);

/// Exact Binomial(n, p) sample. Requires 0 <= p <= 1.
std::uint64_t sample_binomial(Xoshiro256& rng, std::uint64_t n, double p);

/// Number of failures before the first success in i.i.d. Bernoulli(p)
/// trials, truncated at `limit`: returns min(Geometric(p), limit), where
/// Geometric(p) counts failures (support 0, 1, 2, ...). Returns `limit`
/// when p == 0. Requires 0 <= p <= 1. Consumes exactly one uniform draw —
/// this is what lets the batched fair engine resolve a whole constant-p
/// run of slots in O(1).
std::uint64_t sample_geometric_failures(Xoshiro256& rng, double p,
                                        std::uint64_t limit);

/// Exact Poisson(lambda) sample (inversion for small lambda, split-and-sum
/// recursion for large lambda). Used by the dynamic-arrival workload.
std::uint64_t sample_poisson(Xoshiro256& rng, double lambda);

/// Bulk uniform bounded draws: fills out[0..n) with values in [0, bound),
/// consuming the generator's u64 stream exactly as n sequential
/// next_below(bound) calls would (same outputs, same state advance) — the
/// SoA window paths of the batched fair engine draw whole per-station
/// choice arrays through this instead of one call per station, and the
/// bit-identity of the batched engine's pinned outputs survives because
/// the consumption order is unchanged.
///
/// Works for any generator with fill_u64/next_u64 (Xoshiro256, CounterRng).
/// Requires bound > 0.
template <typename Rng>
void fill_uniform_below(Rng& rng, std::uint64_t bound, std::uint64_t* out,
                        std::size_t n) {
  UCR_REQUIRE(bound > 0, "fill_uniform_below requires a positive bound");
  // Lemire's unbiased bounded generation over a prefetched block of raw
  // u64s. Each round fetches exactly one u64 per still-needed output; the
  // rare rejection retries consume the following buffered values (the
  // buffer is a stream prefix, so order is preserved), falling back to
  // direct draws when the block is drained, and the shortfall of outputs
  // is covered by the next round.
  constexpr std::size_t kChunk = 2048;
  std::uint64_t buf[kChunk];
  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t chunk = std::min(n - produced, kChunk);
    rng.fill_u64(buf, chunk);
    std::size_t bi = 0;
    while (bi < chunk) {
      std::uint64_t x = buf[bi++];
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      auto lo = static_cast<std::uint64_t>(m);
      if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
          x = bi < chunk ? buf[bi++] : rng.next_u64();
          m = static_cast<__uint128_t>(x) * bound;
          lo = static_cast<std::uint64_t>(m);
        }
      }
      out[produced++] = static_cast<std::uint64_t>(m >> 64);
    }
  }
}

namespace detail {
/// Inversion sampler; exposed for targeted unit tests. Requires
/// n * min(p, 1-p) small enough that (1-p)^n does not underflow.
std::uint64_t binomial_inversion(Xoshiro256& rng, std::uint64_t n, double p);

/// BTRS transformed-rejection sampler; exposed for targeted unit tests.
/// Requires p <= 0.5 and n*p >= 10.
std::uint64_t binomial_btrs(Xoshiro256& rng, std::uint64_t n, double p);
}  // namespace detail

}  // namespace ucr

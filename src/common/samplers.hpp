// Exact discrete samplers used by the aggregate simulation engine.
//
// The fair-protocol engine replaces per-station coin flips with draws of the
// *number of transmitters* in a slot. Two regimes:
//
//  * slot-probability protocols only need the category {0, 1, >=2}, sampled
//    in O(1) from the closed-form probabilities (see sample_slot_category);
//  * window protocols need the exact transmitter count, i.e. a true
//    Binomial(n, p) sample for n up to 10^7 and arbitrary p.
//
// Binomial sampling is implemented from scratch (std::binomial_distribution
// is not reproducible across standard libraries):
//  * inversion (CDF walk) when n*min(p,1-p) < 12 — expected O(np) work;
//  * BTRS, Hörmann's transformed-rejection algorithm with squeeze
//    ("The generation of binomial random variates", W. Hörmann, 1993),
//    otherwise — exact, O(1) expected work.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ucr {

/// Outcome category of a slot where m stations transmit independently
/// with probability p each (matches channel::SlotOutcome semantics).
enum class SlotCategory : std::uint8_t {
  kSilence = 0,
  kSuccess = 1,
  kCollision = 2
};

/// Draws the category of Binomial(m, p) in O(1): 0 -> silence,
/// 1 -> success, >=2 -> collision.
SlotCategory sample_slot_category(Xoshiro256& rng, std::uint64_t m, double p);

/// Exact Binomial(n, p) sample. Requires 0 <= p <= 1.
std::uint64_t sample_binomial(Xoshiro256& rng, std::uint64_t n, double p);

/// Number of failures before the first success in i.i.d. Bernoulli(p)
/// trials, truncated at `limit`: returns min(Geometric(p), limit), where
/// Geometric(p) counts failures (support 0, 1, 2, ...). Returns `limit`
/// when p == 0. Requires 0 <= p <= 1. Consumes exactly one uniform draw —
/// this is what lets the batched fair engine resolve a whole constant-p
/// run of slots in O(1).
std::uint64_t sample_geometric_failures(Xoshiro256& rng, double p,
                                        std::uint64_t limit);

/// Exact Poisson(lambda) sample (inversion for small lambda, split-and-sum
/// recursion for large lambda). Used by the dynamic-arrival workload.
std::uint64_t sample_poisson(Xoshiro256& rng, double lambda);

namespace detail {
/// Inversion sampler; exposed for targeted unit tests. Requires
/// n * min(p, 1-p) small enough that (1-p)^n does not underflow.
std::uint64_t binomial_inversion(Xoshiro256& rng, std::uint64_t n, double p);

/// BTRS transformed-rejection sampler; exposed for targeted unit tests.
/// Requires p <= 0.5 and n*p >= 10.
std::uint64_t binomial_btrs(Xoshiro256& rng, std::uint64_t n, double p);
}  // namespace detail

}  // namespace ucr

#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/check.hpp"

namespace ucr {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed_keys) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? "1" : arg.substr(eq + 1);
    UCR_REQUIRE(std::find(allowed_keys.begin(), allowed_keys.end(), key) !=
                    allowed_keys.end(),
                "unknown option --" + key);
    values_[key] = value;
  }
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::strtoull(v->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::uint64_t parse_u64_strict(const std::string& text,
                               const std::string& source) {
  UCR_REQUIRE(!text.empty() && text.find_first_not_of("0123456789") ==
                                   std::string::npos,
              source + " must be an unsigned integer, got '" + text + "'");
  errno = 0;
  const std::uint64_t value = std::strtoull(text.c_str(), nullptr, 10);
  UCR_REQUIRE(errno == 0, source + " is out of range: '" + text + "'");
  return value;
}

unsigned parse_thread_count(const std::string& text,
                            const std::string& source) {
  UCR_REQUIRE(!text.empty(), source + " must be a positive integer (or be "
                                 "omitted to use all hardware threads)");
  std::uint64_t value = 0;
  for (const char c : text) {
    UCR_REQUIRE(c >= '0' && c <= '9',
                source + " must be a positive integer, got '" + text + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    UCR_REQUIRE(value <= 1'000'000,
                source + " is implausibly large: '" + text + "'");
  }
  UCR_REQUIRE(value > 0, source + " must be at least 1 (omit it to use all "
                                      "hardware threads), got '" +
                             text + "'");
  return static_cast<unsigned>(value);
}

unsigned thread_count_option(const CliArgs& args, const char* env_name) {
  if (const auto flag = args.get("threads")) {
    return parse_thread_count(*flag, "--threads");
  }
  if (env_name != nullptr) {
    const char* env = std::getenv(env_name);
    if (env != nullptr && *env != '\0') {
      return parse_thread_count(env, env_name);
    }
  }
  return 0;  // auto: all hardware threads
}

std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtod(v, nullptr);
}

}  // namespace ucr

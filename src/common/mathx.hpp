// Small numeric helpers shared across the library.
//
// Naming note: `mathx` avoids clashing with <math.h>. Everything here is
// deterministic, allocation-free and safe on the boundary values the
// protocols produce (m up to 10^7, probabilities down to ~1e-8).
#pragma once

#include <cmath>
#include <cstdint>

namespace ucr {

/// Base-2 logarithm (the paper's `log` is log2 throughout).
double log2x(double x);

/// Natural logarithm wrapper (kept for symmetric naming in formulas).
double lnx(double x);

/// floor(log2(v)) for v >= 1.
int floor_log2_u64(std::uint64_t v);

/// ceil(log2(v)) for v >= 1.
int ceil_log2_u64(std::uint64_t v);

/// (1-p)^m computed stably via exp(m*log1p(-p)); requires 0 <= p <= 1, m >= 0.
double pow_one_minus(double p, double m);

/// P[Binomial(m,p) = 0] — probability of a silent slot with m stations
/// transmitting independently with probability p.
double prob_silence(std::uint64_t m, double p);

/// P[Binomial(m,p) = 1] — probability of a successful slot.
double prob_success(std::uint64_t m, double p);

/// lg lg x clamped below at `floor_value` (> 0). The LogLog-Iterated
/// Back-off schedule needs lg lg w for small w where it is <= 0.
double loglog2_clamped(double x, double floor_value);

/// Saturating conversion double -> uint64 (negative -> 0).
std::uint64_t to_u64_saturating(double x);

/// Exact k from "10^i"-style sweep helper: returns true when `k` is a power
/// of ten (used by the Table 1 harness to label rows like the paper).
bool is_power_of_ten(std::uint64_t k);

/// Compensated accumulator (Neumaier's variant of Kahan summation).
///
/// Summing ~10^7 per-slot expectations of order 10^-7..1 naively loses up
/// to ~n*eps*|sum| of precision; the compensated sum keeps the error at
/// O(eps) independent of n. Used by the fair engines for
/// RunMetrics::expected_transmissions at paper scale (k up to 10^7).
class KahanSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    // Neumaier's branch: compensate with whichever operand lost digits.
    if (std::abs(sum_) >= std::abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  double value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace ucr

// Minimal JSON reading/writing for the service layer.
//
// The repository speaks line-oriented JSON in two places: the
// provenance-keyed result cache (svc/result_cache.hpp, one record per
// cell) and the sweep daemon's wire protocol (svc/server.hpp, one message
// per line). Both need exact round-trips of the numbers this codebase
// emits — u64 cell indices and shortest-round-trip doubles — so Value
// keeps every number as its raw token and converts on demand instead of
// funnelling everything through a lossy double.
//
// Scope: RFC 8259 syntax with two documented limits — \uXXXX escapes
// decode basic-plane codepoints only (no surrogate pairs; our own writers
// emit \u00XX for control characters and raw UTF-8 otherwise), and
// numbers are validated as JSON tokens but range-checked only at
// as_u64()/as_double() time. parse() requires the whole text to be one
// value; parse errors throw ContractViolation naming the byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ucr::json {

/// One parsed JSON value. Objects keep their members in document order
/// (duplicate keys are rejected at parse time).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }

  /// Typed accessors; each throws ContractViolation when the value is not
  /// of the requested type (or the number does not fit the target).
  bool as_bool() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;

  /// Raw token of a number, exactly as it appeared in the document.
  const std::string& number_token() const;

  /// Object member lookup: find() returns nullptr when absent; at()
  /// throws ContractViolation naming the key.
  const Value* find(const std::string& key) const;
  const Value& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

 private:
  friend Value parse(const std::string& text);
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  /// kNumber: raw token; kString: decoded text.
  std::string text_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses exactly one JSON value spanning the whole text (surrounding
/// whitespace allowed). Throws ContractViolation on malformed input,
/// trailing garbage, or duplicate object keys.
Value parse(const std::string& text);

/// Escapes text for embedding in a JSON string literal per RFC 8259
/// (backslash, quote, and control characters; everything else verbatim).
std::string escape(const std::string& text);

}  // namespace ucr::json

// Deterministic pseudo-random number generation for reproducible simulation.
//
// The library deliberately does not use std::mt19937 / std::*_distribution in
// its hot paths: their cross-platform output is not pinned for distributions,
// and reproducibility of every experiment byte-for-byte across standard
// libraries is a design requirement (EXPERIMENTS.md records exact numbers).
//
// Two generators, one stream-derivation rule:
//
//  * Xoshiro256 — xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64
//    per the authors' recommendation. The sequential workhorse of the
//    engines; every historical pinned number in EXPERIMENTS.md was drawn
//    from it.
//  * CounterRng — a counter-based generator (splitmix64 applied to
//    key + counter * golden-gamma): the n-th output is a pure function of
//    (key, n), so draws can be generated in bulk with no loop-carried
//    dependency (SIMD-friendly), random-accessed, and replayed from any
//    offset. CounterRng(seed) emits exactly the splitmix64 sequence for
//    initial state `seed`, which pins it to the published reference vectors.
//
// Independent streams for multi-run experiments are derived identically for
// both: `stream(seed, stream_id)` strongly mixes the (seed, stream_id) pair
// with mix64 and uses the result as the seed/key, so the two generators
// share one substream-exclusion contract (docs/ARCHITECTURE.md).
//
// The per-draw methods are defined inline here on purpose: the engines call
// them hundreds of millions of times per run, and an out-of-line call per
// draw costs more than the draw itself.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace ucr {

namespace detail {

inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace detail

/// splitmix64's golden-ratio increment.
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

/// splitmix64's output finalizer: the bijective mix applied to the state
/// after the gamma step. Exposed because CounterRng's output function is
/// exactly this mix over (key + counter * gamma).
inline std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// splitmix64 step: returns the next output and advances `state`.
/// Used for seeding and as a small standalone mixer.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  return splitmix64_mix(state += kSplitMix64Gamma);
}

/// Stateless mix of two 64-bit values into one (for stream derivation).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/// xoshiro256** 1.0 — fast, high-quality 256-bit-state PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard facilities in tests, but the library's own samplers only use
/// next_u64 / next_double / next_below.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed through splitmix64.
  explicit Xoshiro256(std::uint64_t seed = kDefaultSeed);

  /// Default seed used across examples; chosen arbitrarily but fixed.
  static constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;

  /// Derives an independent stream: equivalent to seeding with a value
  /// obtained by strongly mixing (seed, stream_id).
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = detail::rotl64(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = detail::rotl64(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    UCR_REQUIRE(bound > 0, "next_below requires a positive bound");
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  /// Consumes no randomness for p outside (0, 1) — protocols emit exact
  /// 0s and 1s (window choices), and those slots must stay draw-free.
  bool next_bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Bulk draws: identical to n sequential next_u64 / next_double calls
  /// (same outputs, same state advance), in one tight loop the optimizer
  /// can keep entirely in registers.
  void fill_u64(std::uint64_t* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next_u64();
  }
  void fill_double(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next_double();
  }

  /// Jump function: advances the state by 2^128 steps (for manual stream
  /// splitting; `stream()` is usually more convenient).
  void jump();

  // std::uniform_random_bit_generator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Exposes the raw state (testing/serialization).
  const std::array<std::uint64_t, 4>& state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Counter-based PRNG: output(n) = splitmix64_mix(key + (n + 1) * gamma).
///
/// The n-th draw is a pure function of (key, counter), which buys three
/// things Xoshiro256's sequential state cannot:
///
///  * bulk generation with no loop-carried dependency — fill_u64 /
///    fill_double auto-vectorize, feeding the SoA engine paths;
///  * O(1) random access (`at`) and repositioning (`seek`) — a parallel
///    worker can jump straight to its slice of a shared logical stream;
///  * trivially serializable state: (key, counter) is 16 bytes.
///
/// CounterRng(seed) reproduces the splitmix64 output sequence for initial
/// state `seed` exactly, so the published splitmix64 reference vectors pin
/// this generator cross-platform (tests/common/rng_test.cpp). Statistical
/// quality is splitmix64's: equidistributed 64-bit outputs, fine for
/// simulation draws, not for cryptography.
///
/// Stream derivation mirrors Xoshiro256: `stream(seed, stream_id)` keys the
/// generator with mix64(seed, stream_id). Keys are therefore scrambled —
/// two distinct (seed, stream_id) pairs land on sequence-overlapping keys
/// (key' = key + m * gamma for small |m|) only with birthday-bound
/// probability.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  /// Keys the generator directly; draws start at counter 0.
  explicit CounterRng(std::uint64_t key = Xoshiro256::kDefaultSeed)
      : key_(key) {}

  /// Derives an independent stream from (seed, stream_id), with the same
  /// mix64 derivation rule as Xoshiro256::stream.
  static CounterRng stream(std::uint64_t seed, std::uint64_t stream_id) {
    return CounterRng(mix64(seed, stream_id));
  }

  /// The `index`-th output (0-based) of the stream keyed by `key`, as a
  /// pure function — what fill_u64 and next_u64 are defined in terms of.
  static std::uint64_t draw(std::uint64_t key, std::uint64_t index) {
    return splitmix64_mix(key + (index + 1) * kSplitMix64Gamma);
  }

  /// Next 64 uniformly random bits; advances the counter by one.
  std::uint64_t next_u64() { return draw(key_, counter_++); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    UCR_REQUIRE(bound > 0, "next_below requires a positive bound");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]);
  /// draw-free outside (0, 1), matching Xoshiro256::next_bernoulli.
  bool next_bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Bulk draws: identical to n sequential next_u64 / next_double calls.
  /// Each output depends only on (key, counter + i), so the loop has no
  /// carried dependency and vectorizes.
  void fill_u64(std::uint64_t* out, std::size_t n) {
    const std::uint64_t base = counter_;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = draw(key_, base + i);
    }
    counter_ = base + n;
  }
  void fill_double(double* out, std::size_t n) {
    const std::uint64_t base = counter_;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(draw(key_, base + i) >> 11) * 0x1.0p-53;
    }
    counter_ = base + n;
  }

  /// Random access without advancing: the output `offset` draws ahead of
  /// the current position.
  std::uint64_t at(std::uint64_t offset) const {
    return draw(key_, counter_ + offset);
  }

  /// Repositions the stream: the next draw will be output number `counter`
  /// (0-based) of this key's sequence.
  void seek(std::uint64_t counter) { counter_ = counter; }

  std::uint64_t key() const { return key_; }
  /// Number of draws consumed so far (equivalently: the next draw's index).
  std::uint64_t counter() const { return counter_; }

  // std::uniform_random_bit_generator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t key_;
  std::uint64_t counter_ = 0;
};

/// Domain-separation stream id of the window adapter's per-station offset
/// draws (protocols/window_node.hpp). Any other protocol-private substream
/// keyed from an engine-drawn seed must use a distinct id so two substreams
/// derived from the same engine draw can never collide.
inline constexpr std::uint64_t kWindowOffsetStreamId = 0x77696E646F7721ULL;

/// Derives the per-station window-offset substream: one engine-stream draw
/// keys a CounterRng under kWindowOffsetStreamId. Both per-node engines
/// activate stations in arrival order with identical prior engine-stream
/// consumption, so a station receives the same substream — and therefore
/// the same pre-drawn in-window transmission slots — whichever engine runs
/// it. This is the defined consumption order that keeps the exact and
/// batched node engines bit-identical on window-protocol cells
/// (docs/ARCHITECTURE.md "Pre-drawn window slots").
inline CounterRng derive_window_offset_stream(Xoshiro256& engine_rng) {
  return CounterRng::stream(engine_rng.next_u64(), kWindowOffsetStreamId);
}

}  // namespace ucr

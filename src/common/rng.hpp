// Deterministic pseudo-random number generation for reproducible simulation.
//
// The library deliberately does not use std::mt19937 / std::*_distribution in
// its hot paths: their cross-platform output is not pinned for distributions,
// and reproducibility of every experiment byte-for-byte across standard
// libraries is a design requirement (EXPERIMENTS.md records exact numbers).
//
// Generator: xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64 per
// the authors' recommendation. Independent streams for multi-run experiments
// are derived with `Xoshiro256::stream(seed, stream_id)`, which seeds a fresh
// splitmix64 from a mixed (seed, stream_id) pair; streams are therefore
// statistically independent for all practical purposes.
#pragma once

#include <array>
#include <cstdint>

namespace ucr {

/// splitmix64 step: returns the next output and advances `state`.
/// Used for seeding and as a small standalone mixer.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Stateless mix of two 64-bit values into one (for stream derivation).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

/// xoshiro256** 1.0 — fast, high-quality 256-bit-state PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard facilities in tests, but the library's own samplers only use
/// next_u64 / next_double / next_below.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed through splitmix64.
  explicit Xoshiro256(std::uint64_t seed = kDefaultSeed);

  /// Default seed used across examples; chosen arbitrarily but fixed.
  static constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;

  /// Derives an independent stream: equivalent to seeding with a value
  /// obtained by strongly mixing (seed, stream_id).
  static Xoshiro256 stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// Jump function: advances the state by 2^128 steps (for manual stream
  /// splitting; `stream()` is usually more convenient).
  void jump();

  // std::uniform_random_bit_generator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Exposes the raw state (testing/serialization).
  const std::array<std::uint64_t, 4>& state() const { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace ucr

#include "common/mathx.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace ucr {

double log2x(double x) {
  UCR_REQUIRE(x > 0.0, "log2x requires a positive argument");
  return std::log2(x);
}

double lnx(double x) {
  UCR_REQUIRE(x > 0.0, "lnx requires a positive argument");
  return std::log(x);
}

int floor_log2_u64(std::uint64_t v) {
  UCR_REQUIRE(v >= 1, "floor_log2_u64 requires v >= 1");
  return 63 - __builtin_clzll(v);
}

int ceil_log2_u64(std::uint64_t v) {
  UCR_REQUIRE(v >= 1, "ceil_log2_u64 requires v >= 1");
  const int f = floor_log2_u64(v);
  return ((std::uint64_t{1} << f) == v) ? f : f + 1;
}

double pow_one_minus(double p, double m) {
  UCR_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  UCR_REQUIRE(m >= 0.0, "exponent must be non-negative");
  if (p == 0.0 || m == 0.0) return 1.0;
  if (p == 1.0) return 0.0;
  return std::exp(m * std::log1p(-p));
}

double prob_silence(std::uint64_t m, double p) {
  return pow_one_minus(p, static_cast<double>(m));
}

double prob_success(std::uint64_t m, double p) {
  UCR_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  if (m == 0 || p == 0.0) return 0.0;
  if (p == 1.0) return m == 1 ? 1.0 : 0.0;
  const double md = static_cast<double>(m);
  return md * p * std::exp((md - 1.0) * std::log1p(-p));
}

double loglog2_clamped(double x, double floor_value) {
  UCR_REQUIRE(floor_value > 0.0, "clamp floor must be positive");
  if (x <= 2.0) return floor_value;  // lg lg x undefined/<=0 below 4.
  const double ll = std::log2(std::log2(x));
  return ll < floor_value ? floor_value : ll;
}

std::uint64_t to_u64_saturating(double x) {
  if (!(x > 0.0)) return 0;
  if (x >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(x);
}

bool is_power_of_ten(std::uint64_t k) {
  if (k == 0) return false;
  while (k % 10 == 0) k /= 10;
  return k == 1;
}

}  // namespace ucr

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ucr {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const {
  UCR_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  UCR_REQUIRE(count_ >= 2, "variance requires at least two samples");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  UCR_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  UCR_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  UCR_REQUIRE(!sorted.empty(), "quantile of empty sample");
  UCR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of range");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());

  RunningStats rs;
  for (double x : sorted) rs.add(x);

  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.count() >= 2 ? rs.stddev() : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  if (s.count >= 2) {
    s.ci95_halfwidth =
        1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

double jain_fairness_index(const std::vector<double>& sample) {
  UCR_REQUIRE(!sample.empty(), "fairness index of empty sample");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : sample) {
    UCR_REQUIRE(x >= 0.0, "fairness index requires non-negative values");
    sum += x;
    sum_sq += x * x;
  }
  UCR_REQUIRE(sum > 0.0, "fairness index requires a positive total");
  return sum * sum / (static_cast<double>(sample.size()) * sum_sq);
}

double chi_square_statistic(const std::vector<double>& observed,
                            const std::vector<double>& expected) {
  UCR_REQUIRE(observed.size() == expected.size(),
              "chi-square requires equally sized vectors");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) {
      UCR_REQUIRE(observed[i] == 0.0,
                  "observed mass in a bin with (near-)zero expectation");
      continue;
    }
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

}  // namespace ucr

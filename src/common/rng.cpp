#include "common/rng.hpp"

namespace ucr {

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // Feed both words through splitmix64 sequentially; the result depends
  // non-linearly on the pair, which suffices for stream derivation.
  std::uint64_t s = a;
  std::uint64_t x = splitmix64_next(s);
  s ^= b + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  return splitmix64_next(s);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64_next(sm);
  }
  // All-zero state is a fixed point of xoshiro; splitmix64 cannot produce
  // four zero outputs in a row from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Xoshiro256 Xoshiro256::stream(std::uint64_t seed, std::uint64_t stream_id) {
  return Xoshiro256(mix64(seed, stream_id));
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace ucr

// Tiny command-line / environment configuration helper for harness binaries.
//
// All reproduction harnesses accept the same style of overrides:
//   ./fig1_makespan --kmax=1000000 --runs=10 --seed=42
// and equivalently via environment (UCR_KMAX, UCR_RUNS, UCR_SEED), with the
// command line taking precedence. Unknown --flags are rejected so typos in
// experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ucr {

/// Parsed `--key=value` options plus positional arguments.
class CliArgs {
 public:
  /// Parses argv; throws ContractViolation on malformed `--key` without '='
  /// unless the flag is boolean-style (then value is "1").
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed_keys);

  std::optional<std::string> get(const std::string& key) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Environment lookup with default (uses std::getenv).
std::uint64_t env_u64(const char* name, std::uint64_t def);
double env_double(const char* name, double def);

/// Strict unsigned-64 parsing: decimal digits only, in range, nothing
/// else. Throws ContractViolation naming `source` otherwise — the shared
/// loud-failure parser for values where silent truncation or saturation
/// would corrupt an experiment description (--ks lists, shard selectors).
std::uint64_t parse_u64_strict(const std::string& text,
                               const std::string& source);

/// Strict worker-thread-count parsing shared by every binary that takes
/// --threads / UCR_THREADS. A present value must be a positive decimal
/// integer: junk ("abc", "4x", "-1") and explicit 0 throw ContractViolation
/// with a message naming the offending source — silently mapping them to
/// "all cores" (what strtoull-based parsing did) hides typos in experiment
/// scripts. Absent means auto (returns 0 = all hardware threads).
unsigned parse_thread_count(const std::string& text, const std::string& source);

/// Resolves the effective --threads value: the CLI flag if present, else
/// the environment variable `env_name` (when non-null and set), else 0
/// (auto). Both sources are validated with parse_thread_count.
unsigned thread_count_option(const CliArgs& args, const char* env_name);

}  // namespace ucr

#include "common/json.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/check.hpp"

namespace ucr::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw ContractViolation(std::string("json: expected ") + want + ", got " +
                          names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text_.c_str(), &end);
  UCR_REQUIRE(end == text_.c_str() + text_.size() && errno != ERANGE,
              "json: number '" + text_ + "' does not fit a double");
  return value;
}

std::uint64_t Value::as_u64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  UCR_REQUIRE(!text_.empty() && text_[0] != '-' &&
                  text_.find_first_of(".eE") == std::string::npos,
              "json: number '" + text_ + "' is not an unsigned integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text_.c_str(), &end, 10);
  UCR_REQUIRE(end == text_.c_str() + text_.size() && errno != ERANGE,
              "json: number '" + text_ + "' does not fit a uint64");
  return static_cast<std::uint64_t>(value);
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return text_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return items_;
}

const std::string& Value::number_token() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return text_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* value = find(key);
  UCR_REQUIRE(value != nullptr, "json: missing key '" + key + "'");
  return *value;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), "trailing characters after value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ContractViolation("json: " + message + " at offset " +
                            std::to_string(pos_));
  }

  void require(bool ok, const char* message) const {
    if (!ok) fail(message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char ch) {
    if (!consume(ch)) {
      fail(std::string("expected '") + ch + "'");
    }
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
      case 'n':
        return parse_word();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.type_ = Value::Type::kObject;
    skip_whitespace();
    if (consume('}')) return value;
    while (true) {
      skip_whitespace();
      Value key = parse_string();
      for (const auto& [name, _] : value.members_) {
        if (name == key.text_) fail("duplicate key '" + key.text_ + "'");
      }
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key.text_), parse_value());
      skip_whitespace();
      if (consume('}')) return value;
      expect(',');
    }
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.type_ = Value::Type::kArray;
    skip_whitespace();
    if (consume(']')) return value;
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      if (consume(']')) return value;
      expect(',');
    }
  }

  Value parse_word() {
    Value value;
    if (consume_word("true")) {
      value.type_ = Value::Type::kBool;
      value.bool_ = true;
    } else if (consume_word("false")) {
      value.type_ = Value::Type::kBool;
      value.bool_ = false;
    } else if (consume_word("null")) {
      value.type_ = Value::Type::kNull;
    } else {
      fail("unexpected token");
    }
    return value;
  }

  Value parse_string() {
    expect('"');
    Value value;
    value.type_ = Value::Type::kString;
    std::string& out = value.text_;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return value;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("raw control character in string");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the basic-plane codepoint.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    consume('-');
    require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "malformed number");
    if (!consume('0')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (consume('.')) {
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "malformed number (digits required after '.')");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "malformed number (digits required in exponent)");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    Value value;
    value.type_ = Value::Type::kNumber;
    value.text_ = text_.substr(start, pos_ - start);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(ch >> 4) & 0xF];
          out += hex[ch & 0xF];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace ucr::json

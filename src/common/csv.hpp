// Minimal CSV writer (RFC 4180 quoting) used by harnesses to emit series
// that can be re-plotted (Figure 1 of the paper is a log-log plot).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ucr {

/// Streaming CSV writer; quotes fields containing separators/quotes/newlines.
class CsvWriter {
 public:
  /// Does not take ownership of `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os);

  void write_row(const std::vector<std::string>& cells);

  /// Quotes a single cell per RFC 4180 if needed (exposed for tests).
  static std::string escape(const std::string& cell);

 private:
  std::ostream* os_;
};

}  // namespace ucr

// Fixed-size worker-thread pool used by the sweep subsystem.
//
// Design notes:
//  * submit() returns a std::future of the callable's result; an exception
//    thrown by the task is captured and rethrown from future::get(), so
//    callers see worker failures exactly where they consume results.
//  * The destructor drains the queue: every task submitted before
//    destruction runs to completion, then the workers join. There is no
//    cancel path — the pool is for finite experiment grids, not services.
//  * Determinism of simulation results is NOT the pool's concern: tasks may
//    run in any order on any worker. Callers obtain determinism by seeding
//    each task independently (Xoshiro256::stream) and committing results to
//    pre-assigned slots (see sim/sweep.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ucr {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains all pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Resolves the `threads` constructor argument the same way the
  /// constructor does (exposed so CLIs can report the effective count).
  static unsigned resolve_threads(unsigned threads);

  /// Enqueues a callable; returns the future of its result. Safe to call
  /// concurrently from any thread, including from within tasks — but a
  /// task that BLOCKS on an inner task's future deadlocks when no other
  /// worker is idle to pick the inner task up; from inside a worker,
  /// treat submit() as fire-and-forget or guarantee a spare worker.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace ucr

#include "common/table.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ucr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  UCR_REQUIRE(!header_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  UCR_REQUIRE(cells.size() == header_.size(),
              "row width does not match the header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_double(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string format_double_shortest(double v) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v);
  UCR_CHECK(result.ec == std::errc(), "to_chars cannot fail on a double");
  return std::string(buffer, result.ptr);
}

std::string format_count(double v) {
  if (std::fabs(v) < 1e15 && v == std::floor(v)) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace ucr

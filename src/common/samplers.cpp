#include "common/samplers.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathx.hpp"

namespace ucr {

SlotCategory sample_slot_category(Xoshiro256& rng, std::uint64_t m, double p) {
  UCR_REQUIRE(p >= 0.0 && p <= 1.0, "transmission probability out of range");
  if (m == 0 || p == 0.0) return SlotCategory::kSilence;
  const double p0 = prob_silence(m, p);
  const double p1 = prob_success(m, p);
  const double u = rng.next_double();
  if (u < p0) return SlotCategory::kSilence;
  if (u < p0 + p1) return SlotCategory::kSuccess;
  return SlotCategory::kCollision;
}

namespace detail {

std::uint64_t binomial_inversion(Xoshiro256& rng, std::uint64_t n, double p) {
  // CDF walk from k = 0; expected number of iterations is n*p + O(sqrt(np)).
  const double q = pow_one_minus(p, static_cast<double>(n));
  UCR_CHECK(q > 0.0, "inversion sampler used where (1-p)^n underflows");
  const double s = p / (1.0 - p);
  double f = q;
  double u = rng.next_double();
  std::uint64_t k = 0;
  while (u > f && k < n) {
    u -= f;
    ++k;
    f *= s * (static_cast<double>(n - k + 1) / static_cast<double>(k));
  }
  return k;
}

std::uint64_t binomial_btrs(Xoshiro256& rng, std::uint64_t n, double p) {
  // Hörmann (1993), algorithm BTRS (transformed rejection with squeeze).
  UCR_REQUIRE(p > 0.0 && p <= 0.5, "BTRS requires 0 < p <= 0.5");
  const double nd = static_cast<double>(n);
  UCR_REQUIRE(nd * p >= 10.0, "BTRS requires n*p >= 10");

  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / q);
  const double m = std::floor((nd + 1.0) * p);
  const double h = std::lgamma(m + 1.0) + std::lgamma(nd - m + 1.0);

  for (;;) {
    const double u = rng.next_double() - 0.5;
    double v = rng.next_double();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(kd);
    }
    v = std::log(v * alpha / (a / (us * us) + b));
    if (v <= h - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0) +
                 (kd - m) * lpq) {
      return static_cast<std::uint64_t>(kd);
    }
  }
}

}  // namespace detail

std::uint64_t sample_binomial(Xoshiro256& rng, std::uint64_t n, double p) {
  UCR_REQUIRE(p >= 0.0 && p <= 1.0, "binomial probability out of range");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;

  // Work with p' = min(p, 1-p) and mirror the result if we flipped.
  const bool flipped = p > 0.5;
  const double pp = flipped ? 1.0 - p : p;
  const double mean = static_cast<double>(n) * pp;

  std::uint64_t k;
  if (mean < 12.0) {
    k = detail::binomial_inversion(rng, n, pp);
  } else {
    k = detail::binomial_btrs(rng, n, pp);
  }
  return flipped ? n - k : k;
}

std::uint64_t sample_geometric_failures(Xoshiro256& rng, double p,
                                        std::uint64_t limit) {
  UCR_REQUIRE(p >= 0.0 && p <= 1.0, "geometric probability out of range");
  if (p == 1.0) return 0;
  if (p == 0.0 || limit == 0) return limit;
  // Inversion: F = floor(ln(1-u) / ln(1-p)) with u ~ U[0,1). Computed via
  // log1p for stability at the small p the protocols produce (p ~ 1/k).
  const double u = rng.next_double();
  const double failures =
      std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(failures < static_cast<double>(limit))) return limit;
  return static_cast<std::uint64_t>(failures);
}

std::uint64_t sample_poisson(Xoshiro256& rng, double lambda) {
  UCR_REQUIRE(lambda >= 0.0, "Poisson rate must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion on the multiplicative scale.
    const double limit = std::exp(-lambda);
    double prod = rng.next_double();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.next_double();
      ++k;
    }
    return k;
  }
  // Split recursively: Poisson(l) = Poisson(l/2) + Poisson(l/2) would recurse
  // deeply; instead use the classic Gamma-split: with m = floor(7/8 * l),
  // draw g ~ Gamma(m) via the Marsaglia-Tsang method and recurse on the
  // remainder. To keep the implementation compact and exact we instead use
  // the binomial split: Poisson(l) conditioned on Poisson(2l) is binomial —
  // but the simplest exact route with the tools at hand is the normal-free
  // "chunked inversion": sum independent Poisson(25) chunks plus one
  // remainder chunk, each sampled by inversion (exp(-25) ~ 1.4e-11 is well
  // within double range).
  std::uint64_t total = 0;
  double remaining = lambda;
  while (remaining > 30.0) {
    total += sample_poisson(rng, 25.0);
    remaining -= 25.0;
  }
  return total + sample_poisson(rng, remaining);
}

}  // namespace ucr

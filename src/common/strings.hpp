// Small shared string helpers for the textual front ends.
#pragma once

#include <string>

namespace ucr {

/// Copy of `text` with ASCII whitespace removed from both ends.
std::string trim(const std::string& text);

}  // namespace ucr

#include "common/thread_pool.hpp"

namespace ucr {

unsigned ThreadPool::resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_threads(threads);
  workers_.reserve(count);
  try {
    for (unsigned i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation can fail (resource limits, absurd --threads values).
    // Join the workers that did start before rethrowing, or their joinable
    // std::thread destructors would call std::terminate.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Exceptions are captured by the packaged_task wrapper inside `task`
    // and surface at future::get(); nothing escapes into the worker.
    task();
  }
}

}  // namespace ucr

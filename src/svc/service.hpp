// SweepService — the sweep daemon's engine, separated from its wire
// protocol (svc/server.hpp) so tests can drive jobs in-process.
//
// A job is one spec text: submit() parses and compiles it immediately
// (malformed specs are rejected at submit time, they never become failed
// jobs), enqueues it FIFO, and returns a job id. A single executor thread
// drains the queue; each job runs the ordinary exp::run() pipeline — cells
// on the SweepRunner worker pool, the shared ResultCache attached when the
// service has one — with a capture sink that appends each JSONL row to the
// job as the grid prefix completes. Rows are byte-identical to
// `ucr_cli --spec=FILE --format=jsonl` on the same spec: same plan, same
// sink, same determinism contract (docs/SERVICE.md states the argument).
//
// Consumers poll status() or block in wait_rows(), which hands out rows
// incrementally in grid order — the server's `stream` verb is a loop over
// it. cancel() stops a queued job immediately and a running job at its
// next completed cell; cells finished before the cancellation are already
// banked in the cache, so a resubmit continues where the job stopped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/result_cache.hpp"

namespace ucr::svc {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* job_state_name(JobState state);

bool job_state_terminal(JobState state);

/// Snapshot of one job, as status() and the wire protocol report it.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  std::string spec_hash;
  std::size_t total_cells = 0;
  std::size_t completed_cells = 0;
  /// Cells replayed from the cache instead of executed.
  std::size_t cache_hits = 0;
  /// Failure reason; empty unless state is kFailed.
  std::string error;
};

class SweepService {
 public:
  struct Options {
    /// Result cache root; empty disables caching (every job computes
    /// every cell).
    std::string cache_dir;
    /// Worker threads per job; 0 honours each spec's own `threads` value
    /// (where 0 again means all hardware threads).
    unsigned threads = 0;
  };

  explicit SweepService(Options options);

  /// stop()s — destruction waits for the in-flight job.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Parses + compiles `spec_text` (ContractViolation propagates to the
  /// caller on any spec error) and enqueues the job. Returns its id
  /// ("job-1", "job-2", ... in submission order). Throws after stop().
  std::string submit(const std::string& spec_text);

  /// Current snapshot; throws ContractViolation on an unknown id.
  JobStatus status(const std::string& job_id) const;

  /// Blocks until the job has rows beyond `from_row` or is terminal, then
  /// appends every row in [from_row, completed) to `rows_out` (JSONL, no
  /// trailing newline, grid order) and returns the snapshot. Streaming a
  /// whole job is a loop: from_row = 0, then += rows_out.size().
  JobStatus wait_rows(const std::string& job_id, std::size_t from_row,
                      std::vector<std::string>& rows_out);

  /// Blocks until the job is terminal; returns the final snapshot.
  JobStatus wait(const std::string& job_id);

  /// Requests cancellation (idempotent; a no-op on terminal jobs) and
  /// returns the snapshot after the request. A queued job flips to
  /// kCancelled here; a running job stops at its next completed cell.
  JobStatus cancel(const std::string& job_id);

  /// Snapshots of every job, in submission order.
  std::vector<JobStatus> snapshot() const;

  /// Rejects further submits, waits for the queue to drain and the
  /// executor to exit. Queued jobs still run — cancel them first for a
  /// fast shutdown. Idempotent.
  void stop();

  const Options& options() const { return options_; }

 private:
  struct Job;

  Job& find_job(const std::string& job_id) const;
  void executor_loop();
  void run_job(Job& job);
  JobStatus status_locked(const Job& job) const;

  Options options_;
  std::unique_ptr<ResultCache> cache_;

  mutable std::mutex mutex_;
  /// Signalled on every job state change and every appended row.
  mutable std::condition_variable changed_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::deque<Job*> queue_;
  bool stopping_ = false;
  std::thread executor_;
};

}  // namespace ucr::svc

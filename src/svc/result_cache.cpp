#include "svc/result_cache.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace ucr::svc {

namespace {

namespace fs = std::filesystem;

void append_summary(std::string& out, const char* key,
                    const Summary& summary) {
  out += '"';
  out += key;
  out += "\":[";
  out += std::to_string(summary.count);
  const double values[] = {summary.mean, summary.stddev,
                           summary.min,  summary.p25,
                           summary.median, summary.p75,
                           summary.p95,  summary.max,
                           summary.ci95_halfwidth};
  for (const double value : values) {
    out += ',';
    out += format_double_shortest(value);
  }
  out += ']';
}

Summary parse_summary(const json::Value& value, const std::string& source) {
  const auto& items = value.items();
  UCR_REQUIRE(items.size() == 10,
              source + ": summary array must have 10 entries, has " +
                  std::to_string(items.size()));
  Summary summary;
  summary.count = items[0].as_u64();
  summary.mean = items[1].as_double();
  summary.stddev = items[2].as_double();
  summary.min = items[3].as_double();
  summary.p25 = items[4].as_double();
  summary.median = items[5].as_double();
  summary.p75 = items[6].as_double();
  summary.p95 = items[7].as_double();
  summary.max = items[8].as_double();
  summary.ci95_halfwidth = items[9].as_double();
  return summary;
}

}  // namespace

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {
  UCR_REQUIRE(!root_.empty(), "result cache root path is empty");
  std::error_code ec;
  fs::create_directories(root_, ec);
  UCR_REQUIRE(!ec, "cannot create result cache root '" + root_ +
                       "': " + ec.message());
}

std::string ResultCache::record_path(const std::string& spec_hash,
                                     std::size_t cell_index) const {
  return root_ + "/" + spec_hash + "/cell-" + std::to_string(cell_index) +
         ".json";
}

std::string ResultCache::encode_record(const exp::CellTask& task,
                                       const AggregateResult& result) {
  std::string out = "{\"cache_version\":";
  out += std::to_string(kCacheSchemaVersion);
  out += ",\"spec_hash\":\"" + json::escape(task.spec_hash) + "\"";
  out += ",\"cell\":" + std::to_string(task.cell.index);
  out += ",\"protocol\":\"" + json::escape(result.protocol) + "\"";
  out += ",\"k\":" + std::to_string(result.k);
  out += ",\"runs\":" + std::to_string(result.runs);
  out += ",\"incomplete_runs\":" + std::to_string(result.incomplete_runs);
  out += ',';
  append_summary(out, "makespan", result.makespan);
  out += ',';
  append_summary(out, "ratio", result.ratio);
  out += ",\"latency_p50\":" + format_double_shortest(result.latency_p50);
  out += ",\"latency_p95\":" + format_double_shortest(result.latency_p95);
  out += ",\"latency_p99\":" + format_double_shortest(result.latency_p99);
  out += ",\"energy_mean\":" + format_double_shortest(result.energy_mean);
  out += ",\"energy_max\":" + format_double_shortest(result.energy_max);
  out += "}\n";
  return out;
}

AggregateResult ResultCache::decode_record(const std::string& text,
                                           const std::string& spec_hash,
                                           std::size_t cell_index,
                                           const std::string& source) {
  json::Value record;
  try {
    record = json::parse(text);
  } catch (const ContractViolation& e) {
    throw ContractViolation(source + ": corrupt cache record — " +
                            e.what());
  }
  UCR_REQUIRE(record.is_object(),
              source + ": corrupt cache record — not a JSON object");
  const json::Value* version = record.find("cache_version");
  UCR_REQUIRE(version != nullptr,
              source + ": corrupt cache record — no cache_version");
  UCR_REQUIRE(version->as_u64() == kCacheSchemaVersion,
              source + ": stale cache record (cache_version " +
                  version->number_token() + ", this build reads " +
                  std::to_string(kCacheSchemaVersion) +
                  ") — delete the cache directory to recompute");
  UCR_REQUIRE(record.at("spec_hash").as_string() == spec_hash,
              source + ": cache record spec_hash disagrees with its "
                       "address (corrupt or misplaced record)");
  UCR_REQUIRE(record.at("cell").as_u64() == cell_index,
              source + ": cache record cell index disagrees with its "
                       "address (corrupt or misplaced record)");
  AggregateResult result;
  result.protocol = record.at("protocol").as_string();
  result.k = record.at("k").as_u64();
  result.runs = record.at("runs").as_u64();
  result.incomplete_runs = record.at("incomplete_runs").as_u64();
  result.makespan = parse_summary(record.at("makespan"), source);
  result.ratio = parse_summary(record.at("ratio"), source);
  result.latency_p50 = record.at("latency_p50").as_double();
  result.latency_p95 = record.at("latency_p95").as_double();
  result.latency_p99 = record.at("latency_p99").as_double();
  result.energy_mean = record.at("energy_mean").as_double();
  result.energy_max = record.at("energy_max").as_double();
  return result;
}

std::optional<AggregateResult> ResultCache::load(const std::string& spec_hash,
                                                 std::size_t cell_index) {
  const std::string path = record_path(spec_hash, cell_index);
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  UCR_REQUIRE(!in.bad(), path + ": cannot read cache record");
  return decode_record(text.str(), spec_hash, cell_index, path);
}

void ResultCache::store(const exp::CellTask& task,
                        const AggregateResult& result) {
  const fs::path dir = fs::path(root_) / task.spec_hash;
  std::error_code ec;
  fs::create_directories(dir, ec);
  UCR_REQUIRE(!ec, "cannot create cache directory '" + dir.string() +
                       "': " + ec.message());
  // Dot-prefixed temp in the record's own directory (rename must not
  // cross filesystems), unique per process; readers only ever see the
  // complete record appear under its final name.
  const fs::path tmp =
      dir / (".cell-" + std::to_string(task.cell.index) + ".tmp." +
             std::to_string(::getpid()));
  const fs::path final_path =
      dir / ("cell-" + std::to_string(task.cell.index) + ".json");
  {
    std::ofstream out(tmp, std::ios::trunc);
    UCR_REQUIRE(out.is_open(),
                "cannot write cache record '" + tmp.string() + "'");
    out << encode_record(task, result);
    out.flush();
    UCR_REQUIRE(out.good(),
                "failed writing cache record '" + tmp.string() + "'");
  }
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp);
    throw ContractViolation("cannot publish cache record '" +
                            final_path.string() + "': " + ec.message());
  }
}

std::size_t ResultCache::cell_count(const std::string& spec_hash) const {
  const fs::path dir = fs::path(root_) / spec_hash;
  std::error_code ec;
  std::size_t count = 0;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("cell-", 0) == 0 &&
        name.size() > 10 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      ++count;
    }
  }
  return count;
}

}  // namespace ucr::svc

#include "svc/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace ucr::svc {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  UCR_REQUIRE(path.size() < sizeof(address.sun_path),
              "socket path '" + path + "' exceeds the AF_UNIX limit of " +
                  std::to_string(sizeof(address.sun_path) - 1) + " bytes");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

LineSocket::~LineSocket() {
  if (fd_ >= 0) ::close(fd_);
}

LineSocket::LineSocket(LineSocket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void LineSocket::send_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    UCR_REQUIRE(n > 0, std::string("socket send failed: ") +
                           std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> LineSocket::recv_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    UCR_REQUIRE(n >= 0, std::string("socket recv failed: ") +
                            std::strerror(errno));
    if (n == 0) {
      UCR_REQUIRE(buffer_.empty(),
                  "peer closed the connection mid-line");
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

LineSocket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  UCR_REQUIRE(fd >= 0, std::string("cannot create socket: ") +
                           std::strerror(errno));
  const sockaddr_un address = make_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int error = errno;
    ::close(fd);
    throw ContractViolation("cannot connect to daemon socket '" + path +
                            "': " + std::strerror(error) +
                            " (is ucr_servd running?)");
  }
  return LineSocket(fd);
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  UCR_REQUIRE(fd >= 0, std::string("cannot create socket: ") +
                           std::strerror(errno));
  const sockaddr_un address = make_address(path);
  // The daemon owns its path: a leftover file from a crashed instance
  // would make bind fail forever, so replace it.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, 64) != 0) {
    const int error = errno;
    ::close(fd);
    throw ContractViolation("cannot listen on socket '" + path +
                            "': " + std::strerror(error));
  }
  return fd;
}

}  // namespace ucr::svc

// AF_UNIX stream sockets with line framing — the transport under the
// sweep daemon's wire protocol (svc/server.hpp). Deliberately tiny: the
// protocol is one JSON message per '\n'-terminated line, so all a peer
// needs is connect/listen, send_line, and recv_line.
#pragma once

#include <optional>
#include <string>

namespace ucr::svc {

/// RAII wrapper of a connected stream socket with buffered line reads.
class LineSocket {
 public:
  /// Takes ownership of a connected fd.
  explicit LineSocket(int fd) : fd_(fd) {}
  ~LineSocket();

  LineSocket(LineSocket&& other) noexcept;
  LineSocket& operator=(LineSocket&&) = delete;
  LineSocket(const LineSocket&) = delete;
  LineSocket& operator=(const LineSocket&) = delete;

  /// Writes `line` plus a trailing '\n' (the line must not contain raw
  /// newlines — JSON escaping guarantees that for protocol messages).
  /// Throws ContractViolation on transport failure.
  void send_line(const std::string& line);

  /// Next '\n'-terminated line, without the terminator; nullopt on a
  /// clean EOF at a line boundary. Throws on transport failure or EOF
  /// mid-line.
  std::optional<std::string> recv_line();

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
};

/// Connects to a listening AF_UNIX socket; throws ContractViolation
/// naming the path when the daemon is not there.
LineSocket connect_unix(const std::string& path);

/// Binds and listens on `path`, replacing any stale socket file (the
/// daemon owns its path). Returns the listening fd; throws on failure.
int listen_unix(const std::string& path);

}  // namespace ucr::svc

#include "svc/client.hpp"

#include <optional>

#include "common/check.hpp"
#include "svc/socket.hpp"

namespace ucr::svc {

namespace {

/// Parses one response line and throws when the daemon reported an error.
json::Value parse_response(const std::string& line) {
  const json::Value response = json::parse(line);
  UCR_REQUIRE(response.is_object(),
              "malformed daemon response (not a JSON object): " + line);
  const json::Value* ok = response.find("ok");
  if (ok != nullptr && !ok->as_bool()) {
    const json::Value* error = response.find("error");
    throw ContractViolation(
        "daemon error: " +
        (error != nullptr ? error->as_string() : std::string("(no message)")));
  }
  return response;
}

}  // namespace

std::string simple_request(const std::string& cmd) {
  return "{\"cmd\":\"" + json::escape(cmd) + "\"}";
}

std::string job_request(const std::string& cmd, const std::string& job_id) {
  return "{\"cmd\":\"" + json::escape(cmd) + "\",\"job\":\"" +
         json::escape(job_id) + "\"}";
}

std::string submit_request(const std::string& spec_text) {
  return "{\"cmd\":\"submit\",\"spec\":\"" + json::escape(spec_text) + "\"}";
}

json::Value request(const std::string& socket_path, const std::string& line) {
  return json::parse(request_raw(socket_path, line));
}

std::string request_raw(const std::string& socket_path,
                        const std::string& line) {
  LineSocket socket = connect_unix(socket_path);
  socket.send_line(line);
  const std::optional<std::string> response = socket.recv_line();
  UCR_REQUIRE(response.has_value(),
              "daemon closed the connection without answering");
  parse_response(*response);  // validate + surface daemon errors
  return *response;
}

StreamResult stream_job(
    const std::string& socket_path, const std::string& job_id,
    const std::function<void(const std::string&)>& on_row) {
  LineSocket socket = connect_unix(socket_path);
  socket.send_line(job_request("stream", job_id));
  while (true) {
    const std::optional<std::string> line = socket.recv_line();
    UCR_REQUIRE(line.has_value(),
                "daemon closed the stream before the final summary");
    // Result rows are raw JsonlSink output, which always opens with the
    // cell index; the final summary (and any error) opens with "ok".
    // Classify on the prefix so row bytes pass through untouched.
    if (line->rfind("{\"ok\":", 0) != 0) {
      on_row(*line);
      continue;
    }
    const json::Value response = parse_response(*line);
    if (response.find("done") == nullptr) {
      // An ok-but-not-done object on a stream is a protocol violation.
      throw ContractViolation("unexpected mid-stream response: " + *line);
    }
    StreamResult result;
    result.job = response.at("job").as_string();
    result.state = response.at("state").as_string();
    result.spec_hash = response.at("spec_hash").as_string();
    result.total = response.at("total").as_u64();
    result.completed = response.at("completed").as_u64();
    result.cache_hits = response.at("cache_hits").as_u64();
    if (const json::Value* error = response.find("error")) {
      result.error = error->as_string();
    }
    return result;
  }
}

}  // namespace ucr::svc

// The sweep daemon's wire protocol: line-oriented JSON over an AF_UNIX
// stream socket (docs/SERVICE.md is the protocol reference).
//
// One request object per line; the verbs are:
//
//   {"cmd":"ping"}                    -> {"ok":true,"pong":true}
//   {"cmd":"submit","spec":TEXT}      -> job status (the id is "job")
//   {"cmd":"status","job":ID}         -> job status
//   {"cmd":"cancel","job":ID}        -> job status after the request
//   {"cmd":"stream","job":ID}        -> every JSONL result row of the job
//                                       as its own line, in grid order, as
//                                       cells complete; then one final
//                                       {"ok":true,"done":true,...} status
//   {"cmd":"shutdown"}               -> {"ok":true,"shutting_down":true}
//
// Every failure — malformed JSON, unknown verb, bad spec, unknown job —
// answers {"ok":false,"error":MESSAGE} on the offending request and keeps
// the connection open. A connection serves any number of requests;
// `stream`'s rows are raw JsonlSink output (no "ok" member), so clients
// can forward them byte-for-byte.
#pragma once

#include <string>

#include "svc/service.hpp"

namespace ucr::svc {

/// Serves the protocol on an already-listening socket (listen_unix),
/// thread-per-connection. Blocks until a `shutdown` request arrives, then
/// joins every handler, closes the fd and unlinks `socket_path`. Jobs
/// still queued keep running inside `service` — the caller decides
/// whether to drain (service.stop()) or cancel them.
void run_server(int listen_fd, const std::string& socket_path,
                SweepService& service);

}  // namespace ucr::svc

// Client side of the sweep daemon protocol (svc/server.hpp): request
// construction, one-shot exchanges, and row streaming. ucr_cli's
// --submit/--status/--cancel/--shutdown client mode and the service tests
// both sit on these helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/json.hpp"

namespace ucr::svc {

/// {"cmd":"<cmd>"} — ping, shutdown.
std::string simple_request(const std::string& cmd);

/// {"cmd":"<cmd>","job":"<job_id>"} — status, stream, cancel.
std::string job_request(const std::string& cmd, const std::string& job_id);

/// {"cmd":"submit","spec":"<escaped spec text>"}.
std::string submit_request(const std::string& spec_text);

/// One exchange: connect to `socket_path`, send `line`, return the parsed
/// response. Throws ContractViolation on transport failure, on a
/// malformed response, and on {"ok":false} (surfacing the daemon's error
/// message verbatim).
json::Value request(const std::string& socket_path, const std::string& line);

/// Like request(), but returns the daemon's response line verbatim (still
/// validated: must parse as an object, and {"ok":false} still throws).
/// ucr_cli's --json mode prints this byte-for-byte, so scripts parse the
/// daemon's own encoding rather than a client re-rendering.
std::string request_raw(const std::string& socket_path,
                        const std::string& line);

/// Final summary line of a streamed job.
struct StreamResult {
  std::string job;
  std::string state;
  std::string spec_hash;
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::string error;
};

/// Streams a job: invokes `on_row` with every raw JSONL row line (grid
/// order, no trailing newline, byte-identical to JsonlSink output) as the
/// daemon emits them, then returns the parsed final summary. Throws
/// ContractViolation on transport failure or a daemon-reported error.
StreamResult stream_job(
    const std::string& socket_path, const std::string& job_id,
    const std::function<void(const std::string&)>& on_row);

}  // namespace ucr::svc

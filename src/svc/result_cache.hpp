// Provenance-keyed on-disk result cache — completed cells, memoized.
//
// Layout: one JSONL record per completed cell, content-addressed by the
// cell's provenance key (exp/cell_task.hpp):
//
//   <root>/<spec_hash>/cell-<index>.json
//
// spec_hash is the shard-invariant content hash of the canonical spec
// text (exp/spec_io.hpp), so every parameter that can change a result —
// protocols, k grid, arrivals, channels, runs, seed, engine, engine
// options — is part of the address, while shard/threads/format are
// normalized out: shards of one sweep fill disjoint cells of the same
// directory, and a re-run at any thread count hits the same keys.
//
// Records carry every AggregateResult field the sinks and the table
// renderer read, with doubles in shortest-round-trip notation — a cache
// hit replays into CsvStreamSink/JsonlSink byte-identically to the cold
// computation (pinned by tests/svc/cached_run_test.cpp). Per-run details
// are NOT persisted: a replayed aggregate has empty `details`.
//
// Write discipline: records are written to a dot-prefixed temp file in
// the record's directory and renamed into place, so readers never observe
// a torn record and concurrent writers of the same cell end with one
// winner (both wrote identical bytes anyway — the key pins the content).
// Stale or corrupt records are rejected loudly (ContractViolation naming
// the file), never silently recomputed — like read_aggregate_csv, schema
// drift must fail the consumer, not rot the archive.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "exp/run.hpp"

namespace ucr::svc {

/// Version stamped into every record; load() rejects any other value.
/// Bump it whenever the record schema changes shape or meaning.
inline constexpr std::uint64_t kCacheSchemaVersion = 1;

/// On-disk implementation of exp::CellResultStore. Thread-compatible (the
/// run() driver serializes calls); multiple processes may share a root —
/// the atomic rename makes concurrent stores of the same cell safe.
class ResultCache final : public exp::CellResultStore {
 public:
  /// Creates `root` (and parents) if missing.
  explicit ResultCache(std::string root);

  /// The record of (spec_hash, cell_index), or nullopt when absent.
  /// Throws ContractViolation naming the file on a malformed record, a
  /// schema version other than kCacheSchemaVersion, or a record whose
  /// embedded key disagrees with its address.
  std::optional<AggregateResult> load(const std::string& spec_hash,
                                      std::size_t cell_index) override;

  /// Persists the cell under its provenance key (atomic rename).
  void store(const exp::CellTask& task,
             const AggregateResult& result) override;

  /// Number of cell records currently present for a spec_hash.
  std::size_t cell_count(const std::string& spec_hash) const;

  const std::string& root() const { return root_; }

  /// Path of a cell's record file (exposed for tests and debugging —
  /// the --list-cells output plus this is the whole cache address book).
  std::string record_path(const std::string& spec_hash,
                          std::size_t cell_index) const;

  /// The serialized record, exactly as store() writes it (exposed so
  /// tests can pin the schema and tools can inspect records).
  static std::string encode_record(const exp::CellTask& task,
                                   const AggregateResult& result);

  /// Parses a record produced by encode_record; validates schema version
  /// and the (spec_hash, cell_index) key. `source` names the origin in
  /// errors (file path, "test", ...).
  static AggregateResult decode_record(const std::string& text,
                                       const std::string& spec_hash,
                                       std::size_t cell_index,
                                       const std::string& source);

 private:
  std::string root_;
};

}  // namespace ucr::svc

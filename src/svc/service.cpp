#include "svc/service.hpp"

#include <optional>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "exp/plan.hpp"
#include "exp/run.hpp"
#include "exp/sink.hpp"
#include "exp/spec_io.hpp"

namespace ucr::svc {

namespace {

/// Thrown out of the capture sink to abort a cancelled job's sweep; never
/// escapes run_job().
struct JobCancelled {};

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  UCR_CHECK(false, "unreachable JobState");
  return "";
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

struct SweepService::Job {
  std::string id;
  exp::ExperimentPlan plan;
  /// Effective sweep worker threads (service override, else the spec's).
  unsigned threads = 0;
  JobState state = JobState::kQueued;
  std::size_t cache_hits = 0;
  bool cancel_requested = false;
  /// Completed JSONL rows in grid order, no trailing newline.
  std::vector<std::string> rows;
  std::string error;
};

SweepService::SweepService(Options options) : options_(std::move(options)) {
  if (!options_.cache_dir.empty()) {
    cache_ = std::make_unique<ResultCache>(options_.cache_dir);
  }
  executor_ = std::thread(&SweepService::executor_loop, this);
}

SweepService::~SweepService() { stop(); }

std::string SweepService::submit(const std::string& spec_text) {
  // Parse + compile before touching any shared state: every spec error
  // surfaces here, on the submitter's thread, as a ContractViolation.
  exp::SpecFile file = exp::parse_spec(spec_text);
  exp::ExperimentPlan plan = exp::compile(file.spec, default_catalogue());

  auto job = std::make_unique<Job>();
  job->plan = std::move(plan);
  job->threads = options_.threads != 0 ? options_.threads : file.threads;

  std::lock_guard<std::mutex> lock(mutex_);
  UCR_REQUIRE(!stopping_, "sweep service is shutting down; submit rejected");
  job->id = "job-" + std::to_string(jobs_.size() + 1);
  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  queue_.push_back(raw);
  changed_.notify_all();
  return raw->id;
}

SweepService::Job& SweepService::find_job(const std::string& job_id) const {
  for (const auto& job : jobs_) {
    if (job->id == job_id) return *job;
  }
  throw ContractViolation("unknown job id '" + job_id + "' (" +
                          std::to_string(jobs_.size()) +
                          " jobs submitted so far)");
}

JobStatus SweepService::status_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.spec_hash = job.plan.spec_hash;
  status.total_cells = job.plan.cells.size();
  status.completed_cells = job.rows.size();
  status.cache_hits = job.cache_hits;
  status.error = job.error;
  return status;
}

JobStatus SweepService::status(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_locked(find_job(job_id));
}

JobStatus SweepService::wait_rows(const std::string& job_id,
                                  std::size_t from_row,
                                  std::vector<std::string>& rows_out) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = find_job(job_id);
  changed_.wait(lock, [&] {
    return job.rows.size() > from_row || job_state_terminal(job.state);
  });
  for (std::size_t i = from_row; i < job.rows.size(); ++i) {
    rows_out.push_back(job.rows[i]);
  }
  return status_locked(job);
}

JobStatus SweepService::wait(const std::string& job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job& job = find_job(job_id);
  changed_.wait(lock, [&] { return job_state_terminal(job.state); });
  return status_locked(job);
}

JobStatus SweepService::cancel(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = find_job(job_id);
  if (!job_state_terminal(job.state)) {
    job.cancel_requested = true;
    // Queued jobs flip immediately; the executor skips cancelled entries.
    // Running jobs stop at their next completed cell (the capture sink
    // checks the flag before every emission).
    if (job.state == JobState::kQueued) job.state = JobState::kCancelled;
    changed_.notify_all();
  }
  return status_locked(job);
}

std::vector<JobStatus> SweepService::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> statuses;
  statuses.reserve(jobs_.size());
  for (const auto& job : jobs_) statuses.push_back(status_locked(*job));
  return statuses;
}

void SweepService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    changed_.notify_all();
  }
  if (executor_.joinable()) executor_.join();
}

void SweepService::executor_loop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      changed_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = queue_.front();
      queue_.pop_front();
      if (job->state == JobState::kCancelled) continue;
      job->state = JobState::kRunning;
      changed_.notify_all();
    }
    run_job(*job);
  }
}

void SweepService::run_job(Job& job) {
  // Renders each completed cell with the ordinary JsonlSink (so the row
  // bytes match a direct `ucr_cli --format=jsonl` run of the same spec)
  // and appends it to the job under the service mutex. The cancel check
  // sits before the render: the aborted cell is already banked in the
  // cache (run() stores before emitting), it just never becomes a row.
  class Capture final : public exp::ResultSink {
   public:
    Capture(SweepService& service, Job& job)
        : service_(service), job_(job),
          jsonl_(buffer_, /*flush_each_row=*/false) {}

    void begin(const exp::ExperimentPlan& plan) override {
      jsonl_.begin(plan);
    }

    void emit(const exp::CellInfo& cell,
              const AggregateResult& result) override {
      {
        std::lock_guard<std::mutex> lock(service_.mutex_);
        if (job_.cancel_requested) throw JobCancelled{};
      }
      buffer_.str(std::string());
      jsonl_.emit(cell, result);
      std::string row = buffer_.str();
      if (!row.empty() && row.back() == '\n') row.pop_back();
      {
        std::lock_guard<std::mutex> lock(service_.mutex_);
        job_.rows.push_back(std::move(row));
      }
      service_.changed_.notify_all();
    }

   private:
    SweepService& service_;
    Job& job_;
    std::ostringstream buffer_;
    exp::JsonlSink jsonl_;
  };

  // Counts cache replays for the job's hit statistics; storage semantics
  // are the wrapped cache's.
  class CountingStore final : public exp::CellResultStore {
   public:
    CountingStore(SweepService& service, Job& job,
                  exp::CellResultStore& inner)
        : service_(service), job_(job), inner_(inner) {}

    std::optional<AggregateResult> load(const std::string& spec_hash,
                                        std::size_t cell_index) override {
      std::optional<AggregateResult> result =
          inner_.load(spec_hash, cell_index);
      if (result.has_value()) {
        std::lock_guard<std::mutex> lock(service_.mutex_);
        ++job_.cache_hits;
      }
      return result;
    }

    void store(const exp::CellTask& task,
               const AggregateResult& result) override {
      inner_.store(task, result);
    }

   private:
    SweepService& service_;
    Job& job_;
    exp::CellResultStore& inner_;
  };

  Capture capture(*this, job);
  std::optional<CountingStore> counting;
  exp::RunOptions run_options;
  run_options.threads = job.threads;
  if (cache_ != nullptr) {
    counting.emplace(*this, job, *cache_);
    run_options.cache = &*counting;
  }

  JobState final_state = JobState::kDone;
  std::string error;
  try {
    exp::run(job.plan, {&capture}, run_options);
  } catch (const JobCancelled&) {
    final_state = JobState::kCancelled;
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    error = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = final_state;
    job.error = std::move(error);
    changed_.notify_all();
  }
}

}  // namespace ucr::svc

#include "svc/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "svc/socket.hpp"

namespace ucr::svc {

namespace {

std::string error_json(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + json::escape(message) + "\"}";
}

std::string status_json(const JobStatus& status, bool done) {
  std::string out = done ? "{\"ok\":true,\"done\":true" : "{\"ok\":true";
  out += ",\"job\":\"" + json::escape(status.id) + "\"";
  out += ",\"state\":\"";
  out += job_state_name(status.state);
  out += "\",\"spec_hash\":\"" + status.spec_hash + "\"";
  out += ",\"total\":" + std::to_string(status.total_cells);
  out += ",\"completed\":" + std::to_string(status.completed_cells);
  out += ",\"cache_hits\":" + std::to_string(status.cache_hits);
  if (!status.error.empty()) {
    out += ",\"error\":\"" + json::escape(status.error) + "\"";
  }
  out += "}";
  return out;
}

void handle_stream(LineSocket& socket, SweepService& service,
                   const std::string& job_id) {
  std::size_t next_row = 0;
  while (true) {
    std::vector<std::string> rows;
    const JobStatus status = service.wait_rows(job_id, next_row, rows);
    for (const std::string& row : rows) socket.send_line(row);
    next_row += rows.size();
    if (job_state_terminal(status.state) &&
        next_row >= status.completed_cells) {
      socket.send_line(status_json(status, /*done=*/true));
      return;
    }
  }
}

void handle_connection(LineSocket socket, SweepService& service,
                       std::atomic<bool>& stop_flag,
                       const std::string& socket_path) {
  try {
    while (true) {
      const std::optional<std::string> line = socket.recv_line();
      if (!line.has_value()) return;  // client hung up
      if (line->empty()) continue;
      try {
        const json::Value request = json::parse(*line);
        const std::string& cmd = request.at("cmd").as_string();
        if (cmd == "ping") {
          socket.send_line("{\"ok\":true,\"pong\":true}");
        } else if (cmd == "submit") {
          const std::string id =
              service.submit(request.at("spec").as_string());
          socket.send_line(status_json(service.status(id), /*done=*/false));
        } else if (cmd == "status") {
          socket.send_line(status_json(
              service.status(request.at("job").as_string()),
              /*done=*/false));
        } else if (cmd == "cancel") {
          socket.send_line(status_json(
              service.cancel(request.at("job").as_string()),
              /*done=*/false));
        } else if (cmd == "stream") {
          handle_stream(socket, service, request.at("job").as_string());
        } else if (cmd == "shutdown") {
          socket.send_line("{\"ok\":true,\"shutting_down\":true}");
          stop_flag.store(true);
          // Wake the accept loop with a throwaway connection; it rechecks
          // the flag after every accept.
          try {
            connect_unix(socket_path);
          } catch (const ContractViolation&) {
            // The listener may already be gone — flag is set either way.
          }
          return;
        } else {
          socket.send_line(error_json(
              "unknown cmd '" + cmd +
              "' (ping, submit, status, stream, cancel, shutdown)"));
        }
      } catch (const ContractViolation& e) {
        socket.send_line(error_json(e.what()));
      }
    }
  } catch (const ContractViolation&) {
    // Transport failure mid-exchange (peer vanished): drop the connection;
    // the daemon itself stays up.
  }
}

}  // namespace

void run_server(int listen_fd, const std::string& socket_path,
                SweepService& service) {
  std::atomic<bool> stop_flag{false};
  std::vector<std::thread> handlers;
  while (!stop_flag.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken — shut down rather than spin
    }
    LineSocket connection(fd);
    if (stop_flag.load()) break;  // the shutdown wake-up connection
    handlers.emplace_back(handle_connection, std::move(connection),
                          std::ref(service), std::ref(stop_flag),
                          socket_path);
  }
  for (std::thread& handler : handlers) handler.join();
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
}

}  // namespace ucr::svc

#include "sim/resultio.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace ucr {

namespace {

constexpr const char* kHeader[] = {
    "protocol",
    "k",
    "runs",
    "incomplete_runs",
    "mean_makespan",
    "stddev",
    "min",
    "p25",
    "median",
    "p75",
    "p95",
    "max",
    "mean_ratio",
    "latency_p50",
    "latency_p95",
    "latency_p99",
    "energy_mean",
    "energy_max",
    "spec_hash",
};
constexpr std::size_t kColumns = sizeof(kHeader) / sizeof(kHeader[0]);

double parse_double(const std::string& cell) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  UCR_REQUIRE(end != cell.c_str() && *end == '\0',
              "malformed numeric cell '" + cell + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& cell) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(cell.c_str(), &end, 10);
  UCR_REQUIRE(end != cell.c_str() && *end == '\0',
              "malformed integer cell '" + cell + "'");
  return v;
}

}  // namespace

AggregateRow AggregateRow::from(const AggregateResult& result) {
  AggregateRow row;
  row.protocol = result.protocol;
  row.k = result.k;
  row.runs = result.runs;
  row.incomplete_runs = result.incomplete_runs;
  row.mean_makespan = result.makespan.mean;
  row.stddev_makespan = result.makespan.stddev;
  row.min_makespan = result.makespan.min;
  row.p25_makespan = result.makespan.p25;
  row.median_makespan = result.makespan.median;
  row.p75_makespan = result.makespan.p75;
  row.p95_makespan = result.makespan.p95;
  row.max_makespan = result.makespan.max;
  row.mean_ratio = result.ratio.mean;
  row.latency_p50 = result.latency_p50;
  row.latency_p95 = result.latency_p95;
  row.latency_p99 = result.latency_p99;
  row.energy_mean = result.energy_mean;
  row.energy_max = result.energy_max;
  return row;
}

void write_aggregate_header(std::ostream& os) {
  CsvWriter writer(os);
  writer.write_row(
      std::vector<std::string>(kHeader, kHeader + kColumns));
}

void write_aggregate_row(std::ostream& os, const AggregateRow& r) {
  CsvWriter writer(os);
  writer.write_row({r.protocol, std::to_string(r.k), std::to_string(r.runs),
                    std::to_string(r.incomplete_runs),
                    format_double(r.mean_makespan, 6),
                    format_double(r.stddev_makespan, 6),
                    format_double(r.min_makespan, 6),
                    format_double(r.p25_makespan, 6),
                    format_double(r.median_makespan, 6),
                    format_double(r.p75_makespan, 6),
                    format_double(r.p95_makespan, 6),
                    format_double(r.max_makespan, 6),
                    format_double(r.mean_ratio, 6),
                    format_double(r.latency_p50, 6),
                    format_double(r.latency_p95, 6),
                    format_double(r.latency_p99, 6),
                    format_double(r.energy_mean, 6),
                    format_double(r.energy_max, 6), r.spec_hash});
}

void write_aggregate_csv(std::ostream& os,
                         const std::vector<AggregateRow>& rows) {
  write_aggregate_header(os);
  for (const AggregateRow& r : rows) {
    write_aggregate_row(os, r);
  }
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch != '\r') {
      cell += ch;
    }
  }
  UCR_REQUIRE(!in_quotes, "unterminated quote in CSV line");
  cells.push_back(std::move(cell));
  return cells;
}

std::vector<AggregateRow> read_aggregate_csv(std::istream& is) {
  std::string line;
  UCR_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "empty CSV input");
  const auto header = parse_csv_line(line);
  UCR_REQUIRE(header.size() == kColumns && header[0] == kHeader[0] &&
                  header[kColumns - 1] == kHeader[kColumns - 1],
              "unexpected CSV header");

  std::vector<AggregateRow> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = parse_csv_line(line);
    UCR_REQUIRE(cells.size() == kColumns, "wrong number of columns");
    AggregateRow row;
    row.protocol = cells[0];
    row.k = parse_u64(cells[1]);
    row.runs = parse_u64(cells[2]);
    row.incomplete_runs = parse_u64(cells[3]);
    row.mean_makespan = parse_double(cells[4]);
    row.stddev_makespan = parse_double(cells[5]);
    row.min_makespan = parse_double(cells[6]);
    row.p25_makespan = parse_double(cells[7]);
    row.median_makespan = parse_double(cells[8]);
    row.p75_makespan = parse_double(cells[9]);
    row.p95_makespan = parse_double(cells[10]);
    row.max_makespan = parse_double(cells[11]);
    row.mean_ratio = parse_double(cells[12]);
    row.latency_p50 = parse_double(cells[13]);
    row.latency_p95 = parse_double(cells[14]);
    row.latency_p99 = parse_double(cells[15]);
    row.energy_mean = parse_double(cells[16]);
    row.energy_max = parse_double(cells[17]);
    row.spec_hash = cells[18];
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace ucr

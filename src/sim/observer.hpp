// Slot observers: a lightweight hook that lets harnesses and examples watch
// a run's per-slot dynamics (density m, transmission probability p, outcome)
// without modifying the engines or the protocols.
//
// The fair engines invoke the observer once per resolved slot. For
// slot-probability protocols, `probability` is the exact per-station
// probability of that slot (so e.g. One-Fail Adaptive's estimator is
// recoverable as kappa~ = 1/p on AT steps); for window protocols it is the
// per-pending-station hazard 1/(W-j).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/slot.hpp"

namespace ucr {

/// What an observer sees about one resolved slot.
struct SlotView {
  std::uint64_t slot = 0;         ///< 0-based slot index
  std::uint64_t active = 0;       ///< stations still holding a message
  double probability = 0.0;       ///< per-station tx probability (or hazard)
  SlotOutcome outcome = SlotOutcome::kSilence;
};

/// Interface; implementations must be cheap (called every slot).
class SlotObserver {
 public:
  virtual ~SlotObserver() = default;
  virtual void on_slot(const SlotView& view) = 0;
};

/// Retains every stride-th slot (plus every success, optionally), bounding
/// memory for 10^8-slot runs while keeping the shape of the trajectory.
class DownsampledSeries final : public SlotObserver {
 public:
  /// Records slots with index % stride == 0; if `keep_successes`, success
  /// slots are always recorded.
  explicit DownsampledSeries(std::uint64_t stride, bool keep_successes = false);

  void on_slot(const SlotView& view) override;

  const std::vector<SlotView>& series() const { return series_; }
  std::uint64_t observed_slots() const { return observed_; }

 private:
  std::uint64_t stride_;
  bool keep_successes_;
  std::uint64_t observed_ = 0;
  std::vector<SlotView> series_;
};

}  // namespace ucr

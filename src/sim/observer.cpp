#include "sim/observer.hpp"

#include "common/check.hpp"

namespace ucr {

DownsampledSeries::DownsampledSeries(std::uint64_t stride,
                                     bool keep_successes)
    : stride_(stride), keep_successes_(keep_successes) {
  UCR_REQUIRE(stride_ >= 1, "stride must be at least 1");
}

void DownsampledSeries::on_slot(const SlotView& view) {
  ++observed_;
  if (view.slot % stride_ == 0 ||
      (keep_successes_ && view.outcome == SlotOutcome::kSuccess)) {
    series_.push_back(view);
  }
}

}  // namespace ucr

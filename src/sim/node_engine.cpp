#include "sim/node_engine.hpp"

#include <algorithm>
#include <vector>

#include "channel/channel.hpp"
#include "common/check.hpp"
#include "common/mathx.hpp"
#include "common/samplers.hpp"
#include "sim/observer.hpp"
#include "sim/station_soa.hpp"

namespace ucr {

// Station state lives in a StationSoA (sim/station_soa.hpp): parallel
// arrays instead of a vector of per-station structs, so each per-slot pass
// (probability gather, Bernoulli draws, feedback scan) is a tight loop over
// one contiguous array. The passes visit stations in index order — the
// same order as the historical struct-of-vectors loops, and the protocol
// automata consume no randomness in transmit_probability() — so the RNG
// stream is consumed identically and both engines are bit-identical to the
// pre-SoA layout (pinned by tests/integration/golden_test.cpp and the
// spec-catalogue outputs).

RunMetrics run_node_engine(const NodeFactory& factory,
                           const ArrivalPattern& arrivals, Xoshiro256& rng,
                           const EngineOptions& options,
                           LatencyMetrics* latency) {
  UCR_REQUIRE(std::is_sorted(arrivals.begin(), arrivals.end()),
              "arrival pattern must be sorted");
  const std::uint64_t k = arrivals.size();
  UCR_REQUIRE(k > 0, "workload must contain at least one message");

  options.channel.validate();
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  Channel channel;
  StationSoA active;
  active.reserve(std::min<std::uint64_t>(k, 1u << 20));
  std::size_t next_arrival = 0;

  std::uint64_t last_delivery_slot = 0;
  while (metrics.deliveries < k && channel.now() < cap) {
    const std::uint64_t now = channel.now();

    // Activate stations whose message arrives at this slot.
    while (next_arrival < arrivals.size() && arrivals[next_arrival] <= now) {
      active.activate(factory, rng, arrivals[next_arrival]);
      ++next_arrival;
    }

    // Pass 1: probabilities into the contiguous probs() array.
    // Pass 2: one Bernoulli coin per station, in the same index order.
    const double probability_sum = active.gather_probabilities();
    const std::uint64_t transmitters = active.draw_transmissions(rng);

    // The channel model classifies the slot (clean draws no coins; jam
    // and capture coins come from the engine's stream, after the
    // per-station Bernoulli draws of this slot).
    const SlotOutcome outcome = options.channel.resolve(now, transmitters, rng);
    channel.record(outcome, transmitters);

    if (options.observer != nullptr) {
      // SlotView::probability is the mean per-station probability (0 with
      // no active stations) — the heterogeneous-state generalization of
      // the fair engines' common per-station probability.
      const double mean_probability =
          active.empty()
              ? 0.0
              : probability_sum / static_cast<double>(active.size());
      options.observer->on_slot(
          SlotView{now, active.size(), mean_probability, outcome});
    }

    // Who delivered? On the clean channel a success slot has exactly one
    // transmitter. Under capture the slot can have several: the winner is
    // uniform among them (i.i.d. fading ranks), drawn only then — the
    // clean path consumes no extra randomness.
    std::size_t delivered_index = active.size();
    if (outcome == SlotOutcome::kSuccess) {
      UCR_CHECK(transmitters >= 1, "success slot without any transmitter");
      delivered_index = active.nth_transmitter(
          transmitters == 1 ? 0 : rng.next_below(transmitters));
    }

    // Feedback. make_feedback covers the clean-channel observations; a
    // captured slot adds the one case it cannot express — a transmitter
    // that was NOT delivered during a success slot. Half-duplex radios
    // cannot receive while transmitting, so such a station hears nothing
    // (every flag false except its own `transmitted`), exactly like a
    // collision without CD.
    for (std::size_t i = 0; i < active.size(); ++i) {
      Feedback fb;
      if (outcome == SlotOutcome::kSuccess && active.transmitted(i) &&
          i != delivered_index) {
        fb.transmitted = true;
      } else {
        fb = make_feedback(outcome, active.transmitted(i),
                           options.collision_detection);
      }
      active.protocol(i).on_slot_end(fb);
    }
    if (outcome == SlotOutcome::kSuccess) {
      UCR_CHECK(delivered_index < active.size(),
                "success slot without an identified transmitter");
      ++metrics.deliveries;
      last_delivery_slot = now;
      if (options.record_deliveries) {
        metrics.delivery_slots.push_back(now);
      }
      if (latency != nullptr || options.record_latencies) {
        const std::uint64_t message_latency =
            now - active.arrival_slot(delivered_index) + 1;
        if (latency != nullptr) latency->latencies.push_back(message_latency);
        if (options.record_latencies) {
          metrics.latencies.push_back(message_latency);
        }
      }
      // Fold the delivered station's energy, then swap-remove it (station
      // order is irrelevant to the model).
      metrics.max_station_transmissions = std::max(
          metrics.max_station_transmissions, active.sent(delivered_index));
      active.swap_remove(delivered_index);
    }
  }
  // Incomplete runs (and stations that never drained): their energy
  // spend counts too.
  metrics.max_station_transmissions =
      std::max(metrics.max_station_transmissions, active.max_sent());

  metrics.completed = metrics.deliveries == k;
  // Makespan is measured to the last delivery for completed runs (trailing
  // empty slots cannot occur: the loop exits right after the k-th delivery).
  metrics.slots = metrics.completed ? last_delivery_slot + 1 : cap;
  const ChannelCounters& c = channel.counters();
  metrics.silence_slots = c.silence;
  metrics.success_slots = c.success;
  metrics.collision_slots = c.collision;
  metrics.transmissions = c.transmissions;
  metrics.expected_transmissions = static_cast<double>(c.transmissions);
  metrics.validate();
  return metrics;
}

RunMetrics run_node_engine_batched(const NodeFactory& factory,
                                   const ArrivalPattern& arrivals,
                                   Xoshiro256& rng,
                                   const EngineOptions& options,
                                   LatencyMetrics* latency) {
  UCR_REQUIRE(std::is_sorted(arrivals.begin(), arrivals.end()),
              "arrival pattern must be sorted");
  const std::uint64_t k = arrivals.size();
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  UCR_REQUIRE(options.observer == nullptr,
              "the batched engine never materializes skipped slots; per-slot "
              "observers require the exact engine");
  UCR_REQUIRE(options.channel.is_clean(),
              "the batched node engine's stationary-stretch certificates "
              "assume the clean channel; imperfect channel models "
              "(channel/model.hpp) require the exact node engine — the exp "
              "pipeline routes non-clean grids there automatically");

  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);
  KahanSum expected_tx;

  StationSoA active;
  active.reserve(std::min<std::uint64_t>(k, 1u << 20));
  std::size_t next_arrival = 0;
  std::vector<double> weights;  // success-attribution weights, reused

  std::uint64_t now = 0;
  std::uint64_t last_delivery_slot = 0;

  // Shared success bookkeeping of the exact-slot and stretch paths.
  const auto finish_delivery = [&](std::size_t index) {
    ++metrics.success_slots;
    ++metrics.deliveries;
    last_delivery_slot = now;
    if (options.record_deliveries) {
      metrics.delivery_slots.push_back(now);
    }
    if (latency != nullptr || options.record_latencies) {
      const std::uint64_t message_latency =
          now - active.arrival_slot(index) + 1;
      if (latency != nullptr) latency->latencies.push_back(message_latency);
      if (options.record_latencies) {
        metrics.latencies.push_back(message_latency);
      }
    }
    metrics.max_station_transmissions =
        std::max(metrics.max_station_transmissions, active.sent(index));
    active.swap_remove(index);
  };

  while (metrics.deliveries < k && now < cap) {
    while (next_arrival < arrivals.size() && arrivals[next_arrival] <= now) {
      active.activate(factory, rng, arrivals[next_arrival]);
      ++next_arrival;
    }

    if (active.empty()) {
      // No station can transmit before the next arrival: the whole gap is
      // silence. No randomness is consumed — the exact engine draws no
      // coins in empty slots either, so bit-identity survives the skip.
      const std::uint64_t until =
          next_arrival < arrivals.size()
              ? std::min(arrivals[next_arrival], cap)
              : cap;
      metrics.silence_slots += until - now;
      now = until;
      continue;
    }

    // Pass 1: per-station probabilities into the contiguous probs() array,
    // plus the joint stationarity horizon and the slot's category law.
    const StationSoA::SlotLaw law = active.gather_slot_law();
    UCR_CHECK(law.horizon >= 1, "stationary horizon must be >= 1");
    std::uint64_t stretch = std::min(law.horizon, cap - now);
    if (next_arrival < arrivals.size()) {
      // A new station voids every stationarity certificate: truncate the
      // stretch at the next arrival (> now after the activation loop).
      stretch = std::min(stretch, arrivals[next_arrival] - now);
    }

    if (stretch <= 1) {
      // No certified stretch: exact single-slot step with the same
      // per-station draws, in the same order, as run_node_engine — the
      // bit-identity contract for default-hint workloads.
      const std::uint64_t transmitters = active.draw_transmissions(rng);
      const SlotOutcome outcome = resolve_outcome(transmitters);
      metrics.transmissions += transmitters;
      expected_tx.add(static_cast<double>(transmitters));
      std::size_t delivered_index = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        const Feedback fb = make_feedback(outcome, active.transmitted(i),
                                          options.collision_detection);
        active.protocol(i).on_slot_end(fb);
        if (fb.delivered_mine) delivered_index = i;
      }
      if (outcome == SlotOutcome::kSuccess) {
        UCR_CHECK(delivered_index < active.size(),
                  "success slot without an identified transmitter");
        finish_delivery(delivered_index);
      } else if (outcome == SlotOutcome::kSilence) {
        ++metrics.silence_slots;
      } else {
        ++metrics.collision_slots;
      }
      ++now;
      continue;
    }

    // Stationary stretch: slots are i.i.d. categorical until the first
    // success, so the non-success run length is Geometric(s) truncated at
    // the stretch, the skipped slots split into silence vs collision with
    // one binomial draw, and every station advances in bulk. Only the
    // state-changing slot — the success, if the run ended in one — is
    // materialized. Deterministic silence (p_sum == 0, the pre-drawn
    // window adapter's certified run-ups and tails) flows through the same
    // code draw-free: the truncated geometric at s == 0 returns the full
    // stretch and the binomial at conditional == 1 returns it back without
    // touching the engine stream, preserving bit-identity with the exact
    // engine across the skip.
    const std::uint64_t failures =
        sample_geometric_failures(rng, law.s, stretch);
    const bool delivered = failures < stretch;
    std::uint64_t silent = failures;
    if (failures > 0 && law.s < 1.0) {
      const double conditional = std::min(1.0, law.q / (1.0 - law.s));
      silent = sample_binomial(rng, failures, conditional);
    }
    metrics.silence_slots += silent;
    metrics.collision_slots += failures - silent;
    // Unconditional per-slot expectation over the whole stretch, success
    // slot included — the stopping time (first success) is adapted, so by
    // Wald's identity p_sum * E[stretch length] equals the expected
    // realized transmission count; adding the realized 1 of the success
    // slot instead would bias the estimator by 1 - p_sum per delivery
    // (the batched fair engine uses the same convention).
    expected_tx.add(law.p_sum *
                    static_cast<double>(failures + (delivered ? 1 : 0)));
    now += failures;
    for (std::size_t i = 0; i < active.size(); ++i) {
      active.protocol(i).on_non_delivery_slots(failures);
    }
    if (!delivered) continue;

    // The success slot has exactly one transmitter: station i with
    // probability proportional to w_i = p_i * prod_{j != i} (1 - p_j).
    // With one active station the attribution is deterministic — the
    // common case under sparse arrivals. Otherwise suffix products
    // followed by a prefix walk keep the weights exact for p in {0, 1}.
    const std::vector<double>& probs = active.probs();
    std::size_t chosen = 0;
    if (active.size() > 1) {
      weights.resize(active.size());
      double suffix = 1.0;
      for (std::size_t i = active.size(); i-- > 0;) {
        weights[i] = probs[i] * suffix;
        suffix *= 1.0 - probs[i];
      }
      double total = 0.0;
      double prefix = 1.0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        weights[i] *= prefix;
        total += weights[i];
        prefix *= 1.0 - probs[i];
      }
      UCR_CHECK(total > 0.0, "success slot with zero success probability");
      double u = rng.next_double() * total;
      chosen = active.size();
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (weights[i] <= 0.0) continue;
        chosen = i;  // last positive-weight station absorbs rounding
        if (u < weights[i]) break;
        u -= weights[i];
      }
      UCR_CHECK(chosen < active.size(),
                "failed to attribute the success slot to a transmitter");
    }
    ++metrics.transmissions;
    active.add_sent(chosen);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Feedback fb = make_feedback(SlotOutcome::kSuccess, i == chosen,
                                        options.collision_detection);
      active.protocol(i).on_slot_end(fb);
    }
    finish_delivery(chosen);
    ++now;
  }
  metrics.max_station_transmissions =
      std::max(metrics.max_station_transmissions, active.max_sent());

  metrics.completed = metrics.deliveries == k;
  metrics.slots = metrics.completed ? last_delivery_slot + 1 : cap;
  metrics.expected_transmissions = expected_tx.value();
  metrics.validate();
  return metrics;
}

}  // namespace ucr

#include "sim/node_engine.hpp"

#include <algorithm>

#include "channel/channel.hpp"
#include "common/check.hpp"

namespace ucr {

namespace {

struct Station {
  std::unique_ptr<NodeProtocol> protocol;
  std::uint64_t arrival_slot = 0;
  bool transmitted_this_slot = false;
};

}  // namespace

RunMetrics run_node_engine(const NodeFactory& factory,
                           const ArrivalPattern& arrivals, Xoshiro256& rng,
                           const EngineOptions& options,
                           LatencyMetrics* latency) {
  UCR_REQUIRE(std::is_sorted(arrivals.begin(), arrivals.end()),
              "arrival pattern must be sorted");
  const std::uint64_t k = arrivals.size();
  UCR_REQUIRE(k > 0, "workload must contain at least one message");

  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  Channel channel;
  std::vector<Station> active;
  active.reserve(std::min<std::uint64_t>(k, 1u << 20));
  std::size_t next_arrival = 0;

  std::uint64_t last_delivery_slot = 0;
  while (metrics.deliveries < k && channel.now() < cap) {
    const std::uint64_t now = channel.now();

    // Activate stations whose message arrives at this slot.
    while (next_arrival < arrivals.size() && arrivals[next_arrival] <= now) {
      active.push_back(Station{factory(rng), arrivals[next_arrival], false});
      ++next_arrival;
    }

    // Transmission decisions.
    std::uint64_t transmitters = 0;
    for (auto& st : active) {
      const double p = st.protocol->transmit_probability();
      UCR_CHECK(p >= 0.0 && p <= 1.0,
                "protocol produced a probability outside [0, 1]");
      st.transmitted_this_slot = rng.next_bernoulli(p);
      transmitters += st.transmitted_this_slot ? 1 : 0;
    }

    const SlotOutcome outcome = channel.resolve(transmitters);

    // Feedback + deactivation of the successful transmitter.
    std::size_t delivered_index = active.size();
    for (std::size_t i = 0; i < active.size(); ++i) {
      auto& st = active[i];
      const Feedback fb = make_feedback(outcome, st.transmitted_this_slot,
                                        options.collision_detection);
      st.protocol->on_slot_end(fb);
      if (fb.delivered_mine) {
        delivered_index = i;
      }
    }
    if (outcome == SlotOutcome::kSuccess) {
      UCR_CHECK(delivered_index < active.size(),
                "success slot without an identified transmitter");
      ++metrics.deliveries;
      last_delivery_slot = now;
      if (options.record_deliveries) {
        metrics.delivery_slots.push_back(now);
      }
      if (latency != nullptr || options.record_latencies) {
        const std::uint64_t message_latency =
            now - active[delivered_index].arrival_slot + 1;
        if (latency != nullptr) latency->latencies.push_back(message_latency);
        if (options.record_latencies) {
          metrics.latencies.push_back(message_latency);
        }
      }
      // Swap-remove; station order is irrelevant to the model.
      std::swap(active[delivered_index], active.back());
      active.pop_back();
    }
  }

  metrics.completed = metrics.deliveries == k;
  // Makespan is measured to the last delivery for completed runs (trailing
  // empty slots cannot occur: the loop exits right after the k-th delivery).
  metrics.slots = metrics.completed ? last_delivery_slot + 1 : cap;
  const ChannelCounters& c = channel.counters();
  metrics.silence_slots = c.silence;
  metrics.success_slots = c.success;
  metrics.collision_slots = c.collision;
  metrics.transmissions = c.transmissions;
  metrics.expected_transmissions = static_cast<double>(c.transmissions);
  metrics.validate();
  return metrics;
}

}  // namespace ucr

// Parallel parameter-sweep subsystem.
//
// A sweep is a grid of experiment cells (protocol x k x arrival pattern x
// seed); each cell repeats `runs` independent executions. SweepRunner
// flattens the grid into (cell, run) work items and executes them on a
// ThreadPool, then reassembles per-cell aggregates in grid order.
//
// Determinism guarantee: run r of a cell is seeded Xoshiro256::stream(seed,
// r) — the substream derivation the serial runner has always used — and
// every work item writes its RunMetrics into a pre-assigned slot. Scheduling
// order, work stealing, thread count and the size-aware largest-first
// dispatch (SweepOptions::largest_first) therefore cannot influence any
// output bit: SweepRunner with 1 thread, with N threads, with either
// dispatch order, and the serial run_fair_experiment / run_node_experiment
// loops all produce identical results (tests/sim/sweep_test.cpp pins this,
// down to CSV bytes).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/runner.hpp"

namespace ucr {

/// One cell of a sweep grid.
struct SweepPoint {
  ProtocolFactory factory;
  /// Batch size for the fair engine; ignored when `arrivals` drives a
  /// per-node run (k is then arrivals.size()).
  std::uint64_t k = 0;
  /// Non-empty => run through the per-node engine on this pattern.
  ArrivalPattern arrivals;
  /// Heterogeneous-workload cell: when set, run r executes on the per-node
  /// engine with the pattern arrivals_per_run(r). The generator must be a
  /// pure function of r (it may be called from any worker thread), which
  /// keeps the determinism contract: the workload of (cell, run) is fixed
  /// before scheduling happens. Takes precedence over `arrivals`; `k`
  /// should be set to the per-run message count for work sizing.
  std::function<ArrivalPattern(std::uint64_t run)> arrivals_per_run;
  std::uint64_t runs = 10;
  std::uint64_t seed = 2011;
  EngineOptions options;

  /// Fair-engine cell.
  static SweepPoint fair(ProtocolFactory factory, std::uint64_t k,
                         std::uint64_t runs, std::uint64_t seed,
                         const EngineOptions& options = {});

  /// Per-node-engine cell.
  static SweepPoint node(ProtocolFactory factory, ArrivalPattern arrivals,
                         std::uint64_t runs, std::uint64_t seed,
                         const EngineOptions& options = {});

  /// Per-node-engine cell whose workload is re-sampled per run (dynamic
  /// arrival studies: every run sees its own Poisson draw). `k` is the
  /// per-run message count (generator(r).size() for every r).
  static SweepPoint node_per_run(
      ProtocolFactory factory, std::uint64_t k,
      std::function<ArrivalPattern(std::uint64_t run)> generator,
      std::uint64_t runs, std::uint64_t seed,
      const EngineOptions& options = {});

  /// The k this cell's aggregate reports: the explicit batch size, or the
  /// materialized pattern's message count for fixed-pattern node cells.
  std::uint64_t cell_k() const {
    return arrivals.empty() ? k : arrivals.size();
  }
};

/// One run of one cell — the shared work unit of SweepRunner and of any
/// driver executing a cell on its own (exp/cell_task.hpp). Run r of a
/// point is seeded stream(point.seed, r), so (point, r) fully determines
/// the result: executing a cell serially, in a pool, or on another
/// machine produces identical metrics.
RunMetrics run_sweep_point_run(const SweepPoint& point, std::uint64_t run);

struct SweepOptions {
  /// Worker threads; 0 means all hardware threads.
  unsigned threads = 0;
  /// Size-aware dispatch: submit cells in descending k * runs order so the
  /// dominant cells of a skewed grid (k = 10^7 next to k = 10) start
  /// first instead of anchoring the tail of the sweep. Pure scheduling —
  /// results are written to pre-assigned slots and returned in grid
  /// order, so every output bit is identical with or without it, for any
  /// thread count. Applies to run() only: run_streaming() always
  /// dispatches in grid order, because emission follows the completed
  /// grid prefix and out-of-grid-order dispatch would buffer nearly the
  /// whole grid before the first emit (defeating streaming's
  /// bounded-memory point).
  bool largest_first = true;
};

/// Executes sweep grids across a worker pool. The pool is created per
/// run() call: a SweepRunner is cheap to construct and holds no threads
/// between sweeps.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Runs every (cell, run) work item of the grid and returns one
  /// AggregateResult per cell, in grid order. Throws ContractViolation on
  /// malformed cells (runs == 0, missing engine view); an exception thrown
  /// inside any work item (protocol factory or engine) is propagated to
  /// the caller after the remaining items finish.
  std::vector<AggregateResult> run(const std::vector<SweepPoint>& grid) const;

  /// Called once per completed cell, always in grid order.
  using CellCallback =
      std::function<void(std::size_t cell, AggregateResult&& result)>;

  /// Streaming variant of run(): invokes `emit(i, result)` for cell i as
  /// soon as cells 0..i are all complete — i.e. cells are handed out in
  /// grid order, but as a growing prefix while the sweep is still running,
  /// so a consumer can write results out incrementally and the per-run
  /// metrics of emitted cells are released instead of accumulating for the
  /// whole grid. Dispatch is always in grid order (largest_first is
  /// ignored; see SweepOptions), which bounds the out-of-order buffer to
  /// roughly the cells concurrently in flight. Thread count cannot
  /// reorder or alter emissions (same determinism contract as run()).
  /// `emit` runs on worker threads under an internal mutex; if it throws,
  /// the remaining cells are dropped and the exception propagates to the
  /// caller.
  void run_streaming(const std::vector<SweepPoint>& grid,
                     const CellCallback& emit) const;

  /// Effective worker count for this runner's options.
  unsigned threads() const;

 private:
  void run_impl(const std::vector<SweepPoint>& grid, const CellCallback& emit,
                bool largest_first) const;

  SweepOptions options_;
};

}  // namespace ucr

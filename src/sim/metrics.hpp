// Per-run measurement record produced by the simulation engines.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/model.hpp"

namespace ucr {

class SlotObserver;  // sim/observer.hpp

/// Everything measured in one simulated execution.
struct RunMetrics {
  /// True iff all k messages were delivered before the slot cap.
  bool completed = false;
  /// Number of messages in the batch (the paper's k).
  std::uint64_t k = 0;
  /// Makespan: slots elapsed up to and including the last delivery (or the
  /// cap, if not completed). This is the paper's "steps" measure.
  std::uint64_t slots = 0;
  std::uint64_t deliveries = 0;

  std::uint64_t silence_slots = 0;
  std::uint64_t success_slots = 0;
  std::uint64_t collision_slots = 0;

  /// Exact transmission count when the engine knows it (node engine and the
  /// window engine); 0 otherwise.
  std::uint64_t transmissions = 0;
  /// Expected transmission count (sum of m*p over slots); filled by the
  /// O(1)-categorical fair engine where exact counts are not sampled.
  double expected_transmissions = 0.0;

  /// Largest per-station transmission count of the run — the energy_max
  /// statistic (docs/SCENARIOS.md). Exact for the per-station engines
  /// (node): every station's attempts are counted, delivered and
  /// still-active stations alike. The batched node engine counts only
  /// materialized slots (a lower bound wherever a stretch is skipped);
  /// the fair aggregate engines do not track stations and leave 0.
  std::uint64_t max_station_transmissions = 0;

  /// Slot index of each delivery, in order (only when
  /// EngineOptions::record_deliveries is set).
  std::vector<std::uint64_t> delivery_slots;

  /// Per-message latency (delivery slot - arrival slot + 1) in delivery
  /// order; filled by the per-node engine when
  /// EngineOptions::record_latencies is set. The fair engines leave it
  /// empty: under batched arrivals latency is the delivery slot + 1, so
  /// `delivery_slots` already carries it.
  std::vector<std::uint64_t> latencies;

  /// Makespan normalized by k — the paper's Table 1 quantity.
  double ratio() const;

  /// Internal consistency: outcome counts sum to slots, deliveries match
  /// success slots, deliveries == k iff completed. Throws on violation.
  void validate() const;
};

/// Engine knobs shared by all engines.
struct EngineOptions {
  /// Hard slot cap; a run that does not finish is returned with
  /// completed == false (never an infinite loop). 0 means "default cap"
  /// of 10^6 + 100000 * k slots, far above any protocol bound in the repo.
  std::uint64_t max_slots = 0;
  /// Record the slot index of every delivery (costs O(k) memory).
  bool record_deliveries = false;
  /// Record per-message latencies (per-node engine only; O(k) memory).
  bool record_latencies = false;
  /// Use the batched fast paths: for the fair engines
  /// (sim/fair_engine.hpp) O(successes + probability changes) instead of
  /// O(slots) for slot-probability protocols and O(active stations)
  /// instead of O(window slots) per window for window protocols; for the
  /// per-node engine (sim/node_engine.hpp) bulk-sampled stationary
  /// stretches — empty-channel gaps and constant-probability runs
  /// certified by NodeProtocol::stationary_slots() — instead of per-slot
  /// resolution. Same law of outcomes as the exact engines but a
  /// different RNG consumption pattern wherever a stretch is actually
  /// skipped, so individual runs differ; validated statistically
  /// (tests/integration). Incompatible with `observer` (the skipped slots
  /// are never materialized).
  bool batched = false;
  /// Channel-model extension: stations can distinguish collision from
  /// silence (Feedback::heard_collision). The paper's model — and every
  /// protocol it evaluates — uses false; the CD baselines (stack/tree
  /// algorithms) require true.
  bool collision_detection = false;
  /// Per-slot channel behaviour (channel/model.hpp). Only the exact node
  /// engine implements the non-clean models; the fair engines and the
  /// batched fast paths require is_clean() and throw otherwise — the exp
  /// pipeline routes non-clean grids onto the exact node engine at
  /// compile() (exp/plan.cpp), where this field is derived from the
  /// spec's channel axis, not read from the spec's engine_options.
  ChannelModel channel;
  /// Optional per-slot hook (exact engines only — the batched fast paths
  /// never materialize skipped slots and throw if one is attached); not
  /// owned, may be null. See sim/observer.hpp.
  SlotObserver* observer = nullptr;

  /// Resolves the cap for a given k.
  std::uint64_t resolved_cap(std::uint64_t k) const;

  /// Member-wise value equality (the observer hook compares by pointer) —
  /// what makes ExperimentSpec a comparable value type for the spec-file
  /// round-trip contract (exp/spec_io.hpp).
  bool operator==(const EngineOptions&) const = default;
};

}  // namespace ucr

#include "sim/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/samplers.hpp"

namespace ucr {

ArrivalPattern batched_arrivals(std::uint64_t k) {
  return ArrivalPattern(k, 0);
}

ArrivalPattern poisson_arrivals(std::uint64_t k, double lambda,
                                Xoshiro256& rng) {
  UCR_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  ArrivalPattern arrivals;
  arrivals.reserve(k);
  double t = 0.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    // Exponential inter-arrival with mean 1/lambda slots.
    const double u = rng.next_double();
    t += -std::log1p(-u) / lambda;
    arrivals.push_back(static_cast<std::uint64_t>(t));
  }
  return arrivals;
}

ArrivalPattern burst_arrivals(std::uint64_t bursts, std::uint64_t burst_size,
                              std::uint64_t gap) {
  UCR_REQUIRE(bursts > 0 && burst_size > 0, "empty burst workload");
  ArrivalPattern arrivals;
  arrivals.reserve(bursts * burst_size);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    const std::uint64_t at = b * gap;
    for (std::uint64_t i = 0; i < burst_size; ++i) {
      arrivals.push_back(at);
    }
  }
  return arrivals;
}

ArrivalPattern schedule_arrivals(const std::vector<std::uint64_t>& slots,
                                 std::uint64_t k) {
  UCR_REQUIRE(!slots.empty(), "schedule arrival list must not be empty");
  for (std::size_t i = 1; i < slots.size(); ++i) {
    UCR_REQUIRE(slots[i - 1] <= slots[i],
                "schedule arrival list must be sorted non-decreasing (slot " +
                    std::to_string(slots[i]) + " after " +
                    std::to_string(slots[i - 1]) + ")");
  }
  const std::uint64_t period = slots.back() + 1;
  ArrivalPattern arrivals;
  arrivals.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    arrivals.push_back(slots[i % slots.size()] + (i / slots.size()) * period);
  }
  return arrivals;
}

ArrivalPattern mmpp_arrivals(std::uint64_t k, double lambda_hi,
                             double lambda_lo, std::uint64_t dwell,
                             Xoshiro256& rng) {
  UCR_REQUIRE(lambda_hi > 0.0, "MMPP burst-state rate must be positive");
  UCR_REQUIRE(lambda_lo >= 0.0, "MMPP quiet-state rate must be >= 0");
  UCR_REQUIRE(dwell >= 1, "MMPP dwell must be >= 1 slot");
  const double switch_prob = 1.0 / static_cast<double>(dwell);
  ArrivalPattern arrivals;
  arrivals.reserve(k);
  bool burst_state = true;
  std::uint64_t slot = 0;
  while (arrivals.size() < k) {
    const double rate = burst_state ? lambda_hi : lambda_lo;
    std::uint64_t count = rate > 0.0 ? sample_poisson(rng, rate) : 0;
    count = std::min<std::uint64_t>(count, k - arrivals.size());
    for (std::uint64_t i = 0; i < count; ++i) arrivals.push_back(slot);
    if (rng.next_bernoulli(switch_prob)) burst_state = !burst_state;
    ++slot;
  }
  return arrivals;
}

ArrivalPattern pareto_arrivals(std::uint64_t k, double alpha, double xm,
                               Xoshiro256& rng) {
  UCR_REQUIRE(alpha > 0.0, "Pareto shape alpha must be positive");
  UCR_REQUIRE(xm > 0.0, "Pareto scale xm must be positive");
  ArrivalPattern arrivals;
  arrivals.reserve(k);
  double t = 0.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    // Inverse-CDF: X = xm * (1 - u)^(-1/alpha), u in [0, 1) so 1 - u is
    // in (0, 1] and X >= xm always.
    const double u = rng.next_double();
    t += xm * std::pow(1.0 - u, -1.0 / alpha);
    arrivals.push_back(static_cast<std::uint64_t>(t));
  }
  return arrivals;
}

}  // namespace ucr

#include "sim/arrival.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ucr {

ArrivalPattern batched_arrivals(std::uint64_t k) {
  return ArrivalPattern(k, 0);
}

ArrivalPattern poisson_arrivals(std::uint64_t k, double lambda,
                                Xoshiro256& rng) {
  UCR_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  ArrivalPattern arrivals;
  arrivals.reserve(k);
  double t = 0.0;
  for (std::uint64_t i = 0; i < k; ++i) {
    // Exponential inter-arrival with mean 1/lambda slots.
    const double u = rng.next_double();
    t += -std::log1p(-u) / lambda;
    arrivals.push_back(static_cast<std::uint64_t>(t));
  }
  return arrivals;
}

ArrivalPattern burst_arrivals(std::uint64_t bursts, std::uint64_t burst_size,
                              std::uint64_t gap) {
  UCR_REQUIRE(bursts > 0 && burst_size > 0, "empty burst workload");
  ArrivalPattern arrivals;
  arrivals.reserve(bursts * burst_size);
  for (std::uint64_t b = 0; b < bursts; ++b) {
    const std::uint64_t at = b * gap;
    for (std::uint64_t i = 0; i < burst_size; ++i) {
      arrivals.push_back(at);
    }
  }
  return arrivals;
}

}  // namespace ucr

#include "sim/metrics.hpp"

#include "common/check.hpp"

namespace ucr {

double RunMetrics::ratio() const {
  UCR_REQUIRE(k > 0, "ratio undefined for k == 0");
  return static_cast<double>(slots) / static_cast<double>(k);
}

void RunMetrics::validate() const {
  UCR_CHECK(silence_slots + success_slots + collision_slots == slots,
            "slot outcome counts do not sum to the makespan");
  UCR_CHECK(deliveries == success_slots,
            "every success slot delivers exactly one message");
  if (completed) {
    UCR_CHECK(deliveries == k, "completed run must deliver exactly k messages");
  } else {
    UCR_CHECK(deliveries < k,
              "incomplete run cannot have delivered k messages");
  }
  if (!latencies.empty()) {
    UCR_CHECK(latencies.size() == deliveries,
              "recorded latency count mismatch");
  }
  if (!delivery_slots.empty()) {
    UCR_CHECK(delivery_slots.size() == deliveries,
              "recorded delivery count mismatch");
    for (std::size_t i = 1; i < delivery_slots.size(); ++i) {
      UCR_CHECK(delivery_slots[i - 1] < delivery_slots[i],
                "delivery slots must be strictly increasing");
    }
  }
}

std::uint64_t EngineOptions::resolved_cap(std::uint64_t k) const {
  if (max_slots != 0) return max_slots;
  return 1'000'000ULL + 100'000ULL * k;
}

}  // namespace ucr

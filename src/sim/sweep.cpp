#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace ucr {

SweepPoint SweepPoint::fair(ProtocolFactory factory, std::uint64_t k,
                            std::uint64_t runs, std::uint64_t seed,
                            const EngineOptions& options) {
  SweepPoint point;
  point.factory = std::move(factory);
  point.k = k;
  point.runs = runs;
  point.seed = seed;
  point.options = options;
  return point;
}

SweepPoint SweepPoint::node(ProtocolFactory factory, ArrivalPattern arrivals,
                            std::uint64_t runs, std::uint64_t seed,
                            const EngineOptions& options) {
  SweepPoint point;
  point.factory = std::move(factory);
  point.arrivals = std::move(arrivals);
  point.k = point.arrivals.size();
  point.runs = runs;
  point.seed = seed;
  point.options = options;
  return point;
}

SweepPoint SweepPoint::node_per_run(
    ProtocolFactory factory, std::uint64_t k,
    std::function<ArrivalPattern(std::uint64_t run)> generator,
    std::uint64_t runs, std::uint64_t seed, const EngineOptions& options) {
  SweepPoint point;
  point.factory = std::move(factory);
  point.k = k;
  point.arrivals_per_run = std::move(generator);
  point.runs = runs;
  point.seed = seed;
  point.options = options;
  return point;
}

unsigned SweepRunner::threads() const {
  return ThreadPool::resolve_threads(options_.threads);
}

RunMetrics run_sweep_point_run(const SweepPoint& point, std::uint64_t run) {
  if (point.arrivals_per_run) {
    return run_single_node(point.factory, point.arrivals_per_run(run), run,
                           point.seed, point.options);
  }
  if (point.arrivals.empty()) {
    return run_single_fair(point.factory, point.k, run, point.seed,
                           point.options);
  }
  return run_single_node(point.factory, point.arrivals, run, point.seed,
                         point.options);
}

void SweepRunner::run_streaming(const std::vector<SweepPoint>& grid,
                                const CellCallback& emit) const {
  // Grid-order dispatch, always: emission follows the completed grid
  // prefix, so largest-first dispatch would finish the first-in-grid
  // cells last and buffer nearly every aggregate before the first emit.
  run_impl(grid, emit, /*largest_first=*/false);
}

void SweepRunner::run_impl(const std::vector<SweepPoint>& grid,
                           const CellCallback& emit,
                           bool largest_first) const {
  // Validate the whole grid up front so a malformed cell fails before any
  // work is scheduled, not halfway through a long sweep.
  for (const SweepPoint& point : grid) {
    UCR_REQUIRE(point.runs > 0, "at least one run required per sweep point");
    if (point.arrivals_per_run || !point.arrivals.empty()) {
      UCR_REQUIRE(static_cast<bool>(point.factory.node),
                  "protocol '" + point.factory.name +
                      "' has no per-node view");
    } else {
      UCR_REQUIRE(point.factory.has_fair(),
                  "protocol '" + point.factory.name +
                      "' has no fair-engine view");
    }
  }

  // Size-aware dispatch order: largest cells (by the k * runs work proxy)
  // first, so the dominant cells of a skewed grid are in flight from the
  // start instead of anchoring the tail. Stable sort keeps grid order
  // among equals. This only permutes submission; result slots stay
  // pre-assigned, so outputs are unaffected.
  std::vector<std::size_t> order(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) order[cell] = cell;
  if (largest_first) {
    // Node cells carry their size in `arrivals` (SweepPoint::node sets
    // k from it, but guard against hand-built cells where k stayed 0).
    const auto work = [](const SweepPoint& point) {
      const std::uint64_t size =
          point.k != 0 ? point.k : point.arrivals.size();
      return size * point.runs;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&grid, &work](std::size_t a, std::size_t b) {
                       return work(grid[a]) > work(grid[b]);
                     });
  }

  // Pre-assigned result slots: metrics[cell][run]. Each work item writes
  // only its own slot, so the only synchronization beyond the futures is
  // the emission bookkeeping below — and that is order-insensitive: the
  // last run of a cell folds the cell's aggregate, and the emit cursor
  // hands out exactly the completed prefix, whatever order cells finish.
  std::vector<std::vector<RunMetrics>> metrics(grid.size());
  std::vector<std::atomic<std::uint64_t>> remaining(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    metrics[cell].resize(grid[cell].runs);
    remaining[cell].store(grid[cell].runs, std::memory_order_relaxed);
  }
  std::vector<AggregateResult> ready(grid.size());
  std::vector<char> done(grid.size(), 0);
  std::size_t next_emit = 0;
  bool emit_failed = false;  // set once a sink throws; guarded by the mutex
  std::mutex emit_mutex;

  std::vector<std::future<void>> pending;
  {
    ThreadPool pool(options_.threads);
    for (const std::size_t cell : order) {
      const SweepPoint& point = grid[cell];
      for (std::uint64_t r = 0; r < point.runs; ++r) {
        pending.push_back(pool.submit([&, cell, r] {
          const SweepPoint& p = grid[cell];
          metrics[cell][r] = run_sweep_point_run(p, r);
          if (remaining[cell].fetch_sub(1, std::memory_order_acq_rel) != 1) {
            return;
          }
          // Last run of this cell: fold the aggregate, then emit the
          // longest completed prefix. The cursor is advanced before the
          // callback runs so a throwing sink can never double-emit.
          std::lock_guard<std::mutex> lock(emit_mutex);
          ready[cell] = aggregate_runs(p.factory.name, p.cell_k(),
                                       std::move(metrics[cell]));
          done[cell] = 1;
          // Once any sink throws, the stream is dead: emitting later cells
          // would leave a gap in the middle of the output. Drop them and
          // let the parked exception propagate below.
          while (!emit_failed && next_emit < grid.size() &&
                 done[next_emit] != 0) {
            AggregateResult result = std::move(ready[next_emit]);
            const std::size_t index = next_emit++;
            try {
              emit(index, std::move(result));
            } catch (...) {
              emit_failed = true;
              throw;
            }
          }
        }));
      }
    }
    // ~ThreadPool drains the queue; futures below are then all ready.
  }

  // Surface the first work-item (or sink) exception in deterministic
  // submission order — again independent of scheduling.
  for (std::future<void>& f : pending) {
    f.get();
  }
}

std::vector<AggregateResult> SweepRunner::run(
    const std::vector<SweepPoint>& grid) const {
  // Collecting keeps every aggregate anyway, so the size-aware dispatch
  // order costs nothing here and still avoids the skewed-grid tail.
  std::vector<AggregateResult> results(grid.size());
  run_impl(
      grid,
      [&results](std::size_t cell, AggregateResult&& result) {
        results[cell] = std::move(result);
      },
      options_.largest_first);
  return results;
}

}  // namespace ucr

#include "sim/sweep.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace ucr {

SweepPoint SweepPoint::fair(ProtocolFactory factory, std::uint64_t k,
                            std::uint64_t runs, std::uint64_t seed,
                            const EngineOptions& options) {
  SweepPoint point;
  point.factory = std::move(factory);
  point.k = k;
  point.runs = runs;
  point.seed = seed;
  point.options = options;
  return point;
}

SweepPoint SweepPoint::node(ProtocolFactory factory, ArrivalPattern arrivals,
                            std::uint64_t runs, std::uint64_t seed,
                            const EngineOptions& options) {
  SweepPoint point;
  point.factory = std::move(factory);
  point.arrivals = std::move(arrivals);
  point.k = point.arrivals.size();
  point.runs = runs;
  point.seed = seed;
  point.options = options;
  return point;
}

unsigned SweepRunner::threads() const {
  return ThreadPool::resolve_threads(options_.threads);
}

std::vector<AggregateResult> SweepRunner::run(
    const std::vector<SweepPoint>& grid) const {
  // Validate the whole grid up front so a malformed cell fails before any
  // work is scheduled, not halfway through a long sweep.
  for (const SweepPoint& point : grid) {
    UCR_REQUIRE(point.runs > 0, "at least one run required per sweep point");
    if (point.arrivals.empty()) {
      UCR_REQUIRE(point.factory.has_fair(),
                  "protocol '" + point.factory.name +
                      "' has no fair-engine view");
    } else {
      UCR_REQUIRE(static_cast<bool>(point.factory.node),
                  "protocol '" + point.factory.name +
                      "' has no per-node view");
    }
  }

  // Size-aware dispatch order: largest cells (by the k * runs work proxy)
  // first, so the dominant cells of a skewed grid are in flight from the
  // start instead of anchoring the tail. Stable sort keeps grid order
  // among equals. This only permutes submission; result slots stay
  // pre-assigned, so outputs are unaffected.
  std::vector<std::size_t> order(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) order[cell] = cell;
  if (options_.largest_first) {
    // Node cells carry their size in `arrivals` (SweepPoint::node sets
    // k from it, but guard against hand-built cells where k stayed 0).
    const auto work = [](const SweepPoint& point) {
      const std::uint64_t size =
          point.k != 0 ? point.k : point.arrivals.size();
      return size * point.runs;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&grid, &work](std::size_t a, std::size_t b) {
                       return work(grid[a]) > work(grid[b]);
                     });
  }

  // Pre-assigned result slots: metrics[cell][run]. Each work item writes
  // only its own slot, so no synchronization beyond the futures is needed
  // and the assembly below is independent of execution order.
  std::vector<std::vector<RunMetrics>> metrics(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    metrics[cell].resize(grid[cell].runs);
  }
  std::vector<std::future<void>> pending;
  {
    ThreadPool pool(options_.threads);
    for (const std::size_t cell : order) {
      const SweepPoint& point = grid[cell];
      for (std::uint64_t r = 0; r < point.runs; ++r) {
        RunMetrics* slot = &metrics[cell][r];
        pending.push_back(pool.submit([&point, r, slot] {
          *slot = point.arrivals.empty()
                      ? run_single_fair(point.factory, point.k, r, point.seed,
                                        point.options)
                      : run_single_node(point.factory, point.arrivals, r,
                                        point.seed, point.options);
        }));
      }
    }
    // ~ThreadPool drains the queue; futures below are then all ready.
  }

  // Surface the first work-item exception (if any) in deterministic
  // submission order — again independent of scheduling.
  for (std::future<void>& f : pending) {
    f.get();
  }

  std::vector<AggregateResult> results;
  results.reserve(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    const SweepPoint& point = grid[cell];
    const std::uint64_t k =
        point.arrivals.empty() ? point.k : point.arrivals.size();
    results.push_back(
        aggregate_runs(point.factory.name, k, std::move(metrics[cell])));
  }
  return results;
}

}  // namespace ucr

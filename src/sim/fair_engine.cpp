#include "sim/fair_engine.hpp"

#include "common/check.hpp"
#include "common/samplers.hpp"
#include "sim/observer.hpp"

namespace ucr {

RunMetrics run_fair_slot_engine(FairSlotProtocol& protocol, std::uint64_t k,
                                Xoshiro256& rng,
                                const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  std::uint64_t m = k;  // active stations
  while (m > 0 && metrics.slots < cap) {
    const double p = protocol.transmit_probability();
    UCR_CHECK(p >= 0.0 && p <= 1.0,
              "protocol produced a probability outside [0, 1]");
    const SlotCategory cat = sample_slot_category(rng, m, p);
    metrics.expected_transmissions += static_cast<double>(m) * p;

    bool delivery = false;
    SlotOutcome outcome = SlotOutcome::kSilence;
    switch (cat) {
      case SlotCategory::kSilence:
        ++metrics.silence_slots;
        break;
      case SlotCategory::kSuccess:
        ++metrics.success_slots;
        ++metrics.deliveries;
        --m;
        delivery = true;
        outcome = SlotOutcome::kSuccess;
        if (options.record_deliveries) {
          metrics.delivery_slots.push_back(metrics.slots);
        }
        break;
      case SlotCategory::kCollision:
        ++metrics.collision_slots;
        outcome = SlotOutcome::kCollision;
        break;
    }
    if (options.observer != nullptr) {
      options.observer->on_slot(
          SlotView{metrics.slots, m + (delivery ? 1 : 0), p, outcome});
    }
    ++metrics.slots;
    protocol.on_slot_end(delivery);
  }

  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

RunMetrics run_fair_window_engine(WindowSchedule& schedule, std::uint64_t k,
                                  Xoshiro256& rng,
                                  const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  std::uint64_t m = k;  // active stations
  while (m > 0 && metrics.slots < cap) {
    const std::uint64_t window = schedule.next_window_slots();
    UCR_CHECK(window >= 1, "window schedule produced an empty window");

    std::uint64_t pending = m;  // stations yet to transmit in this window
    for (std::uint64_t j = 0; j < window && metrics.slots < cap; ++j) {
      if (m == 0) break;  // problem solved; the makespan stops here
      if (pending == 0) {
        // Everyone already transmitted: the rest of the window is silent,
        // but it still elapses (later deliveries happen after it).
        const std::uint64_t rest = window - j;
        const std::uint64_t take =
            rest < cap - metrics.slots ? rest : cap - metrics.slots;
        metrics.slots += take;
        metrics.silence_slots += take;
        break;
      }
      const double hazard = 1.0 / static_cast<double>(window - j);
      const std::uint64_t t = sample_binomial(rng, pending, hazard);
      pending -= t;
      metrics.transmissions += t;
      metrics.expected_transmissions +=
          static_cast<double>(pending + t) * hazard;
      SlotOutcome outcome;
      if (t == 0) {
        ++metrics.silence_slots;
        outcome = SlotOutcome::kSilence;
      } else if (t == 1) {
        ++metrics.success_slots;
        ++metrics.deliveries;
        --m;
        if (options.record_deliveries) {
          metrics.delivery_slots.push_back(metrics.slots);
        }
        outcome = SlotOutcome::kSuccess;
      } else {
        ++metrics.collision_slots;
        outcome = SlotOutcome::kCollision;
      }
      if (options.observer != nullptr) {
        options.observer->on_slot(SlotView{
            metrics.slots, m + (outcome == SlotOutcome::kSuccess ? 1 : 0),
            hazard, outcome});
      }
      ++metrics.slots;
    }
  }

  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

}  // namespace ucr

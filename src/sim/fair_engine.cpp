#include "sim/fair_engine.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/check.hpp"
#include "common/mathx.hpp"
#include "common/samplers.hpp"
#include "sim/observer.hpp"

namespace ucr {

namespace {

// One exact per-slot step of a fair slot-probability protocol: category
// draw, metric updates, optional observer callback, protocol advance.
// Shared by the exact engine and the batched engine's hint-1 fallback so
// their bit-identical contract holds by construction.
void resolve_slot_exact(FairSlotProtocol& protocol, double p,
                        std::uint64_t& m, Xoshiro256& rng,
                        const EngineOptions& options, RunMetrics& metrics,
                        KahanSum& expected_tx) {
  const SlotCategory cat = sample_slot_category(rng, m, p);
  expected_tx.add(static_cast<double>(m) * p);

  bool delivery = false;
  SlotOutcome outcome = SlotOutcome::kSilence;
  switch (cat) {
    case SlotCategory::kSilence:
      ++metrics.silence_slots;
      break;
    case SlotCategory::kSuccess:
      ++metrics.success_slots;
      ++metrics.deliveries;
      --m;
      delivery = true;
      outcome = SlotOutcome::kSuccess;
      if (options.record_deliveries) {
        metrics.delivery_slots.push_back(metrics.slots);
      }
      break;
    case SlotCategory::kCollision:
      ++metrics.collision_slots;
      outcome = SlotOutcome::kCollision;
      break;
  }
  if (options.observer != nullptr) {
    options.observer->on_slot(
        SlotView{metrics.slots, m + (delivery ? 1 : 0), p, outcome});
  }
  ++metrics.slots;
  protocol.on_slot_end(delivery);
}

}  // namespace

RunMetrics run_fair_slot_engine(FairSlotProtocol& protocol, std::uint64_t k,
                                Xoshiro256& rng,
                                const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  UCR_REQUIRE(options.channel.is_clean(),
              "the fair aggregate engines rest on a common-feedback "
              "symmetry that imperfect channel models (channel/model.hpp) "
              "break; non-clean cells run on the exact node engine — the "
              "exp pipeline routes them there automatically");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);
  KahanSum expected_tx;  // ~10^7 tiny addends at paper scale

  std::uint64_t m = k;  // active stations
  while (m > 0 && metrics.slots < cap) {
    const double p = protocol.transmit_probability();
    UCR_CHECK(p >= 0.0 && p <= 1.0,
              "protocol produced a probability outside [0, 1]");
    resolve_slot_exact(protocol, p, m, rng, options, metrics, expected_tx);
  }

  metrics.expected_transmissions = expected_tx.value();
  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

RunMetrics run_fair_window_engine(WindowSchedule& schedule, std::uint64_t k,
                                  Xoshiro256& rng,
                                  const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  UCR_REQUIRE(options.channel.is_clean(),
              "the fair aggregate engines rest on a common-feedback "
              "symmetry that imperfect channel models (channel/model.hpp) "
              "break; non-clean cells run on the exact node engine — the "
              "exp pipeline routes them there automatically");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);
  KahanSum expected_tx;

  std::uint64_t m = k;  // active stations
  while (m > 0 && metrics.slots < cap) {
    const std::uint64_t window = schedule.next_window_slots();
    UCR_CHECK(window >= 1, "window schedule produced an empty window");

    std::uint64_t pending = m;  // stations yet to transmit in this window
    for (std::uint64_t j = 0; j < window && metrics.slots < cap; ++j) {
      if (m == 0) break;  // problem solved; the makespan stops here
      if (pending == 0) {
        // Everyone already transmitted: the rest of the window is silent,
        // but it still elapses (later deliveries happen after it). The
        // observer still sees every elapsed slot — RunMetrics and
        // observer-derived traces must agree slot for slot.
        const std::uint64_t rest = window - j;
        const std::uint64_t take =
            rest < cap - metrics.slots ? rest : cap - metrics.slots;
        if (options.observer != nullptr) {
          for (std::uint64_t s = 0; s < take; ++s) {
            options.observer->on_slot(
                SlotView{metrics.slots + s, m,
                         1.0 / static_cast<double>(window - (j + s)),
                         SlotOutcome::kSilence});
          }
        }
        metrics.slots += take;
        metrics.silence_slots += take;
        break;
      }
      const double hazard = 1.0 / static_cast<double>(window - j);
      const std::uint64_t t = sample_binomial(rng, pending, hazard);
      pending -= t;
      metrics.transmissions += t;
      expected_tx.add(static_cast<double>(pending + t) * hazard);
      SlotOutcome outcome;
      if (t == 0) {
        ++metrics.silence_slots;
        outcome = SlotOutcome::kSilence;
      } else if (t == 1) {
        ++metrics.success_slots;
        ++metrics.deliveries;
        --m;
        if (options.record_deliveries) {
          metrics.delivery_slots.push_back(metrics.slots);
        }
        outcome = SlotOutcome::kSuccess;
      } else {
        ++metrics.collision_slots;
        outcome = SlotOutcome::kCollision;
      }
      if (options.observer != nullptr) {
        options.observer->on_slot(SlotView{
            metrics.slots, m + (outcome == SlotOutcome::kSuccess ? 1 : 0),
            hazard, outcome});
      }
      ++metrics.slots;
    }
  }

  metrics.expected_transmissions = expected_tx.value();
  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

RunMetrics run_fair_slot_engine_batched(FairSlotProtocol& protocol,
                                        std::uint64_t k, Xoshiro256& rng,
                                        const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  UCR_REQUIRE(options.observer == nullptr,
              "the batched engine never materializes skipped slots; per-slot "
              "observers require the exact engine");
  UCR_REQUIRE(options.channel.is_clean(),
              "the fair aggregate engines rest on a common-feedback "
              "symmetry that imperfect channel models (channel/model.hpp) "
              "break; non-clean cells run on the exact node engine — the "
              "exp pipeline routes them there automatically");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);
  KahanSum expected_tx;

  std::uint64_t m = k;  // active stations
  while (m > 0 && metrics.slots < cap) {
    const double p = protocol.transmit_probability();
    UCR_CHECK(p >= 0.0 && p <= 1.0,
              "protocol produced a probability outside [0, 1]");
    const std::uint64_t horizon = protocol.constant_probability_slots();
    UCR_CHECK(horizon >= 1, "constant-probability horizon must be >= 1");
    const std::uint64_t stretch = std::min(horizon, cap - metrics.slots);

    if (stretch <= 1) {
      // No batching horizon: exact single-slot step, with the same draw as
      // run_fair_slot_engine (bit-identical runs for hint-1 protocols).
      resolve_slot_exact(protocol, p, m, rng, options, metrics, expected_tx);
      continue;
    }

    // Constant-p stretch: slots are i.i.d. categorical until the first
    // success, so the non-success run length is Geometric(P[success])
    // truncated at the stretch, and the skipped slots split into silence
    // vs collision with one binomial draw.
    const double p_success = prob_success(m, p);
    const std::uint64_t failures =
        sample_geometric_failures(rng, p_success, stretch);
    const bool delivered = failures < stretch;
    std::uint64_t silent = failures;
    if (failures > 0 && p_success < 1.0) {
      const double p_silence = prob_silence(m, p);
      const double conditional =
          std::min(1.0, p_silence / (1.0 - p_success));
      silent = sample_binomial(rng, failures, conditional);
    }
    metrics.silence_slots += silent;
    metrics.collision_slots += failures - silent;
    metrics.slots += failures;
    expected_tx.add(static_cast<double>(m) * p *
                    static_cast<double>(failures + (delivered ? 1 : 0)));
    protocol.on_non_delivery_slots(failures);
    if (delivered) {
      ++metrics.success_slots;
      ++metrics.deliveries;
      --m;
      if (options.record_deliveries) {
        metrics.delivery_slots.push_back(metrics.slots);
      }
      ++metrics.slots;
      protocol.on_slot_end(true);
    }
  }

  metrics.expected_transmissions = expected_tx.value();
  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

RunMetrics run_fair_window_engine_batched(WindowSchedule& schedule,
                                          std::uint64_t k, Xoshiro256& rng,
                                          const EngineOptions& options) {
  UCR_REQUIRE(k > 0, "workload must contain at least one message");
  UCR_REQUIRE(options.observer == nullptr,
              "the batched engine never materializes skipped slots; per-slot "
              "observers require the exact engine");
  UCR_REQUIRE(options.channel.is_clean(),
              "the fair aggregate engines rest on a common-feedback "
              "symmetry that imperfect channel models (channel/model.hpp) "
              "break; non-clean cells run on the exact node engine — the "
              "exp pipeline routes them there automatically");
  RunMetrics metrics;
  metrics.k = k;
  const std::uint64_t cap = options.resolved_cap(k);

  std::uint64_t m = k;                 // active stations
  std::vector<std::uint8_t> counts;    // dense path: per-offset occupancy
  std::vector<std::uint64_t> choices;  // sorted-walk path: chosen offsets
  std::vector<std::uint64_t> seen;     // bitmap path: offset occupied
  std::vector<std::uint64_t> twice;    // bitmap path: offset occupied >= 2x

  // Per-station slot choices are drawn in bulk (fill_uniform_below) into a
  // fixed-size block, then scattered into the path's occupancy structure —
  // two tight loops instead of one interleaved RNG-call-per-station loop,
  // with the identical u64 consumption order (bit-identical outputs). The
  // block caps the transient memory at 32 KiB regardless of pending size.
  constexpr std::size_t kChoiceBlock = 4096;
  std::vector<std::uint64_t> choice_buf(kChoiceBlock);
  const auto for_each_choice = [&](std::uint64_t window, std::uint64_t count,
                                   auto&& body) {
    for (std::uint64_t done = 0; done < count;) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(count - done, kChoiceBlock));
      fill_uniform_below(rng, window, choice_buf.data(), chunk);
      for (std::size_t i = 0; i < chunk; ++i) body(choice_buf[i]);
      done += chunk;
    }
  };
  while (m > 0 && metrics.slots < cap) {
    const std::uint64_t window = schedule.next_window_slots();
    UCR_CHECK(window >= 1, "window schedule produced an empty window");
    const std::uint64_t pending = m;
    // Slots of this window that can still elapse under the cap.
    const std::uint64_t usable = std::min(window, cap - metrics.slots);

    if (window <= pending / 8) {
      // Very dense window: the exact per-slot chain (one Binomial(pending,
      // 1/(W-j)) draw per slot) is the cheaper formulation — O(window)
      // draws beats O(pending) station choices by 8x or more.
      std::uint64_t left = pending;  // stations yet to transmit
      for (std::uint64_t j = 0; j < usable; ++j) {
        if (m == 0) break;
        if (left == 0) {
          const std::uint64_t take = usable - j;
          metrics.slots += take;
          metrics.silence_slots += take;
          break;
        }
        const double hazard = 1.0 / static_cast<double>(window - j);
        const std::uint64_t t = sample_binomial(rng, left, hazard);
        left -= t;
        metrics.transmissions += t;
        if (t == 0) {
          ++metrics.silence_slots;
        } else if (t == 1) {
          ++metrics.success_slots;
          ++metrics.deliveries;
          --m;
          if (options.record_deliveries) {
            metrics.delivery_slots.push_back(metrics.slots);
          }
        } else {
          ++metrics.collision_slots;
        }
        ++metrics.slots;
      }
      continue;
    }

    if (window <= pending) {
      // Dense window: sample each station's chosen slot (equivalent in
      // law to the per-slot chain, by the chain rule on uniform slot
      // choices) into a small occupancy array and walk the window in slot
      // order — O(pending + window) with per-element costs far below a
      // binomial draw. Counts saturate at 255: the walk only
      // distinguishes {0, 1, >= 2}, and transmissions are counted at draw
      // time.
      counts.assign(static_cast<std::size_t>(usable), 0);
      for_each_choice(window, pending, [&](std::uint64_t c) {
        if (c >= usable) return;
        ++metrics.transmissions;
        std::uint8_t& count = counts[static_cast<std::size_t>(c)];
        if (count != 255) ++count;
      });
      for (std::uint64_t j = 0; j < usable; ++j) {
        const std::uint8_t n = counts[static_cast<std::size_t>(j)];
        ++metrics.slots;
        if (n == 0) {
          ++metrics.silence_slots;
        } else if (n == 1) {
          ++metrics.success_slots;
          ++metrics.deliveries;
          --m;
          if (options.record_deliveries) {
            metrics.delivery_slots.push_back(metrics.slots - 1);
          }
          if (m == 0) break;  // last delivery: the makespan stops here
        } else {
          ++metrics.collision_slots;
        }
      }
      continue;
    }

    // Sparse window (window >> active stations — the paper-scale regime
    // for monotone back-off): sample each pending station's chosen slot
    // directly and resolve only the occupied slots. Equivalent in law to
    // the per-slot chain by the chain rule on uniform slot choices.
    //
    // Occupancy is classified {0, 1, >= 2} per offset with two bitmaps in
    // O(pending + window/64) — no sort. The bitmaps lose the slot order,
    // which is only needed when recording delivery slots, so that case
    // (and the ultra-sparse one where the bitmaps would dwarf the choice
    // list) takes a sort-and-walk fallback.
    const bool bitmap_fits =
        !options.record_deliveries && usable / 64 <= pending;
    if (bitmap_fits) {
      const std::size_t words = static_cast<std::size_t>(usable / 64 + 1);
      seen.assign(words, 0);
      twice.assign(words, 0);
      std::uint64_t max_choice = 0;
      for_each_choice(window, pending, [&](std::uint64_t c) {
        // Stations beyond the cap never get to transmit (the run stops
        // first), exactly as in the per-slot engines.
        if (c >= usable) return;
        ++metrics.transmissions;
        if (c > max_choice) max_choice = c;
        const std::uint64_t bit = std::uint64_t{1} << (c % 64);
        std::uint64_t& word = seen[static_cast<std::size_t>(c / 64)];
        if (word & bit) {
          twice[static_cast<std::size_t>(c / 64)] |= bit;
        } else {
          word |= bit;
        }
      });
      std::uint64_t occupied = 0;
      std::uint64_t collisions = 0;
      for (std::size_t w = 0; w < words; ++w) {
        occupied += static_cast<std::uint64_t>(std::popcount(seen[w]));
        collisions += static_cast<std::uint64_t>(std::popcount(twice[w]));
      }
      const std::uint64_t successes = occupied - collisions;
      metrics.success_slots += successes;
      metrics.deliveries += successes;
      metrics.collision_slots += collisions;
      m -= successes;
      // Every pending station delivered <=> the window ends early, at the
      // last (necessarily singleton) choice.
      const std::uint64_t elapsed = m == 0 ? max_choice + 1 : usable;
      metrics.silence_slots += elapsed - occupied;
      metrics.slots += elapsed;
      continue;
    }

    choices.clear();
    for_each_choice(window, pending, [&](std::uint64_t c) {
      if (c < usable) choices.push_back(c);
    });
    std::sort(choices.begin(), choices.end());

    std::uint64_t elapsed = usable;
    std::uint64_t occupied = 0;
    std::size_t i = 0;
    while (i < choices.size()) {
      const std::uint64_t offset = choices[i];
      std::size_t j = i + 1;
      while (j < choices.size() && choices[j] == offset) ++j;
      const std::uint64_t transmitters = j - i;
      metrics.transmissions += transmitters;
      ++occupied;
      if (transmitters == 1) {
        ++metrics.success_slots;
        ++metrics.deliveries;
        --m;
        if (options.record_deliveries) {
          metrics.delivery_slots.push_back(metrics.slots + offset);
        }
        if (m == 0) {
          // Last delivery: the makespan stops here, mid-window.
          elapsed = offset + 1;
          break;
        }
      } else {
        ++metrics.collision_slots;
      }
      i = j;
    }
    metrics.silence_slots += elapsed - occupied;
    metrics.slots += elapsed;
  }

  // Transmission counting is exact on both paths; the realized count is
  // also the conditional expectation given the slot choices, so the
  // expected-count field mirrors it in batched mode.
  metrics.expected_transmissions =
      static_cast<double>(metrics.transmissions);
  metrics.completed = m == 0;
  metrics.validate();
  return metrics;
}

}  // namespace ucr

// Persistence of experiment results: aggregate rows written to / read back
// from CSV, so harness outputs can be archived, diffed against
// EXPERIMENTS.md, and re-plotted without re-running the sweeps.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace ucr {

/// The persisted projection of an AggregateResult (one CSV row). Carries
/// the full makespan quartile/percentile spread the Summary computes —
/// min, p25, median, p75, p95, max — plus the per-message latency
/// percentiles of dynamic cells, so archived sweeps can be re-plotted
/// with distribution envelopes without re-running anything.
struct AggregateRow {
  std::string protocol;
  std::uint64_t k = 0;
  std::uint64_t runs = 0;
  std::uint64_t incomplete_runs = 0;
  double mean_makespan = 0.0;
  double stddev_makespan = 0.0;
  double min_makespan = 0.0;
  double p25_makespan = 0.0;
  double median_makespan = 0.0;
  double p75_makespan = 0.0;
  double p95_makespan = 0.0;
  double max_makespan = 0.0;
  double mean_ratio = 0.0;
  /// Per-message latency percentiles (pooled over runs); 0 unless the
  /// cell ran with EngineOptions::record_latencies on a per-node engine.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  /// Energy accounting (AggregateResult::energy_mean / energy_max, see
  /// docs/SCENARIOS.md): mean per-station transmissions per run, and the
  /// worst single station's count across runs (0 on the fair engines).
  double energy_mean = 0.0;
  double energy_max = 0.0;
  /// Provenance: content hash of the canonical spec text
  /// (ucr::exp::spec_hash) when the row was emitted by the exp pipeline's
  /// streaming sinks; empty for rows assembled by hand. Shard-invariant,
  /// so concatenated shard archives stay byte-identical AND
  /// self-describing.
  std::string spec_hash;

  /// Projects an in-memory aggregate onto its persisted row (spec_hash is
  /// the emitting sink's to fill — the aggregate does not know its spec).
  static AggregateRow from(const AggregateResult& result);

  bool operator==(const AggregateRow&) const = default;
};

/// Writes a header plus one row per result.
void write_aggregate_csv(std::ostream& os,
                         const std::vector<AggregateRow>& rows);

/// Incremental writers behind write_aggregate_csv, for streaming emission
/// (exp/sink.hpp): header exactly as write_aggregate_csv emits it, one row
/// at a time. write_aggregate_csv(os, rows) == write_aggregate_header(os)
/// followed by write_aggregate_row for each row, byte for byte.
void write_aggregate_header(std::ostream& os);
void write_aggregate_row(std::ostream& os, const AggregateRow& row);

/// Reads rows written by write_aggregate_csv. Throws ContractViolation on
/// malformed input (wrong header, wrong column count, non-numeric cells).
std::vector<AggregateRow> read_aggregate_csv(std::istream& is);

/// Splits one CSV line into cells, honouring RFC 4180 quoting (the inverse
/// of CsvWriter::escape). Exposed for tests.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace ucr

// Per-node simulation engines: every station is simulated individually.
//
// run_node_engine is the ground-truth engine — it makes no fairness
// assumption, so it supports dynamic arrivals (stations in genuinely
// different states) and is used by the test suite to validate the aggregate
// engine statistically. Cost is O(active stations) per slot; use FairEngine
// for batched arrivals at k >> 10^4.
//
// run_node_engine_batched is its fast path for the silent stretches dynamic
// workloads are made of (EngineOptions::batched with node cells): whenever
// the active-station set is stationary — empty until the next arrival, or
// every station advertising a constant transmission probability through
// NodeProtocol::stationary_slots() — the slots are i.i.d. categorical, so
// the engine samples the geometric length of the non-success run plus one
// binomial silence/collision split in bulk and materializes only the
// state-changing (success) slot. Arrivals truncate every stretch, so
// Poisson/burst workloads stay exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/arrival.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Creates a fresh protocol instance for one station. `rng` may be used by
/// stateful protocols that pre-draw randomness (it outlives the instance).
using NodeFactory =
    std::function<std::unique_ptr<NodeProtocol>(Xoshiro256& rng)>;

/// Per-message latency results (only filled when requested via options).
struct LatencyMetrics {
  /// delivery_slot[i] - arrival_slot[i] + 1 for each delivered message, in
  /// delivery order.
  std::vector<std::uint64_t> latencies;
};

/// Runs the per-node engine on an arbitrary arrival pattern.
///
/// `arrivals` must be sorted non-decreasing. Every station gets a protocol
/// instance from `factory` the moment it is activated. Returns metrics with
/// `k = arrivals.size()`. An EngineOptions::observer is invoked once per
/// resolved slot; SlotView::probability reports the mean per-station
/// transmission probability of the slot (0 when no station is active),
/// the per-node generalization of the fair engines' common probability.
RunMetrics run_node_engine(const NodeFactory& factory,
                           const ArrivalPattern& arrivals, Xoshiro256& rng,
                           const EngineOptions& options,
                           LatencyMetrics* latency = nullptr);

/// Batched fast path of the per-node engine (see the file comment).
///
/// Same law of outcomes as run_node_engine — no approximation: within a
/// stationary stretch the slots are i.i.d. categorical over {silence,
/// success-by-station-i, collision}, so drawing the truncated geometric
/// non-success run length, one binomial silence/collision split, and the
/// delivering station from its conditional distribution reproduces the
/// exact joint law. Stretches where any active station declines to certify
/// stationarity (NodeProtocol::stationary_slots() == 1) are resolved with
/// the exact engine's per-station draws in the same order, and skipping an
/// empty-channel stretch consumes no randomness at all — so a workload
/// whose stations all keep the default hint of 1 is bit-identical to
/// run_node_engine from the same seed. Stretches certified by hints > 1
/// generally consume randomness differently and are pinned statistically
/// (tests/integration/node_batched_test.cpp) — except when every
/// probability in the stretch is an exact 0 or 1, as with the pre-drawn
/// window adapter (protocols/window_node.hpp): Bernoulli, geometric and
/// binomial draws are all draw-free at degenerate p, so window-protocol
/// cells are bit-identical between the two engines even while skipping
/// (pinned byte-for-byte by the dynamic-arrivals golden test).
///
/// Accounting: RunMetrics::transmissions counts materialized slots only;
/// expected_transmissions carries realized counts for materialized slots
/// plus the unconditional expectation sum_i p_i per slot of every bulk
/// stretch, its success slot included — unbiased by Wald's identity, so
/// its mean matches the exact engine's realized mean, and for a run with
/// no skipped stretches the two are equal. Incompatible with
/// EngineOptions::observer — skipped slots are never materialized; the
/// engine throws ContractViolation if one is attached.
RunMetrics run_node_engine_batched(const NodeFactory& factory,
                                   const ArrivalPattern& arrivals,
                                   Xoshiro256& rng,
                                   const EngineOptions& options,
                                   LatencyMetrics* latency = nullptr);

}  // namespace ucr

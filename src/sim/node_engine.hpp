// Per-node simulation engine: every station is simulated individually.
//
// This is the ground-truth engine — it makes no fairness assumption, so it
// supports dynamic arrivals (stations in genuinely different states) and is
// used by the test suite to validate the aggregate engine statistically.
// Cost is O(active stations) per slot; use FairEngine for k >> 10^4.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/arrival.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Creates a fresh protocol instance for one station. `rng` may be used by
/// stateful protocols that pre-draw randomness (it outlives the instance).
using NodeFactory =
    std::function<std::unique_ptr<NodeProtocol>(Xoshiro256& rng)>;

/// Per-message latency results (only filled when requested via options).
struct LatencyMetrics {
  /// delivery_slot[i] - arrival_slot[i] + 1 for each delivered message, in
  /// delivery order.
  std::vector<std::uint64_t> latencies;
};

/// Runs the per-node engine on an arbitrary arrival pattern.
///
/// `arrivals` must be sorted non-decreasing. Every station gets a protocol
/// instance from `factory` the moment it is activated. Returns metrics with
/// `k = arrivals.size()`.
RunMetrics run_node_engine(const NodeFactory& factory,
                           const ArrivalPattern& arrivals, Xoshiro256& rng,
                           const EngineOptions& options,
                           LatencyMetrics* latency = nullptr);

}  // namespace ucr

// Experiment runner: repeats runs with independent seeds and aggregates.
//
// A ProtocolFactory bundles the three engine views of one named protocol
// configuration. Factories receive k because two of the paper's algorithms
// are parameterized by knowledge of (a bound on) k: Log-Fails Adaptive
// needs epsilon ~= 1/(k+1) and the known-k genie needs k itself. The
// knowledge-free protocols simply ignore the argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/fair_engine.hpp"
#include "sim/node_engine.hpp"

namespace ucr {

/// The three engine views of one protocol configuration. Exactly one of
/// `fair_slot` / `window` must be set (for the aggregate engine); `node`
/// should be set whenever the per-node engine or dynamic workloads are used.
struct ProtocolFactory {
  std::string name;
  std::function<std::unique_ptr<FairSlotProtocol>(std::uint64_t k)> fair_slot;
  std::function<std::unique_ptr<WindowSchedule>(std::uint64_t k)> window;
  std::function<std::unique_ptr<NodeProtocol>(std::uint64_t k, Xoshiro256& rng)>
      node;

  bool has_fair() const {
    return static_cast<bool>(fair_slot) || static_cast<bool>(window);
  }
};

/// Aggregated outcome of `runs` independent executions at one k.
struct AggregateResult {
  std::string protocol;
  std::uint64_t k = 0;
  std::uint64_t runs = 0;
  std::uint64_t incomplete_runs = 0;  ///< runs stopped by the slot cap
  Summary makespan;                   ///< slots (capped value for incomplete)
  Summary ratio;                      ///< slots / k
  /// Percentiles of the per-message latencies pooled across all runs (in
  /// run order, so deterministic for any thread count). Only the per-node
  /// engines record latencies, and only under
  /// EngineOptions::record_latencies; all three stay 0 otherwise.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  /// Energy accounting (docs/SCENARIOS.md): mean transmissions per
  /// station per run, averaged over runs — exact counts where the engine
  /// samples them (node engines, window engine), the expected count
  /// otherwise (the O(1)-categorical fair engine). The GreenPod-style
  /// per-station budget view of the same sweeps.
  double energy_mean = 0.0;
  /// Max over runs of the run's largest per-station transmission count
  /// (RunMetrics::max_station_transmissions). Exact on the exact node
  /// engine; a materialized-slots lower bound on the batched node engine;
  /// 0 on the fair engines, which do not track stations.
  double energy_max = 0.0;
  std::vector<RunMetrics> details;    ///< one entry per run
};

/// One execution of a fair protocol at batch size k through the aggregate
/// engine, seeded as stream(seed, run_index). This is the unit of work the
/// serial experiment loops and the parallel SweepRunner (sim/sweep.hpp)
/// share: a (seed, run_index) pair fully determines the result, so
/// scheduling order and thread count cannot change any output.
RunMetrics run_single_fair(const ProtocolFactory& factory, std::uint64_t k,
                           std::uint64_t run_index, std::uint64_t seed,
                           const EngineOptions& options);

/// One execution through the per-node engine, seeded as
/// stream(seed, run_index). EngineOptions::batched selects the batched
/// node engine (bulk-skipped stationary stretches; same law, different
/// RNG path wherever a stretch is skipped).
RunMetrics run_single_node(const ProtocolFactory& factory,
                           const ArrivalPattern& arrivals,
                           std::uint64_t run_index, std::uint64_t seed,
                           const EngineOptions& options);

/// Folds per-run metrics (in run order) into the aggregate summary.
AggregateResult aggregate_runs(std::string name, std::uint64_t k,
                               std::vector<RunMetrics> runs);

/// Runs `runs` executions of a fair protocol at batch size k through the
/// aggregate engine, with run r seeded as stream(seed, r).
AggregateResult run_fair_experiment(const ProtocolFactory& factory,
                                    std::uint64_t k, std::uint64_t runs,
                                    std::uint64_t seed,
                                    const EngineOptions& options);

/// Same, but through the per-node engine (any protocol with a `node`
/// factory; arbitrary arrival pattern).
AggregateResult run_node_experiment(const ProtocolFactory& factory,
                                    const ArrivalPattern& arrivals,
                                    std::uint64_t runs, std::uint64_t seed,
                                    const EngineOptions& options);

/// Standard k sweep of the paper's evaluation: powers of ten from 10 to
/// `k_max` inclusive (k_max itself included even if not a power of ten).
std::vector<std::uint64_t> paper_k_sweep(std::uint64_t k_max);

}  // namespace ucr

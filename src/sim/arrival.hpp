// Message-arrival workloads.
//
// The paper's evaluation is entirely *static* (batched) k-selection: all k
// messages arrive at slot 0. The dynamic models are provided for the
// future-work study the paper proposes in Section 6 (message arrivals at
// different times, statistical or adversarial).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ucr {

/// A concrete workload: arrival_slot[i] is the slot at whose beginning
/// station i is activated with one message. Always sorted non-decreasing.
using ArrivalPattern = std::vector<std::uint64_t>;

/// All k messages arrive simultaneously at slot 0 (the paper's setting).
ArrivalPattern batched_arrivals(std::uint64_t k);

/// k messages with exponential inter-arrival times of rate `lambda`
/// (expected `lambda` messages per slot, Poisson process discretized to
/// slot granularity).
ArrivalPattern poisson_arrivals(std::uint64_t k, double lambda,
                                Xoshiro256& rng);

/// Adversarial bursts: `bursts` batches of `burst_size` messages, separated
/// by `gap` silent slots — the bursty worst-case pattern cited by the paper
/// ([11, 17]) as the motivation for batched analysis.
ArrivalPattern burst_arrivals(std::uint64_t bursts, std::uint64_t burst_size,
                              std::uint64_t gap);

}  // namespace ucr

// Message-arrival workloads.
//
// The paper's evaluation is entirely *static* (batched) k-selection: all k
// messages arrive at slot 0. The dynamic models are provided for the
// future-work study the paper proposes in Section 6 (message arrivals at
// different times, statistical or adversarial).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace ucr {

/// A concrete workload: arrival_slot[i] is the slot at whose beginning
/// station i is activated with one message. Always sorted non-decreasing.
using ArrivalPattern = std::vector<std::uint64_t>;

/// All k messages arrive simultaneously at slot 0 (the paper's setting).
ArrivalPattern batched_arrivals(std::uint64_t k);

/// k messages with exponential inter-arrival times of rate `lambda`
/// (expected `lambda` messages per slot, Poisson process discretized to
/// slot granularity).
ArrivalPattern poisson_arrivals(std::uint64_t k, double lambda,
                                Xoshiro256& rng);

/// Adversarial bursts: `bursts` batches of `burst_size` messages, separated
/// by `gap` silent slots — the bursty worst-case pattern cited by the paper
/// ([11, 17]) as the motivation for batched analysis.
ArrivalPattern burst_arrivals(std::uint64_t bursts, std::uint64_t burst_size,
                              std::uint64_t gap);

/// Fixed worst-case schedule: the first k arrivals of the adversary's slot
/// list `slots` (sorted non-decreasing, non-empty), tiled with period
/// slots.back() + 1 when k exceeds the list — so a spec-embedded schedule
/// of any length materializes a deterministic pattern for any k. Throws
/// ContractViolation on an empty or unsorted list.
ArrivalPattern schedule_arrivals(const std::vector<std::uint64_t>& slots,
                                 std::uint64_t k);

/// Markov-modulated Poisson process: a two-state arrival source that emits
/// Poisson(lambda_hi) arrivals per slot in the burst state and
/// Poisson(lambda_lo) in the quiet state, switching state with probability
/// 1/dwell after each slot (geometric dwell times with mean `dwell`).
/// Starts in the burst state; truncated to exactly k arrivals.
ArrivalPattern mmpp_arrivals(std::uint64_t k, double lambda_hi,
                             double lambda_lo, std::uint64_t dwell,
                             Xoshiro256& rng);

/// Heavy-tailed inter-arrivals: gaps drawn from a Pareto(alpha, xm)
/// distribution (X = xm * U^(-1/alpha), floored to slot granularity), the
/// classic model for self-similar bursty traffic. alpha <= 1 gives an
/// infinite-mean gap distribution — legal, but expect enormous quiet
/// stretches.
ArrivalPattern pareto_arrivals(std::uint64_t k, double alpha, double xm,
                               Xoshiro256& rng);

}  // namespace ucr

// Structure-of-arrays station state for the per-node engines.
//
// The engines used to chase a vector of per-station structs (protocol
// pointer, arrival slot, flags, counters) in their per-slot hot loops.
// This class keeps the same logical state as parallel arrays instead:
//
//   protocols_     — the polymorphic protocol automata (pointer-chased by
//                    necessity: protocol state machines are heterogeneous);
//   arrival_slot_  — latency bookkeeping, one contiguous array;
//   sent_          — per-station transmission attempts (the energy ledger);
//   probs_         — this slot's transmission probabilities, gathered once
//                    per slot so every later pass is a tight scan over a
//                    contiguous double array;
//   transmitted_   — this slot's coin flips, one byte per station.
//
// The per-slot passes (probability gather, Bernoulli draws, feedback scan,
// success attribution) each traverse exactly one or two of these arrays,
// which is what lets the engines' per-slot work stay branch-light and
// cache-friendly at large active-station counts. RNG draw order is the
// per-station index order, identical to the old struct-of-vectors loops,
// so engine outputs are bit-identical to the pre-SoA layout
// (docs/ARCHITECTURE.md "SoA station state").
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/node_engine.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Parallel-array station state shared by run_node_engine and
/// run_node_engine_batched. Persistent arrays (protocol, arrival slot,
/// attempt count) stay index-aligned across swap_remove; per-slot scratch
/// (probabilities, transmitted flags) is valid only between the gather and
/// the end of the same slot.
class StationSoA {
 public:
  /// Joint law of one slot over the current active set, accumulated during
  /// the probability gather: q = P[silence], s = P[success] (the stable
  /// station-by-station recurrence — exact for p in {0, 1}, no
  /// catastrophic cancellation for tiny p), p_sum = expected transmitter
  /// count, and the joint stationarity horizon (min over stations).
  struct SlotLaw {
    std::uint64_t horizon = ~std::uint64_t{0};
    double q = 1.0;
    double s = 0.0;
    double p_sum = 0.0;
  };

  void reserve(std::size_t n);
  std::size_t size() const { return protocols_.size(); }
  bool empty() const { return protocols_.empty(); }

  /// Activates one station: a fresh protocol instance from `factory` (which
  /// may consume `rng`), tagged with its arrival slot.
  void activate(const NodeFactory& factory, Xoshiro256& rng,
                std::uint64_t arrival_slot);

  /// Pass 1 (exact engine): gathers every station's transmission
  /// probability into the probs() array, in index order. Returns the sum
  /// (the observer's mean-probability numerator). Throws on p outside
  /// [0, 1].
  double gather_probabilities() {
    const std::size_t n = protocols_.size();
    probs_.resize(n);
    double p_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = protocols_[i]->transmit_probability();
      UCR_CHECK(p >= 0.0 && p <= 1.0,
                "protocol produced a probability outside [0, 1]");
      probs_[i] = p;
      p_sum += p;
    }
    return p_sum;
  }

  /// Pass 1 (batched engine): gather_probabilities plus the slot's joint
  /// category law and the min stationarity horizon, in one scan.
  SlotLaw gather_slot_law() {
    const std::size_t n = protocols_.size();
    probs_.resize(n);
    SlotLaw law;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = protocols_[i]->transmit_probability();
      UCR_CHECK(p >= 0.0 && p <= 1.0,
                "protocol produced a probability outside [0, 1]");
      probs_[i] = p;
      law.horizon = std::min(law.horizon, protocols_[i]->stationary_slots());
      law.s = law.s * (1.0 - p) + law.q * p;
      law.q *= 1.0 - p;
      law.p_sum += p;
    }
    return law;
  }

  /// Pass 2: one Bernoulli(probs()[i]) coin per station, in index order —
  /// the same RNG consumption as the historical per-struct loop. Records
  /// the flips in transmitted(), charges the energy ledger, and returns
  /// the transmitter count.
  std::uint64_t draw_transmissions(Xoshiro256& rng) {
    const std::size_t n = probs_.size();
    transmitted_.resize(n);
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool t = rng.next_bernoulli(probs_[i]);
      transmitted_[i] = t;
      sent_[i] += t;
      count += t;
    }
    return count;
  }

  /// Index of the `target`-th transmitter (0-based) of this slot's flips.
  /// Requires target < the count returned by draw_transmissions.
  std::size_t nth_transmitter(std::uint64_t target) const {
    for (std::size_t i = 0; i < transmitted_.size(); ++i) {
      if (!transmitted_[i]) continue;
      if (target == 0) return i;
      --target;
    }
    UCR_CHECK(false, "fewer transmitters than the requested index");
    return transmitted_.size();
  }

  NodeProtocol& protocol(std::size_t i) { return *protocols_[i]; }
  const std::vector<double>& probs() const { return probs_; }
  bool transmitted(std::size_t i) const { return transmitted_[i] != 0; }
  std::uint64_t arrival_slot(std::size_t i) const { return arrival_slot_[i]; }
  std::uint64_t sent(std::size_t i) const { return sent_[i]; }
  void add_sent(std::size_t i) { ++sent_[i]; }

  /// Removes station i by swapping with the last station (order is
  /// irrelevant to the model). Per-slot scratch is not remapped — it is
  /// stale after any removal.
  void swap_remove(std::size_t i);

  /// Largest attempt count among still-active stations (the end-of-run
  /// energy fold for stations that never drained).
  std::uint64_t max_sent() const;

 private:
  std::vector<std::unique_ptr<NodeProtocol>> protocols_;
  std::vector<std::uint64_t> arrival_slot_;
  std::vector<std::uint64_t> sent_;
  // Per-slot scratch, index-aligned with the persistent arrays.
  std::vector<double> probs_;
  std::vector<std::uint8_t> transmitted_;
};

}  // namespace ucr

#include "sim/station_soa.hpp"

namespace ucr {

void StationSoA::reserve(std::size_t n) {
  protocols_.reserve(n);
  arrival_slot_.reserve(n);
  sent_.reserve(n);
}

void StationSoA::activate(const NodeFactory& factory, Xoshiro256& rng,
                          std::uint64_t arrival_slot) {
  protocols_.push_back(factory(rng));
  arrival_slot_.push_back(arrival_slot);
  sent_.push_back(0);
}

void StationSoA::swap_remove(std::size_t i) {
  UCR_CHECK(i < protocols_.size(), "swap_remove index out of range");
  std::swap(protocols_[i], protocols_.back());
  protocols_.pop_back();
  arrival_slot_[i] = arrival_slot_.back();
  arrival_slot_.pop_back();
  sent_[i] = sent_.back();
  sent_.pop_back();
}

std::uint64_t StationSoA::max_sent() const {
  std::uint64_t max = 0;
  for (const std::uint64_t s : sent_) max = std::max(max, s);
  return max;
}

}  // namespace ucr

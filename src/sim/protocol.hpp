// Protocol interfaces — the contract between contention-resolution
// protocols and the two simulation engines.
//
// Three views of a protocol:
//
//  * NodeProtocol     — one instance per station; the ground-truth view.
//                       Works for any protocol, including non-fair states
//                       (dynamic arrivals). O(m) per slot.
//  * FairSlotProtocol — one *shared* state for all active stations of a
//                       fair slot-probability protocol (all active stations
//                       provably hold identical state under batched
//                       arrivals, because channel feedback is common
//                       knowledge). O(1) per slot.
//  * WindowSchedule   — the window-size generator of a fair contention-
//                       window protocol (each pending station picks exactly
//                       one uniform slot per window).
#pragma once

#include <cstdint>
#include <memory>

#include "channel/slot.hpp"

namespace ucr {

/// Per-station protocol automaton driven by the per-node engine.
class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Probability with which this station transmits in the current slot.
  /// Must be in [0, 1]. Called once per slot while the station is active.
  virtual double transmit_probability() = 0;

  /// End-of-slot feedback (legal observations only, see channel/slot.hpp).
  /// Called once per slot while active; when `fb.delivered_mine` is true the
  /// engine deactivates the station after this call.
  virtual void on_slot_end(const Feedback& fb) = 0;

  /// Batching hint for the per-node fast path (sim/node_engine.hpp): the
  /// number of upcoming slots — counting the current one — over which this
  /// station is *stationary* as long as no slot is a success: its
  /// transmit_probability() stays constant, and its end-of-slot update is
  /// independent of both its own `transmitted` flag and the silence /
  /// collision distinction, so the skipped on_slot_end calls are together
  /// equivalent to one on_non_delivery_slots(count) call. Must be >= 1.
  /// Queried right after transmit_probability() in the same slot.
  ///
  /// This is the per-station analogue of FairSlotProtocol::
  /// constant_probability_slots(), generalized to heterogeneous state: the
  /// batched node engine skips min-over-stations stretches. The
  /// conservative default of 1 keeps every protocol on the exact per-slot
  /// path (bit-identical to run_node_engine from the same seed).
  ///
  /// A protocol that resolves its randomness ahead of time can certify
  /// long deterministic stretches even before it first transmits: the
  /// window adapter (protocols/window_node.hpp) pre-draws its one
  /// in-window transmission slot from a private substream, so every slot
  /// it reports has probability exactly 0 or 1 and the certificate spans
  /// the whole silent run to the next probability change. That pattern —
  /// moving protocol randomness out of the engine stream so the remaining
  /// per-slot law is degenerate — is what lets the batched engine skip
  /// dense dynamic cells instead of degenerating to one exact slot per
  /// not-yet-transmitted station.
  virtual std::uint64_t stationary_slots() const { return 1; }

  /// Bulk equivalent of `count` consecutive on_slot_end calls with
  /// non-success feedback; the batched engine uses it to advance a station
  /// across a skipped stretch. Requires count <= stationary_slots() as of
  /// the first skipped slot. The default replays per-slot calls (correct
  /// for any protocol honouring the stationarity contract above, which
  /// makes its state evolution independent of the per-slot feedback
  /// detail); protocols advertising a horizon > 1 should override it with
  /// an O(1) update so skipped slots really cost nothing.
  virtual void on_non_delivery_slots(std::uint64_t count) {
    const Feedback fb{};
    for (std::uint64_t i = 0; i < count; ++i) on_slot_end(fb);
  }
};

/// Shared-state automaton of a fair slot-probability protocol.
class FairSlotProtocol {
 public:
  virtual ~FairSlotProtocol() = default;

  /// Per-station transmission probability for the current slot, in [0, 1].
  virtual double transmit_probability() const = 0;

  /// Advances the shared state; `delivery` is true iff the slot was a
  /// success (every remaining active station heard it).
  virtual void on_slot_end(bool delivery) = 0;

  /// Batching hint for the fast-path engine (sim/fair_engine.hpp): the
  /// number of upcoming slots — counting the current one — over which
  /// transmit_probability() is guaranteed constant as long as no delivery
  /// occurs. Must be >= 1. Protocols whose state drifts every slot (e.g.
  /// One-Fail Adaptive's +1-per-AT-step estimator, or any AT/BT
  /// interleaving) return 1, which makes the batched engine fall back to
  /// the exact per-slot draw. Protocols whose probability changes only on
  /// deliveries may return an unbounded horizon (UINT64_MAX).
  virtual std::uint64_t constant_probability_slots() const { return 1; }

  /// Bulk equivalent of `count` consecutive on_slot_end(false) calls; used
  /// by the batched engine to skip a sampled run of non-delivery slots.
  /// The default replays the per-slot call and is always correct;
  /// protocols that advertise a batching horizon > 1 should override it
  /// with an O(1) update so the skipped slots really cost nothing.
  virtual void on_non_delivery_slots(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) on_slot_end(false);
  }
};

/// Window-size generator of a contention-window protocol.
class WindowSchedule {
 public:
  virtual ~WindowSchedule() = default;

  /// Returns the length in slots (>= 1) of the next contention window.
  virtual std::uint64_t next_window_slots() = 0;
};

}  // namespace ucr

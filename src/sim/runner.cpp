#include "sim/runner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ucr {

AggregateResult aggregate_runs(std::string name, std::uint64_t k,
                               std::vector<RunMetrics> runs) {
  AggregateResult result;
  result.protocol = std::move(name);
  result.k = k;
  result.runs = runs.size();
  std::vector<double> makespans;
  std::vector<double> ratios;
  std::vector<double> latencies;
  makespans.reserve(runs.size());
  ratios.reserve(runs.size());
  double energy_sum = 0.0;
  for (const RunMetrics& m : runs) {
    if (!m.completed) ++result.incomplete_runs;
    makespans.push_back(static_cast<double>(m.slots));
    ratios.push_back(m.ratio());
    for (const std::uint64_t latency : m.latencies) {
      latencies.push_back(static_cast<double>(latency));
    }
    // Per-station energy: exact transmission counts where the engine
    // sampled them, the expected count otherwise (a completed run always
    // has transmissions >= k > 0 when counted exactly).
    const double total_tx = m.transmissions > 0
                                ? static_cast<double>(m.transmissions)
                                : m.expected_transmissions;
    energy_sum += total_tx / static_cast<double>(m.k);
    result.energy_max =
        std::max(result.energy_max,
                 static_cast<double>(m.max_station_transmissions));
  }
  if (!runs.empty()) {
    result.energy_mean = energy_sum / static_cast<double>(runs.size());
  }
  result.makespan = summarize(makespans);
  result.ratio = summarize(ratios);
  if (!latencies.empty()) {
    // Pooled across runs (run order): the per-message latency envelope of
    // the cell, persisted per row so dynamic-arrival archives carry their
    // tail behaviour without the O(k * runs) details.
    std::sort(latencies.begin(), latencies.end());
    result.latency_p50 = quantile_sorted(latencies, 0.50);
    result.latency_p95 = quantile_sorted(latencies, 0.95);
    result.latency_p99 = quantile_sorted(latencies, 0.99);
  }
  result.details = std::move(runs);
  return result;
}

RunMetrics run_single_fair(const ProtocolFactory& factory, std::uint64_t k,
                           std::uint64_t run_index, std::uint64_t seed,
                           const EngineOptions& options) {
  UCR_REQUIRE(factory.has_fair(),
              "protocol '" + factory.name + "' has no fair-engine view");
  Xoshiro256 rng = Xoshiro256::stream(seed, run_index);
  if (factory.fair_slot) {
    auto protocol = factory.fair_slot(k);
    return options.batched
               ? run_fair_slot_engine_batched(*protocol, k, rng, options)
               : run_fair_slot_engine(*protocol, k, rng, options);
  }
  auto schedule = factory.window(k);
  return options.batched
             ? run_fair_window_engine_batched(*schedule, k, rng, options)
             : run_fair_window_engine(*schedule, k, rng, options);
}

RunMetrics run_single_node(const ProtocolFactory& factory,
                           const ArrivalPattern& arrivals,
                           std::uint64_t run_index, std::uint64_t seed,
                           const EngineOptions& options) {
  UCR_REQUIRE(static_cast<bool>(factory.node),
              "protocol '" + factory.name + "' has no per-node view");
  const std::uint64_t k = arrivals.size();
  Xoshiro256 rng = Xoshiro256::stream(seed, run_index);
  const NodeFactory node_factory = [&](Xoshiro256& node_rng) {
    return factory.node(k, node_rng);
  };
  return options.batched
             ? run_node_engine_batched(node_factory, arrivals, rng, options)
             : run_node_engine(node_factory, arrivals, rng, options);
}

AggregateResult run_fair_experiment(const ProtocolFactory& factory,
                                    std::uint64_t k, std::uint64_t runs,
                                    std::uint64_t seed,
                                    const EngineOptions& options) {
  UCR_REQUIRE(factory.has_fair(),
              "protocol '" + factory.name + "' has no fair-engine view");
  UCR_REQUIRE(runs > 0, "at least one run required");

  std::vector<RunMetrics> all;
  all.reserve(runs);
  for (std::uint64_t r = 0; r < runs; ++r) {
    all.push_back(run_single_fair(factory, k, r, seed, options));
  }
  return aggregate_runs(factory.name, k, std::move(all));
}

AggregateResult run_node_experiment(const ProtocolFactory& factory,
                                    const ArrivalPattern& arrivals,
                                    std::uint64_t runs, std::uint64_t seed,
                                    const EngineOptions& options) {
  UCR_REQUIRE(static_cast<bool>(factory.node),
              "protocol '" + factory.name + "' has no per-node view");
  UCR_REQUIRE(runs > 0, "at least one run required");

  std::vector<RunMetrics> all;
  all.reserve(runs);
  for (std::uint64_t r = 0; r < runs; ++r) {
    all.push_back(run_single_node(factory, arrivals, r, seed, options));
  }
  return aggregate_runs(factory.name, arrivals.size(), std::move(all));
}

std::vector<std::uint64_t> paper_k_sweep(std::uint64_t k_max) {
  UCR_REQUIRE(k_max >= 10, "the paper's sweep starts at k = 10");
  std::vector<std::uint64_t> ks;
  std::uint64_t k = 10;
  for (;;) {
    ks.push_back(k);
    if (k > k_max / 10) break;  // next power of ten would exceed k_max
    k *= 10;
  }
  if (ks.back() != k_max) {
    // k_max is not a power of ten: include it as the final point.
    ks.push_back(k_max);
  }
  return ks;
}

}  // namespace ucr

// Aggregate simulation engine for fair protocols under batched arrivals.
//
// Correctness argument (why aggregation is exact, not an approximation):
// under batched arrivals the feedback history — the only input to a
// station's state besides its private coins — is identical at every active
// station, so all active stations hold the same state and transmit with the
// same probability p. The number of transmitters in a slot is therefore
// exactly Binomial(m, p) given (m, p), and the channel outcome depends on it
// only through the category {0, 1, >= 2}. Sampling the category directly
// from its closed-form probabilities yields a process with exactly the same
// joint law of outcomes as the per-node engine — in O(1) per slot.
//
// Window protocols additionally need the exact transmitter count (a
// transmitter leaves the within-window pending pool even on collision); the
// count at slot j of a W-slot window is Binomial(pending, 1/(W - j)) by the
// chain rule on uniform slot choices, sampled with the exact samplers in
// common/samplers.hpp.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Runs a fair slot-probability protocol on a batch of k messages.
/// O(1) work per slot; scales to k = 10^7 makespans on a laptop.
RunMetrics run_fair_slot_engine(FairSlotProtocol& protocol, std::uint64_t k,
                                Xoshiro256& rng, const EngineOptions& options);

/// Runs a fair contention-window protocol on a batch of k messages.
/// O(1) expected work per slot (one binomial draw).
RunMetrics run_fair_window_engine(WindowSchedule& schedule, std::uint64_t k,
                                  Xoshiro256& rng,
                                  const EngineOptions& options);

}  // namespace ucr

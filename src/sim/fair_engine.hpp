// Aggregate simulation engine for fair protocols under batched arrivals.
//
// Correctness argument (why aggregation is exact, not an approximation):
// under batched arrivals the feedback history — the only input to a
// station's state besides its private coins — is identical at every active
// station, so all active stations hold the same state and transmit with the
// same probability p. The number of transmitters in a slot is therefore
// exactly Binomial(m, p) given (m, p), and the channel outcome depends on it
// only through the category {0, 1, >= 2}. Sampling the category directly
// from its closed-form probabilities yields a process with exactly the same
// joint law of outcomes as the per-node engine — in O(1) per slot.
//
// Window protocols additionally need the exact transmitter count (a
// transmitter leaves the within-window pending pool even on collision); the
// count at slot j of a W-slot window is Binomial(pending, 1/(W - j)) by the
// chain rule on uniform slot choices, sampled with the exact samplers in
// common/samplers.hpp.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Runs a fair slot-probability protocol on a batch of k messages.
/// O(1) work per slot; scales to k = 10^7 makespans on a laptop.
RunMetrics run_fair_slot_engine(FairSlotProtocol& protocol, std::uint64_t k,
                                Xoshiro256& rng, const EngineOptions& options);

/// Runs a fair contention-window protocol on a batch of k messages.
/// O(1) expected work per slot (one binomial draw).
RunMetrics run_fair_window_engine(WindowSchedule& schedule, std::uint64_t k,
                                  Xoshiro256& rng,
                                  const EngineOptions& options);

// Batched fast paths — the paper-scale engines (EngineOptions::batched).
//
// Both sample whole stretches of slots at once instead of resolving slots
// one by one, producing a process with exactly the same law of outcomes as
// the corresponding exact engine (no approximation is involved), but a
// different RNG consumption pattern: a batched run and an exact run from
// the same seed are different sample paths of the same distribution.
// Equivalence is therefore pinned statistically (tests/integration), not
// by golden outputs. Neither engine supports EngineOptions::observer —
// skipped slots are never materialized — and both throw ContractViolation
// if one is attached.

/// Batched slot-probability engine. Over a stretch of slots where the
/// protocol guarantees constant p (FairSlotProtocol::
/// constant_probability_slots), the number of non-success slots before the
/// next success is Geometric(P[success]); the engine draws it in O(1) and
/// splits the skipped slots into silence/collision with one binomial draw.
/// Cost: O(successes + probability changes) — for a constant-p protocol,
/// O(k) total regardless of the makespan. Protocols that return the
/// default hint of 1 take the exact per-slot path (bit-identical to
/// run_fair_slot_engine from the same seed).
RunMetrics run_fair_slot_engine_batched(FairSlotProtocol& protocol,
                                        std::uint64_t k, Xoshiro256& rng,
                                        const EngineOptions& options);

/// Batched window engine. Instead of one Binomial(pending, 1/(W-j)) draw
/// per slot, it samples each pending station's chosen slot directly (the
/// two formulations are equivalent by the chain rule on uniform slot
/// choices) and walks only the occupied slots. Cost: O(active stations)
/// per window instead of O(W) — the win at paper scale, where monotone
/// back-off windows grow to >> k slots that are almost entirely silent.
/// RunMetrics::transmissions is exact; expected_transmissions mirrors it
/// (the realized count is the conditional expectation given the choices).
RunMetrics run_fair_window_engine_batched(WindowSchedule& schedule,
                                          std::uint64_t k, Xoshiro256& rng,
                                          const EngineOptions& options);

}  // namespace ucr

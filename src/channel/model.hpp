// Imperfect-channel models layered over the clean collision channel.
//
// The paper's model is the clean channel: 0 transmitters -> silence,
// 1 -> success, >= 2 -> collision (channel/slot.hpp). The contention-
// resolution literature the paper sits in also argues over noisy and
// capture-prone channels, so ChannelModel generalizes the per-slot
// classification:
//
//   clean              the identity model; draws no randomness, so every
//                      clean-channel run is bit-identical to the engines
//                      before this layer existed.
//   capture(p)         capture effect: in a collision slot (>= 2
//                      transmitters) the strongest transmitter's message
//                      is decoded with probability p; the winner is
//                      uniform among the transmitters (i.i.d. fading
//                      ranks). p = 0 degenerates to clean.
//   jamming(q)         random noise: each slot is jammed independently
//                      with probability q and then reads as collision to
//                      every station, whatever the transmitter count —
//                      in particular a jammed success slot delivers
//                      nothing.
//   jam_burst(T,L)     deterministic adversarial jamming: slots
//                      t with (t mod T) < L are jammed (a periodic
//                      L-of-T burst schedule); draws no randomness.
//
// Only the exact per-node engine implements the imperfect models: the
// fair aggregate engines rest on a common-feedback symmetry argument that
// capture breaks (a losing transmitter of a captured slot cannot hear the
// delivery), and the batched fast paths rest on stationarity certificates
// that per-slot jamming and capture coins void. compile() (exp/plan.cpp)
// therefore routes every cell of a non-clean grid onto the exact node
// engine, and the other engines reject non-clean options loudly. See
// docs/SCENARIOS.md for the support matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/slot.hpp"
#include "common/rng.hpp"

namespace ucr {

/// Value-type description of the channel's per-slot behaviour. Carried in
/// EngineOptions (sim/metrics.hpp) and, as a grid axis, in ExperimentSpec
/// (exp/spec.hpp).
struct ChannelModel {
  enum class Kind { kClean, kCapture, kJamming, kJamBurst };

  Kind kind = Kind::kClean;
  /// capture: probability that a collision slot is captured by its
  /// strongest transmitter. Valid range [0, 1].
  double p_capture = 0.5;
  /// jamming: per-slot independent jam probability. Valid range [0, 1].
  double jam_prob = 0.1;
  /// jam_burst: slots t with (t mod jam_period) < jam_len are jammed.
  std::uint64_t jam_period = 16;
  std::uint64_t jam_len = 4;

  static ChannelModel clean();
  static ChannelModel capture(double p);
  static ChannelModel jamming(double q);
  static ChannelModel jam_burst(std::uint64_t period, std::uint64_t len);

  bool is_clean() const { return kind == Kind::kClean; }

  /// Human/JSONL label: "clean", "capture(0.5)", "jamming(0.1)",
  /// "jam_burst(16,4)". Doubles at 6-decimal display precision; the
  /// spec-file serialization (exp/spec_io.cpp) uses shortest-round-trip
  /// notation instead.
  std::string label() const;

  /// Parses the label syntax back (whitespace tolerated); unknown kinds
  /// get a did-you-mean ContractViolation. Inverse of the spec-file
  /// serialization: parse(text(m)) == m exactly.
  static ChannelModel parse(const std::string& text);

  /// The spec keywords, in canonical order — shared by parse()'s
  /// did-you-mean hint and the docs drift test
  /// (tests/docs/scenarios_doc_test.cpp), so docs/SCENARIOS.md cannot go
  /// stale against the live registry.
  static const std::vector<std::string>& kind_names();

  /// Throws ContractViolation on out-of-range parameters (probabilities
  /// outside [0, 1], jam_period == 0, jam_len > jam_period).
  void validate() const;

  /// Whether `slot` is jammed. Draws one coin per call for kJamming;
  /// deterministic for every other kind.
  bool slot_jammed(std::uint64_t slot, Xoshiro256& rng) const;

  /// Classifies one slot: jam check first (jammed slots read as collision
  /// whatever the transmitter count), then the capture coin on >= 2
  /// transmitters, else the clean classification. The clean model draws
  /// no randomness, preserving bit-identity of every pre-existing run.
  SlotOutcome resolve(std::uint64_t slot, std::uint64_t num_transmitters,
                      Xoshiro256& rng) const;

  bool operator==(const ChannelModel&) const = default;
};

}  // namespace ucr

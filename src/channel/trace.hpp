// Bounded slot-trace recording for debugging and for the example programs
// that visualize protocol dynamics (estimator vs density, sawtooth windows).
#pragma once

#include <cstdint>
#include <vector>

#include "channel/slot.hpp"

namespace ucr {

/// One recorded slot.
struct TraceEntry {
  std::uint64_t slot = 0;
  SlotOutcome outcome = SlotOutcome::kSilence;
  std::uint64_t transmitters = 0;
};

/// Fixed-capacity trace; recording stops silently once full (the cap keeps
/// worst-case memory bounded even for 10^8-slot runs).
class SlotTrace {
 public:
  /// `capacity` is the maximum number of entries retained.
  explicit SlotTrace(std::size_t capacity);

  void record(std::uint64_t slot, SlotOutcome outcome,
              std::uint64_t transmitters);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  bool truncated() const { return truncated_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  bool truncated_ = false;
  std::vector<TraceEntry> entries_;
};

}  // namespace ucr

#include "channel/trace.hpp"

namespace ucr {

SlotTrace::SlotTrace(std::size_t capacity) : capacity_(capacity) {
  entries_.reserve(capacity < 4096 ? capacity : 4096);
}

void SlotTrace::record(std::uint64_t slot, SlotOutcome outcome,
                       std::uint64_t transmitters) {
  if (entries_.size() >= capacity_) {
    truncated_ = true;
    return;
  }
  entries_.push_back(TraceEntry{slot, outcome, transmitters});
}

}  // namespace ucr

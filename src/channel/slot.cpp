#include "channel/slot.hpp"

namespace ucr {

SlotOutcome resolve_outcome(std::uint64_t num_transmitters) {
  if (num_transmitters == 0) return SlotOutcome::kSilence;
  if (num_transmitters == 1) return SlotOutcome::kSuccess;
  return SlotOutcome::kCollision;
}

std::string to_string(SlotOutcome outcome) {
  switch (outcome) {
    case SlotOutcome::kSilence:
      return "silence";
    case SlotOutcome::kSuccess:
      return "success";
    case SlotOutcome::kCollision:
      return "collision";
  }
  return "unknown";
}

Feedback make_feedback(SlotOutcome outcome, bool transmitted,
                       bool collision_detection) {
  Feedback fb;
  fb.transmitted = transmitted;
  if (outcome == SlotOutcome::kSuccess) {
    if (transmitted) {
      fb.delivered_mine = true;
    } else {
      fb.heard_delivery = true;
    }
  } else if (outcome == SlotOutcome::kCollision && collision_detection) {
    fb.heard_collision = true;
  }
  // Without collision detection, silence and collision are
  // indistinguishable noise to every station: all flags stay false.
  return fb;
}

}  // namespace ucr

#include "channel/channel.hpp"

namespace ucr {

SlotOutcome Channel::resolve(std::uint64_t num_transmitters) {
  const SlotOutcome outcome = resolve_outcome(num_transmitters);
  record(outcome, num_transmitters);
  return outcome;
}

void Channel::record(SlotOutcome outcome, std::uint64_t num_transmitters) {
  switch (outcome) {
    case SlotOutcome::kSilence:
      ++counters_.silence;
      break;
    case SlotOutcome::kSuccess:
      ++counters_.success;
      break;
    case SlotOutcome::kCollision:
      ++counters_.collision;
      break;
  }
  counters_.transmissions += num_transmitters;
  if (trace_ != nullptr) {
    trace_->record(counters_.slots, outcome, num_transmitters);
  }
  ++counters_.slots;
}

}  // namespace ucr

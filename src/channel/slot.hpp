// Slot-level semantics of the multiple-access channel (Radio Network model
// of Section 2 of the paper): synchronous slots; exactly one transmitter
// means delivery, zero or many means noise, and — crucially — stations
// cannot distinguish background noise (silence) from interference noise
// (collision): the channel has *no collision detection*.
#pragma once

#include <cstdint>
#include <string>

namespace ucr {

/// Ground-truth outcome of a communication slot (what an omniscient observer
/// sees; stations only observe the Feedback derived from it).
enum class SlotOutcome : std::uint8_t {
  kSilence = 0,    ///< no station transmitted
  kSuccess = 1,    ///< exactly one station transmitted: message delivered
  kCollision = 2,  ///< two or more stations transmitted: all garbled
};

/// Maps a transmitter count to the slot outcome.
SlotOutcome resolve_outcome(std::uint64_t num_transmitters);

/// Human-readable name ("silence" / "success" / "collision").
std::string to_string(SlotOutcome outcome);

/// What one station legally observes at the end of a slot under the
/// paper's model (no collision detection, with delivery acknowledgement).
struct Feedback {
  /// True iff some *other* station's message was delivered this slot and
  /// therefore received by this station.
  bool heard_delivery = false;
  /// True iff this station transmitted and its own message was delivered
  /// (the model's MAC-level acknowledgement; the station then goes idle).
  bool delivered_mine = false;
  /// Whether this station itself transmitted this slot (its own action,
  /// trivially known to it; needed by window protocols to track their
  /// once-per-window transmission).
  bool transmitted = false;
  /// True iff the slot was a collision AND the channel model provides
  /// collision detection. Always false in the paper's model; populated
  /// only by engines run with EngineOptions::collision_detection — the
  /// model extension used by the CD baselines (tree/stack algorithms of
  /// the related work).
  bool heard_collision = false;
};

/// Derives the per-station feedback from the ground truth.
/// `transmitted` is whether this station transmitted this slot;
/// `collision_detection` selects the channel model (the paper's model is
/// without CD, the default).
Feedback make_feedback(SlotOutcome outcome, bool transmitted,
                       bool collision_detection = false);

}  // namespace ucr

#include "channel/model.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace ucr {

namespace {

double parse_double_strict(const std::string& text,
                           const std::string& source) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  UCR_REQUIRE(end != text.c_str() && *end == '\0' && !text.empty(),
              "malformed number '" + text + "' in " + source);
  return value;
}

std::uint64_t parse_u64_local(const std::string& text,
                              const std::string& source) {
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
  UCR_REQUIRE(end != text.c_str() && *end == '\0' && !text.empty() &&
                  text.find('-') == std::string::npos,
              "malformed integer '" + text + "' in " + source);
  return value;
}

}  // namespace

ChannelModel ChannelModel::clean() { return ChannelModel{}; }

ChannelModel ChannelModel::capture(double p) {
  ChannelModel model;
  model.kind = Kind::kCapture;
  model.p_capture = p;
  return model;
}

ChannelModel ChannelModel::jamming(double q) {
  ChannelModel model;
  model.kind = Kind::kJamming;
  model.jam_prob = q;
  return model;
}

ChannelModel ChannelModel::jam_burst(std::uint64_t period, std::uint64_t len) {
  ChannelModel model;
  model.kind = Kind::kJamBurst;
  model.jam_period = period;
  model.jam_len = len;
  return model;
}

std::string ChannelModel::label() const {
  switch (kind) {
    case Kind::kClean:
      return "clean";
    case Kind::kCapture:
      return "capture(" + format_double(p_capture, 6) + ")";
    case Kind::kJamming:
      return "jamming(" + format_double(jam_prob, 6) + ")";
    case Kind::kJamBurst:
      return "jam_burst(" + std::to_string(jam_period) + "," +
             std::to_string(jam_len) + ")";
  }
  UCR_CHECK(false, "unreachable channel kind");
  return {};
}

const std::vector<std::string>& ChannelModel::kind_names() {
  static const std::vector<std::string> names{
      "clean",
      "capture",
      "jamming",
      "jam_burst",
  };
  return names;
}

ChannelModel ChannelModel::parse(const std::string& text) {
  const std::string value = trim(text);
  if (value == "clean") return clean();

  const std::size_t open = value.find('(');
  const std::string head = trim(value.substr(0, open));
  const std::string grammar =
      "(clean, capture(<p>), jamming(<q>) or jam_burst(<period>,<len>))";
  if (head == "capture" || head == "jamming" || head == "jam_burst") {
    UCR_REQUIRE(open != std::string::npos && value.back() == ')',
                "malformed channel '" + value + "' " + grammar);
    const std::string args = value.substr(open + 1, value.size() - open - 2);
    const std::string source = "channel '" + value + "'";
    ChannelModel model;
    if (head == "capture") {
      model = capture(parse_double_strict(trim(args), source));
    } else if (head == "jamming") {
      model = jamming(parse_double_strict(trim(args), source));
    } else {
      const std::size_t comma = args.find(',');
      UCR_REQUIRE(comma != std::string::npos,
                  "malformed channel '" + value +
                      "' (expected jam_burst(<period>,<len>))");
      model = jam_burst(parse_u64_local(trim(args.substr(0, comma)), source),
                        parse_u64_local(trim(args.substr(comma + 1)), source));
    }
    model.validate();
    return model;
  }
  throw ContractViolation("unknown channel kind '" + head + "' " + grammar);
}

void ChannelModel::validate() const {
  switch (kind) {
    case Kind::kClean:
      return;
    case Kind::kCapture:
      UCR_REQUIRE(p_capture >= 0.0 && p_capture <= 1.0,
                  "capture probability must be in [0, 1]");
      return;
    case Kind::kJamming:
      UCR_REQUIRE(jam_prob >= 0.0 && jam_prob <= 1.0,
                  "jamming probability must be in [0, 1]");
      return;
    case Kind::kJamBurst:
      UCR_REQUIRE(jam_period > 0, "jam_burst period must be >= 1");
      UCR_REQUIRE(jam_len <= jam_period,
                  "jam_burst length cannot exceed its period (" +
                      std::to_string(jam_len) + " > " +
                      std::to_string(jam_period) + ")");
      return;
  }
  UCR_CHECK(false, "unreachable channel kind");
}

bool ChannelModel::slot_jammed(std::uint64_t slot, Xoshiro256& rng) const {
  switch (kind) {
    case Kind::kClean:
    case Kind::kCapture:
      return false;
    case Kind::kJamming:
      // One coin per slot, transmitters or not: the noise process is
      // independent of the protocol's behaviour.
      return rng.next_bernoulli(jam_prob);
    case Kind::kJamBurst:
      return slot % jam_period < jam_len;
  }
  UCR_CHECK(false, "unreachable channel kind");
  return false;
}

SlotOutcome ChannelModel::resolve(std::uint64_t slot,
                                  std::uint64_t num_transmitters,
                                  Xoshiro256& rng) const {
  if (kind == Kind::kClean) {
    // No coins: clean-channel runs stay bit-identical to the engines
    // before this layer existed.
    return resolve_outcome(num_transmitters);
  }
  if (slot_jammed(slot, rng)) return SlotOutcome::kCollision;
  const SlotOutcome outcome = resolve_outcome(num_transmitters);
  if (outcome == SlotOutcome::kCollision && kind == Kind::kCapture &&
      rng.next_bernoulli(p_capture)) {
    return SlotOutcome::kSuccess;
  }
  return outcome;
}

}  // namespace ucr

// The shared multiple-access channel: resolves slots, keeps aggregate
// counters, and optionally records a trace.
#pragma once

#include <cstdint>

#include "channel/slot.hpp"
#include "channel/trace.hpp"

namespace ucr {

/// Aggregate channel statistics over a run.
struct ChannelCounters {
  std::uint64_t slots = 0;
  std::uint64_t silence = 0;
  std::uint64_t success = 0;
  std::uint64_t collision = 0;
  /// Total number of (station, slot) transmissions observed. For the O(1)
  /// categorical engine this is not known exactly; engines then accumulate
  /// the *expected* count in RunMetrics instead and leave this at the lower
  /// bound implied by outcomes.
  std::uint64_t transmissions = 0;
};

/// A synchronous multiple-access channel without collision detection.
///
/// Engines call `resolve()` once per slot with the number of simultaneous
/// transmitters; the channel classifies the slot, updates counters, and
/// appends to the trace if one is attached.
class Channel {
 public:
  Channel() = default;

  /// Attaches a trace sink (not owned; may be nullptr to detach).
  void attach_trace(SlotTrace* trace) { trace_ = trace; }

  /// Resolves the current slot given `num_transmitters` and advances time.
  SlotOutcome resolve(std::uint64_t num_transmitters);

  /// Records an externally classified slot (imperfect channel models —
  /// channel/model.hpp — can turn a collision into a success or any slot
  /// into noise, so the outcome is no longer a function of the
  /// transmitter count alone) and advances time. resolve() is
  /// record(resolve_outcome(n), n).
  void record(SlotOutcome outcome, std::uint64_t num_transmitters);

  /// Slot index of the *next* slot to be resolved (0-based); equivalently
  /// the number of slots resolved so far.
  std::uint64_t now() const { return counters_.slots; }

  const ChannelCounters& counters() const { return counters_; }

 private:
  ChannelCounters counters_;
  SlotTrace* trace_ = nullptr;
};

}  // namespace ucr

#include "core/dynamic_one_fail.hpp"

#include <algorithm>

namespace ucr {

DynamicOneFailState::DynamicOneFailState(const OneFailParams& params)
    : params_(params),
      kappa_(params.delta + 1.0),
      ceiling_(2.0 * (params.delta + 1.0)) {
  params_.validate();
}

double DynamicOneFailState::transmit_probability() const {
  return 1.0 / kappa_;
}

void DynamicOneFailState::advance(bool heard_delivery) {
  const double floor = params_.delta + 1.0;
  if (heard_delivery) {
    fast_start_ = false;
    silent_run_ = 0;
    // Same net effect as Algorithm 1's AT success: -(delta).
    kappa_ = std::max(kappa_ - params_.delta, floor);
    return;
  }
  if (fast_start_) {
    kappa_ *= 2.0;
    if (kappa_ > ceiling_) {
      // Sawtooth: restart the sweep one octave higher (see file comment).
      kappa_ = floor;
      ceiling_ *= 2.0;
    }
    return;
  }
  kappa_ += 1.0;  // One-Fail climb
  if (++silent_run_ >= kSilenceLimit) {
    // The channel has gone quiet: our estimate is likely far above the
    // true density. Resweep all scales (see file comment).
    fast_start_ = true;
    silent_run_ = 0;
    kappa_ = floor;
    ceiling_ = 2.0 * floor;
  }
}

DynamicOneFail::DynamicOneFail(const OneFailParams& params)
    : state_(params) {}

double DynamicOneFail::transmit_probability() const {
  return state_.transmit_probability();
}

void DynamicOneFail::on_slot_end(bool delivery) { state_.advance(delivery); }

DynamicOneFailNode::DynamicOneFailNode(const OneFailParams& params)
    : state_(params) {}

double DynamicOneFailNode::transmit_probability() {
  return state_.transmit_probability();
}

void DynamicOneFailNode::on_slot_end(const Feedback& fb) {
  if (fb.delivered_mine) return;  // station goes idle
  state_.advance(fb.heard_delivery);
}

ProtocolFactory make_dynamic_one_fail_factory(const OneFailParams& params,
                                              std::string name) {
  params.validate();
  ProtocolFactory f;
  f.name = std::move(name);
  f.fair_slot = [params](std::uint64_t) {
    return std::make_unique<DynamicOneFail>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256&) {
    return std::make_unique<DynamicOneFailNode>(params);
  };
  return f;
}

}  // namespace ucr

// Dynamic One-Fail Adaptive — this repository's instantiation of the
// paper's Section 6 future work ("the study of the dynamic version of the
// problem when messages arrive at different times").
//
// Why a variant is needed at all: the dynamic-arrival experiments
// (bench/dynamic_arrivals_bench, EXPERIMENTS.md) show that Algorithm 1
// as published LIVELOCKS under sustained arrivals — every newly activated
// station has sigma = 0 and therefore transmits with probability 1 in
// every BT step, so with a steady arrival stream the BT sub-channel
// collides forever, and the fresh stations' low initial estimators keep
// disrupting the AT sub-channel too.
//
// The variant keeps the One-Fail estimator dynamics (+1 per silent step,
// -(delta) net per heard delivery, floor delta+1) but
//  * drops the BT interleave entirely — every slot is an AT slot (the BT
//    algorithm exists to finish a *batch's* O(log k) tail; a dynamic
//    system has no final tail), and
//  * starts new arrivals in a sawtooth FAST-START until the first heard
//    delivery: kappa~ doubles every silent slot, and whenever it crosses
//    the current ceiling it resets to the floor and the ceiling doubles
//    (the Exp Back-on/Back-off trick applied to the probability scale).
//    Plain doubling alone would be incorrect: an isolated station's total
//    transmission probability sum_t 1/(F*2^t) converges to ~0.54, so it
//    might never transmit at all; the sawtooth revisits the high
//    probabilities once per phase and keeps every station live, while a
//    late arrival still reaches the backlog's scale in O(log^2) slots
//    instead of disrupting the channel for Theta(backlog) slots.
//
// Dropping BT removes Algorithm 1's escape hatch against estimator
// overshoot (when kappa~ >> kappa, silence makes kappa~ grow further and
// the last stragglers starve — BT's sigma-based probability was immune to
// that). The variant's replacement: after kSilenceLimit consecutive slots
// without hearing any delivery, the station re-enters the sawtooth
// fast-start from the floor. The resweep revisits every probability scale
// in O(log^2) slots, so both an isolated station and an over-estimated
// tail recover; during a healthy drain deliveries arrive every ~(1+delta)
// slots and the limit is never hit.
//
// Under batched arrivals the variant is fair and solves static k-selection
// in ~(delta+1)k slots — HALF of Algorithm 1's 2(delta+1)k, because no
// slots are spent on BT steps (it forfeits Algorithm 1's analyzed
// O(log^2 k) tail guarantee in exchange). Under Poisson arrivals it
// remains live where the original livelocks; its measured envelope is
// reported in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>

#include "core/one_fail_adaptive.hpp"

namespace ucr {

/// Shared state machine of the dynamic variant.
class DynamicOneFailState {
 public:
  explicit DynamicOneFailState(const OneFailParams& params);

  /// Per-station transmission probability (1/kappa~ every slot).
  double transmit_probability() const;

  /// End-of-slot update; `heard_delivery` as in OneFailState::advance.
  void advance(bool heard_delivery);

  double kappa_estimate() const { return kappa_; }
  /// True while sweeping (before the first heard delivery, or after a
  /// silence-triggered resweep).
  bool in_fast_start() const { return fast_start_; }
  /// Current fast-start ceiling (phase upper bound on kappa~).
  double fast_start_ceiling() const { return ceiling_; }
  /// Consecutive slots without a heard delivery (track mode only).
  std::uint64_t silent_run() const { return silent_run_; }

  /// Delivery-free slots tolerated in track mode before a resweep.
  static constexpr std::uint64_t kSilenceLimit = 32;

 private:
  OneFailParams params_;
  double kappa_;
  double ceiling_;
  bool fast_start_ = true;
  std::uint64_t silent_run_ = 0;
};

/// Fair-engine view (valid for batched arrivals).
class DynamicOneFail final : public FairSlotProtocol {
 public:
  explicit DynamicOneFail(const OneFailParams& params = {});

  double transmit_probability() const override;
  void on_slot_end(bool delivery) override;

  /// Provably hint-1, like OneFailAdaptive: kappa~ moves on every slot —
  /// +1 per silent track step, doubling (or the sawtooth reset) per
  /// fast-start step, -(1+delta) on deliveries — so no two consecutive
  /// slots share a probability and the batched engine degenerates to (and
  /// stays bit-identical with) the exact per-slot path.
  std::uint64_t constant_probability_slots() const override { return 1; }

  const DynamicOneFailState& state() const { return state_; }

 private:
  DynamicOneFailState state_;
};

/// Per-node view (the view that matters: dynamic arrivals).
class DynamicOneFailNode final : public NodeProtocol {
 public:
  explicit DynamicOneFailNode(const OneFailParams& params = {});

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  const DynamicOneFailState& state() const { return state_; }

 private:
  DynamicOneFailState state_;
};

/// Bundles both views for the experiment runner.
ProtocolFactory make_dynamic_one_fail_factory(
    const OneFailParams& params = {},
    std::string name = "Dynamic One-Fail Adaptive");

}  // namespace ucr

#include "core/registry.hpp"

#include <algorithm>
#include <cctype>

#include "common/check.hpp"
#include "core/dynamic_one_fail.hpp"
#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/exp_backoff.hpp"
#include "protocols/known_k.hpp"
#include "protocols/log_fails_adaptive.hpp"
#include "protocols/loglog_backoff.hpp"

namespace ucr {

std::vector<ProtocolFactory> paper_protocols() {
  std::vector<ProtocolFactory> protocols;

  LogFailsParams lfa2;
  lfa2.xi_t = 0.5;
  protocols.push_back(make_log_fails_factory(lfa2, "Log-Fails Adaptive (2)"));

  LogFailsParams lfa10;
  lfa10.xi_t = 0.1;
  protocols.push_back(make_log_fails_factory(lfa10, "Log-Fails Adaptive (10)"));

  protocols.push_back(make_one_fail_factory(OneFailParams{2.72}));
  protocols.push_back(make_exp_backon_factory(ExpBackonParams{0.366}));
  protocols.push_back(make_loglog_factory(LogLogParams{2.0}));
  return protocols;
}

std::vector<ProtocolFactory> extra_protocols() {
  std::vector<ProtocolFactory> protocols;
  protocols.push_back(
      make_exp_backoff_factory(ExpBackoffParams{2.0},
                               "Exponential Back-off (r=2)"));
  protocols.push_back(make_known_k_factory());
  return protocols;
}

std::vector<ProtocolFactory> all_protocols() {
  std::vector<ProtocolFactory> protocols = paper_protocols();
  for (auto& p : extra_protocols()) {
    protocols.push_back(std::move(p));
  }
  return protocols;
}

std::vector<ProtocolFactory> default_catalogue() {
  std::vector<ProtocolFactory> protocols = all_protocols();
  protocols.push_back(make_dynamic_one_fail_factory());
  return protocols;
}

namespace {

std::string lowercase(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Classic dynamic-programming edit distance, for the did-you-mean hint.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

const ProtocolFactory* try_find_protocol(
    const std::vector<ProtocolFactory>& catalogue, const std::string& name) {
  for (const ProtocolFactory& p : catalogue) {
    if (p.name == name) return &p;
  }
  const std::string folded = lowercase(name);
  const ProtocolFactory* loose = nullptr;
  for (const ProtocolFactory& p : catalogue) {
    if (lowercase(p.name) != folded) continue;
    if (loose != nullptr) return nullptr;  // ambiguous: refuse to guess
    loose = &p;
  }
  return loose;
}

const ProtocolFactory& find_protocol(
    const std::vector<ProtocolFactory>& catalogue, const std::string& name) {
  const ProtocolFactory* found = try_find_protocol(catalogue, name);
  if (found != nullptr) return *found;
  UCR_REQUIRE(!catalogue.empty(),
              "unknown protocol '" + name + "' (the catalogue is empty)");
  std::vector<std::string> names;
  names.reserve(catalogue.size());
  for (const ProtocolFactory& p : catalogue) names.push_back(p.name);
  throw ContractViolation("unknown protocol '" + name + "' — did you mean '" +
                          closest_name(names, name) + "'?");
}

std::string closest_name(const std::vector<std::string>& candidates,
                         const std::string& name) {
  if (candidates.empty()) return {};
  const std::string folded = lowercase(name);
  const std::string* closest = &candidates.front();
  std::size_t best = static_cast<std::size_t>(-1);
  for (const std::string& candidate : candidates) {
    const std::size_t distance = edit_distance(folded, lowercase(candidate));
    if (distance < best) {
      best = distance;
      closest = &candidate;
    }
  }
  return *closest;
}

}  // namespace ucr

#include "core/registry.hpp"

#include "core/exp_backon_backoff.hpp"
#include "core/one_fail_adaptive.hpp"
#include "protocols/exp_backoff.hpp"
#include "protocols/known_k.hpp"
#include "protocols/log_fails_adaptive.hpp"
#include "protocols/loglog_backoff.hpp"

namespace ucr {

std::vector<ProtocolFactory> paper_protocols() {
  std::vector<ProtocolFactory> protocols;

  LogFailsParams lfa2;
  lfa2.xi_t = 0.5;
  protocols.push_back(make_log_fails_factory(lfa2, "Log-Fails Adaptive (2)"));

  LogFailsParams lfa10;
  lfa10.xi_t = 0.1;
  protocols.push_back(make_log_fails_factory(lfa10, "Log-Fails Adaptive (10)"));

  protocols.push_back(make_one_fail_factory(OneFailParams{2.72}));
  protocols.push_back(make_exp_backon_factory(ExpBackonParams{0.366}));
  protocols.push_back(make_loglog_factory(LogLogParams{2.0}));
  return protocols;
}

std::vector<ProtocolFactory> extra_protocols() {
  std::vector<ProtocolFactory> protocols;
  protocols.push_back(
      make_exp_backoff_factory(ExpBackoffParams{2.0},
                               "Exponential Back-off (r=2)"));
  protocols.push_back(make_known_k_factory());
  return protocols;
}

std::vector<ProtocolFactory> all_protocols() {
  std::vector<ProtocolFactory> protocols = paper_protocols();
  for (auto& p : extra_protocols()) {
    protocols.push_back(std::move(p));
  }
  return protocols;
}

}  // namespace ucr

// One-Fail Adaptive — Algorithm 1 of the paper (the primary contribution).
//
// Two interleaved sub-algorithms handle different contention regimes:
//  * AT (odd communication steps): transmit with probability 1/kappa~, where
//    kappa~ is a *density estimator* raised by 1 every AT step and lowered
//    by delta+1 on every reception (so the net effect of a successful AT
//    step is -delta);
//  * BT (even communication steps): transmit with probability
//    1/(1 + log2(sigma + 1)), where sigma counts messages received so far —
//    intended for the regime where only O(log) messages remain.
//
// Constant: e < delta <= sum_{j=1..5} (5/6)^j ≈ 2.9906; the paper's
// evaluation uses delta = 2.72.
//
// Theorem 1: solves static k-selection within 2(delta+1)k + O(log^2 k)
// steps with probability at least 1 - 2/(1+k). With delta = 2.72 the linear
// coefficient is 7.44 — the "7.4" analysis entry of Table 1.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of One-Fail Adaptive.
struct OneFailParams {
  /// The paper's delta; must satisfy e < delta <= sum_{j=1..5}(5/6)^j.
  double delta = 2.72;

  /// Largest admissible delta: sum_{j=1..5} (5/6)^j.
  static double delta_upper_bound();

  /// Throws ContractViolation if delta is outside the admissible range.
  void validate() const;
};

/// The per-station state machine of Algorithm 1, written once and shared by
/// both engine views. Communication steps are numbered from 1; step t is a
/// BT step iff t ≡ 0 (mod 2), matching the pseudocode.
class OneFailState {
 public:
  explicit OneFailState(const OneFailParams& params);

  /// True if the *current* step (the one whose probability
  /// transmit_probability() reports) is a BT step.
  bool is_bt_step() const { return step_ % 2 == 0; }

  /// Transmission probability for the current step (Algorithm 1 lines 8/10).
  double transmit_probability() const;

  /// Applies the end-of-step updates (Task 1 line 11 and Task 2) and moves
  /// to the next step. `heard_delivery` is true iff some other station's
  /// message was delivered in this step.
  void advance(bool heard_delivery);

  double kappa_estimate() const { return kappa_; }
  std::uint64_t sigma() const { return sigma_; }
  std::uint64_t step() const { return step_; }
  const OneFailParams& params() const { return params_; }

 private:
  OneFailParams params_;
  double kappa_;          // the density estimator kappa~
  std::uint64_t sigma_ = 0;  // messages received so far
  std::uint64_t step_ = 1;   // current communication step (1-based)
};

/// Fair-engine view (shared state of all active stations).
class OneFailAdaptive final : public FairSlotProtocol {
 public:
  explicit OneFailAdaptive(const OneFailParams& params = {});

  double transmit_probability() const override;
  void on_slot_end(bool delivery) override;

  /// The estimator moves every AT step and AT/BT steps alternate, so no
  /// two consecutive slots share a probability: the batched engine
  /// degenerates to (and stays bit-identical with) the exact per-slot
  /// path.
  std::uint64_t constant_probability_slots() const override { return 1; }

  const OneFailState& state() const { return state_; }

 private:
  OneFailState state_;
};

/// Per-node view (one instance per station).
class OneFailAdaptiveNode final : public NodeProtocol {
 public:
  explicit OneFailAdaptiveNode(const OneFailParams& params = {});

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  const OneFailState& state() const { return state_; }

 private:
  OneFailState state_;
};

/// Bundles both views for the experiment runner.
ProtocolFactory make_one_fail_factory(const OneFailParams& params = {},
                                      std::string name = "One-Fail Adaptive");

}  // namespace ucr

// Exp Back-on/Back-off — Algorithm 2 of the paper (the sawtooth window
// technique of Greenberg & Leiserson [10], recreated with constants chosen
// for k-selection and analyzed in Theorem 2).
//
//   for i = 1, 2, ...:            (back-on: outer loop doubles the window)
//     w <- 2^i
//     while w >= 1:               (back-off: inner loop shrinks it)
//       run a contention window of w slots
//       w <- w * (1 - delta)
//
// Every active station picks one uniformly random slot per window.
// Constant 0 < delta < 1/e; the paper's evaluation uses delta = 0.366.
//
// Theorem 2: solves static k-selection within 4(1 + 1/delta)k steps w.h.p.
// for big enough k — 14.93k for delta = 0.366, the "14.9" analysis entry of
// Table 1 (measured ratios are 4–8: the analysis is pessimistic by a small
// constant, as the paper itself observes).
//
// Integrality: the pseudocode lets w be real-valued. This implementation
// keeps w real and runs ceil(w) slots per window; the loop condition w >= 1
// is evaluated on the real value, exactly as written in Algorithm 2.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of Exp Back-on/Back-off.
struct ExpBackonParams {
  /// The paper's delta; must satisfy 0 < delta < 1/e.
  double delta = 0.366;

  /// Throws ContractViolation if delta is outside the admissible range.
  void validate() const;
};

/// The sawtooth window-size generator (WindowSchedule view).
class ExpBackonBackoff final : public WindowSchedule {
 public:
  explicit ExpBackonBackoff(const ExpBackonParams& params = {});

  std::uint64_t next_window_slots() override;

  /// Current outer-loop exponent i (phase number, 1-based).
  std::uint64_t phase() const { return phase_; }
  /// Real-valued window variable w as of the *next* window.
  double window_real() const { return w_; }

 private:
  ExpBackonParams params_;
  std::uint64_t phase_ = 1;
  double w_ = 2.0;  // w of the next window; starts at 2^1
};

/// Bundles schedule + per-node views for the experiment runner.
ProtocolFactory make_exp_backon_factory(
    const ExpBackonParams& params = {},
    std::string name = "Exp Back-on/Back-off");

}  // namespace ucr

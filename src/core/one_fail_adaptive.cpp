#include "core/one_fail_adaptive.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathx.hpp"

namespace ucr {

double OneFailParams::delta_upper_bound() {
  double sum = 0.0;
  double term = 1.0;
  for (int j = 1; j <= 5; ++j) {
    term *= 5.0 / 6.0;
    sum += term;
  }
  return sum;  // = 2.990561...
}

void OneFailParams::validate() const {
  UCR_REQUIRE(delta > std::exp(1.0),
              "One-Fail Adaptive requires delta > e");
  UCR_REQUIRE(delta <= delta_upper_bound(),
              "One-Fail Adaptive requires delta <= sum_{j=1..5}(5/6)^j");
}

OneFailState::OneFailState(const OneFailParams& params)
    : params_(params), kappa_(params.delta + 1.0) {
  params_.validate();
}

double OneFailState::transmit_probability() const {
  if (is_bt_step()) {
    // Line 8: 1/(1 + log2(sigma + 1)).
    return 1.0 / (1.0 + log2x(static_cast<double>(sigma_) + 1.0));
  }
  // Line 10: 1/kappa~. kappa~ >= delta + 1 > 1, so this is a probability.
  return 1.0 / kappa_;
}

void OneFailState::advance(bool heard_delivery) {
  const double floor = params_.delta + 1.0;
  if (is_bt_step()) {
    if (heard_delivery) {
      ++sigma_;
      kappa_ = std::max(kappa_ - params_.delta, floor);  // Task 2, BT branch
    }
  } else {
    kappa_ += 1.0;  // Task 1 line 11 (every AT step)
    if (heard_delivery) {
      ++sigma_;
      kappa_ = std::max(kappa_ - params_.delta - 1.0, floor);  // Task 2, AT
    }
  }
  ++step_;
}

OneFailAdaptive::OneFailAdaptive(const OneFailParams& params)
    : state_(params) {}

double OneFailAdaptive::transmit_probability() const {
  return state_.transmit_probability();
}

void OneFailAdaptive::on_slot_end(bool delivery) { state_.advance(delivery); }

OneFailAdaptiveNode::OneFailAdaptiveNode(const OneFailParams& params)
    : state_(params) {}

double OneFailAdaptiveNode::transmit_probability() {
  return state_.transmit_probability();
}

void OneFailAdaptiveNode::on_slot_end(const Feedback& fb) {
  if (fb.delivered_mine) {
    return;  // Task 3: stop upon message delivery; the engine deactivates us.
  }
  state_.advance(fb.heard_delivery);
}

ProtocolFactory make_one_fail_factory(const OneFailParams& params,
                                      std::string name) {
  params.validate();
  ProtocolFactory f;
  f.name = std::move(name);
  f.fair_slot = [params](std::uint64_t) {
    return std::make_unique<OneFailAdaptive>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256&) {
    return std::make_unique<OneFailAdaptiveNode>(params);
  };
  return f;
}

}  // namespace ucr

#include "core/exp_backon_backoff.hpp"

#include <cmath>

#include "common/check.hpp"
#include "protocols/window_node.hpp"

namespace ucr {

void ExpBackonParams::validate() const {
  UCR_REQUIRE(delta > 0.0 && delta < 1.0 / std::exp(1.0),
              "Exp Back-on/Back-off requires 0 < delta < 1/e");
}

ExpBackonBackoff::ExpBackonBackoff(const ExpBackonParams& params)
    : params_(params) {
  params_.validate();
}

std::uint64_t ExpBackonBackoff::next_window_slots() {
  const auto slots = static_cast<std::uint64_t>(std::ceil(w_));
  UCR_CHECK(slots >= 1, "sawtooth window must span at least one slot");
  // Inner loop: shrink; when w drops below 1, the outer loop doubles.
  w_ *= 1.0 - params_.delta;
  if (w_ < 1.0) {
    ++phase_;
    w_ = std::ldexp(1.0, static_cast<int>(phase_));  // 2^phase
  }
  return slots;
}

ProtocolFactory make_exp_backon_factory(const ExpBackonParams& params,
                                        std::string name) {
  params.validate();
  ProtocolFactory f;
  f.name = std::move(name);
  f.window = [params](std::uint64_t) {
    return std::make_unique<ExpBackonBackoff>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256& rng) {
    return std::make_unique<WindowNodeProtocol>(
        std::make_unique<ExpBackonBackoff>(params), rng);
  };
  return f;
}

}  // namespace ucr

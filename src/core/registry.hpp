// Registry of the protocol configurations used by the paper's evaluation
// (Section 5) plus the extra ablation baselines of this repository.
#pragma once

#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace ucr {

/// The five curves of Figure 1 / rows of Table 1, in the paper's order:
/// Log-Fails Adaptive (xi_t = 1/2), Log-Fails Adaptive (xi_t = 1/10),
/// One-Fail Adaptive (delta = 2.72), Exp Back-on/Back-off (delta = 0.366),
/// LogLog-Iterated Back-off (r = 2).
std::vector<ProtocolFactory> paper_protocols();

/// Extra baselines: r-exponential back-off (r = 2) and the known-k genie.
std::vector<ProtocolFactory> extra_protocols();

/// paper_protocols() followed by extra_protocols().
std::vector<ProtocolFactory> all_protocols();

/// The live catalogue every name-resolving front end shares:
/// all_protocols() plus this repository's Dynamic One-Fail variant.
/// ucr_cli, the bench harnesses' spec-file override (UCR_SPEC) and the
/// specs/ round-trip tests all resolve protocol names against this, so a
/// spec file means the same sweep everywhere.
std::vector<ProtocolFactory> default_catalogue();

/// Looks `name` up in a catalogue: first exact match (first wins — the
/// registry never carries duplicate names, but a user-assembled catalogue
/// might), then a case-insensitive match, accepted only when unique.
/// Returns nullptr when nothing (or nothing unambiguous) matches.
const ProtocolFactory* try_find_protocol(
    const std::vector<ProtocolFactory>& catalogue, const std::string& name);

/// Same lookup, but a failed match throws ContractViolation whose message
/// names the closest catalogue entry ("did you mean ...?") — the loud
/// replacement for the silent last-match-wins linear scan ucr_cli used.
const ProtocolFactory& find_protocol(
    const std::vector<ProtocolFactory>& catalogue, const std::string& name);

/// The generic engine behind find_protocol's hint: the candidate closest
/// to `name` in case-folded edit distance (first wins on ties). Reused by
/// any keyword lookup that wants the same did-you-mean errors — the spec
/// file parser (exp/spec_io.hpp) runs unknown keys, engine modes and
/// output formats through it. Empty candidates yield "".
std::string closest_name(const std::vector<std::string>& candidates,
                         const std::string& name);

}  // namespace ucr

// Known-k genie — a fair protocol that transmits with probability 1/kappa
// where kappa is the *true* number of still-active stations (it knows k and
// counts deliveries, which are common knowledge).
//
// Not a contender (it uses information the problem denies); it realizes the
// remark in Section 5 of the paper that "the smallest ratio expected by any
// algorithm in which nodes use the same probability at any step is e", and
// serves as the optimum reference line in the benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Fair-engine view of the genie.
class KnownKGenie final : public FairSlotProtocol {
 public:
  explicit KnownKGenie(std::uint64_t k);

  double transmit_probability() const override;
  void on_slot_end(bool delivery) override;

  /// The genie's probability changes only on deliveries, so the batched
  /// engine may skip any number of non-delivery slots at once — the whole
  /// run costs O(k) regardless of makespan.
  std::uint64_t constant_probability_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

  std::uint64_t remaining() const { return remaining_; }

 private:
  std::uint64_t remaining_;
};

/// Per-node view (each station tracks k minus the deliveries it heard and
/// whether its own message is still pending).
class KnownKGenieNode final : public NodeProtocol {
 public:
  explicit KnownKGenieNode(std::uint64_t k);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  /// Like the fair view: the station's state moves only on heard
  /// deliveries, so any number of non-success slots may be skipped at
  /// once and the bulk advance is a no-op.
  std::uint64_t stationary_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

 private:
  std::uint64_t remaining_;
};

/// Factory for the experiment runner.
ProtocolFactory make_known_k_factory(std::string name = "Known-k genie (1/k)");

}  // namespace ucr

// r-exponential back-off — the classic monotone strategy (windows r^i),
// provided as an ablation baseline. The paper cites [2]'s result that for
// batched arrivals it is Theta(k · log k / loglog k)-ish (superlinear),
// i.e. provably worse than the sawtooth and adaptive strategies; the
// monotone_backoff bench shows exactly this gap.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace ucr {

/// Tunables of r-exponential back-off.
struct ExpBackoffParams {
  /// Window growth factor (binary exponential back-off is r = 2).
  double r = 2.0;

  void validate() const;
};

/// The monotone exponential window generator: windows r, r^2, r^3, ...
class ExponentialBackoff final : public WindowSchedule {
 public:
  explicit ExponentialBackoff(const ExpBackoffParams& params = {});

  std::uint64_t next_window_slots() override;

  double window_real() const { return w_; }

 private:
  ExpBackoffParams params_;
  double w_;
};

/// Bundles schedule + per-node views for the experiment runner.
ProtocolFactory make_exp_backoff_factory(const ExpBackoffParams& params = {},
                                         std::string name = "");

}  // namespace ucr

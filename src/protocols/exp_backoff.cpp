#include "protocols/exp_backoff.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "protocols/window_node.hpp"

namespace ucr {

void ExpBackoffParams::validate() const {
  UCR_REQUIRE(r > 1.0, "exponential back-off requires r > 1");
}

ExponentialBackoff::ExponentialBackoff(const ExpBackoffParams& params)
    : params_(params), w_(params.r) {
  params_.validate();
}

std::uint64_t ExponentialBackoff::next_window_slots() {
  const auto slots = static_cast<std::uint64_t>(std::llround(w_));
  UCR_CHECK(slots >= 1, "exponential window must span at least one slot");
  w_ *= params_.r;
  return slots;
}

ProtocolFactory make_exp_backoff_factory(const ExpBackoffParams& params,
                                         std::string name) {
  params.validate();
  if (name.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "Exponential Back-off (r=%g)", params.r);
    name = buf;
  }
  ProtocolFactory f;
  f.name = std::move(name);
  f.window = [params](std::uint64_t) {
    return std::make_unique<ExponentialBackoff>(params);
  };
  f.node = [params](std::uint64_t, Xoshiro256& rng) {
    return std::make_unique<WindowNodeProtocol>(
        std::make_unique<ExponentialBackoff>(params), rng);
  };
  return f;
}

}  // namespace ucr

// Adapter that turns any WindowSchedule into a per-station NodeProtocol.
//
// A station picks one uniformly random slot per window. Expressed as a
// per-slot hazard so the per-node engine's single Bernoulli per station per
// slot suffices: at offset j of a W-slot window, a station that has not yet
// transmitted in this window transmits with probability 1/(W - j). By the
// chain rule this makes every offset equally likely (probability 1/W) and
// guarantees exactly one transmission per window (the hazard reaches 1 at
// the last offset).
#pragma once

#include <memory>

#include "sim/protocol.hpp"

namespace ucr {

/// Per-station view of a contention-window protocol.
class WindowNodeProtocol final : public NodeProtocol {
 public:
  /// Takes ownership of this station's schedule generator. Schedules are
  /// deterministic, so stations activated at the same slot stay in lockstep.
  explicit WindowNodeProtocol(std::unique_ptr<WindowSchedule> schedule);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  /// Stationarity hint for the batched node engine: a station that already
  /// transmitted in this window sits at probability 0 until the window
  /// ends, indifferent to feedback detail — the rest of the window is a
  /// certified stretch. Before its in-window transmission the hazard
  /// 1/(W - j) moves every slot, so the hint is 1 (exact per-slot path).
  /// This is what lets the batched engine skip the long all-stations-done
  /// window tails that dominate monotone back-off under dynamic arrivals.
  std::uint64_t stationary_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

  std::uint64_t current_window() const { return window_; }
  std::uint64_t window_offset() const { return offset_; }

 private:
  std::unique_ptr<WindowSchedule> schedule_;
  std::uint64_t window_ = 0;  // 0 = fetch the first window lazily
  std::uint64_t offset_ = 0;
  bool sent_this_window_ = false;
};

}  // namespace ucr

// Adapter that turns any WindowSchedule into a per-station NodeProtocol.
//
// A station picks one uniformly random slot per window. The pick is
// *pre-drawn*: when a window of W slots opens, the station draws its
// transmission offset T uniformly from {0, ..., W-1} out of a private
// per-station substream (common/rng.hpp, derive_window_offset_stream) and
// then emits the deterministic probability sequence 0,...,0,1,0,...,0 —
// silent up to T, certain at T, silent to the window end.
//
// Law preservation (chain rule): the historical per-slot hazard
// formulation transmitted at offset j with probability 1/(W - j) given no
// transmission yet, so P[first transmission at offset T] =
// prod_{j<T} (1 - 1/(W-j)) * 1/(W-T) = ((W-1)/W)((W-2)/(W-1))...(1/(W-T))
// = 1/W for every T — exactly the uniform pre-draw. The two formulations
// induce the same law on every channel trajectory; only where the
// randomness is consumed differs (one private draw per window instead of
// one engine coin per slot).
//
// What the pre-draw buys: the station knows its whole window in advance,
// so it can certify the entire silent run-up to T (and the silent tail
// after T) through stationary_slots(). Under the per-slot hazard a
// not-yet-transmitted station could never certify more than the current
// slot, which capped the batched node engine's skip at 1 slot on dense
// dynamic cells; with the pre-draw every slot of a window-protocol cell
// has probability 0 or 1, stretches between transmissions are
// deterministic silence, and the batched engine skips them wholesale.
// Because all probabilities are exact 0s and 1s, neither engine consumes
// any engine-stream randomness in window slots (Bernoulli/geometric/
// binomial draws are all draw-free at p in {0, 1}), so the exact and
// batched node engines are bit-identical on window cells — pinned by
// tests/integration/node_batched_test.cpp and the dynamic-arrivals golden
// (tests/integration/spec_golden_test.cpp).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "sim/protocol.hpp"

namespace ucr {

/// Per-station view of a contention-window protocol.
class WindowNodeProtocol final : public NodeProtocol {
 public:
  /// Takes ownership of this station's schedule generator (deterministic,
  /// so stations activated at the same slot stay in window lockstep) and
  /// keys the station's private offset substream with one draw from
  /// `engine_rng` — the only engine-stream randomness a window station
  /// ever consumes.
  WindowNodeProtocol(std::unique_ptr<WindowSchedule> schedule,
                     Xoshiro256& engine_rng);

  double transmit_probability() override;
  void on_slot_end(const Feedback& fb) override;

  /// Stationarity certificate for the batched node engine. Every slot of
  /// a pre-drawn window is deterministic, so the certificate covers the
  /// whole stretch to the next probability change: the silent run-up to
  /// the drawn slot, the drawn slot itself (horizon 1 — the only slot
  /// this station transmits in), and the silent tail to the window end.
  /// Feedback never moves the state (one transmission per window whatever
  /// the channel says), so the certificate survives collision storms.
  std::uint64_t stationary_slots() const override;
  void on_non_delivery_slots(std::uint64_t count) override;

  std::uint64_t current_window() const { return window_; }
  std::uint64_t window_offset() const { return offset_; }
  /// The pre-drawn transmission offset of the current window.
  std::uint64_t drawn_offset() const { return tx_offset_; }

 private:
  void fetch_window();

  std::unique_ptr<WindowSchedule> schedule_;
  CounterRng draws_;          // private per-station offset substream
  std::uint64_t window_ = 0;  // 0 = fetch the first window lazily
  std::uint64_t offset_ = 0;
  std::uint64_t tx_offset_ = 0;
};

}  // namespace ucr
